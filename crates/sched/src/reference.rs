//! The **retained reference scheduler** — the pre-overhaul scan-the-world
//! implementation, kept verbatim as the correctness oracle for the
//! optimized [`crate::engine::Scheduler`].
//!
//! Every scheduling decision here is made the expensive way the engine used
//! to make it:
//!
//! * `placement_on` collects **and sorts every node** per placement attempt,
//! * the EASY shadow time **clones the entire node map** and re-runs full
//!   placement after every simulated release,
//! * the queue is a `Vec` with `remove(0)` / `remove(idx)` shifts.
//!
//! `tests/sched_equivalence.rs` replays random traces through both
//! schedulers and asserts identical observable behavior (start times,
//! placements, epilogs, squeue views) across all `NodeSharing` policies;
//! `tests/sched_parallel_equivalence.rs` extends the same oracle role to
//! the sharded engine — with every policy knob off, every shard width
//! must stay trace-identical to *this* module, which anchors the whole
//! width-sweep (widths agreeing with each other is necessary but not
//! sufficient; they must also agree with the naive semantics).
//! `benches/sched_throughput.rs` races the two at 256 nodes so the speedup
//! claim stays measured. Do **not** optimize this module — its slowness is
//! its value.

use crate::engine::{EpilogEvent, FailureRecord, SchedConfig, SchedMetrics};
use crate::job::{Job, JobId, JobSpec, JobState, TaskAlloc};
use crate::node::{NodeState, SchedNode};
use crate::partition::{PartitionError, PartitionTable};
use crate::policy::{tasks_that_fit, NodeSharing};
use crate::privatedata::{may_view, JobView};
use eus_obs::FlightRecorder;
use eus_simcore::{Counter, Histogram, SimTime, TimeWeighted};
use eus_simos::{Credentials, NodeId, Uid};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::sync::Arc;

/// Internal event kinds (identical to the engine's).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Submit(JobId),
    JobEnd(JobId),
    NodeFail(NodeId),
    NodeRepair(NodeId),
}

/// The reference scheduler: same public surface as the optimized engine
/// (the subset the equivalence suite needs), old algorithms inside.
#[derive(Debug)]
pub struct ReferenceScheduler {
    /// Configuration.
    pub config: SchedConfig,
    /// Compute nodes.
    pub nodes: BTreeMap<NodeId, SchedNode>,
    /// Every job ever submitted.
    pub jobs: BTreeMap<JobId, Job>,
    queue: Vec<JobId>,
    events: BinaryHeap<Reverse<(SimTime, u64, Ev)>>,
    next_job: u64,
    next_node: u32,
    seq: u64,
    now: SimTime,
    /// Metrics.
    pub metrics: SchedMetrics,
    epilogs: Vec<EpilogEvent>,
    /// Node-failure history.
    pub failures: Vec<FailureRecord>,
    /// Partition table.
    pub partitions: PartitionTable,
    admins: BTreeSet<Uid>,
    /// Optional flight recorder, mirroring the engine's event kinds so the
    /// equivalence suite can print both engines' tails on a failure.
    /// `None` (the default) costs one never-taken branch per event site.
    pub flight: Option<FlightRecorder>,
}

impl ReferenceScheduler {
    /// An empty reference scheduler.
    pub fn new(config: SchedConfig) -> Self {
        ReferenceScheduler {
            config,
            nodes: BTreeMap::new(),
            jobs: BTreeMap::new(),
            queue: Vec::new(),
            events: BinaryHeap::new(),
            next_job: 1,
            next_node: 1,
            seq: 0,
            now: SimTime::ZERO,
            metrics: SchedMetrics {
                busy_cores: TimeWeighted::new(SimTime::ZERO, 0.0),
                used_cores: TimeWeighted::new(SimTime::ZERO, 0.0),
                wait_times: Histogram::new(),
                completed: Counter::new(),
                failed: Counter::new(),
                timed_out: Counter::new(),
            },
            epilogs: Vec::new(),
            failures: Vec::new(),
            partitions: PartitionTable::new(),
            admins: BTreeSet::new(),
            flight: None,
        }
    }

    /// Attach a flight recorder (capacity-bounded ring) recording the same
    /// event kinds as the engine: `job.submit`, `job.start`, `job.end`,
    /// `node.fail`, `node.repair`.
    pub fn enable_flight(&mut self, capacity: usize) {
        self.flight = Some(FlightRecorder::new(capacity));
    }

    fn flight_event(&mut self, kind: &'static str, a: u64, b: u64, c: u64) {
        if let Some(fr) = &mut self.flight {
            fr.push(self.now, kind, a, b, c);
        }
    }

    /// Add a node with auto-assigned id.
    pub fn add_node(&mut self, cores: u32, mem_mib: u64, gpus: u32) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        self.nodes
            .insert(id, SchedNode::new(id, cores, mem_mib, gpus));
        id
    }

    /// Register an operator exempt from PrivateData filtering.
    pub fn add_admin(&mut self, uid: Uid) {
        self.admins.insert(uid);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of jobs waiting in queue.
    pub fn pending_count(&self) -> usize {
        self.queue.len()
    }

    /// Number of running jobs (old full-scan form).
    pub fn running_count(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .count()
    }

    fn push_event(&mut self, at: SimTime, ev: Ev) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse((at, seq, ev)));
    }

    /// Submit a job to arrive at `at` (clamped to now).
    pub fn submit_at(&mut self, at: SimTime, spec: JobSpec) -> JobId {
        self.submit_at_shared(at, Arc::new(spec))
    }

    /// Submit an already-shared spec (trace replay reuses one `Arc` per
    /// entry across schedulers).
    pub fn submit_at_shared(&mut self, at: SimTime, spec: Arc<JobSpec>) -> JobId {
        let id = JobId(self.next_job);
        self.next_job += 1;
        let valid_partition: Result<_, PartitionError> =
            self.partitions.eligible_nodes(spec.partition.as_deref());
        let rejected = valid_partition.is_err();
        self.jobs.insert(
            id,
            Job {
                id,
                spec,
                state: if rejected {
                    JobState::Cancelled
                } else {
                    JobState::Pending
                },
                submitted: at.max(self.now),
                started: None,
                ended: None,
                allocations: BTreeMap::new(),
            },
        );
        if rejected {
            self.jobs.get_mut(&id).expect("just inserted").ended = Some(at.max(self.now));
        } else {
            self.push_event(at, Ev::Submit(id));
        }
        id
    }

    /// Submit arriving now.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        self.submit_at(self.now, spec)
    }

    /// Cancel a pending job.
    pub fn cancel(&mut self, id: JobId) -> bool {
        let Some(job) = self.jobs.get_mut(&id) else {
            return false;
        };
        if job.state != JobState::Pending {
            return false;
        }
        job.state = JobState::Cancelled;
        job.ended = Some(self.now);
        self.queue.retain(|j| *j != id);
        true
    }

    /// Inject a node crash at `at`.
    pub fn schedule_node_failure(&mut self, at: SimTime, node: NodeId) {
        self.push_event(at, Ev::NodeFail(node));
    }

    /// Drain accumulated epilog work.
    pub fn drain_epilogs(&mut self) -> Vec<EpilogEvent> {
        std::mem::take(&mut self.epilogs)
    }

    /// Does `user` have a running job with an allocation on `node`? (Old
    /// full-scan form.)
    pub fn has_running_job_on(&self, user: Uid, node: NodeId) -> bool {
        self.jobs.values().any(|j| {
            j.state == JobState::Running && j.spec.user == user && j.allocations.contains_key(&node)
        })
    }

    /// `squeue` as seen by `viewer` (same view type as the engine's).
    pub fn squeue(&self, viewer: &Credentials) -> Vec<JobView> {
        let admin = self.admins.contains(&viewer.uid);
        self.jobs
            .values()
            .filter(|j| !j.state.is_terminal())
            .filter(|j| may_view(viewer, j.spec.user, self.config.private_data.jobs, admin))
            .map(|j| JobView {
                id: j.id,
                user: j.spec.user,
                spec: Arc::clone(&j.spec),
                state: j.state,
                nodes: j.allocations.keys().copied().collect(),
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Fire events up to and including `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) {
        while let Some(Reverse((t, _, _))) = self.events.peek() {
            if *t > horizon {
                break;
            }
            let Reverse((t, _, ev)) = self.events.pop().expect("peeked");
            self.now = t;
            self.fire(ev);
        }
        if self.now < horizon {
            self.now = horizon;
        }
    }

    /// Run until no events remain. Returns the final clock.
    pub fn run_to_completion(&mut self) -> SimTime {
        while let Some(Reverse((t, _, ev))) = self.events.pop() {
            self.now = t;
            self.fire(ev);
        }
        self.now
    }

    fn fire(&mut self, ev: Ev) {
        match ev {
            Ev::Submit(j) => {
                if self.jobs[&j].state == JobState::Pending {
                    self.flight_event("job.submit", j.0, self.jobs[&j].spec.tasks as u64, 0);
                    self.queue.push(j);
                    self.try_schedule();
                }
            }
            Ev::JobEnd(j) => {
                if self.jobs[&j].state == JobState::Running {
                    let spec = &self.jobs[&j].spec;
                    let outcome = if spec.time_limit < spec.duration {
                        JobState::Timeout
                    } else {
                        JobState::Completed
                    };
                    self.finish_job(j, outcome);
                    self.try_schedule();
                }
            }
            Ev::NodeFail(n) => {
                self.fail_node(n);
                self.try_schedule();
            }
            Ev::NodeRepair(n) => {
                if let Some(node) = self.nodes.get_mut(&n) {
                    if node.state == NodeState::Down {
                        node.state = NodeState::Up;
                        self.flight_event("node.repair", n.0 as u64, 0, 0);
                    }
                }
                self.try_schedule();
            }
        }
    }

    fn fail_node(&mut self, n: NodeId) {
        let Some(node) = self.nodes.get_mut(&n) else {
            return;
        };
        if node.state != NodeState::Up {
            return;
        }
        node.state = NodeState::Down;
        let victims: Vec<JobId> = node.running.keys().copied().collect();
        let mut record = FailureRecord {
            node: n,
            at: self.now,
            failed_jobs: Vec::new(),
        };
        self.flight_event("node.fail", n.0 as u64, victims.len() as u64, 0);
        for j in victims {
            let user = self.jobs[&j].spec.user;
            record.failed_jobs.push((j, user));
            self.finish_job(j, JobState::Failed);
        }
        self.failures.push(record);
        self.push_event(self.now + self.config.repair_time, Ev::NodeRepair(n));
    }

    fn finish_job(&mut self, id: JobId, state: JobState) {
        let job = self.jobs.get_mut(&id).expect("known job");
        debug_assert_eq!(job.state, JobState::Running);
        job.state = state;
        job.ended = Some(self.now);
        let user = job.spec.user;
        let allocations: Vec<(NodeId, TaskAlloc)> =
            job.allocations.iter().map(|(n, a)| (*n, *a)).collect();
        let cpus_per_task = job.spec.cpus_per_task;
        let mut released_cores = 0u32;
        let mut released_used = 0u32;
        for (nid, alloc) in &allocations {
            if let Some(node) = self.nodes.get_mut(nid) {
                node.release(id);
                released_cores += alloc.cores;
                released_used += alloc.tasks * cpus_per_task;
            }
        }
        self.metrics
            .busy_cores
            .add(self.now, -(released_cores as f64));
        self.metrics
            .used_cores
            .add(self.now, -(released_used as f64));
        match state {
            JobState::Completed => self.metrics.completed.incr(),
            JobState::Failed => self.metrics.failed.incr(),
            JobState::Timeout => self.metrics.timed_out.incr(),
            _ => {}
        }
        let outcome = match state {
            JobState::Completed => 0,
            JobState::Failed => 1,
            JobState::Timeout => 2,
            _ => 3,
        };
        self.flight_event("job.end", id.0, outcome, released_cores as u64);
        for (nid, alloc) in &allocations {
            let still_active = self.has_running_job_on(user, *nid);
            self.epilogs.push(EpilogEvent {
                job: id,
                user,
                node: *nid,
                gpus: alloc.gpus,
                at: self.now,
                user_still_active_on_node: still_active,
            });
        }
    }

    fn start_job(&mut self, id: JobId, placement: Vec<(NodeId, TaskAlloc)>) {
        let now = self.now;
        let (user, duration, submitted, cpus_per_task) = {
            let job = &self.jobs[&id];
            (
                job.spec.user,
                job.spec.duration,
                job.submitted,
                job.spec.cpus_per_task,
            )
        };
        let mut total_cores = 0u32;
        let mut used_cores = 0u32;
        for (nid, alloc) in &placement {
            self.nodes
                .get_mut(nid)
                .expect("placement on known node")
                .claim(id, *alloc, user);
            total_cores += alloc.cores;
            used_cores += alloc.tasks * cpus_per_task;
        }
        {
            let job = self.jobs.get_mut(&id).expect("known job");
            job.state = JobState::Running;
            job.started = Some(now);
            job.allocations = placement.into_iter().collect();
        }
        let nodes_used = self.jobs[&id].allocations.len() as u64;
        self.flight_event("job.start", id.0, nodes_used, total_cores as u64);
        self.metrics.busy_cores.add(now, total_cores as f64);
        self.metrics.used_cores.add(now, used_cores as f64);
        self.metrics
            .wait_times
            .record(now.since(submitted).as_secs_f64());
        let runtime = duration.min(self.jobs[&id].spec.time_limit);
        self.push_event(now + runtime, Ev::JobEnd(id));
    }

    /// The old placement routine: collect **every** admissible node, sort
    /// the whole list, walk it greedily.
    fn placement_on(
        nodes: &BTreeMap<NodeId, SchedNode>,
        policy: NodeSharing,
        spec: &JobSpec,
        eligible: Option<&BTreeSet<NodeId>>,
    ) -> Option<Vec<(NodeId, TaskAlloc)>> {
        let user = spec.user;
        let mut candidates: Vec<&SchedNode> = nodes
            .values()
            .filter(|n| eligible.is_none_or(|set| set.contains(&n.id)))
            .filter(|n| policy.node_admits(n, user, spec))
            .collect();
        candidates.sort_by_key(|n| {
            let owned = match n.owner() {
                Some(o) if o == user => 0u8,
                _ => 1u8,
            };
            (owned, n.id)
        });

        let mut remaining = spec.tasks;
        let mut placement = Vec::new();
        for node in candidates {
            if remaining == 0 {
                break;
            }
            let fit = tasks_that_fit(node, spec).min(remaining);
            if fit == 0 {
                continue;
            }
            let alloc = if policy.charges_whole_node(spec) {
                TaskAlloc {
                    tasks: fit,
                    cores: node.cores,
                    mem_mib: node.mem_mib,
                    gpus: node.gpus,
                }
            } else {
                TaskAlloc {
                    tasks: fit,
                    cores: fit * spec.cpus_per_task,
                    mem_mib: fit as u64 * spec.mem_per_task_mib,
                    gpus: fit * spec.gpus_per_task,
                }
            };
            placement.push((node.id, alloc));
            remaining -= fit;
        }
        if remaining == 0 {
            Some(placement)
        } else {
            None
        }
    }

    /// The old EASY shadow: clone the whole node map, release running jobs
    /// in end-time order, re-running full placement after each.
    fn shadow_time_for(&self, head: &JobSpec) -> SimTime {
        let mut sim_nodes = self.nodes.clone();
        let eligible = self
            .partitions
            .eligible_nodes(head.partition.as_deref())
            .expect("validated at submit")
            .cloned();
        if Self::placement_on(&sim_nodes, self.config.policy, head, eligible.as_ref()).is_some() {
            return self.now;
        }
        let mut ends: Vec<(SimTime, JobId)> = self
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .map(|j| {
                (
                    j.started.expect("running has start") + j.spec.duration,
                    j.id,
                )
            })
            .collect();
        ends.sort();
        for (end_t, jid) in ends {
            let allocs: Vec<NodeId> = self.jobs[&jid].allocations.keys().copied().collect();
            for nid in allocs {
                if let Some(n) = sim_nodes.get_mut(&nid) {
                    n.release(jid);
                }
            }
            if Self::placement_on(&sim_nodes, self.config.policy, head, eligible.as_ref()).is_some()
            {
                return end_t;
            }
        }
        SimTime::MAX
    }

    fn try_schedule(&mut self) {
        loop {
            let Some(&head) = self.queue.first() else {
                return;
            };
            let head_spec = Arc::clone(&self.jobs[&head].spec);
            let head_eligible = self
                .partitions
                .eligible_nodes(head_spec.partition.as_deref())
                .expect("validated at submit")
                .cloned();
            if let Some(p) = Self::placement_on(
                &self.nodes,
                self.config.policy,
                &head_spec,
                head_eligible.as_ref(),
            ) {
                self.queue.remove(0);
                self.start_job(head, p);
                continue;
            }
            if !self.config.backfill {
                return;
            }
            let shadow = self.shadow_time_for(&head_spec);
            let mut idx = 1;
            let mut scanned = 0;
            while idx < self.queue.len() && scanned < self.config.backfill_depth {
                scanned += 1;
                let cand = self.queue[idx];
                let spec = Arc::clone(&self.jobs[&cand].spec);
                let fits_before_shadow =
                    shadow == SimTime::MAX || self.now + spec.time_limit <= shadow;
                if fits_before_shadow {
                    let cand_eligible = self
                        .partitions
                        .eligible_nodes(spec.partition.as_deref())
                        .expect("validated at submit")
                        .cloned();
                    if let Some(p) = Self::placement_on(
                        &self.nodes,
                        self.config.policy,
                        &spec,
                        cand_eligible.as_ref(),
                    ) {
                        self.queue.remove(idx);
                        self.start_job(cand, p);
                        continue; // same idx now holds the next candidate
                    }
                }
                idx += 1;
            }
            return;
        }
    }
}
