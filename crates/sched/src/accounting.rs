//! Accounting views (`sacct`): per-job records and per-user usage rollups,
//! filtered by `PrivateData=usage` exactly as the queue view is filtered by
//! `PrivateData=jobs` (paper Sec. IV-B).

use crate::engine::Scheduler;
use crate::job::JobState;
use crate::privatedata::may_view;
use eus_simcore::SimTime;
use eus_simos::{Credentials, Uid};
use std::collections::BTreeMap;

/// One `sacct` row.
#[derive(Debug, Clone, PartialEq)]
pub struct AcctRecord {
    /// Job id.
    pub job: crate::job::JobId,
    /// Owner.
    pub user: Uid,
    /// Job name.
    pub name: String,
    /// Final (or current) state.
    pub state: JobState,
    /// Submission time.
    pub submitted: SimTime,
    /// Start time, if dispatched.
    pub started: Option<SimTime>,
    /// End time, if finished.
    pub ended: Option<SimTime>,
    /// Core-seconds consumed.
    pub core_seconds: f64,
}

/// Per-user usage rollup.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UserUsage {
    /// Jobs submitted.
    pub jobs: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs failed.
    pub failed: u64,
    /// Total core-seconds.
    pub core_seconds: f64,
}

impl Scheduler {
    /// `sacct` as seen by `viewer` under the PrivateData configuration.
    pub fn sacct(&self, viewer: &Credentials) -> Vec<AcctRecord> {
        let admin = self.is_admin(viewer.uid);
        self.jobs
            .values()
            .filter(|j| may_view(viewer, j.spec.user, self.config.private_data.usage, admin))
            .map(|j| AcctRecord {
                job: j.id,
                user: j.spec.user,
                name: j.spec.name.clone(),
                state: j.state,
                submitted: j.submitted,
                started: j.started,
                ended: j.ended,
                core_seconds: j.core_seconds(),
            })
            .collect()
    }

    /// Usage rollup across every user the viewer may see.
    pub fn usage_report(&self, viewer: &Credentials) -> BTreeMap<Uid, UserUsage> {
        let mut out: BTreeMap<Uid, UserUsage> = BTreeMap::new();
        for rec in self.sacct(viewer) {
            let u = out.entry(rec.user).or_default();
            u.jobs += 1;
            match rec.state {
                JobState::Completed => u.completed += 1,
                JobState::Failed => u.failed += 1,
                _ => {}
            }
            u.core_seconds += rec.core_seconds;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SchedConfig;
    use crate::job::JobSpec;
    use crate::policy::NodeSharing;
    use crate::privatedata::PrivateData;
    use eus_simcore::SimDuration;
    use eus_simos::Gid;

    fn run_two_users() -> Scheduler {
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0);
        s.submit_at(
            SimTime::ZERO,
            JobSpec::new(Uid(1), "a1", SimDuration::from_secs(10)).with_tasks(2),
        );
        s.submit_at(
            SimTime::ZERO,
            JobSpec::new(Uid(2), "b1", SimDuration::from_secs(20)).with_tasks(2),
        );
        s.run_to_completion();
        s
    }

    #[test]
    fn sacct_open_shows_everything() {
        let s = run_two_users();
        let viewer = Credentials::new(Uid(1), Gid(1));
        let rows = s.sacct(&viewer);
        assert_eq!(rows.len(), 2);
        let usage = s.usage_report(&viewer);
        assert_eq!(usage[&Uid(1)].completed, 1);
        assert!((usage[&Uid(1)].core_seconds - 20.0).abs() < 1e-9);
        assert!((usage[&Uid(2)].core_seconds - 40.0).abs() < 1e-9);
    }

    #[test]
    fn sacct_private_filters_others() {
        let mut s = run_two_users();
        s.config.private_data = PrivateData::llsc();
        let viewer = Credentials::new(Uid(1), Gid(1));
        let rows = s.sacct(&viewer);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].user, Uid(1));
        let usage = s.usage_report(&viewer);
        assert!(!usage.contains_key(&Uid(2)), "other users' usage hidden");
        // Root still sees all.
        assert_eq!(s.sacct(&Credentials::root()).len(), 2);
    }
}
