//! Accounting: `sacct` views and the fair-share usage ledger.
//!
//! Two consumers share this module:
//!
//! * **Humans/operators** — [`Scheduler::sacct`] per-job records and
//!   [`Scheduler::usage_report`] per-user rollups, filtered by
//!   `PrivateData=usage` exactly as the queue view is filtered by
//!   `PrivateData=jobs` (paper Sec. IV-B).
//! * **The scheduler's policy plane** — [`FairShareLedger`], the decayed
//!   per-user/per-partition usage record that drives multi-partition
//!   fair-share head selection (`SchedConfig::fair_share`). Every finished
//!   or preempted job charges the core-seconds it actually consumed to its
//!   `(partition, user)` cell; the head-selection score is that usage with
//!   an exponential half-life decay, so a user who burned the cluster
//!   yesterday outranks one who burned it an hour ago, and a partition's
//!   queue orders by *recent* appetite rather than raw submission order.
//!
//! # Decay without rescans
//!
//! The ledger never walks its cells to apply decay. A charge of `c`
//! core-seconds at time `t` is stored **pre-scaled** as `c · 2^(t/h)`
//! (half-life `h`); the decayed usage at any later instant `now` is then
//! `cell · 2^(−now/h)`. Because every cell decays by the same factor, the
//! *ordering* of scaled cells equals the ordering of decayed usages — so
//! head selection compares scaled values directly and no cell is ever
//! rewritten by the passage of time. When the exponent drifts far enough
//! that accumulation could overflow `f64` (hundreds of half-lives), the
//! ledger *rebases*: every cell is multiplied by the same decay factor and
//! the scale origin moves forward — a pure renormalization that preserves
//! ordering and every decayed reading, so years-long replays stay exact.

use crate::engine::Scheduler;
use crate::job::JobState;
use crate::privatedata::may_view;
use eus_simcore::{SimDuration, SimTime};
use eus_simos::{Credentials, Uid};
use std::collections::BTreeMap;

/// Default fair-share half-life: one simulated hour.
pub const FAIR_SHARE_HALF_LIFE: SimDuration = SimDuration::from_secs(3600);

/// Decayed per-`(partition, user)` usage, the fair-share input.
///
/// Cells are keyed by the *resolved* partition name (empty string = the
/// unpartitioned cluster), matching `PartitionTable::resolve`.
#[derive(Debug, Clone)]
pub struct FairShareLedger {
    half_life_s: f64,
    /// The scale origin (seconds): weights are `2^((t − origin)/h)`.
    /// Advanced by [`rebase`](Self::rebase) before the exponent could push
    /// accumulated cells toward `f64` overflow, so month-scale replays
    /// keep exact ordering instead of silently saturating to `inf`.
    origin_s: f64,
    /// Scaled usage per partition, per user: `Σ cᵢ · 2^((tᵢ−origin)/h)`.
    /// Nested so the head-selection hot path looks up by `&str` without
    /// allocating.
    cells: BTreeMap<String, BTreeMap<Uid, f64>>,
}

/// Rebase threshold, in half-lives past the origin. `2^256 ≈ 1e77` leaves
/// ~230 orders of magnitude of headroom for accumulation before the next
/// rebase.
const REBASE_HALF_LIVES: f64 = 256.0;

impl FairShareLedger {
    /// An empty ledger with the given half-life.
    pub fn new(half_life: SimDuration) -> Self {
        FairShareLedger {
            half_life_s: half_life.as_secs_f64().max(1.0),
            origin_s: 0.0,
            cells: BTreeMap::new(),
        }
    }

    /// The scale factor `2^((t − origin)/h)`.
    fn weight(&self, at: SimTime) -> f64 {
        ((at.since(SimTime::ZERO).as_secs_f64() - self.origin_s) / self.half_life_s).exp2()
    }

    /// Move the scale origin to `at_s`, applying the accumulated decay to
    /// every cell. Pure renormalization: all cells shrink by the same
    /// factor, so ordering (and every decayed reading) is unchanged;
    /// ancient cells underflow harmlessly to zero.
    fn rebase(&mut self, at_s: f64) {
        let factor = (-(at_s - self.origin_s) / self.half_life_s).exp2();
        for users in self.cells.values_mut() {
            for v in users.values_mut() {
                *v *= factor;
            }
        }
        self.origin_s = at_s;
    }

    /// Charge `core_seconds` of consumption to `(partition, user)` at `at`.
    pub fn charge(&mut self, partition: &str, user: Uid, core_seconds: f64, at: SimTime) {
        if core_seconds <= 0.0 {
            return;
        }
        let at_s = at.since(SimTime::ZERO).as_secs_f64();
        if (at_s - self.origin_s) / self.half_life_s > REBASE_HALF_LIVES {
            self.rebase(at_s);
        }
        let w = self.weight(at);
        *self
            .cells
            .entry(partition.to_string())
            .or_default()
            .entry(user)
            .or_insert(0.0) += core_seconds * w;
    }

    /// The *scaled* usage for head-selection ordering: monotone in the
    /// decayed usage at any single instant, zero for users never charged.
    /// Compare with `f64::total_cmp`; lower scores schedule first.
    pub fn score(&self, partition: &str, user: Uid) -> f64 {
        self.cells
            .get(partition)
            .and_then(|users| users.get(&user))
            .copied()
            .unwrap_or(0.0)
    }

    /// Decayed core-seconds attributable to `(partition, user)` as of
    /// `now` — the human-readable form (`sshare`-style reports).
    pub fn decayed_usage(&self, partition: &str, user: Uid, now: SimTime) -> f64 {
        self.score(partition, user) / self.weight(now)
    }

    /// Users with recorded usage in `partition`, with decayed usage at
    /// `now`, ascending by usage (the dispatch order among equal queues).
    pub fn partition_standings(&self, partition: &str, now: SimTime) -> Vec<(Uid, f64)> {
        let w = self.weight(now);
        let mut rows: Vec<(Uid, f64)> = self
            .cells
            .get(partition)
            .map(|users| users.iter().map(|(u, v)| (*u, *v / w)).collect())
            .unwrap_or_default();
        rows.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        rows
    }
}

/// One `sacct` row.
#[derive(Debug, Clone, PartialEq)]
pub struct AcctRecord {
    /// Job id.
    pub job: crate::job::JobId,
    /// Owner.
    pub user: Uid,
    /// Job name.
    pub name: String,
    /// Final (or current) state.
    pub state: JobState,
    /// Submission time.
    pub submitted: SimTime,
    /// Start time, if dispatched.
    pub started: Option<SimTime>,
    /// End time, if finished.
    pub ended: Option<SimTime>,
    /// Core-seconds consumed.
    pub core_seconds: f64,
}

/// Per-user usage rollup.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UserUsage {
    /// Jobs submitted.
    pub jobs: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs failed.
    pub failed: u64,
    /// Total core-seconds.
    pub core_seconds: f64,
}

impl Scheduler {
    /// `sacct` as seen by `viewer` under the PrivateData configuration.
    pub fn sacct(&self, viewer: &Credentials) -> Vec<AcctRecord> {
        let admin = self.is_admin(viewer.uid);
        self.jobs
            .values()
            .filter(|j| may_view(viewer, j.spec.user, self.config.private_data.usage, admin))
            .map(|j| AcctRecord {
                job: j.id,
                user: j.spec.user,
                name: j.spec.name.clone(),
                state: j.state,
                submitted: j.submitted,
                started: j.started,
                ended: j.ended,
                core_seconds: j.core_seconds(),
            })
            .collect()
    }

    /// Usage rollup across every user the viewer may see.
    pub fn usage_report(&self, viewer: &Credentials) -> BTreeMap<Uid, UserUsage> {
        let mut out: BTreeMap<Uid, UserUsage> = BTreeMap::new();
        for rec in self.sacct(viewer) {
            let u = out.entry(rec.user).or_default();
            u.jobs += 1;
            match rec.state {
                JobState::Completed => u.completed += 1,
                JobState::Failed => u.failed += 1,
                _ => {}
            }
            u.core_seconds += rec.core_seconds;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SchedConfig;
    use crate::job::JobSpec;
    use crate::policy::NodeSharing;
    use crate::privatedata::PrivateData;
    use eus_simcore::SimDuration;
    use eus_simos::Gid;

    fn run_two_users() -> Scheduler {
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0);
        s.submit_at(
            SimTime::ZERO,
            JobSpec::new(Uid(1), "a1", SimDuration::from_secs(10)).with_tasks(2),
        );
        s.submit_at(
            SimTime::ZERO,
            JobSpec::new(Uid(2), "b1", SimDuration::from_secs(20)).with_tasks(2),
        );
        s.run_to_completion();
        s
    }

    #[test]
    fn sacct_open_shows_everything() {
        let s = run_two_users();
        let viewer = Credentials::new(Uid(1), Gid(1));
        let rows = s.sacct(&viewer);
        assert_eq!(rows.len(), 2);
        let usage = s.usage_report(&viewer);
        assert_eq!(usage[&Uid(1)].completed, 1);
        assert!((usage[&Uid(1)].core_seconds - 20.0).abs() < 1e-9);
        assert!((usage[&Uid(2)].core_seconds - 40.0).abs() < 1e-9);
    }

    #[test]
    fn ledger_decay_reorders_users() {
        let mut l = FairShareLedger::new(SimDuration::from_secs(3600));
        // u1 burned 1000 core-s at t=0; u2 burns 300 core-s at t=2h.
        l.charge("batch", Uid(1), 1000.0, SimTime::ZERO);
        l.charge("batch", Uid(2), 300.0, SimTime::from_secs(7200));
        let now = SimTime::from_secs(7200);
        // Decayed: u1 = 1000·2⁻² = 250 < u2 = 300 → u1 schedules first.
        let u1 = l.decayed_usage("batch", Uid(1), now);
        let u2 = l.decayed_usage("batch", Uid(2), now);
        assert!((u1 - 250.0).abs() < 1e-6, "{u1}");
        assert!((u2 - 300.0).abs() < 1e-6, "{u2}");
        assert!(
            l.score("batch", Uid(1)) < l.score("batch", Uid(2)),
            "scaled scores order like decayed usage"
        );
        let standings = l.partition_standings("batch", now);
        assert_eq!(standings[0].0, Uid(1));
        // Unknown users and foreign partitions read zero.
        assert_eq!(l.score("batch", Uid(9)), 0.0);
        assert_eq!(l.score("debug", Uid(1)), 0.0);
    }

    #[test]
    fn ledger_rebases_on_long_horizons_without_reordering() {
        let mut l = FairShareLedger::new(SimDuration::from_secs(3600));
        // Heavy early user, light late user — charged across ~3000
        // half-lives (~4 months), far past naive f64 scale range.
        let month = 30 * 24 * 3600u64;
        l.charge("batch", Uid(1), 1e6, SimTime::ZERO);
        for m in 1..=4 {
            l.charge("batch", Uid(1), 5e4, SimTime::from_secs(m * month));
            l.charge("batch", Uid(2), 1e4, SimTime::from_secs(m * month));
        }
        let now = SimTime::from_secs(4 * month);
        let s1 = l.score("batch", Uid(1));
        let s2 = l.score("batch", Uid(2));
        assert!(s1.is_finite() && s2.is_finite(), "no overflow: {s1} {s2}");
        assert!(s1 > s2, "heavier recent user still ranks behind");
        let d1 = l.decayed_usage("batch", Uid(1), now);
        let d2 = l.decayed_usage("batch", Uid(2), now);
        assert!(d1.is_finite() && d2.is_finite() && d1 > d2, "{d1} {d2}");
    }

    #[test]
    fn ledger_partitions_are_independent() {
        let mut l = FairShareLedger::new(FAIR_SHARE_HALF_LIFE);
        l.charge("batch", Uid(1), 500.0, SimTime::from_secs(10));
        l.charge("debug", Uid(2), 1.0, SimTime::from_secs(10));
        assert!(l.score("batch", Uid(1)) > 0.0);
        assert_eq!(
            l.partition_standings("debug", SimTime::from_secs(10)),
            vec![(Uid(2), 1.0)]
        );
        // Zero/negative charges are ignored.
        l.charge("batch", Uid(3), 0.0, SimTime::from_secs(10));
        assert_eq!(l.score("batch", Uid(3)), 0.0);
    }

    #[test]
    fn sacct_private_filters_others() {
        let mut s = run_two_users();
        s.config.private_data = PrivateData::llsc();
        let viewer = Credentials::new(Uid(1), Gid(1));
        let rows = s.sacct(&viewer);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].user, Uid(1));
        let usage = s.usage_report(&viewer);
        assert!(!usage.contains_key(&Uid(2)), "other users' usage hidden");
        // Root still sees all.
        assert_eq!(s.sacct(&Credentials::root()).len(), 2);
    }
}
