//! Slurm-style partitions: named subsets of nodes that jobs can be routed
//! to. The paper's environment distinguishes batch partitions, interactive/
//! debug partitions (multi-user by nature — one reason `hidepid` stays
//! necessary under whole-node scheduling), and notes that the LLSC portal
//! can reach apps "on any compute node in any partition" (Sec. IV-E).
//!
//! # Role in the scheduler
//!
//! Partitions feed the engine at three points:
//!
//! * **submit-time validation** — a job naming an unknown partition is
//!   rejected (`Cancelled`) before it ever queues, mirroring Slurm;
//! * **placement eligibility** — [`PartitionTable::eligible_nodes`] returns
//!   the node set a job may use (`None` = unpartitioned cluster, all
//!   nodes), which the placement index and the EASY-shadow/reservation
//!   machinery filter against;
//! * **the policy plane** — with `SchedConfig::fair_share` on, the engine
//!   keys its per-partition queues and the decayed usage ledger by
//!   [`PartitionTable::resolve`]d partition name, so one partition's
//!   backlog cannot head-of-line-block another partition's dispatch or
//!   backfill budget. The per-partition capacity mirrors that give
//!   partitioned shadow builds their flat-copy path are keyed the same way.
//!
//! The table is expected to be configured once, before jobs run (like
//! `SchedConfig::policy`); `Scheduler::partitions_mut` invalidates every
//! derived structure (memoized placements, shadows, capacity mirrors) to
//! keep mid-run edits safe, at the cost of a rebuild.

use eus_simos::NodeId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A named partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Partition name (`"batch"`, `"interactive"`, `"gpu"`, …).
    pub name: String,
    /// Member nodes.
    pub nodes: BTreeSet<NodeId>,
    /// Default partition for jobs that name none.
    pub is_default: bool,
}

/// Partition registry errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// Duplicate name.
    Duplicate(String),
    /// Unknown partition referenced by a job.
    Unknown(String),
    /// No default partition configured.
    NoDefault,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Duplicate(n) => write!(f, "partition already exists: {n}"),
            PartitionError::Unknown(n) => write!(f, "no such partition: {n}"),
            PartitionError::NoDefault => f.write_str("no default partition configured"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// The partition table. When empty, every node is schedulable by every job
/// (the configuration used by most of the test suite).
#[derive(Debug, Clone, Default)]
pub struct PartitionTable {
    partitions: BTreeMap<String, Partition>,
    /// Cached name of the default partition (lexicographically smallest
    /// when several are flagged, matching the scan order the lookups used
    /// before the cache). `resolve(None)` / `eligible_nodes(None)` run on
    /// every unpartitioned head attempt and shard plan, so the default
    /// lookup must be O(1), not a table scan.
    default_name: Option<String>,
}

impl PartitionTable {
    /// An empty table (partitioning disabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no partitions are configured.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// Define a partition.
    pub fn add(
        &mut self,
        name: &str,
        nodes: impl IntoIterator<Item = NodeId>,
        is_default: bool,
    ) -> Result<(), PartitionError> {
        if self.partitions.contains_key(name) {
            return Err(PartitionError::Duplicate(name.to_string()));
        }
        if is_default
            && self
                .default_name
                .as_deref()
                .map_or(true, |cur| name < cur)
        {
            self.default_name = Some(name.to_string());
        }
        self.partitions.insert(
            name.to_string(),
            Partition {
                name: name.to_string(),
                nodes: nodes.into_iter().collect(),
                is_default,
            },
        );
        Ok(())
    }

    /// Look up a partition.
    pub fn get(&self, name: &str) -> Option<&Partition> {
        self.partitions.get(name)
    }

    /// The set of nodes a job naming `partition` may use. `None` in, default
    /// partition out (or error if none is marked default). With an empty
    /// table, returns `None` meaning "all nodes".
    pub fn eligible_nodes(
        &self,
        partition: Option<&str>,
    ) -> Result<Option<&BTreeSet<NodeId>>, PartitionError> {
        if self.partitions.is_empty() {
            return Ok(None);
        }
        match partition {
            Some(name) => self
                .partitions
                .get(name)
                .map(|p| Some(&p.nodes))
                .ok_or_else(|| PartitionError::Unknown(name.to_string())),
            None => self
                .default_name
                .as_deref()
                .and_then(|n| self.partitions.get(n))
                .map(|p| Some(&p.nodes))
                .ok_or(PartitionError::NoDefault),
        }
    }

    /// Resolve a job's requested partition to the partition *name* it will
    /// actually run in: `None` in, the default partition's name out. With
    /// an empty table returns `None`, meaning "the whole, unpartitioned
    /// cluster". This is the key the policy plane's per-partition queues,
    /// usage ledger, and capacity mirrors are indexed by.
    pub fn resolve(&self, partition: Option<&str>) -> Result<Option<&str>, PartitionError> {
        if self.partitions.is_empty() {
            return Ok(None);
        }
        match partition {
            Some(name) => self
                .partitions
                .get(name)
                .map(|p| Some(p.name.as_str()))
                .ok_or_else(|| PartitionError::Unknown(name.to_string())),
            None => self
                .default_name
                .as_deref()
                .and_then(|n| self.partitions.get(n))
                .map(|p| Some(p.name.as_str()))
                .ok_or(PartitionError::NoDefault),
        }
    }

    /// Iterate partitions.
    pub fn iter(&self) -> impl Iterator<Item = &Partition> {
        self.partitions.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_means_all_nodes() {
        let t = PartitionTable::new();
        assert!(t.eligible_nodes(None).unwrap().is_none());
        assert!(t.eligible_nodes(Some("anything")).unwrap().is_none());
    }

    #[test]
    fn default_and_named_routing() {
        let mut t = PartitionTable::new();
        t.add("batch", [NodeId(1), NodeId(2)], true).unwrap();
        t.add("gpu", [NodeId(3)], false).unwrap();
        assert_eq!(
            t.eligible_nodes(None).unwrap().unwrap(),
            &BTreeSet::from([NodeId(1), NodeId(2)])
        );
        assert_eq!(
            t.eligible_nodes(Some("gpu")).unwrap().unwrap(),
            &BTreeSet::from([NodeId(3)])
        );
        assert!(matches!(
            t.eligible_nodes(Some("debug")),
            Err(PartitionError::Unknown(_))
        ));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_names_match_eligible_sets() {
        let mut t = PartitionTable::new();
        assert_eq!(t.resolve(None).unwrap(), None, "empty table = all nodes");
        assert_eq!(t.resolve(Some("x")).unwrap(), None);
        t.add("batch", [NodeId(1)], true).unwrap();
        t.add("gpu", [NodeId(2)], false).unwrap();
        assert_eq!(t.resolve(None).unwrap(), Some("batch"));
        assert_eq!(t.resolve(Some("gpu")).unwrap(), Some("gpu"));
        assert!(matches!(
            t.resolve(Some("nope")),
            Err(PartitionError::Unknown(_))
        ));
    }

    #[test]
    fn cached_default_matches_the_scan_order_it_replaced() {
        // Several partitions flagged default: the cache must answer what
        // the old `values().find(is_default)` scan answered — the
        // lexicographically smallest — regardless of insertion order.
        let mut t = PartitionTable::new();
        t.add("zeta", [NodeId(1)], true).unwrap();
        assert_eq!(t.resolve(None).unwrap(), Some("zeta"));
        t.add("alpha", [NodeId(2)], true).unwrap();
        assert_eq!(t.resolve(None).unwrap(), Some("alpha"));
        t.add("mid", [NodeId(3)], true).unwrap();
        assert_eq!(t.resolve(None).unwrap(), Some("alpha"));
        assert_eq!(
            t.eligible_nodes(None).unwrap().unwrap(),
            &BTreeSet::from([NodeId(2)])
        );
    }

    #[test]
    fn duplicates_and_missing_default() {
        let mut t = PartitionTable::new();
        t.add("batch", [NodeId(1)], false).unwrap();
        assert!(matches!(
            t.add("batch", [NodeId(2)], false),
            Err(PartitionError::Duplicate(_))
        ));
        assert!(matches!(
            t.eligible_nodes(None),
            Err(PartitionError::NoDefault)
        ));
    }
}
