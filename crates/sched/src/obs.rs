//! Scheduler observability: the pre-registered handle set for the engine.
//!
//! One [`SchedObs`] travels inside every [`crate::engine::Scheduler`]. It
//! is constructed **disabled** (every record call is a single never-taken
//! branch — `exp_obs_overhead` keeps that cost measured) and turned on via
//! [`crate::engine::Scheduler::enable_obs`]. All handles are registered
//! here, once, so the hot path never touches a name.
//!
//! Span names follow `plane.subsystem.name` (see ARCHITECTURE.md for the
//! full table):
//!
//! | span                   | covers                                        |
//! |------------------------|-----------------------------------------------|
//! | `sched.cycle.select`   | fair-share / band-major head selection        |
//! | `sched.cycle.dispatch` | head placement attempts over the index        |
//! | `sched.cycle.shadow`   | EASY shadow replay (memo misses only)         |
//! | `sched.cycle.backfill` | the backfill candidate scan                   |
//! | `sched.cycle.preempt`  | preemption victim search + feasibility proof  |
//! | `sched.calendar.plan`  | reservation-calendar planning (+ probes)      |
//!
//! # Thread invariance
//!
//! Sharded dispatch ([`crate::engine::Scheduler::set_shard_threads`])
//! produces bit-identical schedules at every width, and — because shard
//! *planning* records only the `sched.shard.*` counters, while every
//! decision on the merge path fires exactly as it would inline — every
//! **decision counter** is thread-invariant too. The split, asserted by
//! the seed-replay test in `tests/sched_parallel_equivalence.rs` and
//! cross-checked against ARCHITECTURE.md by eus-analyze R4:
//!
//! | counter family              | thread-invariant? | why                                        |
//! |-----------------------------|-------------------|--------------------------------------------|
//! | `sched.memo.*`              | yes               | memo checks run on the sequential merge    |
//! | `sched.shadow.*`            | yes               | shadows never run on shard workers         |
//! | `sched.backfill.*`          | yes               | backfill is sequential per class           |
//! | `sched.preempt.*`           | yes               | preemption runs on the merge path          |
//! | `sched.calendar.*`          | yes               | calendars rebuild on the merge path        |
//! | `sched.jobs.*`              | yes               | starts/finishes are schedule facts         |
//! | `sched.interactive.*`       | yes               | derived from starts                        |
//! | `sched.shard.*`             | no                | records planning fan-out, width-dependent  |
//!
//! (`sched.shard.plans` counts planned classes — width-dependent only in
//! that `shard_threads = 1` skips planning entirely; `seed_hits` /
//! `seed_stale` depend on how many seeds the merge could consume.)

use eus_obs::{CounterId, ObsConfig, ObsSnapshot, Recorder, SpanId, TraceBuffer};

/// Plane code baked into scheduler trace ids (see [`TraceBuffer::new`]).
pub const SCHED_TRACE_CODE: u8 = 2;

/// The scheduler's recorder plus every handle it records through.
#[derive(Debug, Clone)]
pub struct SchedObs {
    /// The registry + flight recorder (`sched.*` namespace).
    pub rec: Recorder,
    /// Head placement attempts.
    pub sp_dispatch: SpanId,
    /// Head selection (fair-share reorder / QoS band scan).
    pub sp_select: SpanId,
    /// EASY shadow replay.
    pub sp_shadow: SpanId,
    /// Backfill candidate scan.
    pub sp_backfill: SpanId,
    /// Reservation calendar planning.
    pub sp_calendar: SpanId,
    /// Preemption victim search.
    pub sp_preempt: SpanId,
    /// Blocked-head memo hits (placement attempt skipped).
    pub c_head_memo_hit: CounterId,
    /// Head placement attempts actually run.
    pub c_head_memo_miss: CounterId,
    /// Shadow memo hits (replay skipped).
    pub c_shadow_memo_hit: CounterId,
    /// Shadow replays actually run.
    pub c_shadow_memo_miss: CounterId,
    /// Replays that early-exited at `now` (head already fits).
    pub c_shadow_early_exit: CounterId,
    /// Replays that walked the running-release list.
    pub c_shadow_replays: CounterId,
    /// Backfill placement attempts.
    pub c_bf_attempts: CounterId,
    /// Backfill candidates started.
    pub c_bf_accepts: CounterId,
    /// Candidates rejected by the shadow bound (no placement attempted).
    pub c_bf_shadow_rejects: CounterId,
    /// Candidates skipped via the per-version failure memo.
    pub c_bf_memo_rejects: CounterId,
    /// Whole backfill scans skipped by the window memo (unchanged
    /// `(head, version, shrink-epoch)` with the depth budget unspent).
    pub c_bf_scan_skips: CounterId,
    /// Exhausted scans resumed at their cursor (new arrivals only).
    pub c_bf_scan_resumes: CounterId,
    /// Head placement attempts skipped by the O(1) certain-fail fit gate.
    pub c_fit_gate: CounterId,
    /// Placeable candidates refused for colliding with a held reservation.
    pub c_bf_rsv_refusals: CounterId,
    /// Preemption victim searches (blocked latency-sensitive heads).
    pub c_preempt_searches: CounterId,
    /// Jobs killed-and-requeued by preemption.
    pub c_preempt_kills: CounterId,
    /// Full calendar plans derived.
    pub c_cal_plans: CounterId,
    /// Calendar rebuilds satisfied by the (version, queue) memo.
    pub c_cal_memo_hits: CounterId,
    /// Standing plans re-tagged on arrival floods (top-K unchanged).
    pub c_cal_retags: CounterId,
    /// One-off `earliest_start` probe plans for beyond-top-K jobs.
    pub c_cal_probes: CounterId,
    /// Jobs started.
    pub c_starts: CounterId,
    /// Jobs finished (any outcome).
    pub c_finishes: CounterId,
    /// Total queue wait of started interactive-QoS jobs, microseconds
    /// (boundary-sampled with [`c_interactive_waits`](Self::c_interactive_waits)
    /// into the `sched.interactive.wait` SLO ring).
    pub c_interactive_wait_us: CounterId,
    /// Interactive-QoS jobs started (the denominator for the wait SLO).
    pub c_interactive_waits: CounterId,
    /// Classes whose head plan was fanned out to shard workers. The
    /// `sched.shard.*` family is the only one allowed to vary with
    /// [`crate::engine::Scheduler::set_shard_threads`] (see the module
    /// docs' thread-invariance table).
    pub c_shard_plans: CounterId,
    /// Shard seeds consumed by the merge at their exact `(head, version)`.
    pub c_shard_seed_hits: CounterId,
    /// Shard seeds discarded as stale (head or version moved since
    /// planning); the merge fell back to the inline walk.
    pub c_shard_seed_stale: CounterId,
    /// Causal trace ring: `sched.job.dispatch` spans stitched to the
    /// submission context recorded at `try_submit`.
    pub trace: TraceBuffer,
}

impl SchedObs {
    /// Register the full scheduler handle set under `cfg`.
    pub fn new(cfg: &ObsConfig) -> Self {
        let mut rec = Recorder::new(cfg);
        SchedObs {
            sp_dispatch: rec.span("sched.cycle.dispatch"),
            sp_select: rec.span("sched.cycle.select"),
            sp_shadow: rec.span("sched.cycle.shadow"),
            sp_backfill: rec.span("sched.cycle.backfill"),
            sp_calendar: rec.span("sched.calendar.plan"),
            sp_preempt: rec.span("sched.cycle.preempt"),
            c_head_memo_hit: rec.counter("sched.memo.head_hit"),
            c_head_memo_miss: rec.counter("sched.memo.head_miss"),
            c_shadow_memo_hit: rec.counter("sched.memo.shadow_hit"),
            c_shadow_memo_miss: rec.counter("sched.memo.shadow_miss"),
            c_shadow_early_exit: rec.counter("sched.shadow.early_exit"),
            c_shadow_replays: rec.counter("sched.shadow.replay"),
            c_bf_attempts: rec.counter("sched.backfill.attempts"),
            c_bf_accepts: rec.counter("sched.backfill.accepts"),
            c_bf_shadow_rejects: rec.counter("sched.backfill.shadow_rejects"),
            c_bf_memo_rejects: rec.counter("sched.backfill.memo_rejects"),
            c_bf_scan_skips: rec.counter("sched.backfill.scan_skips"),
            c_bf_scan_resumes: rec.counter("sched.backfill.scan_resumes"),
            c_fit_gate: rec.counter("sched.memo.fit_gate"),
            c_bf_rsv_refusals: rec.counter("sched.backfill.rsv_refusals"),
            c_preempt_searches: rec.counter("sched.preempt.searches"),
            c_preempt_kills: rec.counter("sched.preempt.kills"),
            c_cal_plans: rec.counter("sched.calendar.plans"),
            c_cal_memo_hits: rec.counter("sched.calendar.memo_hits"),
            c_cal_retags: rec.counter("sched.calendar.retags"),
            c_cal_probes: rec.counter("sched.calendar.probes"),
            c_starts: rec.counter("sched.jobs.starts"),
            c_finishes: rec.counter("sched.jobs.finishes"),
            c_interactive_wait_us: rec.counter("sched.interactive.wait_us"),
            c_interactive_waits: rec.counter("sched.interactive.waits"),
            c_shard_plans: rec.counter("sched.shard.plans"),
            c_shard_seed_hits: rec.counter("sched.shard.seed_hits"),
            c_shard_seed_stale: rec.counter("sched.shard.seed_stale"),
            trace: TraceBuffer::new("sched", SCHED_TRACE_CODE, 4096, cfg.enabled),
            rec,
        }
    }

    /// A disabled handle set (the default inside every scheduler).
    pub fn disabled() -> Self {
        Self::new(&ObsConfig::default())
    }

    /// Snapshot every metric (counters, gauges, span histograms).
    pub fn snapshot(&self) -> ObsSnapshot {
        self.rec.snapshot()
    }

    /// Memoization hit ratio of the EASY shadow (the arrival-flood save).
    pub fn shadow_memo_ratio(&self) -> f64 {
        self.rec
            .hit_ratio(self.c_shadow_memo_hit, self.c_shadow_memo_miss)
    }

    /// Fraction of shadow replays that early-exited at `now`.
    pub fn shadow_early_exit_ratio(&self) -> f64 {
        self.rec
            .hit_ratio(self.c_shadow_early_exit, self.c_shadow_replays)
    }

    /// Backfill accept ratio (accepts / attempts).
    pub fn backfill_accept_ratio(&self) -> f64 {
        let att = self.rec.counter_value(self.c_bf_attempts) as f64;
        if att == 0.0 {
            0.0
        } else {
            self.rec.counter_value(self.c_bf_accepts) as f64 / att
        }
    }
}

impl Default for SchedObs {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let obs = SchedObs::default();
        assert!(!obs.rec.enabled());
        assert_eq!(obs.rec.counter_value(obs.c_starts), 0);
    }

    #[test]
    fn ratios_from_counters() {
        let mut obs = SchedObs::new(&ObsConfig::enabled());
        obs.rec.add(obs.c_shadow_memo_hit, 9);
        obs.rec.add(obs.c_shadow_memo_miss, 1);
        assert!((obs.shadow_memo_ratio() - 0.9).abs() < 1e-12);
        obs.rec.add(obs.c_bf_attempts, 4);
        obs.rec.add(obs.c_bf_accepts, 1);
        assert!((obs.backfill_accept_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(obs.shadow_early_exit_ratio(), 0.0);
    }
}
