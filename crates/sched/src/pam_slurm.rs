//! `pam_slurm`: "users can only ssh into compute nodes on which they have
//! one or more jobs currently executing" (paper Sec. IV-B).
//!
//! Implemented as a [`PamModule`] holding a shared handle to the scheduler;
//! the account phase consults the live allocation state at login time.
//!
//! # How the decision is made
//!
//! The module answers exactly one question per login —
//! [`Scheduler::has_running_job_on`] — which is O(log n) against the
//! node's cached per-user job counts (no allocation-map scan), so a
//! login-storm on a busy cluster costs the PAM stack nothing measurable.
//! Root and registered operators ([`Scheduler::add_admin`]) bypass the
//! check, mirroring the production exemption for administrators.
//!
//! # Interaction with the rest of the separation story
//!
//! * **Lifecycle** — access appears when the job starts and disappears
//!   with its epilog; `tests` below pin the revoked-after-completion path.
//! * **Preemption** (`SchedConfig::preemption`) — a kill-and-requeue
//!   releases the victim's allocations *before* its epilog events are
//!   drained, so a preempted user's ssh access to the node dies at the
//!   preemption instant, exactly as if the job had completed. The cluster
//!   layer then kills any session processes they had left
//!   (`pam_slurm_adopt`-style) before the preemptor's prolog runs.
//! * **Whole-node policy** — under `NodeSharing::WholeNodeUser` this gate
//!   means at most one non-admin user can ever ssh to a compute node,
//!   which is what shrinks the paper's failure "blast radius" to one user.

use crate::engine::Scheduler;
use eus_simos::pam::{PamContext, PamModule, PamVerdict};
use parking_lot::RwLock;
use std::sync::Arc;

/// Shared scheduler handle, as every login node's PAM stack needs one.
pub type SharedScheduler = Arc<RwLock<Scheduler>>;

/// Wrap a scheduler for sharing.
pub fn shared_scheduler(s: Scheduler) -> SharedScheduler {
    Arc::new(RwLock::new(s))
}

/// The PAM module.
pub struct PamSlurm {
    sched: SharedScheduler,
}

impl PamSlurm {
    /// Bind to the scheduler.
    pub fn new(sched: SharedScheduler) -> Self {
        PamSlurm { sched }
    }
}

impl PamModule for PamSlurm {
    fn name(&self) -> &str {
        "pam_slurm"
    }

    fn account(&self, ctx: &PamContext) -> PamVerdict {
        // Root and registered operators may always log in (administration).
        if ctx.cred.is_root() {
            return PamVerdict::Success;
        }
        let sched = self.sched.read();
        if sched.is_admin(ctx.user) {
            return PamVerdict::Success;
        }
        if sched.has_running_job_on(ctx.user, ctx.node) {
            PamVerdict::Success
        } else {
            PamVerdict::Denied(format!(
                "user {} has no running job on {}",
                ctx.user, ctx.node
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SchedConfig;
    use crate::job::JobSpec;
    use crate::policy::NodeSharing;
    use eus_simcore::{SimDuration, SimTime};
    use eus_simos::{NodeId, NodeOs, Uid, UserDb};

    fn setup() -> (UserDb, SharedScheduler, Uid, Uid) {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let bob = db.create_user("bob").unwrap();
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::WholeNodeUser,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0); // NodeId(1)
        s.add_node(8, 64_000, 0); // NodeId(2)
        s.submit_at(
            SimTime::ZERO,
            JobSpec::new(alice, "train", SimDuration::from_secs(100)).with_tasks(2),
        );
        s.run_until(SimTime::from_secs(1));
        (db, shared_scheduler(s), alice, bob)
    }

    #[test]
    fn ssh_allowed_only_where_job_runs() {
        let (db, sched, alice, bob) = setup();
        let mut node1 = NodeOs::new(NodeId(1), "c1");
        node1.pam.push(Box::new(PamSlurm::new(sched.clone())));
        let mut node2 = NodeOs::new(NodeId(2), "c2");
        node2.pam.push(Box::new(PamSlurm::new(sched.clone())));

        // Alice's job landed on node 1.
        assert!(node1.login(&db, alice, "sshd").is_ok());
        assert!(node2.login(&db, alice, "sshd").is_err(), "no job on node 2");
        assert!(node1.login(&db, bob, "sshd").is_err(), "bob has no jobs");
    }

    #[test]
    fn access_expires_with_the_job() {
        let (db, sched, alice, _) = setup();
        let mut node1 = NodeOs::new(NodeId(1), "c1");
        node1.pam.push(Box::new(PamSlurm::new(sched.clone())));
        assert!(node1.login(&db, alice, "sshd").is_ok());
        sched.write().run_to_completion();
        assert!(
            node1.login(&db, alice, "sshd").is_err(),
            "job finished: ssh access revoked"
        );
    }

    #[test]
    fn root_and_admins_exempt() {
        let (db, sched, _, bob) = setup();
        sched.write().add_admin(bob);
        let mut node2 = NodeOs::new(NodeId(2), "c2");
        node2.pam.push(Box::new(PamSlurm::new(sched.clone())));
        assert!(node2.login(&db, eus_simos::ROOT_UID, "sshd").is_ok());
        assert!(node2.login(&db, bob, "sshd").is_ok(), "admin whitelisted");
    }
}
