//! `PrivateData` view filtering (paper Sec. IV-B).
//!
//! Slurm's `PrivateData` option hides other users' jobs, usage, and
//! accounting records from scheduler queries. The scheduler state itself is
//! unchanged — only the *views* (`squeue`, `sacct`) filter.

use eus_simos::{Credentials, NodeId, Uid};
use std::sync::Arc;

use crate::job::{JobId, JobSpec, JobState};

/// Which record classes are private. (Slurm has more; these are the ones the
/// paper's experiments exercise.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrivateData {
    /// Hide other users' queued/running jobs (`PrivateData=jobs`).
    pub jobs: bool,
    /// Hide other users' accounting/usage records (`PrivateData=usage`).
    pub usage: bool,
}

impl PrivateData {
    /// Everything visible — default Slurm.
    pub fn open() -> Self {
        Self::default()
    }

    /// The paper's configuration: all private.
    pub fn llsc() -> Self {
        PrivateData {
            jobs: true,
            usage: true,
        }
    }
}

/// One `squeue` row as seen by a particular viewer.
///
/// The row is a *view* over the job's shared spec (`Arc<JobSpec>`): building
/// it no longer deep-clones the name and command line per visible job per
/// call. Rows only exist for jobs the viewer may see — the `PrivateData`
/// redaction is whole-row (a hidden job contributes nothing), exactly as
/// before the spec moved behind `Arc`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobView {
    /// Job id.
    pub id: JobId,
    /// Owner.
    pub user: Uid,
    /// The job's spec, shared with the scheduler (name, cmdline, and the
    /// rest are privacy-relevant — paper: "many job properties could
    /// contain private information including username, jobname, command,
    /// working directory path").
    pub spec: Arc<JobSpec>,
    /// State.
    pub state: JobState,
    /// Nodes allocated (running jobs).
    pub nodes: Vec<NodeId>,
}

impl JobView {
    /// Job name, borrowed from the shared spec.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Command line as submitted, borrowed from the shared spec.
    pub fn cmdline(&self) -> &[String] {
        &self.spec.cmdline
    }
}

/// May `viewer` see `owner`'s records of a class gated by `private_flag`?
pub fn may_view(viewer: &Credentials, owner: Uid, private_flag: bool, is_admin: bool) -> bool {
    !private_flag || viewer.is_root() || is_admin || viewer.uid == owner
}

#[cfg(test)]
mod tests {
    use super::*;
    use eus_simos::Gid;

    #[test]
    fn open_config_shows_all() {
        let viewer = Credentials::new(Uid(1), Gid(1));
        assert!(may_view(&viewer, Uid(2), false, false));
    }

    #[test]
    fn private_hides_others_but_not_self() {
        let viewer = Credentials::new(Uid(1), Gid(1));
        assert!(!may_view(&viewer, Uid(2), true, false));
        assert!(may_view(&viewer, Uid(1), true, false));
    }

    #[test]
    fn root_and_admins_see_through() {
        assert!(may_view(&Credentials::root(), Uid(2), true, false));
        let operator = Credentials::new(Uid(9), Gid(9));
        assert!(may_view(&operator, Uid(2), true, true));
    }

    #[test]
    fn presets() {
        assert_eq!(PrivateData::open(), PrivateData::default());
        let p = PrivateData::llsc();
        assert!(p.jobs && p.usage);
    }
}
