//! The fault taxonomy: every disruption the chaos plane knows how to
//! inject, as plain data. A [`Fault`] says nothing about *when* — pairing
//! it with an injection instant is [`FaultEvent`]'s job, and scheduling a
//! script of those is [`crate::FaultPlan`]'s.

use eus_fedauth::RealmId;
use eus_simcore::{SimDuration, SimTime};
use eus_simos::NodeId;

/// One typed fault. Each variant maps onto exactly one fault hook in the
/// planes under test (scheduler, simnet WAN fabric, credential plane,
/// revsync mesh), so an applied fault is always attributable.
///
/// Faults that name a `heal_after` are reverted by the controller that
/// many simulated seconds after injection; the rest heal through the
/// system's own machinery (node auto-repair) or are one-way by nature
/// (clock skew — clocks don't rewind).
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Crash one compute node: running jobs requeue per scheduler policy
    /// and the node auto-repairs after the scheduler's `repair_time`.
    NodeCrash {
        /// The victim.
        node: NodeId,
    },
    /// A storm of repeated crashes: every node in `nodes` fails `pulses`
    /// times, waves spaced `gap` apart — with auto-repair in between,
    /// the nodes *flap*. The stress case for requeue/run-epoch hygiene.
    NodeFlapStorm {
        /// The victims (each wave hits all of them).
        nodes: Vec<NodeId>,
        /// How many waves.
        pulses: u32,
        /// Spacing between waves.
        gap: SimDuration,
    },
    /// Sever the WAN link between two realms' feed daemons. Feed pushes
    /// fail *detectably* at connect time, so the issuer takes the
    /// capped-backoff retry path; replica lag grows toward fail-closed.
    LinkPartition {
        /// One end (realm on the revsync WAN).
        a: RealmId,
        /// The other end.
        b: RealmId,
        /// Controller heals the link this long after injection.
        heal_after: SimDuration,
    },
    /// In-transit loss on a WAN link: connects succeed, some deliveries
    /// vanish (the subscriber sees sequence gaps; anti-entropy repairs).
    LinkLoss {
        /// One end.
        a: RealmId,
        /// The other end.
        b: RealmId,
        /// Probability each transfer is dropped, in `(0, 1]`.
        rate: f64,
        /// Controller heals the link this long after injection.
        heal_after: SimDuration,
    },
    /// Extra one-way latency on a WAN link (a congested or rerouted
    /// path): everything still arrives, later.
    LatencySpike {
        /// One end.
        a: RealmId,
        /// The other end.
        b: RealmId,
        /// Added latency per setup/transfer.
        extra: SimDuration,
        /// Controller heals the link this long after injection.
        heal_after: SimDuration,
    },
    /// The home realm's identity provider goes dark: *new* logins fail
    /// `Unavailable`; already-minted tokens keep validating locally.
    IdpOutage {
        /// Controller restores the IdP this long after injection.
        heal_after: SimDuration,
    },
    /// The home realm's certificate authority goes dark: credential
    /// *minting* fails `Unavailable`; verification is local and unharmed.
    CaOutage {
        /// Controller restores the CA this long after injection.
        heal_after: SimDuration,
    },
    /// Seize one shard of a sharded home broker: users hashed there fail
    /// `Unavailable`, everyone else is untouched. Misses (single broker,
    /// out-of-range index) are recorded and harmless.
    ShardSeize {
        /// Which shard.
        shard: usize,
        /// Controller releases the shard this long after injection.
        heal_after: SimDuration,
    },
    /// Silently stall the revocation push feed from a sister realm to the
    /// home site: pushes are swallowed with no error, so no retry fires —
    /// only the subscriber's silence detector and anti-entropy notice.
    FeedStall {
        /// The issuing sister realm whose feed stalls.
        realm: RealmId,
        /// Controller unstalls the feed this long after injection.
        heal_after: SimDuration,
    },
    /// Run one realm's credential-plane clock `ahead` of the federation
    /// clock (drifted NTP): its sessions expire and sweep early. One-way —
    /// plane clocks are monotone, so this fault has no heal.
    ClockSkew {
        /// The realm whose clock drifts.
        realm: RealmId,
        /// How far ahead it runs.
        ahead: SimDuration,
    },
}

impl Fault {
    /// Static taxonomy label (`"node.crash"`, `"idp.outage"`, …) — the
    /// names the applied-log, flight events, and docs table share.
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::NodeCrash { .. } => "node.crash",
            Fault::NodeFlapStorm { .. } => "node.flap_storm",
            Fault::LinkPartition { .. } => "link.partition",
            Fault::LinkLoss { .. } => "link.loss",
            Fault::LatencySpike { .. } => "link.latency_spike",
            Fault::IdpOutage { .. } => "idp.outage",
            Fault::CaOutage { .. } => "ca.outage",
            Fault::ShardSeize { .. } => "shard.seize",
            Fault::FeedStall { .. } => "feed.stall",
            Fault::ClockSkew { .. } => "clock.skew",
        }
    }

    /// How long after injection the controller reverts this fault, when
    /// it is the controller's to revert (`None`: the system heals itself
    /// or the fault is one-way).
    pub fn heal_after(&self) -> Option<SimDuration> {
        match self {
            Fault::LinkPartition { heal_after, .. }
            | Fault::LinkLoss { heal_after, .. }
            | Fault::LatencySpike { heal_after, .. }
            | Fault::IdpOutage { heal_after }
            | Fault::CaOutage { heal_after }
            | Fault::ShardSeize { heal_after, .. }
            | Fault::FeedStall { heal_after, .. } => Some(*heal_after),
            Fault::NodeCrash { .. } | Fault::NodeFlapStorm { .. } | Fault::ClockSkew { .. } => None,
        }
    }
}

/// A fault pinned to its injection instant on the simulation clock.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the controller injects it (an `advance_to` boundary).
    pub at: SimTime,
    /// What happens.
    pub fault: Fault,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heal_ownership_matches_the_taxonomy() {
        let d = SimDuration::from_secs(60);
        assert!(Fault::IdpOutage { heal_after: d }.heal_after().is_some());
        assert!(Fault::NodeCrash { node: NodeId(1) }.heal_after().is_none());
        assert!(Fault::ClockSkew {
            realm: RealmId(2),
            ahead: d
        }
        .heal_after()
        .is_none());
        assert_eq!(Fault::IdpOutage { heal_after: d }.kind(), "idp.outage");
    }
}
