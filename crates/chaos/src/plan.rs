//! Fault plans: seeded, sim-time-scheduled scripts of typed faults.
//!
//! A [`FaultPlan`] is pure data — build one by hand with
//! [`inject`](FaultPlan::inject) for a targeted scenario, or draw a random
//! one from a [`PlanShape`] with [`random`](FaultPlan::random) for
//! property tests. Same seed + same shape ⇒ the identical plan, byte for
//! byte: all randomness flows through one forked [`SimRng`], so chaos runs
//! replay exactly.

use crate::{Fault, FaultEvent};
use eus_fedauth::RealmId;
use eus_simcore::{SimDuration, SimRng, SimTime};
use eus_simos::NodeId;

/// What a random plan may draw from: the cluster surface the generator is
/// allowed to hurt. Empty `realms`/`nodes` (or `shards < 2`) simply remove
/// the fault families that need them from the menu.
#[derive(Debug, Clone)]
pub struct PlanShape {
    /// Faults land in `[0, horizon)` on the simulation clock.
    pub horizon: SimDuration,
    /// How many faults to draw.
    pub faults: usize,
    /// Sister realms in play (WAN link faults, feed stalls, clock skew).
    pub realms: Vec<RealmId>,
    /// Compute nodes in play (crashes, flap storms).
    pub nodes: Vec<NodeId>,
    /// Home-broker shard count (`< 2`: no shard-seize faults).
    pub shards: usize,
    /// Controller-owned heals are drawn from `[horizon/60, max_heal]`.
    pub max_heal: SimDuration,
}

impl Default for PlanShape {
    fn default() -> Self {
        PlanShape {
            horizon: SimDuration::from_secs(3600),
            faults: 6,
            realms: Vec::new(),
            nodes: Vec::new(),
            shards: 1,
            max_heal: SimDuration::from_secs(1200),
        }
    }
}

/// A seeded, time-ordered script of faults.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The seed the plan was drawn from (also seeds the WAN fabric's loss
    /// draws when the controller arms a cluster).
    pub seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (hand-build with [`inject`](Self::inject)).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Add one fault at an instant (builder style). Events keep
    /// time-sorted order; same-instant faults keep insertion order.
    pub fn inject(mut self, at: SimTime, fault: Fault) -> Self {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, FaultEvent { at, fault });
        self
    }

    /// The script, time-ordered.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the script empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Draw a random plan: `shape.faults` faults uniform over the fault
    /// families the shape admits, at instants uniform in `[0, horizon)`.
    /// Deterministic in `(seed, shape)`.
    pub fn random(seed: u64, shape: &PlanShape) -> Self {
        let mut rng = SimRng::seed_from_u64(seed).fork(0xC4A0_50DE);
        // The admissible fault families, as small generator codes — the
        // menu is data so the draw stays uniform over what exists.
        let mut menu: Vec<u8> = Vec::new();
        if !shape.nodes.is_empty() {
            menu.extend([0, 1]); // crash, flap storm
        }
        if !shape.realms.is_empty() {
            // Link faults run between a sister and the home site, so one
            // sister realm is enough.
            menu.extend([2, 3, 4]); // partition, loss, latency spike
        }
        menu.extend([5, 6]); // idp, ca
        if shape.shards >= 2 {
            menu.push(7); // shard seize
        }
        if !shape.realms.is_empty() {
            menu.extend([8, 9]); // feed stall, clock skew
        }

        let horizon_us = shape.horizon.as_micros().max(1);
        let heal_lo = (shape.horizon / 60).as_micros().max(1);
        let heal_hi = shape.max_heal.as_micros().max(heal_lo + 1);
        let mut plan = FaultPlan::new(seed);
        for _ in 0..shape.faults {
            let at = SimTime::ZERO + SimDuration::from_micros(rng.range_u64(0, horizon_us));
            let heal = SimDuration::from_micros(rng.range_u64(heal_lo, heal_hi));
            let fault = match *rng.pick(&menu) {
                0 => Fault::NodeCrash {
                    node: *rng.pick(&shape.nodes),
                },
                1 => {
                    let mut nodes = shape.nodes.clone();
                    rng.shuffle(&mut nodes);
                    nodes.truncate(1 + rng.index(shape.nodes.len()));
                    Fault::NodeFlapStorm {
                        nodes,
                        pulses: 2 + rng.index(3) as u32,
                        gap: SimDuration::from_secs(30 + rng.range_u64(0, 90)),
                    }
                }
                code @ 2..=4 => {
                    let a = *rng.pick(&shape.realms);
                    // The other end is the home site unless a second
                    // distinct sister comes up.
                    let b = *rng.pick(&shape.realms);
                    let b = if b == a { crate::HOME_REALM } else { b };
                    match code {
                        2 => Fault::LinkPartition {
                            a,
                            b,
                            heal_after: heal,
                        },
                        3 => Fault::LinkLoss {
                            a,
                            b,
                            rate: 0.2 + 0.8 * rng.f64(),
                            heal_after: heal,
                        },
                        _ => Fault::LatencySpike {
                            a,
                            b,
                            extra: SimDuration::from_millis(50 + rng.range_u64(0, 2000)),
                            heal_after: heal,
                        },
                    }
                }
                5 => Fault::IdpOutage { heal_after: heal },
                6 => Fault::CaOutage { heal_after: heal },
                7 => Fault::ShardSeize {
                    shard: rng.index(shape.shards),
                    heal_after: heal,
                },
                8 => Fault::FeedStall {
                    realm: *rng.pick(&shape.realms),
                    heal_after: heal,
                },
                _ => Fault::ClockSkew {
                    realm: *rng.pick(&shape.realms),
                    ahead: SimDuration::from_secs(60 + rng.range_u64(0, 7200)),
                },
            };
            plan = plan.inject(at, fault);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> PlanShape {
        PlanShape {
            realms: vec![RealmId(2), RealmId(3)],
            nodes: vec![NodeId(1), NodeId(2)],
            shards: 4,
            faults: 12,
            ..PlanShape::default()
        }
    }

    #[test]
    fn same_seed_same_plan_different_seed_different_plan() {
        let a = FaultPlan::random(7, &shape());
        let b = FaultPlan::random(7, &shape());
        assert_eq!(format!("{:?}", a.events()), format!("{:?}", b.events()));
        let c = FaultPlan::random(8, &shape());
        assert_ne!(format!("{:?}", a.events()), format!("{:?}", c.events()));
    }

    #[test]
    fn events_are_time_sorted_and_inject_is_stable() {
        let p = FaultPlan::random(11, &shape());
        assert_eq!(p.len(), 12);
        for w in p.events().windows(2) {
            assert!(w[0].at <= w[1].at, "events must be time-ordered");
        }
        let t = SimTime::from_secs(5);
        let p = FaultPlan::new(0)
            .inject(
                t,
                Fault::IdpOutage {
                    heal_after: SimDuration::from_secs(1),
                },
            )
            .inject(
                t,
                Fault::CaOutage {
                    heal_after: SimDuration::from_secs(1),
                },
            );
        assert_eq!(p.events()[0].fault.kind(), "idp.outage");
        assert_eq!(p.events()[1].fault.kind(), "ca.outage");
    }

    #[test]
    fn shape_gates_the_menu() {
        // No realms, no nodes, single shard: only IdP/CA outages possible.
        let s = PlanShape {
            faults: 20,
            ..PlanShape::default()
        };
        let p = FaultPlan::random(3, &s);
        for e in p.events() {
            assert!(
                matches!(e.fault, Fault::IdpOutage { .. } | Fault::CaOutage { .. }),
                "inadmissible fault {:?}",
                e.fault
            );
        }
    }
}
