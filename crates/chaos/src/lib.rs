//! `eus-chaos`: deterministic fault injection and graceful-degradation
//! verification for the simulated cluster.
//!
//! The paper's separation argument is stated for a healthy site; this
//! crate asks what's left of it when the site's dependencies misbehave.
//! Three pieces:
//!
//! * a **taxonomy** ([`Fault`]) covering the scheduler (node crashes and
//!   flap storms), the revsync WAN (partitions, loss, latency spikes), the
//!   credential plane (IdP/CA outages, shard seizures), the feed layer
//!   (silent stalls), and per-realm clock skew;
//! * seeded, time-ordered **plans** ([`FaultPlan`]) — hand-built for
//!   targeted scenarios or drawn from a [`PlanShape`] for property tests,
//!   byte-for-byte reproducible from `(seed, shape)`;
//! * a **controller** ([`ChaosController`]) that drives a plan into a
//!   [`SecureCluster`](eus_core::SecureCluster), splitting every clock
//!   advance at due fault/heal instants so each disruption lands on a
//!   cycle boundary — where the cluster's dependency-health ladders
//!   ([`eus_core::DepHealth`]), `core.health.*` gauges, and the
//!   `cluster.dependency.degraded` SLO observe it.
//!
//! Chaos is strictly *outside-in*: every injection goes through a public
//! fault hook of the plane under test, and the hot paths carry no chaos
//! branches. Determinism is the load-bearing property — a failing fault
//! schedule is a *repro*, not an anecdote.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod fault;
mod plan;

pub use controller::{sister_realms, ChaosController};
pub use eus_core::HOME_REALM;
pub use fault::{Fault, FaultEvent};
pub use plan::{FaultPlan, PlanShape};

#[cfg(test)]
mod tests {
    use super::*;
    use eus_core::{ClusterSpec, DepHealth, Dependency, SecureCluster, SeparationConfig};
    use eus_fedauth::{
        shared_broker, BrokerPolicy, CredError, CredentialBroker, RealmId, SharedBroker,
    };
    use eus_simcore::{SimDuration, SimTime};

    fn federated_cluster() -> (SecureCluster, SharedBroker) {
        let cfg = SeparationConfig::llsc().with_trusted_realms([2u32]);
        let mut c = SecureCluster::new(cfg, ClusterSpec::tiny());
        let sister = shared_broker(CredentialBroker::new(
            RealmId(2),
            0xC4A0,
            BrokerPolicy::default(),
        ));
        c.register_sister_realm(RealmId(2), sister.clone());
        (c, sister)
    }

    #[test]
    fn idp_outage_injects_at_the_scheduled_instant_and_heals_on_time() {
        let (mut c, _) = federated_cluster();
        let alice = c.add_user("alice").unwrap();
        let db = c.db.read().clone();
        let plan = FaultPlan::new(1).inject(
            SimTime::from_secs(100),
            Fault::IdpOutage {
                heal_after: SimDuration::from_secs(200),
            },
        );
        let mut ctrl = ChaosController::new(plan);
        ctrl.arm(&mut c);

        ctrl.advance_to(&mut c, SimTime::from_secs(50));
        assert!(c.idp_available(), "fault must not fire early");
        let minted = c
            .broker
            .clone()
            .unwrap()
            .write()
            .login(&db, alice, None)
            .unwrap();

        ctrl.advance_to(&mut c, SimTime::from_secs(150));
        assert!(!c.idp_available());
        assert_eq!(
            c.broker.clone().unwrap().write().login(&db, alice, None),
            Err(CredError::Unavailable),
            "new logins refuse during the outage"
        );
        assert_eq!(
            c.broker
                .clone()
                .unwrap()
                .read()
                .validate_token(&minted)
                .unwrap(),
            alice,
            "minted tokens keep validating (graceful degradation)"
        );
        assert!(matches!(
            c.dependency_health(Dependency::Idp),
            DepHealth::Degraded { .. }
        ));

        ctrl.advance_to(&mut c, SimTime::from_secs(400));
        assert!(c.idp_available(), "heal must land at +200s");
        assert_eq!(c.dependency_health(Dependency::Idp), DepHealth::Healthy);
        assert!(ctrl.done());
        assert_eq!(ctrl.applied.len(), 1);
        assert_eq!(ctrl.healed, vec![(SimTime::from_secs(300), "idp.outage")]);
    }

    #[test]
    fn wan_partition_walks_the_feed_to_fail_closed_and_anti_entropy_recovers() {
        let (mut c, sister) = federated_cluster();
        let alice = c.add_user("alice").unwrap();
        let db = c.db.read().clone();
        let budget = c.config.revsync_max_lag;
        let plan = FaultPlan::new(2).inject(
            SimTime::from_secs(10),
            Fault::LinkPartition {
                a: RealmId(2),
                b: HOME_REALM,
                heal_after: budget + SimDuration::from_secs(120),
            },
        );
        let mut ctrl = ChaosController::new(plan);
        ctrl.arm(&mut c);

        // Ride past the staleness budget: fabric-level partition means
        // every push is *detected* and retried with backoff, but nothing
        // gets through — the replica ages into fail-closed.
        let mut t = SimTime::ZERO;
        while t < SimTime::from_secs(10) + budget + SimDuration::from_secs(60) {
            t += SimDuration::from_secs(30);
            ctrl.advance_to(&mut c, t);
        }
        assert_eq!(c.dependency_health(Dependency::Feed), DepHealth::FailClosed);
        let token = sister.write().login(&db, alice, None).unwrap();
        assert!(
            matches!(
                c.validate_federated_token(&token),
                Err(CredError::StaleReplica { .. })
            ),
            "over-budget replica must refuse, never trust stale data"
        );

        // The heal lands at 10s + budget + 120s; the mesh's own retry (or
        // at worst the next anti-entropy round) re-syncs the replica.
        let heal_at = SimTime::from_secs(10) + budget + SimDuration::from_secs(120);
        let recover_by = heal_at + c.config.revsync_anti_entropy + SimDuration::from_secs(60);
        while t < recover_by {
            t += SimDuration::from_secs(30);
            ctrl.advance_to(&mut c, t);
        }
        assert_eq!(c.dependency_health(Dependency::Feed), DepHealth::Healthy);
        assert_eq!(c.validate_federated_token(&token).unwrap(), alice);
        assert!(ctrl.done());
    }

    #[test]
    fn same_plan_same_cluster_same_applied_log() {
        let run = |seed: u64| {
            let (mut c, _) = federated_cluster();
            let shape = PlanShape {
                realms: sister_realms(&c),
                nodes: c.compute_ids.clone(),
                shards: c.config.broker_shards as usize,
                faults: 8,
                horizon: SimDuration::from_secs(1800),
                ..PlanShape::default()
            };
            let mut ctrl = ChaosController::new(FaultPlan::random(seed, &shape));
            ctrl.arm(&mut c);
            let mut t = SimTime::ZERO;
            for _ in 0..40 {
                t += SimDuration::from_secs(120);
                ctrl.advance_to(&mut c, t);
            }
            (
                format!("{:?}", ctrl.applied),
                format!("{:?}", ctrl.healed),
                format!("{:?}", c.dependency_health(Dependency::Feed)),
            )
        };
        assert_eq!(run(42), run(42), "chaos runs must replay exactly");
        assert!(run(42) != run(43) || run(7) != run(8), "seeds must matter");
    }

    #[test]
    fn flap_storm_conserves_jobs_and_accounts_every_casualty() {
        use eus_sched::{JobSpec, JobState};
        let (mut c, _) = federated_cluster();
        let alice = c.add_user("alice").unwrap();
        // First wave of work: running when the storm hits, so it dies —
        // the scheduler's modeled policy fails (not requeues) victims,
        // with a FailureRecord per crash.
        for i in 0..4 {
            c.try_submit(JobSpec::new(
                alice,
                format!("early{i}"),
                SimDuration::from_secs(400),
            ))
            .unwrap();
        }
        let nodes = c.compute_ids.clone();
        let plan = FaultPlan::new(3).inject(
            SimTime::from_secs(60),
            Fault::NodeFlapStorm {
                nodes,
                pulses: 3,
                gap: SimDuration::from_secs(700),
            },
        );
        let mut ctrl = ChaosController::new(plan);
        ctrl.arm(&mut c);
        // Drive through the storm: pulses at 60/760/1460s, auto-repair
        // 600s after each, so the cluster flaps down-up-down.
        let mut t = SimTime::ZERO;
        while t < SimTime::from_secs(2400) {
            t += SimDuration::from_secs(120);
            ctrl.advance_to(&mut c, t);
        }
        // Post-storm work on the repaired nodes must run to completion.
        for i in 0..4 {
            c.try_submit(JobSpec::new(
                alice,
                format!("late{i}"),
                SimDuration::from_secs(400),
            ))
            .unwrap();
        }
        c.run_to_completion();
        let sched = c.sched.read();
        let completed = sched
            .jobs
            .values()
            .filter(|j| j.state == JobState::Completed)
            .count();
        let failed = sched
            .jobs
            .values()
            .filter(|j| j.state == JobState::Failed)
            .count();
        let nonterminal = sched
            .jobs
            .values()
            .filter(|j| !j.state.is_terminal())
            .count();
        let recorded: usize = sched.failures.iter().map(|r| r.failed_jobs.len()).sum();
        drop(sched);
        // Conservation: every job reached exactly one terminal state, and
        // every casualty is attributed to a crash record — nothing lost,
        // nothing double-run, nothing stuck.
        assert_eq!(nonterminal, 0, "no job may be left in limbo");
        assert_eq!(completed + failed, 8, "all work accounted for");
        assert_eq!(failed, recorded, "every casualty traces to a crash");
        assert_eq!(completed, 4, "post-storm work completes on repaired nodes");
    }
}
