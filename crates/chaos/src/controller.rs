//! The chaos controller: drives a [`FaultPlan`] into a live
//! [`SecureCluster`], injecting every fault at an `advance_to` boundary
//! and reverting controller-owned faults when their heal comes due.
//!
//! The controller *wraps* the cluster's clock: callers advance simulated
//! time through [`ChaosController::advance_to`], which splits the jump at
//! every due fault/heal instant so the cluster observes each disruption at
//! a proper cycle boundary (health ladders re-judged, SLOs fed, flight
//! events stamped). Between boundaries the cluster runs untouched — chaos
//! adds no hidden hooks to the hot paths.

use crate::{Fault, FaultEvent, FaultPlan};
use eus_core::SecureCluster;
use eus_fedauth::RealmId;
use eus_revsync::RevSyncMesh;
use eus_simcore::{SimDuration, SimTime};

/// Drives one [`FaultPlan`] into one cluster. Single-shot: build a fresh
/// controller per run (replays come from re-running the same plan).
#[derive(Debug)]
pub struct ChaosController {
    plan: FaultPlan,
    cursor: usize,
    /// Pending controller-owned reversions, time-sorted (stable for ties).
    heals: Vec<(SimTime, Fault)>,
    /// Every fault applied so far, in application order — the replay
    /// fingerprint (`format!("{:?}")` it for determinism checks).
    pub applied: Vec<FaultEvent>,
    /// Every heal applied so far, as `(when, fault kind)`.
    pub healed: Vec<(SimTime, &'static str)>,
}

impl ChaosController {
    /// Wrap a plan, ready to drive.
    pub fn new(plan: FaultPlan) -> Self {
        ChaosController {
            plan,
            cursor: 0,
            heals: Vec::new(),
            applied: Vec::new(),
            healed: Vec::new(),
        }
    }

    /// Seed the cluster's chance-driven fault machinery (the revsync WAN
    /// fabric's loss draws) from the plan seed, so two runs of the same
    /// plan take identical loss decisions. Call once before driving.
    pub fn arm(&self, c: &mut SecureCluster) {
        if let Some(mesh) = &mut c.revsync {
            mesh.fabric_mut()
                .set_fault_seed(self.plan.seed ^ 0xC4A0_5EED);
        }
    }

    /// The plan being driven.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// All faults injected and all heals delivered?
    pub fn done(&self) -> bool {
        self.cursor == self.plan.events().len() && self.heals.is_empty()
    }

    /// Advance the cluster to `to`, stopping at every due fault/heal
    /// instant so each lands on its own cycle boundary. Heals due at an
    /// instant apply before faults due at the same instant (a link that
    /// heals and re-partitions in one breath ends partitioned).
    pub fn advance_to(&mut self, c: &mut SecureCluster, to: SimTime) {
        while let Some(t) = self.next_due(to) {
            c.advance_to(t);
            self.fire_due(c, t);
        }
        c.advance_to(to);
    }

    /// Earliest pending fault or heal at or before `to`.
    fn next_due(&self, to: SimTime) -> Option<SimTime> {
        let fault = self.plan.events().get(self.cursor).map(|e| e.at);
        let heal = self.heals.first().map(|(t, _)| *t);
        let next = match (fault, heal) {
            (Some(f), Some(h)) => Some(f.min(h)),
            (f, h) => f.or(h),
        };
        next.filter(|&t| t <= to)
    }

    /// Apply everything due at or before `t` (the cluster is already at
    /// `t`): heals first, then faults, preserving script order.
    fn fire_due(&mut self, c: &mut SecureCluster, t: SimTime) {
        while self.heals.first().is_some_and(|(h, _)| *h <= t) {
            let (when, fault) = self.heals.remove(0);
            self.heal(c, &fault);
            self.healed.push((when, fault.kind()));
        }
        while self
            .plan
            .events()
            .get(self.cursor)
            .is_some_and(|e| e.at <= t)
        {
            let ev = self.plan.events()[self.cursor].clone();
            self.cursor += 1;
            self.apply(c, &ev);
            if let Some(after) = ev.fault.heal_after() {
                let due = ev.at + after;
                let idx = self.heals.partition_point(|(h, _)| *h <= due);
                self.heals.insert(idx, (due, ev.fault.clone()));
            }
            self.applied.push(ev);
        }
    }

    /// Inject one fault through the matching plane hook.
    fn apply(&mut self, c: &mut SecureCluster, ev: &FaultEvent) {
        match &ev.fault {
            Fault::NodeCrash { node } => {
                c.sched.write().schedule_node_failure(ev.at, *node);
            }
            Fault::NodeFlapStorm { nodes, pulses, gap } => {
                let mut sched = c.sched.write();
                for pulse in 0..*pulses {
                    let when = ev.at + *gap * pulse as u64;
                    for node in nodes {
                        sched.schedule_node_failure(when, *node);
                    }
                }
            }
            Fault::LinkPartition { a, b, .. } => {
                Self::wan(c).set_partitioned(
                    RevSyncMesh::wan_host(*a),
                    RevSyncMesh::wan_host(*b),
                    true,
                );
            }
            Fault::LinkLoss { a, b, rate, .. } => {
                Self::wan(c).set_link_loss(
                    RevSyncMesh::wan_host(*a),
                    RevSyncMesh::wan_host(*b),
                    *rate,
                );
            }
            Fault::LatencySpike { a, b, extra, .. } => {
                Self::wan(c).set_latency_spike(
                    RevSyncMesh::wan_host(*a),
                    RevSyncMesh::wan_host(*b),
                    *extra,
                );
            }
            Fault::IdpOutage { .. } => c.set_idp_available(false),
            Fault::CaOutage { .. } => c.set_ca_available(false),
            Fault::ShardSeize { shard, .. } => {
                c.seize_shard(*shard, true);
            }
            Fault::FeedStall { realm, .. } => c.stall_sister_feed(*realm, true),
            Fault::ClockSkew { realm, ahead } => c.set_realm_clock_skew(*realm, *ahead),
        }
    }

    /// Revert one controller-owned fault.
    fn heal(&mut self, c: &mut SecureCluster, fault: &Fault) {
        match fault {
            Fault::LinkPartition { a, b, .. } => {
                Self::wan(c).set_partitioned(
                    RevSyncMesh::wan_host(*a),
                    RevSyncMesh::wan_host(*b),
                    false,
                );
            }
            Fault::LinkLoss { a, b, .. } => {
                Self::wan(c).set_link_loss(
                    RevSyncMesh::wan_host(*a),
                    RevSyncMesh::wan_host(*b),
                    0.0,
                );
            }
            Fault::LatencySpike { a, b, .. } => {
                Self::wan(c).set_latency_spike(
                    RevSyncMesh::wan_host(*a),
                    RevSyncMesh::wan_host(*b),
                    SimDuration::ZERO,
                );
            }
            Fault::IdpOutage { .. } => c.set_idp_available(true),
            Fault::CaOutage { .. } => c.set_ca_available(true),
            Fault::ShardSeize { shard, .. } => {
                c.seize_shard(*shard, false);
            }
            Fault::FeedStall { realm, .. } => c.stall_sister_feed(*realm, false),
            Fault::NodeCrash { .. } | Fault::NodeFlapStorm { .. } | Fault::ClockSkew { .. } => {
                unreachable!("never scheduled: heal_after() is None")
            }
        }
    }

    /// The revsync WAN fabric (link faults live there). A plan with link
    /// faults on a cluster without the credential plane is a script bug,
    /// not a silent no-op.
    fn wan(c: &mut SecureCluster) -> &mut eus_simnet::Fabric {
        c.revsync
            .as_mut()
            .expect("link faults need config.federated_auth (revsync WAN)")
            .fabric_mut()
    }
}

use eus_core::HOME_REALM;

/// Convenience: the sister realms a cluster actually has on its mesh
/// (for building a [`crate::PlanShape`] from a live cluster).
pub fn sister_realms(c: &SecureCluster) -> Vec<RealmId> {
    match &c.revsync {
        Some(mesh) => mesh.realms().filter(|r| *r != HOME_REALM).collect(),
        None => Vec::new(),
    }
}
