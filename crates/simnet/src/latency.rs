//! The cost model for network operations.
//!
//! Absolute numbers are calibrated to a generic HPC Ethernet/IB fabric, but
//! the experiments only rely on the *structure*: UBF adds a queue hop, two
//! daemon lookups, and one ident round-trip to **connection setup**, and
//! nothing to established-flow traffic.

use eus_simcore::SimDuration;

/// Tunable cost constants.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// One network round trip between two nodes (TCP handshake ≈ 1 RTT).
    pub base_rtt: SimDuration,
    /// Kernel→userspace→kernel traversal for an NFQUEUE'd packet.
    pub nfqueue_hop: SimDuration,
    /// The ident query the receiving daemon sends to the initiating host.
    pub ident_rtt: SimDuration,
    /// One local socket-table / group-membership lookup in the daemon.
    pub daemon_lookup: SimDuration,
    /// Per-KiB serialization cost for payload transfer.
    pub per_kib: SimDuration,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            base_rtt: SimDuration::from_micros(30),
            nfqueue_hop: SimDuration::from_micros(12),
            ident_rtt: SimDuration::from_micros(35),
            daemon_lookup: SimDuration::from_micros(2),
            // ~10 GbE: 1 KiB ≈ 0.8 us on the wire; round to 1 us.
            per_kib: SimDuration::from_micros(1),
        }
    }
}

/// What a queued connection decision consumed; filled in by the userspace
/// handler, converted to time here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetupCosts {
    /// Ident round-trips performed.
    pub ident_rtts: u32,
    /// Local lookups performed.
    pub daemon_lookups: u32,
    /// True when a cached decision short-circuited the ident query.
    pub cache_hit: bool,
}

impl LatencyModel {
    /// Time for a connection handshake, plus inspection costs if queued.
    pub fn setup_time(&self, queued: bool, costs: &SetupCosts) -> SimDuration {
        let mut t = self.base_rtt;
        if queued {
            t += self.nfqueue_hop;
            t += self.ident_rtt * costs.ident_rtts as u64;
            t += self.daemon_lookup * costs.daemon_lookups as u64;
        }
        t
    }

    /// Time to move `bytes` of payload on an established flow.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        let kib = bytes.div_ceil(1024) as u64;
        // Half an RTT of propagation plus serialization.
        self.base_rtt / 2 + self.per_kib * kib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unqueued_setup_is_one_rtt() {
        let m = LatencyModel::default();
        let t = m.setup_time(false, &SetupCosts::default());
        assert_eq!(t, m.base_rtt);
    }

    #[test]
    fn queued_setup_adds_inspection_costs() {
        let m = LatencyModel::default();
        let costs = SetupCosts {
            ident_rtts: 1,
            daemon_lookups: 2,
            cache_hit: false,
        };
        let t = m.setup_time(true, &costs);
        assert_eq!(
            t,
            m.base_rtt + m.nfqueue_hop + m.ident_rtt + m.daemon_lookup * 2
        );
        // A cache hit skips the ident round trip.
        let cached = SetupCosts {
            ident_rtts: 0,
            daemon_lookups: 1,
            cache_hit: true,
        };
        assert!(m.setup_time(true, &cached) < t);
    }

    #[test]
    fn transfer_scales_with_size() {
        let m = LatencyModel::default();
        let small = m.transfer_time(100);
        let large = m.transfer_time(1024 * 1024);
        assert!(large > small);
        assert_eq!(m.transfer_time(0), m.base_rtt / 2);
        // Ceil division: 1 byte still costs one KiB slot.
        assert_eq!(m.transfer_time(1), m.base_rtt / 2 + m.per_kib);
    }
}
