//! The cluster fabric: hosts, connection establishment, and data transfer.
//!
//! [`Fabric::connect`] models the full path of a new flow: ephemeral source
//! port allocation, the source's OUTPUT chain, delivery to the destination's
//! INPUT chain, `NFQUEUE` dispatch to a registered userspace handler (the
//! UBF daemon), conntrack establishment, and latency accounting per
//! [`crate::latency::LatencyModel`]. Established flows ([`Fabric::send`])
//! bypass the queue entirely — matching the paper's claim that the UBF costs
//! nothing after setup.

use crate::addr::{FiveTuple, Port, Proto, SocketAddr};
use crate::conntrack::ConnTrack;
use crate::latency::{LatencyModel, SetupCosts};
use crate::netfilter::{ConnState, Firewall, PacketMeta, Verdict};
use crate::rdma::MemoryRegion;
use crate::socket::{BindError, PeerInfo, SocketTable};
use eus_simcore::{Counter, Histogram, SimDuration, SimRng};
use eus_simos::NodeId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Everything a queued-connection handler gets to see: the flow, plus both
/// endpoint identities. `initiator` is what the ident query to the
/// initiating host returns; `listener` is the receiving daemon's local
/// lookup. The handler records what the decision cost into `costs`.
#[derive(Debug)]
pub struct QueueCtx<'a> {
    /// The flow being decided.
    pub tuple: FiveTuple,
    /// Identity of the connecting process.
    pub initiator: PeerInfo,
    /// Identity of the listening process.
    pub listener: PeerInfo,
    /// Cost accounting, filled by the handler.
    pub costs: &'a mut SetupCosts,
}

/// A userspace daemon attached to an NFQUEUE number.
pub trait QueueHandler: Send {
    /// Daemon name for diagnostics.
    fn name(&self) -> &str;
    /// Decide the fate of a queued new connection.
    fn judge(&mut self, ctx: &mut QueueCtx<'_>) -> Verdict;
}

/// One host's network stack.
pub struct HostNet {
    /// The node this stack belongs to.
    pub id: NodeId,
    /// Bound sockets.
    pub sockets: SocketTable,
    /// Packet filter.
    pub firewall: Firewall,
    /// Flow tracking.
    pub conntrack: ConnTrack,
    /// RDMA memory regions registered on this host, by rkey.
    pub rdma_regions: BTreeMap<u64, MemoryRegion>,
    pub(crate) next_rkey: u64,
    handlers: BTreeMap<u16, Box<dyn QueueHandler>>,
}

impl fmt::Debug for HostNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostNet")
            .field("id", &self.id)
            .field("sockets", &self.sockets.len())
            .field("conntrack", &self.conntrack.len())
            .field("queues", &self.handlers.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl HostNet {
    fn new(id: NodeId) -> Self {
        HostNet {
            id,
            sockets: SocketTable::new(),
            firewall: Firewall::open(),
            conntrack: ConnTrack::new(),
            rdma_regions: BTreeMap::new(),
            next_rkey: 1,
            handlers: BTreeMap::new(),
        }
    }

    /// Attach a userspace handler to a queue number.
    pub fn set_queue_handler(&mut self, queue: u16, handler: Box<dyn QueueHandler>) {
        self.handlers.insert(queue, handler);
    }

    /// Names of attached handlers (diagnostics).
    pub fn handler_names(&self) -> Vec<(u16, String)> {
        self.handlers
            .iter()
            .map(|(q, h)| (*q, h.name().to_string()))
            .collect()
    }
}

/// Handle to an established connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub u64);

/// An established flow.
#[derive(Debug, Clone)]
pub struct Connection {
    /// Handle.
    pub id: ConnId,
    /// Flow identity.
    pub tuple: FiveTuple,
    /// Connecting side's identity.
    pub initiator: PeerInfo,
    /// Listening side's identity.
    pub listener: PeerInfo,
    /// Payload bytes moved so far.
    pub bytes_sent: u64,
}

/// Why a connection attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectError {
    /// Unknown node.
    NoSuchHost(NodeId),
    /// Could not bind the client socket.
    Bind(BindError),
    /// No listener on the destination port (RST).
    ConnectionRefused(SocketAddr),
    /// A firewall chain dropped the packet.
    Dropped {
        /// `"output"` or `"input"`.
        chain: &'static str,
    },
    /// The userspace daemon denied the connection.
    DeniedByDaemon {
        /// Queue number consulted.
        queue: u16,
        /// Handler name.
        handler: String,
    },
    /// A chain queued to a number with no attached handler (packets on an
    /// orphaned NFQUEUE are dropped, as on Linux).
    NoHandler(u16),
    /// The link between the endpoints is administratively severed (fault
    /// injection: [`Fabric::set_partitioned`]).
    Partitioned {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The connection-setup packet was lost on a lossy link (fault
    /// injection: [`Fabric::set_link_loss`]).
    LinkLost,
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnectError::NoSuchHost(n) => write!(f, "no such host {n}"),
            ConnectError::Bind(e) => write!(f, "bind failed: {e}"),
            ConnectError::ConnectionRefused(a) => write!(f, "connection refused by {a}"),
            ConnectError::Dropped { chain } => write!(f, "dropped by {chain} chain"),
            ConnectError::DeniedByDaemon { queue, handler } => {
                write!(f, "denied by {handler} on queue {queue}")
            }
            ConnectError::NoHandler(q) => write!(f, "queue {q} has no handler"),
            ConnectError::Partitioned { a, b } => {
                write!(f, "link {a} <-> {b} is partitioned")
            }
            ConnectError::LinkLost => f.write_str("setup packet lost on a lossy link"),
        }
    }
}

impl std::error::Error for ConnectError {}

/// Errors on established-flow sends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// Unknown connection handle.
    NoSuchConnection(ConnId),
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::NoSuchConnection(c) => write!(f, "no such connection {c:?}"),
        }
    }
}

impl std::error::Error for SendError {}

/// Fabric-wide measurement.
#[derive(Debug, Clone, Default)]
pub struct FabricMetrics {
    /// Total connect() calls.
    pub connects_attempted: Counter,
    /// Connects that established.
    pub connects_allowed: Counter,
    /// Connects refused/denied/dropped.
    pub connects_denied: Counter,
    /// Setup latency in microseconds, one sample per successful connect.
    pub setup_latency: Histogram,
    /// Packets sent on established flows.
    pub established_packets: Counter,
    /// New-connection packets punted to userspace.
    pub queued_packets: Counter,
    /// Connects refused because the host pair is partitioned (fault
    /// injection).
    pub connects_partitioned: Counter,
    /// Connects lost to injected link loss (fault injection).
    pub connects_lost: Counter,
}

/// The cluster network.
pub struct Fabric {
    hosts: BTreeMap<NodeId, HostNet>,
    /// Cost constants.
    pub latency: LatencyModel,
    connections: BTreeMap<ConnId, Connection>,
    next_conn: u64,
    pub(crate) next_qp: u64,
    /// Measurements.
    pub metrics: FabricMetrics,
    /// Severed host pairs, normalized `(min, max)` (fault injection):
    /// new connections between them fail with
    /// [`ConnectError::Partitioned`].
    partitions: BTreeSet<(NodeId, NodeId)>,
    /// Per-pair setup-packet loss probability, normalized `(min, max)`
    /// (fault injection); absent pairs are lossless and draw nothing from
    /// the fault RNG.
    loss: BTreeMap<(NodeId, NodeId), f64>,
    /// Per-pair additive latency, normalized `(min, max)` (fault
    /// injection): added to both setup and transfer time on that link.
    latency_spikes: BTreeMap<(NodeId, NodeId), SimDuration>,
    /// Seeded RNG behind loss decisions; drawn only for pairs with a
    /// configured loss rate, so fault-free runs consume no stream.
    fault_rng: SimRng,
}

impl fmt::Debug for Fabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fabric")
            .field("hosts", &self.hosts.len())
            .field("connections", &self.connections.len())
            .finish()
    }
}

impl Default for Fabric {
    fn default() -> Self {
        Self::new()
    }
}

impl Fabric {
    /// An empty fabric with default latency constants.
    pub fn new() -> Self {
        Fabric {
            hosts: BTreeMap::new(),
            latency: LatencyModel::default(),
            connections: BTreeMap::new(),
            next_conn: 1,
            next_qp: 1,
            metrics: FabricMetrics::default(),
            partitions: BTreeSet::new(),
            loss: BTreeMap::new(),
            latency_spikes: BTreeMap::new(),
            fault_rng: SimRng::seed_from_u64(0xFAB_FA17),
        }
    }

    // ------------------------------------------------------------------
    // Link faults (eus-chaos)
    // ------------------------------------------------------------------

    /// Normalize a host pair so `(a, b)` and `(b, a)` address one link.
    fn link(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Sever (or heal) the link between two hosts: while down, every new
    /// connection between them fails with [`ConnectError::Partitioned`].
    /// Established flows are left to their owners — like a real cable cut,
    /// in-memory connection state survives until the application notices.
    pub fn set_partitioned(&mut self, a: NodeId, b: NodeId, down: bool) {
        let key = Self::link(a, b);
        if down {
            self.partitions.insert(key);
        } else {
            self.partitions.remove(&key);
        }
    }

    /// Whether the link between two hosts is currently severed.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.partitions.contains(&Self::link(a, b))
    }

    /// Set the setup-packet loss probability on a link (`0.0` clears it).
    /// Loss draws come from the seeded fault RNG, so runs reproduce.
    pub fn set_link_loss(&mut self, a: NodeId, b: NodeId, rate: f64) {
        let key = Self::link(a, b);
        if rate > 0.0 {
            self.loss.insert(key, rate.clamp(0.0, 1.0));
        } else {
            self.loss.remove(&key);
        }
    }

    /// Add (or, with `SimDuration::ZERO`, clear) a latency spike on a
    /// link: the extra is paid on every setup and every transfer crossing
    /// it.
    pub fn set_latency_spike(&mut self, a: NodeId, b: NodeId, extra: SimDuration) {
        let key = Self::link(a, b);
        if extra > SimDuration::ZERO {
            self.latency_spikes.insert(key, extra);
        } else {
            self.latency_spikes.remove(&key);
        }
    }

    /// Reseed the fault RNG (chaos runs derive it from the plan seed so
    /// loss decisions replay bit-for-bit).
    pub fn set_fault_seed(&mut self, seed: u64) {
        self.fault_rng = SimRng::seed_from_u64(seed);
    }

    /// The injected extra latency on a link (ZERO when unspiked).
    fn spike(&self, a: NodeId, b: NodeId) -> SimDuration {
        self.latency_spikes
            .get(&Self::link(a, b))
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Add (or reset) a host.
    pub fn add_host(&mut self, id: NodeId) -> &mut HostNet {
        self.hosts.entry(id).or_insert_with(|| HostNet::new(id))
    }

    /// Borrow a host's stack.
    pub fn host(&self, id: NodeId) -> Option<&HostNet> {
        self.hosts.get(&id)
    }

    /// Mutably borrow a host's stack.
    pub fn host_mut(&mut self, id: NodeId) -> Option<&mut HostNet> {
        self.hosts.get_mut(&id)
    }

    /// Per-host conntrack flow-table occupancy (directional entries), in
    /// host order — the gauge source the cluster's observability plane
    /// samples at cycle boundaries.
    pub fn flow_table_occupancy(&self) -> Vec<(NodeId, usize)> {
        self.hosts
            .iter()
            .map(|(&id, h)| (id, h.conntrack.len()))
            .collect()
    }

    /// Total directional conntrack entries across every host (each
    /// established connection contributes two entries — one per direction —
    /// in both endpoints' tables).
    pub fn flows_tracked(&self) -> usize {
        self.hosts.values().map(|h| h.conntrack.len()).sum()
    }

    /// Bind a listener on a host.
    pub fn listen(
        &mut self,
        host: NodeId,
        proto: Proto,
        port: Port,
        owner: PeerInfo,
    ) -> Result<(), ConnectError> {
        self.hosts
            .get_mut(&host)
            .ok_or(ConnectError::NoSuchHost(host))?
            .sockets
            .listen(proto, port, owner)
            .map_err(ConnectError::Bind)
    }

    /// Borrow an established connection.
    pub fn connection(&self, id: ConnId) -> Option<&Connection> {
        self.connections.get(&id)
    }

    /// Number of live connections.
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }

    fn judge_on(
        host: &mut HostNet,
        queue: u16,
        tuple: FiveTuple,
        initiator: PeerInfo,
        listener: PeerInfo,
        costs: &mut SetupCosts,
    ) -> Result<Verdict, ConnectError> {
        let handler = host
            .handlers
            .get_mut(&queue)
            .ok_or(ConnectError::NoHandler(queue))?;
        let mut ctx = QueueCtx {
            tuple,
            initiator,
            listener,
            costs,
        };
        Ok(handler.judge(&mut ctx))
    }

    /// Attempt a new connection. On success returns the connection handle
    /// and the modeled setup latency.
    pub fn connect(
        &mut self,
        src_host: NodeId,
        initiator: PeerInfo,
        dst: SocketAddr,
        proto: Proto,
    ) -> Result<(ConnId, SimDuration), ConnectError> {
        self.metrics.connects_attempted.incr();
        let result = self.connect_inner(src_host, initiator, dst, proto);
        match &result {
            Ok((_, lat)) => {
                self.metrics.connects_allowed.incr();
                self.metrics.setup_latency.record(lat.as_micros() as f64);
            }
            Err(_) => self.metrics.connects_denied.incr(),
        }
        result
    }

    fn connect_inner(
        &mut self,
        src_host: NodeId,
        initiator: PeerInfo,
        dst: SocketAddr,
        proto: Proto,
    ) -> Result<(ConnId, SimDuration), ConnectError> {
        if !self.hosts.contains_key(&dst.host) {
            return Err(ConnectError::NoSuchHost(dst.host));
        }
        // Injected link faults fire before any host state is touched — a
        // severed or lossy cable never consumes an ephemeral port.
        if self.is_partitioned(src_host, dst.host) {
            self.metrics.connects_partitioned.incr();
            return Err(ConnectError::Partitioned {
                a: src_host,
                b: dst.host,
            });
        }
        if let Some(&rate) = self.loss.get(&Self::link(src_host, dst.host)) {
            if self.fault_rng.chance(rate) {
                self.metrics.connects_lost.incr();
                return Err(ConnectError::LinkLost);
            }
        }
        // Bind the client socket so ident queries about the initiator answer.
        let src_port = {
            let src = self
                .hosts
                .get_mut(&src_host)
                .ok_or(ConnectError::NoSuchHost(src_host))?;
            src.sockets
                .bind_ephemeral(proto, initiator)
                .map_err(ConnectError::Bind)?
        };
        let tuple = FiveTuple {
            proto,
            src: SocketAddr::new(src_host, src_port),
            dst,
        };
        let pkt = PacketMeta {
            tuple,
            state: ConnState::New,
            payload_len: 0,
        };

        let mut costs = SetupCosts::default();
        let mut queued = false;

        // The listener's identity (the receiving daemon's local lookup);
        // resolved early because both chains' handlers may need it.
        let listener = match self
            .hosts
            .get(&dst.host)
            .and_then(|h| h.sockets.listener(proto, dst.port))
        {
            Some(e) => e.owner,
            None => {
                self.release_client_port(src_host, proto, src_port);
                return Err(ConnectError::ConnectionRefused(dst));
            }
        };

        // Source OUTPUT chain.
        let out_verdict = self.hosts[&src_host].firewall.output.evaluate(&pkt);
        match out_verdict {
            Verdict::Accept => {}
            Verdict::Drop => {
                self.release_client_port(src_host, proto, src_port);
                return Err(ConnectError::Dropped { chain: "output" });
            }
            Verdict::Queue(q) => {
                queued = true;
                self.metrics.queued_packets.incr();
                let src = self.hosts.get_mut(&src_host).expect("checked");
                let v = Self::judge_on(src, q, tuple, initiator, listener, &mut costs);
                match v {
                    Ok(Verdict::Accept) => {}
                    Ok(_) => {
                        let name = self.hosts[&src_host]
                            .handlers
                            .get(&q)
                            .map(|h| h.name().to_string())
                            .unwrap_or_default();
                        self.release_client_port(src_host, proto, src_port);
                        return Err(ConnectError::DeniedByDaemon {
                            queue: q,
                            handler: name,
                        });
                    }
                    Err(e) => {
                        self.release_client_port(src_host, proto, src_port);
                        return Err(e);
                    }
                }
            }
        }

        // Destination INPUT chain.
        let in_verdict = self.hosts[&dst.host].firewall.input.evaluate(&pkt);
        match in_verdict {
            Verdict::Accept => {}
            Verdict::Drop => {
                self.release_client_port(src_host, proto, src_port);
                return Err(ConnectError::Dropped { chain: "input" });
            }
            Verdict::Queue(q) => {
                queued = true;
                self.metrics.queued_packets.incr();
                let dsth = self.hosts.get_mut(&dst.host).expect("checked");
                let v = Self::judge_on(dsth, q, tuple, initiator, listener, &mut costs);
                match v {
                    Ok(Verdict::Accept) => {}
                    Ok(_) => {
                        let name = self.hosts[&dst.host]
                            .handlers
                            .get(&q)
                            .map(|h| h.name().to_string())
                            .unwrap_or_default();
                        self.release_client_port(src_host, proto, src_port);
                        return Err(ConnectError::DeniedByDaemon {
                            queue: q,
                            handler: name,
                        });
                    }
                    Err(e) => {
                        self.release_client_port(src_host, proto, src_port);
                        return Err(e);
                    }
                }
            }
        }

        // Establish: conntrack on both hosts, register the connection.
        self.hosts
            .get_mut(&src_host)
            .expect("checked")
            .conntrack
            .establish(tuple);
        self.hosts
            .get_mut(&dst.host)
            .expect("checked")
            .conntrack
            .establish(tuple);
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        self.connections.insert(
            id,
            Connection {
                id,
                tuple,
                initiator,
                listener,
                bytes_sent: 0,
            },
        );
        let setup = self.latency.setup_time(queued, &costs) + self.spike(src_host, dst.host);
        Ok((id, setup))
    }

    fn release_client_port(&mut self, host: NodeId, proto: Proto, port: Port) {
        if let Some(h) = self.hosts.get_mut(&host) {
            h.sockets.close(proto, port);
        }
    }

    /// Send payload on an established connection. Conntrack recognizes the
    /// flow, so the packet takes the passthrough path: no queue, no daemon —
    /// the cost is pure transfer time.
    pub fn send(&mut self, id: ConnId, payload: &bytes::Bytes) -> Result<SimDuration, SendError> {
        let conn = self
            .connections
            .get_mut(&id)
            .ok_or(SendError::NoSuchConnection(id))?;
        debug_assert!(
            self.hosts
                .get(&conn.tuple.dst.host)
                .map(|h| h.conntrack.is_established(&conn.tuple))
                .unwrap_or(false),
            "established connection must be in conntrack"
        );
        conn.bytes_sent += payload.len() as u64;
        let (a, b) = (conn.tuple.src.host, conn.tuple.dst.host);
        self.metrics.established_packets.incr();
        Ok(self.latency.transfer_time(payload.len()) + self.spike(a, b))
    }

    /// Close a connection: remove conntrack entries and free the client port.
    pub fn close(&mut self, id: ConnId) -> bool {
        let Some(conn) = self.connections.remove(&id) else {
            return false;
        };
        let t = conn.tuple;
        if let Some(h) = self.hosts.get_mut(&t.src.host) {
            h.conntrack.remove(&t);
            h.sockets.close(t.proto, t.src.port);
        }
        if let Some(h) = self.hosts.get_mut(&t.dst.host) {
            h.conntrack.remove(&t);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netfilter::RuleMatch;
    use eus_simos::{Gid, Uid};

    fn peer(uid: u32) -> PeerInfo {
        PeerInfo {
            uid: Uid(uid),
            egid: Gid(uid),
            pid: None,
        }
    }

    fn two_hosts() -> Fabric {
        let mut f = Fabric::new();
        f.add_host(NodeId(1));
        f.add_host(NodeId(2));
        f
    }

    #[test]
    fn flow_table_occupancy_tracks_connections() {
        let mut f = two_hosts();
        f.listen(NodeId(2), Proto::Tcp, 8888, peer(100)).unwrap();
        assert_eq!(f.flows_tracked(), 0);
        let (id, _) = f
            .connect(
                NodeId(1),
                peer(101),
                SocketAddr::new(NodeId(2), 8888),
                Proto::Tcp,
            )
            .unwrap();
        // One flow: two directional entries at each endpoint.
        assert_eq!(f.flows_tracked(), 4);
        let occ = f.flow_table_occupancy();
        assert_eq!(occ, vec![(NodeId(1), 2), (NodeId(2), 2)]);
        f.close(id);
        assert_eq!(f.flows_tracked(), 0);
    }

    #[test]
    fn open_firewall_connect_and_send() {
        let mut f = two_hosts();
        f.listen(NodeId(2), Proto::Tcp, 8888, peer(100)).unwrap();
        let (id, setup) = f
            .connect(
                NodeId(1),
                peer(101),
                SocketAddr::new(NodeId(2), 8888),
                Proto::Tcp,
            )
            .unwrap();
        assert_eq!(setup, f.latency.base_rtt, "no inspection on open firewall");
        let t = f.send(id, &bytes::Bytes::from_static(b"hello")).unwrap();
        assert!(t > SimDuration::ZERO);
        assert_eq!(f.connection(id).unwrap().bytes_sent, 5);
        assert!(f.close(id));
        assert!(!f.close(id));
        assert_eq!(f.metrics.connects_allowed.get(), 1);
    }

    #[test]
    fn connection_refused_without_listener() {
        let mut f = two_hosts();
        let err = f
            .connect(
                NodeId(1),
                peer(1),
                SocketAddr::new(NodeId(2), 9999),
                Proto::Tcp,
            )
            .unwrap_err();
        assert_eq!(
            err,
            ConnectError::ConnectionRefused(SocketAddr::new(NodeId(2), 9999))
        );
        // The failed attempt released its ephemeral port.
        assert!(f.host(NodeId(1)).unwrap().sockets.is_empty());
        assert_eq!(f.metrics.connects_denied.get(), 1);
    }

    #[test]
    fn input_drop_rule_blocks() {
        let mut f = two_hosts();
        f.listen(NodeId(2), Proto::Tcp, 8888, peer(100)).unwrap();
        f.host_mut(NodeId(2)).unwrap().firewall.input.push(
            RuleMatch {
                proto: Some(Proto::Tcp),
                dport: Some((8888, 8888)),
                state: None,
            },
            Verdict::Drop,
            "block 8888",
        );
        let err = f
            .connect(
                NodeId(1),
                peer(1),
                SocketAddr::new(NodeId(2), 8888),
                Proto::Tcp,
            )
            .unwrap_err();
        assert_eq!(err, ConnectError::Dropped { chain: "input" });
    }

    struct DenyUid(u32);
    impl QueueHandler for DenyUid {
        fn name(&self) -> &str {
            "deny-uid"
        }
        fn judge(&mut self, ctx: &mut QueueCtx<'_>) -> Verdict {
            ctx.costs.daemon_lookups += 1;
            ctx.costs.ident_rtts += 1;
            if ctx.initiator.uid == Uid(self.0) {
                Verdict::Drop
            } else {
                Verdict::Accept
            }
        }
    }

    #[test]
    fn queue_handler_judges_new_connections() {
        let mut f = two_hosts();
        f.listen(NodeId(2), Proto::Tcp, 8888, peer(100)).unwrap();
        f.host_mut(NodeId(2)).unwrap().firewall.input.push(
            RuleMatch {
                proto: Some(Proto::Tcp),
                dport: Some((1024, 65535)),
                state: Some(ConnState::New),
            },
            Verdict::Queue(0),
            "inspect",
        );
        f.host_mut(NodeId(2))
            .unwrap()
            .set_queue_handler(0, Box::new(DenyUid(666)));

        // Denied initiator.
        let err = f
            .connect(
                NodeId(1),
                peer(666),
                SocketAddr::new(NodeId(2), 8888),
                Proto::Tcp,
            )
            .unwrap_err();
        assert!(matches!(err, ConnectError::DeniedByDaemon { queue: 0, .. }));

        // Allowed initiator pays the inspection latency.
        let (_, setup) = f
            .connect(
                NodeId(1),
                peer(5),
                SocketAddr::new(NodeId(2), 8888),
                Proto::Tcp,
            )
            .unwrap();
        assert!(setup > f.latency.base_rtt);
        assert_eq!(f.metrics.queued_packets.get(), 2);
    }

    #[test]
    fn queue_without_handler_drops() {
        let mut f = two_hosts();
        f.listen(NodeId(2), Proto::Tcp, 8888, peer(100)).unwrap();
        f.host_mut(NodeId(2)).unwrap().firewall.input.push(
            RuleMatch::any(),
            Verdict::Queue(3),
            "orphaned queue",
        );
        let err = f
            .connect(
                NodeId(1),
                peer(1),
                SocketAddr::new(NodeId(2), 8888),
                Proto::Tcp,
            )
            .unwrap_err();
        assert_eq!(err, ConnectError::NoHandler(3));
    }

    #[test]
    fn established_flow_bypasses_queue() {
        let mut f = two_hosts();
        f.listen(NodeId(2), Proto::Tcp, 8888, peer(100)).unwrap();
        // Standard shape: established accept first, then queue new.
        let fw = &mut f.host_mut(NodeId(2)).unwrap().firewall;
        fw.input.push(
            RuleMatch {
                state: Some(ConnState::Established),
                ..RuleMatch::any()
            },
            Verdict::Accept,
            "conntrack passthrough",
        );
        fw.input.push(
            RuleMatch {
                state: Some(ConnState::New),
                ..RuleMatch::any()
            },
            Verdict::Queue(0),
            "inspect new",
        );
        f.host_mut(NodeId(2))
            .unwrap()
            .set_queue_handler(0, Box::new(DenyUid(u32::MAX)));

        let (id, _) = f
            .connect(
                NodeId(1),
                peer(5),
                SocketAddr::new(NodeId(2), 8888),
                Proto::Tcp,
            )
            .unwrap();
        let queued_before = f.metrics.queued_packets.get();
        for _ in 0..10 {
            f.send(id, &bytes::Bytes::from_static(b"data")).unwrap();
        }
        assert_eq!(
            f.metrics.queued_packets.get(),
            queued_before,
            "established packets never hit the queue"
        );
        assert_eq!(f.metrics.established_packets.get(), 10);
    }

    #[test]
    fn partition_blocks_new_connects_and_heals_clean() {
        let mut f = two_hosts();
        f.listen(NodeId(2), Proto::Tcp, 8888, peer(100)).unwrap();
        f.set_partitioned(NodeId(2), NodeId(1), true); // either order
        let err = f
            .connect(
                NodeId(1),
                peer(1),
                SocketAddr::new(NodeId(2), 8888),
                Proto::Tcp,
            )
            .unwrap_err();
        assert_eq!(
            err,
            ConnectError::Partitioned {
                a: NodeId(1),
                b: NodeId(2)
            }
        );
        assert!(f.is_partitioned(NodeId(1), NodeId(2)));
        assert_eq!(f.metrics.connects_partitioned.get(), 1);
        // No ephemeral port leaked by the refused attempt.
        assert!(f.host(NodeId(1)).unwrap().sockets.is_empty());
        f.set_partitioned(NodeId(1), NodeId(2), false);
        assert!(f
            .connect(
                NodeId(1),
                peer(1),
                SocketAddr::new(NodeId(2), 8888),
                Proto::Tcp,
            )
            .is_ok());
    }

    #[test]
    fn link_loss_is_seeded_and_total_at_rate_one() {
        let mut f = two_hosts();
        f.listen(NodeId(2), Proto::Tcp, 8888, peer(100)).unwrap();
        f.set_link_loss(NodeId(1), NodeId(2), 1.0);
        for _ in 0..5 {
            assert_eq!(
                f.connect(
                    NodeId(1),
                    peer(1),
                    SocketAddr::new(NodeId(2), 8888),
                    Proto::Tcp,
                )
                .unwrap_err(),
                ConnectError::LinkLost
            );
        }
        assert_eq!(f.metrics.connects_lost.get(), 5);
        assert!(f.host(NodeId(1)).unwrap().sockets.is_empty());
        f.set_link_loss(NodeId(1), NodeId(2), 0.0);
        assert!(f
            .connect(
                NodeId(1),
                peer(1),
                SocketAddr::new(NodeId(2), 8888),
                Proto::Tcp,
            )
            .is_ok());
        // Same seed, same partial-loss decisions.
        let run = |seed: u64| {
            let mut f = two_hosts();
            f.listen(NodeId(2), Proto::Tcp, 8888, peer(100)).unwrap();
            f.set_fault_seed(seed);
            f.set_link_loss(NodeId(1), NodeId(2), 0.5);
            (0..32)
                .map(|_| {
                    let r = f.connect(
                        NodeId(1),
                        peer(1),
                        SocketAddr::new(NodeId(2), 8888),
                        Proto::Tcp,
                    );
                    if let Ok((id, _)) = r {
                        f.close(id);
                        true
                    } else {
                        false
                    }
                })
                .collect::<Vec<bool>>()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same loss pattern");
        assert!(a.iter().any(|&ok| ok) && a.iter().any(|&ok| !ok));
    }

    #[test]
    fn latency_spike_penalizes_setup_and_transfer() {
        let mut f = two_hosts();
        f.listen(NodeId(2), Proto::Tcp, 8888, peer(100)).unwrap();
        let (id, base_setup) = f
            .connect(
                NodeId(1),
                peer(1),
                SocketAddr::new(NodeId(2), 8888),
                Proto::Tcp,
            )
            .unwrap();
        let base_xfer = f.send(id, &bytes::Bytes::from_static(b"data")).unwrap();
        let extra = SimDuration::from_millis(250);
        f.set_latency_spike(NodeId(1), NodeId(2), extra);
        let spiked_xfer = f.send(id, &bytes::Bytes::from_static(b"data")).unwrap();
        assert_eq!(spiked_xfer, base_xfer + extra);
        let (id2, spiked_setup) = f
            .connect(
                NodeId(1),
                peer(2),
                SocketAddr::new(NodeId(2), 8888),
                Proto::Tcp,
            )
            .unwrap();
        assert_eq!(spiked_setup, base_setup + extra);
        f.set_latency_spike(NodeId(1), NodeId(2), SimDuration::ZERO);
        assert_eq!(
            f.send(id2, &bytes::Bytes::from_static(b"data")).unwrap(),
            base_xfer,
            "clearing the spike restores the base model"
        );
    }

    #[test]
    fn unknown_hosts_and_connections() {
        let mut f = Fabric::new();
        f.add_host(NodeId(1));
        assert_eq!(
            f.connect(
                NodeId(1),
                peer(1),
                SocketAddr::new(NodeId(9), 80),
                Proto::Tcp
            )
            .unwrap_err(),
            ConnectError::NoSuchHost(NodeId(9))
        );
        assert_eq!(
            f.connect(
                NodeId(9),
                peer(1),
                SocketAddr::new(NodeId(1), 80),
                Proto::Tcp
            )
            .unwrap_err(),
            ConnectError::NoSuchHost(NodeId(9))
        );
        assert_eq!(
            f.send(ConnId(42), &bytes::Bytes::new()).unwrap_err(),
            SendError::NoSuchConnection(ConnId(42))
        );
    }
}
