//! Per-host socket table: who owns which port.
//!
//! Every socket records its owner's uid and *effective gid* — the egid is
//! what the UBF's group opt-in consults, and it is what `newgrp`/`sg` change
//! before a service is started (paper Sec. IV-D).

use crate::addr::{Port, Proto, EPHEMERAL_BASE, PRIVILEGED_PORT_MAX};
use eus_simos::{Credentials, Gid, Pid, Uid};
use std::collections::BTreeMap;
use std::fmt;

/// The identity attached to a socket: what an ident query returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerInfo {
    /// Owning uid.
    pub uid: Uid,
    /// Effective gid of the owning process at bind/connect time.
    pub egid: Gid,
    /// Owning process, when known.
    pub pid: Option<Pid>,
}

impl PeerInfo {
    /// Identity from credentials.
    pub fn from_cred(cred: &Credentials) -> Self {
        PeerInfo {
            uid: cred.uid,
            egid: cred.gid,
            pid: None,
        }
    }

    /// Identity from credentials plus owning pid.
    pub fn with_pid(cred: &Credentials, pid: Pid) -> Self {
        PeerInfo {
            uid: cred.uid,
            egid: cred.gid,
            pid: Some(pid),
        }
    }

    /// True for uid 0.
    pub fn is_root(&self) -> bool {
        self.uid == eus_simos::ROOT_UID
    }
}

/// Whether a socket is a listener or a client (ephemeral) socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketKind {
    /// Accepting inbound connections.
    Listener,
    /// The local end of an outbound connection.
    Client,
}

/// One bound socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocketEntry {
    /// Port owner identity.
    pub owner: PeerInfo,
    /// Listener or client.
    pub kind: SocketKind,
}

/// Binding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindError {
    /// EADDRINUSE.
    PortInUse(Proto, Port),
    /// Binding below 1024 without root.
    PrivilegedPort(Port),
    /// The ephemeral range is exhausted.
    NoEphemeralPorts,
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::PortInUse(p, port) => write!(f, "{p} port {port} already in use"),
            BindError::PrivilegedPort(port) => {
                write!(f, "binding port {port} requires privilege")
            }
            BindError::NoEphemeralPorts => f.write_str("ephemeral port range exhausted"),
        }
    }
}

impl std::error::Error for BindError {}

/// All sockets on one host.
#[derive(Debug, Clone, Default)]
pub struct SocketTable {
    entries: BTreeMap<(Proto, Port), SocketEntry>,
    next_ephemeral: Port,
}

impl SocketTable {
    /// An empty table.
    pub fn new() -> Self {
        SocketTable {
            entries: BTreeMap::new(),
            next_ephemeral: EPHEMERAL_BASE,
        }
    }

    /// Bind a listening socket on a specific port.
    pub fn listen(&mut self, proto: Proto, port: Port, owner: PeerInfo) -> Result<(), BindError> {
        if port <= PRIVILEGED_PORT_MAX && !owner.is_root() {
            return Err(BindError::PrivilegedPort(port));
        }
        if self.entries.contains_key(&(proto, port)) {
            return Err(BindError::PortInUse(proto, port));
        }
        self.entries.insert(
            (proto, port),
            SocketEntry {
                owner,
                kind: SocketKind::Listener,
            },
        );
        Ok(())
    }

    /// Allocate an ephemeral client port for an outbound connection. The
    /// source identity is recorded so inbound ident queries can answer for
    /// the *initiator* side too.
    pub fn bind_ephemeral(&mut self, proto: Proto, owner: PeerInfo) -> Result<Port, BindError> {
        let start = self.next_ephemeral;
        loop {
            let candidate = self.next_ephemeral;
            self.next_ephemeral = if self.next_ephemeral == Port::MAX {
                EPHEMERAL_BASE
            } else {
                self.next_ephemeral + 1
            };
            if let std::collections::btree_map::Entry::Vacant(e) =
                self.entries.entry((proto, candidate))
            {
                e.insert(SocketEntry {
                    owner,
                    kind: SocketKind::Client,
                });
                return Ok(candidate);
            }
            if self.next_ephemeral == start {
                return Err(BindError::NoEphemeralPorts);
            }
        }
    }

    /// Look up the socket bound to (proto, port).
    pub fn lookup(&self, proto: Proto, port: Port) -> Option<&SocketEntry> {
        self.entries.get(&(proto, port))
    }

    /// The listener on (proto, port), if any.
    pub fn listener(&self, proto: Proto, port: Port) -> Option<&SocketEntry> {
        self.lookup(proto, port)
            .filter(|e| e.kind == SocketKind::Listener)
    }

    /// Release a port.
    pub fn close(&mut self, proto: Proto, port: Port) -> bool {
        self.entries.remove(&(proto, port)).is_some()
    }

    /// Close every socket owned by `uid`; returns how many were closed.
    /// (Job epilog / session teardown.)
    pub fn close_all_of(&mut self, uid: Uid) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.owner.uid != uid);
        before - self.entries.len()
    }

    /// All listeners (diagnostics / audit).
    pub fn listeners(&self) -> impl Iterator<Item = (Proto, Port, &SocketEntry)> {
        self.entries
            .iter()
            .filter(|(_, e)| e.kind == SocketKind::Listener)
            .map(|((proto, port), e)| (*proto, *port, e))
    }

    /// Number of bound sockets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(uid: u32) -> PeerInfo {
        PeerInfo {
            uid: Uid(uid),
            egid: Gid(uid),
            pid: None,
        }
    }

    #[test]
    fn listen_and_lookup() {
        let mut t = SocketTable::new();
        t.listen(Proto::Tcp, 8888, peer(100)).unwrap();
        let e = t.listener(Proto::Tcp, 8888).unwrap();
        assert_eq!(e.owner.uid, Uid(100));
        // Different protocol namespace.
        assert!(t.listener(Proto::Udp, 8888).is_none());
    }

    #[test]
    fn port_conflicts_detected() {
        let mut t = SocketTable::new();
        t.listen(Proto::Tcp, 8888, peer(100)).unwrap();
        assert_eq!(
            t.listen(Proto::Tcp, 8888, peer(101)).unwrap_err(),
            BindError::PortInUse(Proto::Tcp, 8888)
        );
        // UDP on the same number is fine.
        t.listen(Proto::Udp, 8888, peer(101)).unwrap();
    }

    #[test]
    fn privileged_ports_require_root() {
        let mut t = SocketTable::new();
        assert_eq!(
            t.listen(Proto::Tcp, 80, peer(100)).unwrap_err(),
            BindError::PrivilegedPort(80)
        );
        let root = PeerInfo::from_cred(&Credentials::root());
        t.listen(Proto::Tcp, 80, root).unwrap();
    }

    #[test]
    fn ephemeral_ports_unique_and_owned() {
        let mut t = SocketTable::new();
        let a = t.bind_ephemeral(Proto::Tcp, peer(1)).unwrap();
        let b = t.bind_ephemeral(Proto::Tcp, peer(2)).unwrap();
        assert_ne!(a, b);
        assert!(a >= EPHEMERAL_BASE);
        assert_eq!(t.lookup(Proto::Tcp, b).unwrap().owner.uid, Uid(2));
        assert_eq!(t.lookup(Proto::Tcp, a).unwrap().kind, SocketKind::Client);
    }

    #[test]
    fn close_all_of_scrubs_one_user() {
        let mut t = SocketTable::new();
        t.listen(Proto::Tcp, 9000, peer(1)).unwrap();
        t.listen(Proto::Tcp, 9001, peer(2)).unwrap();
        t.bind_ephemeral(Proto::Udp, peer(1)).unwrap();
        assert_eq!(t.close_all_of(Uid(1)), 2);
        assert_eq!(t.len(), 1);
        assert!(t.close(Proto::Tcp, 9001));
        assert!(!t.close(Proto::Tcp, 9001));
    }

    #[test]
    fn peer_info_from_cred_uses_egid() {
        let cred = Credentials::with_groups(Uid(10), Gid(55), [Gid(10)]);
        let p = PeerInfo::from_cred(&cred);
        assert_eq!(p.egid, Gid(55), "egid follows newgrp");
        assert!(!p.is_root());
    }
}
