//! The ident-style (RFC 1413) identity oracle.
//!
//! During UBF connection setup "an ident-like query is sent from the
//! receiving system to initiating system to get user information, and the
//! same query run locally" (paper Sec. IV-D). Given a host's socket table and
//! a (proto, port), the service answers with the owning uid/egid. The
//! *trust* model matches the paper's deployment: every node runs the site's
//! daemon, so answers are authoritative within the cluster.

use crate::addr::{Port, Proto};
use crate::socket::{PeerInfo, SocketTable};

/// Errors an ident query can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdentError {
    /// No socket bound on the queried port: the peer process vanished
    /// between SYN and query (treated as deny by the UBF).
    NoSuchPort(Proto, Port),
}

impl std::fmt::Display for IdentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdentError::NoSuchPort(p, port) => write!(f, "ident: no socket on {p}/{port}"),
        }
    }
}

impl std::error::Error for IdentError {}

/// Answer an ident query against a host's socket table.
pub fn ident_query(table: &SocketTable, proto: Proto, port: Port) -> Result<PeerInfo, IdentError> {
    table
        .lookup(proto, port)
        .map(|e| e.owner)
        .ok_or(IdentError::NoSuchPort(proto, port))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eus_simos::{Credentials, Gid, Uid};

    #[test]
    fn query_returns_owner() {
        let mut t = SocketTable::new();
        let cred = Credentials::with_groups(Uid(10), Gid(77), []);
        t.listen(Proto::Tcp, 9000, PeerInfo::from_cred(&cred))
            .unwrap();
        let info = ident_query(&t, Proto::Tcp, 9000).unwrap();
        assert_eq!(info.uid, Uid(10));
        assert_eq!(info.egid, Gid(77));
    }

    #[test]
    fn query_misses_cleanly() {
        let t = SocketTable::new();
        assert_eq!(
            ident_query(&t, Proto::Udp, 1234).unwrap_err(),
            IdentError::NoSuchPort(Proto::Udp, 1234)
        );
    }
}
