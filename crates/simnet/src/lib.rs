//! # eus-simnet — cluster network substrate
//!
//! The kernel networking the User-Based Firewall builds on (paper Sec. IV-D):
//!
//! * [`socket`] — per-host socket tables where every socket carries its
//!   owner's uid and **effective gid** (what `newgrp`/`sg` change),
//! * [`netfilter`] — ordered rule chains with `Accept`/`Drop`/`Queue`
//!   verdicts; `Queue` punts to a registered userspace handler,
//! * [`conntrack`] — flow tracking that exempts established traffic from
//!   inspection,
//! * [`ident`] — the RFC-1413-style identity oracle the receiving daemon
//!   queries about the initiating host,
//! * [`fabric`] — hosts wired together: full connection setup (both chains,
//!   queue dispatch, conntrack) and established-flow transfer, with a
//!   [`latency`] cost model,
//! * [`rdma`] — InfiniBand queue pairs set up either over a TCP control
//!   channel (UBF-governed) or via the native connection manager (the
//!   paper's acknowledged residual path), and one-sided reads/writes that
//!   ignore Unix ownership entirely.

#![warn(missing_docs)]

pub mod addr;
pub mod conntrack;
pub mod fabric;
pub mod ident;
pub mod latency;
pub mod netfilter;
pub mod rdma;
pub mod socket;

pub use addr::{FiveTuple, Port, Proto, SocketAddr, EPHEMERAL_BASE, PRIVILEGED_PORT_MAX};
pub use conntrack::ConnTrack;
pub use fabric::{
    ConnId, ConnectError, Connection, Fabric, FabricMetrics, HostNet, QueueCtx, QueueHandler,
    SendError,
};
pub use ident::{ident_query, IdentError};
pub use latency::{LatencyModel, SetupCosts};
pub use netfilter::{Chain, ConnState, Firewall, PacketMeta, Rule, RuleMatch, Verdict};
pub use rdma::{MemoryRegion, QpSetupPath, QueuePair, RdmaError};
pub use socket::{BindError, PeerInfo, SocketEntry, SocketKind, SocketTable};
