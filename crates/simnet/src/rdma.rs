//! InfiniBand / RDMA modeling (paper Sec. IV-D and Appendix).
//!
//! RDMA data movement bypasses the host network stack, so the UBF cannot see
//! it. What the UBF *can* control is queue-pair (QP) setup: "many such
//! applications use a TCP connection as a control channel to set up their
//! InfiniBand queue pairs and thus can be effectively controlled by the UBF.
//! This does not prevent applications from using the connection manager (CM)
//! directly" — the residual path experiment E9/E12 demonstrates.
//!
//! Once a QP exists, [`Fabric::rdma_read`]/[`Fabric::rdma_write`] access
//! registered memory regions with **no credential checks at all**, modeling
//! the hardware's indifference to Unix ownership (cf. ReDMArk).

use crate::addr::{Proto, SocketAddr};
use crate::fabric::{ConnectError, Fabric};
use crate::socket::PeerInfo;
use eus_simos::{NodeId, Uid};
use std::fmt;

/// A registered RDMA memory region.
#[derive(Debug, Clone)]
pub struct MemoryRegion {
    /// Remote key handed to peers.
    pub rkey: u64,
    /// The uid that registered it (informational only — the NIC doesn't check).
    pub owner: Uid,
    /// Region contents.
    pub data: Vec<u8>,
}

/// How a queue pair was established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpSetupPath {
    /// Via a TCP control channel — subject to the UBF.
    TcpControl,
    /// Via the native IB connection manager — invisible to the UBF.
    NativeCm,
}

/// An established queue pair between two hosts.
#[derive(Debug, Clone)]
pub struct QueuePair {
    /// QP number.
    pub id: u64,
    /// Initiating host.
    pub src: NodeId,
    /// Target host.
    pub dst: NodeId,
    /// Identity of the initiating process (as known at setup).
    pub initiator: PeerInfo,
    /// Which setup path produced it.
    pub path: QpSetupPath,
}

/// RDMA operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdmaError {
    /// No region with that rkey on the target host.
    NoSuchRegion(u64),
    /// Unknown host.
    NoSuchHost(NodeId),
    /// Write exceeds the region bounds.
    OutOfBounds {
        /// Region size.
        len: usize,
        /// Attempted end offset.
        end: usize,
    },
}

impl fmt::Display for RdmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdmaError::NoSuchRegion(k) => write!(f, "no RDMA region with rkey {k}"),
            RdmaError::NoSuchHost(n) => write!(f, "no such host {n}"),
            RdmaError::OutOfBounds { len, end } => {
                write!(f, "RDMA access out of bounds: end {end} > len {len}")
            }
        }
    }
}

impl std::error::Error for RdmaError {}

impl Fabric {
    /// Register a memory region on a host; returns the rkey a peer would use.
    pub fn rdma_register(
        &mut self,
        host: NodeId,
        owner: Uid,
        data: Vec<u8>,
    ) -> Result<u64, RdmaError> {
        let h = self.host_mut(host).ok_or(RdmaError::NoSuchHost(host))?;
        let rkey = h.next_rkey;
        h.next_rkey += 1;
        h.rdma_regions
            .insert(rkey, MemoryRegion { rkey, owner, data });
        Ok(rkey)
    }

    /// Set up a QP using a TCP control channel to a rendezvous listener on
    /// the target — the path the UBF governs. The control connection stays
    /// open for the QP's lifetime (as MPI runtimes do).
    pub fn setup_qp_via_tcp(
        &mut self,
        src_host: NodeId,
        initiator: PeerInfo,
        rendezvous: SocketAddr,
    ) -> Result<QueuePair, ConnectError> {
        let (_conn, _setup) = self.connect(src_host, initiator, rendezvous, Proto::Tcp)?;
        let id = self.next_qp;
        self.next_qp += 1;
        Ok(QueuePair {
            id,
            src: src_host,
            dst: rendezvous.host,
            initiator,
            path: QpSetupPath::TcpControl,
        })
    }

    /// Set up a QP through the native IB connection manager: no TCP, no
    /// netfilter, no UBF. Succeeds whenever the target host exists — this is
    /// the residual channel the paper acknowledges.
    pub fn setup_qp_native_cm(
        &mut self,
        src_host: NodeId,
        initiator: PeerInfo,
        dst_host: NodeId,
    ) -> Result<QueuePair, RdmaError> {
        if self.host(src_host).is_none() {
            return Err(RdmaError::NoSuchHost(src_host));
        }
        if self.host(dst_host).is_none() {
            return Err(RdmaError::NoSuchHost(dst_host));
        }
        let id = self.next_qp;
        self.next_qp += 1;
        Ok(QueuePair {
            id,
            src: src_host,
            dst: dst_host,
            initiator,
            path: QpSetupPath::NativeCm,
        })
    }

    /// One-sided RDMA read: fetch a remote region's bytes. Note the absence
    /// of any uid comparison — the NIC moves bytes for whoever holds an rkey.
    pub fn rdma_read(&self, qp: &QueuePair, rkey: u64) -> Result<Vec<u8>, RdmaError> {
        let h = self.host(qp.dst).ok_or(RdmaError::NoSuchHost(qp.dst))?;
        h.rdma_regions
            .get(&rkey)
            .map(|r| r.data.clone())
            .ok_or(RdmaError::NoSuchRegion(rkey))
    }

    /// One-sided RDMA write into a remote region at an offset.
    pub fn rdma_write(
        &mut self,
        qp: &QueuePair,
        rkey: u64,
        offset: usize,
        bytes: &[u8],
    ) -> Result<(), RdmaError> {
        let h = self.host_mut(qp.dst).ok_or(RdmaError::NoSuchHost(qp.dst))?;
        let region = h
            .rdma_regions
            .get_mut(&rkey)
            .ok_or(RdmaError::NoSuchRegion(rkey))?;
        let end = offset + bytes.len();
        if end > region.data.len() {
            return Err(RdmaError::OutOfBounds {
                len: region.data.len(),
                end,
            });
        }
        region.data[offset..end].copy_from_slice(bytes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eus_simos::Gid;

    fn peer(uid: u32) -> PeerInfo {
        PeerInfo {
            uid: Uid(uid),
            egid: Gid(uid),
            pid: None,
        }
    }

    fn fabric() -> Fabric {
        let mut f = Fabric::new();
        f.add_host(NodeId(1));
        f.add_host(NodeId(2));
        f
    }

    #[test]
    fn tcp_setup_path_goes_through_connect() {
        let mut f = fabric();
        // No rendezvous listener → setup fails exactly like a TCP connect.
        let err = f
            .setup_qp_via_tcp(NodeId(1), peer(1), SocketAddr::new(NodeId(2), 18515))
            .unwrap_err();
        assert!(matches!(err, ConnectError::ConnectionRefused(_)));

        f.listen(NodeId(2), Proto::Tcp, 18515, peer(2)).unwrap();
        let qp = f
            .setup_qp_via_tcp(NodeId(1), peer(1), SocketAddr::new(NodeId(2), 18515))
            .unwrap();
        assert_eq!(qp.path, QpSetupPath::TcpControl);
    }

    #[test]
    fn native_cm_bypasses_everything() {
        let mut f = fabric();
        // Even with no listener and (in later crates) a UBF, native CM works.
        let qp = f.setup_qp_native_cm(NodeId(1), peer(1), NodeId(2)).unwrap();
        assert_eq!(qp.path, QpSetupPath::NativeCm);
        assert!(f.setup_qp_native_cm(NodeId(1), peer(1), NodeId(9)).is_err());
    }

    #[test]
    fn rdma_read_ignores_ownership() {
        let mut f = fabric();
        let rkey = f
            .rdma_register(NodeId(2), Uid(100), b"victim data".to_vec())
            .unwrap();
        let qp = f
            .setup_qp_native_cm(NodeId(1), peer(999), NodeId(2))
            .unwrap();
        // uid 999 reads uid 100's region: the modeled hardware gap.
        assert_eq!(f.rdma_read(&qp, rkey).unwrap(), b"victim data");
    }

    #[test]
    fn rdma_write_bounds_checked() {
        let mut f = fabric();
        let rkey = f.rdma_register(NodeId(2), Uid(1), vec![0u8; 8]).unwrap();
        let qp = f.setup_qp_native_cm(NodeId(1), peer(1), NodeId(2)).unwrap();
        f.rdma_write(&qp, rkey, 4, b"abcd").unwrap();
        assert_eq!(f.rdma_read(&qp, rkey).unwrap(), b"\0\0\0\0abcd");
        assert_eq!(
            f.rdma_write(&qp, rkey, 6, b"abcd").unwrap_err(),
            RdmaError::OutOfBounds { len: 8, end: 10 }
        );
        assert_eq!(
            f.rdma_read(&qp, 404).unwrap_err(),
            RdmaError::NoSuchRegion(404)
        );
    }
}
