//! Connection tracking.
//!
//! The UBF only inspects the *first* packet of a flow; conntrack recognizes
//! every subsequent packet (both directions) as `Established` and the
//! firewall's passthrough rule accepts it without touching the queue. That
//! is why the UBF's cost lands entirely on connection setup (paper Sec. IV-D,
//! measured in experiment E9).

use crate::addr::FiveTuple;
use std::collections::HashSet;

/// Per-host connection tracking table.
#[derive(Debug, Clone, Default)]
pub struct ConnTrack {
    flows: HashSet<FiveTuple>,
}

impl ConnTrack {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a flow as established (both directions).
    pub fn establish(&mut self, tuple: FiveTuple) {
        self.flows.insert(tuple);
        self.flows.insert(tuple.reversed());
    }

    /// Is this packet part of an established flow?
    pub fn is_established(&self, tuple: &FiveTuple) -> bool {
        self.flows.contains(tuple)
    }

    /// Remove a flow (connection close / conntrack expiry).
    pub fn remove(&mut self, tuple: &FiveTuple) {
        self.flows.remove(tuple);
        self.flows.remove(&tuple.reversed());
    }

    /// Number of tracked directional entries.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Proto, SocketAddr};
    use eus_simos::NodeId;

    fn tuple() -> FiveTuple {
        FiveTuple {
            proto: Proto::Tcp,
            src: SocketAddr::new(NodeId(1), 40000),
            dst: SocketAddr::new(NodeId(2), 8888),
        }
    }

    #[test]
    fn establish_tracks_both_directions() {
        let mut ct = ConnTrack::new();
        let t = tuple();
        assert!(!ct.is_established(&t));
        ct.establish(t);
        assert!(ct.is_established(&t));
        assert!(ct.is_established(&t.reversed()));
        assert_eq!(ct.len(), 2);
    }

    #[test]
    fn remove_clears_both_directions() {
        let mut ct = ConnTrack::new();
        let t = tuple();
        ct.establish(t);
        ct.remove(&t.reversed());
        assert!(ct.is_empty());
        assert!(!ct.is_established(&t));
    }

    #[test]
    fn distinct_flows_are_independent() {
        let mut ct = ConnTrack::new();
        let a = tuple();
        let mut b = tuple();
        b.src.port = 40001;
        ct.establish(a);
        assert!(!ct.is_established(&b));
    }
}
