//! A netfilter-style packet filter: ordered rules, first match wins, with
//! `NFQUEUE` verdicts that hand the decision to a userspace daemon — the
//! mechanism the User-Based Firewall builds on (paper Sec. IV-D).

use crate::addr::{FiveTuple, Port, Proto};
use std::fmt;

/// Conntrack state of the packet being evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// First packet of a flow.
    New,
    /// Part of an existing flow (conntrack hit).
    Established,
}

/// What a chain decides about a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Let it through.
    Accept,
    /// Silently discard.
    Drop,
    /// Punt to the userspace handler registered on this queue number.
    Queue(u16),
}

/// The packet attributes rules can match on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketMeta {
    /// Flow identity.
    pub tuple: FiveTuple,
    /// Conntrack state.
    pub state: ConnState,
    /// Payload size, for transfer-cost accounting.
    pub payload_len: usize,
}

/// Match conditions; `None` means "any".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuleMatch {
    /// Protocol to match.
    pub proto: Option<Proto>,
    /// Inclusive destination-port range.
    pub dport: Option<(Port, Port)>,
    /// Conntrack state to match.
    pub state: Option<ConnState>,
}

impl RuleMatch {
    /// Matches everything.
    pub fn any() -> Self {
        Self::default()
    }

    /// Does this rule match the packet?
    pub fn matches(&self, pkt: &PacketMeta) -> bool {
        if let Some(p) = self.proto {
            if pkt.tuple.proto != p {
                return false;
            }
        }
        if let Some((lo, hi)) = self.dport {
            let d = pkt.tuple.dst.port;
            if d < lo || d > hi {
                return false;
            }
        }
        if let Some(s) = self.state {
            if pkt.state != s {
                return false;
            }
        }
        true
    }
}

/// One rule: conditions plus verdict.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Match conditions.
    pub matcher: RuleMatch,
    /// Verdict when matched.
    pub verdict: Verdict,
    /// Human-readable comment (what `iptables -m comment` would carry).
    pub comment: &'static str,
}

/// An ordered rule chain with a default policy.
#[derive(Debug, Clone)]
pub struct Chain {
    /// Rules, evaluated top to bottom.
    pub rules: Vec<Rule>,
    /// Verdict when no rule matches.
    pub policy: Verdict,
}

impl Default for Chain {
    fn default() -> Self {
        Chain {
            rules: Vec::new(),
            policy: Verdict::Accept,
        }
    }
}

impl Chain {
    /// An empty accept-all chain.
    pub fn accept_all() -> Self {
        Self::default()
    }

    /// Append a rule.
    pub fn push(&mut self, matcher: RuleMatch, verdict: Verdict, comment: &'static str) {
        self.rules.push(Rule {
            matcher,
            verdict,
            comment,
        });
    }

    /// First-match evaluation.
    pub fn evaluate(&self, pkt: &PacketMeta) -> Verdict {
        for r in &self.rules {
            if r.matcher.matches(pkt) {
                return r.verdict;
            }
        }
        self.policy
    }
}

/// A host's firewall: input and output chains (the two the UBF uses).
#[derive(Debug, Clone, Default)]
pub struct Firewall {
    /// Applied to packets arriving at this host.
    pub input: Chain,
    /// Applied to packets leaving this host.
    pub output: Chain,
}

impl Firewall {
    /// Accept-everything firewall (vanilla node).
    pub fn open() -> Self {
        Self::default()
    }
}

impl fmt::Display for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            writeln!(f, "{i}: {:?} -> {:?} # {}", r.matcher, r.verdict, r.comment)?;
        }
        write!(f, "policy {:?}", self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::SocketAddr;
    use eus_simos::NodeId;

    fn pkt(proto: Proto, dport: Port, state: ConnState) -> PacketMeta {
        PacketMeta {
            tuple: FiveTuple {
                proto,
                src: SocketAddr::new(NodeId(1), 40000),
                dst: SocketAddr::new(NodeId(2), dport),
            },
            state,
            payload_len: 0,
        }
    }

    #[test]
    fn first_match_wins() {
        let mut c = Chain::accept_all();
        c.push(
            RuleMatch {
                state: Some(ConnState::Established),
                ..RuleMatch::any()
            },
            Verdict::Accept,
            "established passthrough",
        );
        c.push(
            RuleMatch {
                proto: Some(Proto::Tcp),
                dport: Some((1024, 65535)),
                state: Some(ConnState::New),
            },
            Verdict::Queue(0),
            "ubf inspection",
        );
        assert_eq!(
            c.evaluate(&pkt(Proto::Tcp, 8888, ConnState::Established)),
            Verdict::Accept
        );
        assert_eq!(
            c.evaluate(&pkt(Proto::Tcp, 8888, ConnState::New)),
            Verdict::Queue(0)
        );
        // Below the inspected range: falls to policy.
        assert_eq!(
            c.evaluate(&pkt(Proto::Tcp, 22, ConnState::New)),
            Verdict::Accept
        );
    }

    #[test]
    fn match_dimensions() {
        let m = RuleMatch {
            proto: Some(Proto::Udp),
            dport: Some((5000, 6000)),
            state: None,
        };
        assert!(m.matches(&pkt(Proto::Udp, 5500, ConnState::New)));
        assert!(!m.matches(&pkt(Proto::Tcp, 5500, ConnState::New)));
        assert!(!m.matches(&pkt(Proto::Udp, 4999, ConnState::New)));
        assert!(m.matches(&pkt(Proto::Udp, 6000, ConnState::Established)));
        assert!(RuleMatch::any().matches(&pkt(Proto::Tcp, 1, ConnState::New)));
    }

    #[test]
    fn default_policy_applies() {
        let mut c = Chain {
            rules: vec![],
            policy: Verdict::Drop,
        };
        assert_eq!(
            c.evaluate(&pkt(Proto::Tcp, 80, ConnState::New)),
            Verdict::Drop
        );
        c.push(RuleMatch::any(), Verdict::Accept, "allow all");
        assert_eq!(
            c.evaluate(&pkt(Proto::Tcp, 80, ConnState::New)),
            Verdict::Accept
        );
    }

    #[test]
    fn display_renders_rules() {
        let mut c = Chain::accept_all();
        c.push(RuleMatch::any(), Verdict::Drop, "deny everything");
        let s = c.to_string();
        assert!(s.contains("deny everything"));
        assert!(s.contains("policy Accept"));
    }
}
