//! Addressing types for the simulated cluster network.

use eus_simos::NodeId;
use std::fmt;

/// Transport protocol. The UBF acts on both TCP and UDP (Appendix); other
/// protocols are assumed disabled at the host firewall on LLSC systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Proto {
    /// Connection-oriented.
    Tcp,
    /// Datagram; "connections" are conntrack flows.
    Udp,
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Proto::Tcp => "tcp",
            Proto::Udp => "udp",
        })
    }
}

/// A port number.
pub type Port = u16;

/// First non-privileged port: binding below this requires root.
pub const PRIVILEGED_PORT_MAX: Port = 1023;

/// First port of the ephemeral range used for client sockets.
pub const EPHEMERAL_BASE: Port = 32768;

/// A (host, port) endpoint. Hosts are cluster nodes, so we address by
/// [`NodeId`] directly rather than modeling IP assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SocketAddr {
    /// The node.
    pub host: NodeId,
    /// The port.
    pub port: Port,
}

impl SocketAddr {
    /// Construct an endpoint.
    pub fn new(host: NodeId, port: Port) -> Self {
        SocketAddr { host, port }
    }
}

impl fmt::Display for SocketAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

/// A flow identity: protocol plus both endpoints, as conntrack keys flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FiveTuple {
    /// Transport protocol.
    pub proto: Proto,
    /// Initiator endpoint.
    pub src: SocketAddr,
    /// Responder endpoint.
    pub dst: SocketAddr,
}

impl FiveTuple {
    /// The reverse direction of this flow.
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            proto: self.proto,
            src: self.dst,
            dst: self.src,
        }
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} -> {}", self.proto, self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_reverse() {
        let t = FiveTuple {
            proto: Proto::Tcp,
            src: SocketAddr::new(NodeId(1), 40000),
            dst: SocketAddr::new(NodeId(2), 8888),
        };
        assert_eq!(t.to_string(), "tcp node:1:40000 -> node:2:8888");
        let r = t.reversed();
        assert_eq!(r.src.host, NodeId(2));
        assert_eq!(r.reversed(), t);
    }
}
