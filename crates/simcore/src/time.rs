//! Simulated time.
//!
//! All time-shaped quantities in the reproduction run on an explicit
//! discrete-event clock rather than the wall clock, mirroring how the paper's
//! performance claims (connection-setup cost, scheduler utilization, GPU scrub
//! time) are properties of the *modeled* system. Resolution is one
//! microsecond, which is fine enough to express network round-trips and
//! coarse enough that multi-hour scheduling traces fit comfortably in `u64`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microsecond count since the epoch.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time since the epoch expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from nanoseconds, rounding *up* so that a nonzero cost never
    /// silently disappears.
    #[inline]
    pub const fn from_nanos_ceil(ns: u64) -> Self {
        SimDuration(ns.div_ceil(1_000))
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest microsecond.
    /// Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e6).round() as u64)
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// True when the duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_micros(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fmt_micros(self.0))
    }
}

fn fmt_micros(us: u64) -> String {
    if us >= 10_000_000 {
        format!("{:.3}s", us as f64 / 1e6)
    } else if us >= 10_000 {
        format!("{:.3}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_nanos_ceil(1).as_micros(), 1);
        assert_eq!(SimDuration::from_nanos_ceil(1_000).as_micros(), 1);
        assert_eq!(SimDuration::from_nanos_ceil(1_001).as_micros(), 2);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!((t - SimTime::from_secs(1)).as_micros(), 500_000);
        assert_eq!((SimDuration::from_secs(1) * 3 / 2).as_micros(), 1_500_000);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(42)), "42.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(70)), "70.000s");
    }
}
