//! Deterministic randomness for experiments.
//!
//! Every stochastic component takes a [`SimRng`] seeded from the experiment
//! harness, so any table row can be regenerated bit-for-bit. The distribution
//! samplers the workload generator needs (exponential, Poisson, Zipf,
//! bounded Pareto, log-normal) are implemented here directly against the
//! `rand` core API to keep the dependency set to the approved list.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded pseudo-random source with the distribution samplers used across
/// the reproduction.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Construct from a 64-bit seed. Identical seeds yield identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream; used to give each subsystem its
    /// own RNG so adding draws in one place does not perturb another.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let s = self.inner.gen::<u64>() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(s)
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform index in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty collection");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Uniformly pick a reference from a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Exponential draw with the given rate (mean `1/rate`).
    /// Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        // Inverse CDF; guard the log away from ln(0).
        let u = 1.0 - self.f64();
        -u.ln() / rate
    }

    /// Poisson draw with mean `lambda`.
    ///
    /// Uses Knuth's product-of-uniforms method for small means and a normal
    /// approximation (rounded, clamped at zero) for large ones, where the
    /// relative error is far below what any experiment here can resolve.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "poisson mean must be non-negative");
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let l = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.f64();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let n = self.normal(lambda, lambda.sqrt());
            n.round().max(0.0) as u64
        }
    }

    /// Normal draw via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "std_dev must be non-negative");
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Log-normal draw parameterized by the underlying normal's `mu`/`sigma`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Bounded Pareto draw on `[lo, hi]` with shape `alpha`; a standard model
    /// for heavy-tailed job runtimes.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        assert!(alpha > 0.0 && lo > 0.0 && hi > lo, "bad pareto parameters");
        let u = self.f64();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Access the underlying `rand` RNG for interop (e.g., proptest seeds).
    pub fn raw(&mut self) -> &mut impl RngCore {
        &mut self.inner
    }
}

/// Zipf-distributed index sampler over `n` ranks with exponent `s`.
///
/// Precomputes the cumulative distribution once (O(n) setup, O(log n) per
/// draw), which suits the workload generator's "few users submit most jobs"
/// activity model.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over ranks `0..n`. Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over zero ranks");
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `[0, n)`; rank 0 is the most likely.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false: constructor rejects `n == 0`.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut root = SimRng::seed_from_u64(7);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let va: Vec<u64> = (0..8).map(|_| a.range_u64(0, 1 << 30)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.range_u64(0, 1 << 30)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn poisson_small_and_large_means() {
        let mut rng = SimRng::seed_from_u64(2);
        let n = 20_000;
        for lambda in [0.5, 4.0, 80.0] {
            let mean: f64 = (0..n).map(|_| rng.poisson(lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() / lambda.max(1.0) < 0.05,
                "lambda {lambda} mean {mean}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::seed_from_u64(3);
        let n = 40_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 3.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn bounded_pareto_within_bounds() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..5_000 {
            let x = rng.bounded_pareto(1.5, 1.0, 1000.0);
            assert!((1.0..=1000.0).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn zipf_rank_zero_most_frequent() {
        let mut rng = SimRng::seed_from_u64(5);
        let z = Zipf::new(50, 1.1);
        let mut counts = vec![0usize; 50];
        for _ in 0..30_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert_eq!(counts[0], max, "rank 0 should dominate: {counts:?}");
        assert!(counts[0] > counts[10] && counts[10] > 0);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let mut rng = SimRng::seed_from_u64(6);
        let z = Zipf::new(10, 0.0);
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 5_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(8);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range values clamp rather than panic.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }
}
