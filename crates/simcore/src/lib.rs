//! # eus-simcore — simulation substrate for the Enhanced User Separation reproduction
//!
//! The paper's evaluation platform is a production HPC cluster; this crate is
//! the stand-in clock and measurement bench everything else runs on:
//!
//! * [`engine::Sim`] — a deterministic discrete-event engine (FIFO tiebreak at
//!   equal timestamps) generic over a caller-owned world.
//! * [`time::SimTime`] / [`time::SimDuration`] — microsecond-resolution
//!   simulated time.
//! * [`rng::SimRng`] — seeded randomness with the exponential / Poisson /
//!   Zipf / bounded-Pareto samplers the workload generator needs.
//! * [`metrics`] — counters, exact-quantile histograms, and time-weighted
//!   integrals (utilization).
//! * [`series`] — labeled experiment output consumed by the bench harness.
//!
//! Nothing in this crate knows about users, files, or firewalls; it exists so
//! that every experiment table in EXPERIMENTS.md is a pure function of a seed.

#![warn(missing_docs)]

pub mod engine;
pub mod metrics;
pub mod rng;
pub mod series;
pub mod time;

pub use engine::Sim;
pub use metrics::{Counter, Histogram, Summary, TimeWeighted};
pub use rng::{SimRng, Zipf};
pub use series::{Chart, Series};
pub use time::{SimDuration, SimTime};
