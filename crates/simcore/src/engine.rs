//! Discrete-event simulation engine.
//!
//! The engine is generic over a world type `W` owned by the caller; events are
//! boxed `FnOnce(&mut W, &mut Sim<W>)` closures, so any subsystem can schedule
//! follow-on work without the engine knowing its types. Events at equal
//! timestamps fire in insertion order (a strict FIFO tiebreak), which keeps
//! runs deterministic for a fixed seed — a requirement for reproducible
//! experiment tables.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event action: runs against the world and may schedule further events.
pub type Action<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    action: Action<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Discrete-event simulator: a clock plus a priority queue of pending events.
pub struct Sim<W> {
    now: SimTime,
    seq: u64,
    fired: u64,
    heap: BinaryHeap<Scheduled<W>>,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// A simulator positioned at `t = 0` with an empty event queue.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            fired: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far.
    #[inline]
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `action` to run at absolute time `at`. Scheduling in the past
    /// is a logic error; the event is clamped to `now` so causality holds.
    pub fn schedule_at(&mut self, at: SimTime, action: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled {
            at,
            seq,
            action: Box::new(action),
        });
    }

    /// Schedule `action` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut W, &mut Sim<W>) + 'static,
    ) {
        self.schedule_at(self.now + delay, action);
    }

    /// Fire the next event, if any. Returns `false` when the queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        match self.heap.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.now, "event queue went backwards");
                self.now = ev.at;
                self.fired += 1;
                (ev.action)(world, self);
                true
            }
            None => false,
        }
    }

    /// Run until the queue drains. Returns the number of events fired.
    pub fn run(&mut self, world: &mut W) -> u64 {
        let start = self.fired;
        while self.step(world) {}
        self.fired - start
    }

    /// Run until the queue drains or the clock would pass `horizon`; events
    /// scheduled after the horizon remain queued. Returns events fired.
    pub fn run_until(&mut self, world: &mut W, horizon: SimTime) -> u64 {
        let start = self.fired;
        while let Some(head) = self.heap.peek() {
            if head.at > horizon {
                break;
            }
            self.step(world);
        }
        // Advance the clock to the horizon so utilization integrals close.
        if self.now < horizon {
            self.now = horizon;
        }
        self.fired - start
    }

    /// Advance the clock without firing anything (useful in tests and in cost
    /// accounting where work happens "instantaneously" after a modeled delay).
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    #[test]
    fn fires_in_time_order() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_secs(2), |w: &mut World, s| {
            w.log.push((s.now().as_micros(), "b"))
        });
        sim.schedule_at(SimTime::from_secs(1), |w: &mut World, s| {
            w.log.push((s.now().as_micros(), "a"))
        });
        sim.schedule_at(SimTime::from_secs(3), |w: &mut World, s| {
            w.log.push((s.now().as_micros(), "c"))
        });
        assert_eq!(sim.run(&mut w), 3);
        assert_eq!(
            w.log,
            vec![(1_000_000, "a"), (2_000_000, "b"), (3_000_000, "c")]
        );
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        for name in ["first", "second", "third"] {
            sim.schedule_at(SimTime::from_secs(1), move |w: &mut World, _| {
                w.log.push((0, name))
            });
        }
        sim.run(&mut w);
        let names: Vec<_> = w.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_secs(1), |_, s| {
            s.schedule_in(SimDuration::from_secs(1), |w: &mut World, s| {
                w.log.push((s.now().as_micros(), "chained"));
            });
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(2_000_000, "chained")]);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_secs(1), |w: &mut World, _| {
            w.log.push((1, "in"))
        });
        sim.schedule_at(SimTime::from_secs(10), |w: &mut World, _| {
            w.log.push((10, "out"))
        });
        let fired = sim.run_until(&mut w, SimTime::from_secs(5));
        assert_eq!(fired, 1);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        // The out-of-horizon event still fires later.
        sim.run(&mut w);
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.advance(SimDuration::from_secs(5));
        sim.schedule_at(SimTime::from_secs(1), |w: &mut World, s| {
            w.log.push((s.now().as_micros(), "late"));
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(5_000_000, "late")]);
    }
}
