//! Measurement primitives shared by every experiment.
//!
//! Three shapes cover everything the reproduction reports:
//! * [`Counter`] — monotone event counts (connections allowed/denied, …).
//! * [`Histogram`] — sampled values with exact quantiles (latencies, waits).
//! * [`TimeWeighted`] — a value integrated over simulated time (allocated
//!   cores → utilization).

use crate::time::{SimDuration, SimTime};
use std::fmt;
use std::sync::OnceLock;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn incr(&mut self) {
        self.count += 1;
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.count
    }
}

/// Sampled-value histogram with exact aggregates and optional bounded
/// sample retention.
///
/// The default (exact) mode retains every observation, buying *exact*
/// quantiles rather than bucketed approximations — fine for the few
/// hundred thousand samples typical experiments produce. Million-event
/// storms instead use [`Histogram::with_reservoir`]: a fixed-capacity
/// uniform reservoir (Algorithm R with a deterministic generator) bounds
/// memory while `count`, `mean`, `std_dev`, `min`, and `max` stay exact
/// from running aggregates; only the quantiles become estimates.
///
/// `summary()` sorts at most once per mutation: the sorted view is cached
/// in a [`OnceLock`] (kept `Sync`) and invalidated whenever a sample
/// lands.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    /// Reservoir capacity; `None` retains everything (exact mode).
    cap: Option<usize>,
    /// Items offered to the reservoir (Algorithm R index), ≥ retained.
    offered: u64,
    /// Deterministic LCG state for reservoir eviction.
    rng: u64,
    // Exact running aggregates, valid in both modes.
    count: u64,
    sum: f64,
    sumsq: f64,
    min: f64,
    max: f64,
    /// Sorted copy of `samples`, built lazily by `summary()` and dropped
    /// on every mutation.
    sorted: OnceLock<Vec<f64>>,
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl Histogram {
    /// An empty histogram retaining every observation (exact quantiles).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty histogram retaining at most `cap` samples (min 1) in a
    /// uniform reservoir. Aggregates stay exact; quantiles are estimated
    /// from the reservoir.
    pub fn with_reservoir(cap: usize) -> Self {
        Histogram {
            cap: Some(cap.max(1)),
            // Fixed odd seed: runs are reproducible without threading a
            // generator through every recording site.
            rng: 0x9e37_79b9_7f4a_7c15,
            ..Self::default()
        }
    }

    /// Reservoir capacity, `None` in exact mode.
    pub fn reservoir_capacity(&self) -> Option<usize> {
        self.cap
    }

    /// Record one observation. Non-finite values are rejected loudly: they
    /// always indicate a harness bug.
    pub fn record(&mut self, v: f64) {
        assert!(v.is_finite(), "non-finite sample {v}");
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        self.sumsq += v * v;
        self.retain(v);
    }

    /// Keep (or reservoir-sample) one value into `samples`.
    fn retain(&mut self, v: f64) {
        self.sorted.take();
        let i = self.offered;
        self.offered += 1;
        match self.cap {
            None => self.samples.push(v),
            Some(cap) => {
                if self.samples.len() < cap {
                    self.samples.push(v);
                } else {
                    // Algorithm R: replace a uniform slot in [0, i].
                    let j = self.next_u64() % (i + 1);
                    if (j as usize) < cap {
                        self.samples[j as usize] = v;
                    }
                }
            }
        }
    }

    /// Deterministic xorshift step for reservoir eviction.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Record a simulated duration, in microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros() as f64);
    }

    /// Number of observations (exact, even when retention is sampled).
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Retained samples, in retention order (all of them in exact mode).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mean of the observations (0 when empty); exact in both modes.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum / self.count as f64
    }

    /// Full summary; `None` when empty. Count, mean, std-dev, min, and max
    /// are exact; quantiles come from the retained samples. The sorted
    /// view is cached across calls and rebuilt only after a mutation.
    pub fn summary(&self) -> Option<Summary> {
        if self.count == 0 {
            return None;
        }
        let sorted = self.sorted.get_or_init(|| {
            let mut s = self.samples.clone();
            s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            s
        });
        let n = sorted.len();
        let mean = self.mean();
        let var = (self.sumsq / self.count as f64 - mean * mean).max(0.0);
        let q = |p: f64| -> f64 {
            // Nearest-rank on the sorted retained samples.
            let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
            sorted[idx]
        };
        Some(Summary {
            count: self.count as usize,
            mean,
            std_dev: var.sqrt(),
            min: self.min,
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
            max: self.max,
        })
    }

    /// Merge another histogram into this one. Aggregates merge exactly;
    /// the other side's retained samples are offered to this side's
    /// retention (so a reservoir stays bounded).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sumsq += other.sumsq;
        for &v in &other.samples {
            self.retain(v);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.2} p50={:.2} p95={:.2} p99={:.2} max={:.2}",
            self.count, self.mean, self.std_dev, self.min, self.p50, self.p95, self.p99, self.max
        )
    }
}

/// A step function of simulated time, integrated exactly.
///
/// Call [`TimeWeighted::set`] whenever the tracked quantity changes; the
/// integral between updates accumulates `value × elapsed`. Dividing by the
/// observation window gives the time-weighted average — this is how node and
/// core utilization are computed in the scheduler experiments.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    started: SimTime,
    last_change: SimTime,
    current: f64,
    integral: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Start tracking at `start` with initial value `initial`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            started: start,
            last_change: start,
            current: initial,
            integral: 0.0,
            peak: initial,
        }
    }

    /// Update the tracked value as of time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        assert!(
            now >= self.last_change,
            "time went backwards: {now} < {}",
            self.last_change
        );
        self.integral += self.current * now.since(self.last_change).as_secs_f64();
        self.last_change = now;
        self.current = value;
        if value > self.peak {
            self.peak = value;
        }
    }

    /// Adjust the tracked value by a delta as of time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let next = self.current + delta;
        self.set(now, next);
    }

    /// The value currently in effect.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Highest value observed.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Integral of the value from the start through `now`, in value·seconds.
    pub fn integral(&self, now: SimTime) -> f64 {
        self.integral + self.current * now.since(self.last_change).as_secs_f64()
    }

    /// Time-weighted mean over `[start, now]`; 0 for an empty window.
    pub fn average(&self, now: SimTime) -> f64 {
        let window = now.since(self.started).as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        self.integral(now) / window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_summary_exact() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        let s = h.summary().unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    fn histogram_empty_summary_none() {
        assert!(Histogram::new().summary().is_none());
        assert_eq!(Histogram::new().mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn histogram_rejects_nan() {
        Histogram::new().record(f64::NAN);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1.0);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_average() {
        // 4 cores busy for 10s, then 0 for 10s => average 2 over 20s.
        let mut tw = TimeWeighted::new(SimTime::ZERO, 4.0);
        tw.set(SimTime::from_secs(10), 0.0);
        assert!((tw.average(SimTime::from_secs(20)) - 2.0).abs() < 1e-9);
        assert_eq!(tw.peak(), 4.0);
    }

    #[test]
    fn time_weighted_add_and_integral() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.add(SimTime::from_secs(5), 2.0); // 0 for 5s
        tw.add(SimTime::from_secs(10), -1.0); // 2 for 5s
                                              // integral at t=20: 0*5 + 2*5 + 1*10 = 20
        assert!((tw.integral(SimTime::from_secs(20)) - 20.0).abs() < 1e-9);
        assert_eq!(tw.current(), 1.0);
    }

    #[test]
    fn time_weighted_empty_window() {
        let tw = TimeWeighted::new(SimTime::from_secs(5), 3.0);
        assert_eq!(tw.average(SimTime::from_secs(5)), 0.0);
    }

    #[test]
    fn histogram_reservoir_bounds_memory_keeps_aggregates_exact() {
        let mut h = Histogram::with_reservoir(64);
        for v in 1..=100_000u64 {
            h.record(v as f64);
        }
        assert_eq!(h.samples().len(), 64); // retention bounded
        assert_eq!(h.len(), 100_000); // count exact
        let s = h.summary().unwrap();
        assert_eq!(s.count, 100_000);
        assert!((s.mean - 50_000.5).abs() < 1e-6);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100_000.0);
        // Uniform reservoir over a uniform stream: the median estimate
        // should land in the broad middle of the range.
        assert!(s.p50 > 20_000.0 && s.p50 < 80_000.0, "p50={}", s.p50);
    }

    #[test]
    fn histogram_reservoir_below_capacity_is_exact() {
        let mut h = Histogram::with_reservoir(128);
        for v in 1..=100 {
            h.record(v as f64);
        }
        let s = h.summary().unwrap();
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    fn histogram_summary_cache_invalidated_on_record() {
        let mut h = Histogram::new();
        h.record(10.0);
        assert_eq!(h.summary().unwrap().max, 10.0);
        // A second record must drop the cached sorted view.
        h.record(20.0);
        let s = h.summary().unwrap();
        assert_eq!(s.max, 20.0);
        assert_eq!(s.count, 2);
        // Repeated summaries on an unchanged histogram agree (cache hit).
        assert_eq!(h.summary(), h.summary());
    }

    #[test]
    fn histogram_summary_cache_invalidated_on_merge() {
        let mut a = Histogram::new();
        a.record(1.0);
        assert_eq!(a.summary().unwrap().max, 1.0);
        let mut b = Histogram::new();
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.summary().unwrap().max, 9.0);
        assert_eq!(a.summary().unwrap().count, 2);
    }

    #[test]
    fn histogram_merge_into_reservoir_stays_bounded() {
        let mut a = Histogram::with_reservoir(8);
        let mut b = Histogram::new();
        for v in 1..=100 {
            b.record(v as f64);
        }
        a.merge(&b);
        assert_eq!(a.samples().len(), 8);
        assert_eq!(a.len(), 100);
        assert_eq!(a.summary().unwrap().min, 1.0);
        assert_eq!(a.summary().unwrap().max, 100.0);
    }

    #[test]
    fn time_weighted_zero_duration_interval() {
        // Two value changes at the same instant: the intermediate value
        // contributes nothing; only the final one integrates forward.
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.set(SimTime::from_secs(5), 100.0);
        tw.set(SimTime::from_secs(5), 2.0); // zero-duration spike
        assert!((tw.integral(SimTime::from_secs(10)) - (1.0 * 5.0 + 2.0 * 5.0)).abs() < 1e-9);
        // …but the spike still registers as the peak.
        assert_eq!(tw.peak(), 100.0);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn time_weighted_out_of_order_update_panics() {
        let mut tw = TimeWeighted::new(SimTime::from_secs(10), 1.0);
        tw.set(SimTime::from_secs(5), 2.0);
    }

    #[test]
    fn time_weighted_out_of_order_finalize_saturates() {
        // Reading the integral *before* the last change must not go
        // negative: `since` saturates, so the pending interval contributes
        // zero rather than rewinding accumulated area.
        let mut tw = TimeWeighted::new(SimTime::ZERO, 4.0);
        tw.set(SimTime::from_secs(10), 0.0); // integral now 40
        assert!((tw.integral(SimTime::from_secs(5)) - 40.0).abs() < 1e-9);
        assert!((tw.average(SimTime::from_secs(5)) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_change_at_exact_sample_boundary() {
        // Value changes at t=10; sampling the integral at exactly t=10
        // must attribute [0,10) to the old value and nothing to the new,
        // whether read before or after the change lands.
        let mut tw = TimeWeighted::new(SimTime::ZERO, 3.0);
        assert!((tw.integral(SimTime::from_secs(10)) - 30.0).abs() < 1e-9);
        tw.set(SimTime::from_secs(10), 7.0);
        assert!((tw.integral(SimTime::from_secs(10)) - 30.0).abs() < 1e-9);
        // One second later the new value has taken over.
        assert!((tw.integral(SimTime::from_secs(11)) - 37.0).abs() < 1e-9);
        assert!((tw.average(SimTime::from_secs(11)) - 37.0 / 11.0).abs() < 1e-9);
    }
}
