//! Measurement primitives shared by every experiment.
//!
//! Three shapes cover everything the reproduction reports:
//! * [`Counter`] — monotone event counts (connections allowed/denied, …).
//! * [`Histogram`] — sampled values with exact quantiles (latencies, waits).
//! * [`TimeWeighted`] — a value integrated over simulated time (allocated
//!   cores → utilization).

use crate::time::{SimDuration, SimTime};
use std::fmt;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn incr(&mut self) {
        self.count += 1;
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.count
    }
}

/// Sampled-value histogram retaining all observations.
///
/// Experiments here run at most a few hundred thousand samples, so keeping
/// the raw values (8 bytes each) is cheap and buys *exact* quantiles rather
/// than bucketed approximations. `summary()` sorts a copy on demand.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation. Non-finite values are rejected loudly: they
    /// always indicate a harness bug.
    pub fn record(&mut self, v: f64) {
        assert!(v.is_finite(), "non-finite sample {v}");
        self.samples.push(v);
    }

    /// Record a simulated duration, in microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros() as f64);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Raw samples, in arrival order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Full summary; `None` when empty.
    pub fn summary(&self) -> Option<Summary> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = sorted.len();
        let mean = self.mean();
        let var = sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let q = |p: f64| -> f64 {
            // Nearest-rank on the sorted samples.
            let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
            sorted[idx]
        };
        Some(Summary {
            count: n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
            max: sorted[n - 1],
        })
    }

    /// Merge another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.2} p50={:.2} p95={:.2} p99={:.2} max={:.2}",
            self.count, self.mean, self.std_dev, self.min, self.p50, self.p95, self.p99, self.max
        )
    }
}

/// A step function of simulated time, integrated exactly.
///
/// Call [`TimeWeighted::set`] whenever the tracked quantity changes; the
/// integral between updates accumulates `value × elapsed`. Dividing by the
/// observation window gives the time-weighted average — this is how node and
/// core utilization are computed in the scheduler experiments.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    started: SimTime,
    last_change: SimTime,
    current: f64,
    integral: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Start tracking at `start` with initial value `initial`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            started: start,
            last_change: start,
            current: initial,
            integral: 0.0,
            peak: initial,
        }
    }

    /// Update the tracked value as of time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        assert!(
            now >= self.last_change,
            "time went backwards: {now} < {}",
            self.last_change
        );
        self.integral += self.current * now.since(self.last_change).as_secs_f64();
        self.last_change = now;
        self.current = value;
        if value > self.peak {
            self.peak = value;
        }
    }

    /// Adjust the tracked value by a delta as of time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let next = self.current + delta;
        self.set(now, next);
    }

    /// The value currently in effect.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Highest value observed.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Integral of the value from the start through `now`, in value·seconds.
    pub fn integral(&self, now: SimTime) -> f64 {
        self.integral + self.current * now.since(self.last_change).as_secs_f64()
    }

    /// Time-weighted mean over `[start, now]`; 0 for an empty window.
    pub fn average(&self, now: SimTime) -> f64 {
        let window = now.since(self.started).as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        self.integral(now) / window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_summary_exact() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        let s = h.summary().unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    fn histogram_empty_summary_none() {
        assert!(Histogram::new().summary().is_none());
        assert_eq!(Histogram::new().mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn histogram_rejects_nan() {
        Histogram::new().record(f64::NAN);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1.0);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_average() {
        // 4 cores busy for 10s, then 0 for 10s => average 2 over 20s.
        let mut tw = TimeWeighted::new(SimTime::ZERO, 4.0);
        tw.set(SimTime::from_secs(10), 0.0);
        assert!((tw.average(SimTime::from_secs(20)) - 2.0).abs() < 1e-9);
        assert_eq!(tw.peak(), 4.0);
    }

    #[test]
    fn time_weighted_add_and_integral() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.add(SimTime::from_secs(5), 2.0); // 0 for 5s
        tw.add(SimTime::from_secs(10), -1.0); // 2 for 5s
                                              // integral at t=20: 0*5 + 2*5 + 1*10 = 20
        assert!((tw.integral(SimTime::from_secs(20)) - 20.0).abs() < 1e-9);
        assert_eq!(tw.current(), 1.0);
    }

    #[test]
    fn time_weighted_empty_window() {
        let tw = TimeWeighted::new(SimTime::from_secs(5), 3.0);
        assert_eq!(tw.average(SimTime::from_secs(5)), 0.0);
    }
}
