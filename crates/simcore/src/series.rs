//! Labeled result series for experiment output.
//!
//! An experiment produces one [`Series`] per configuration (e.g. one per
//! scheduling policy) holding `(x, y)` points, plus optional free-form notes.
//! The bench crate renders these as aligned text tables and CSV so every
//! table in EXPERIMENTS.md can be regenerated from a single binary run.

use std::fmt;

/// One named sequence of `(x, y)` measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label, e.g. `"whole-node"`.
    pub label: String,
    /// Measurement points in insertion order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// An empty series with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at the given x, if a point with exactly that x exists.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|(px, _)| *px == x).map(|(_, y)| *y)
    }

    /// Largest y value, `None` when empty.
    pub fn y_max(&self) -> Option<f64> {
        self.points.iter().map(|&(_, y)| y).fold(None, |acc, y| {
            Some(match acc {
                Some(m) if m >= y => m,
                _ => y,
            })
        })
    }
}

/// A set of series sharing an x axis — one experiment figure.
#[derive(Debug, Clone, Default)]
pub struct Chart {
    /// Figure title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// All series.
    pub series: Vec<Series>,
}

impl Chart {
    /// A chart with axis labels and no data.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Chart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a series and return a mutable handle to it.
    pub fn add_series(&mut self, label: impl Into<String>) -> &mut Series {
        self.series.push(Series::new(label));
        self.series.last_mut().expect("just pushed")
    }

    /// Find a series by label.
    pub fn get(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render as CSV: header `x,<label>,...`, one row per x of the first
    /// series (missing values are blank). Panics if series disagree on x
    /// values — experiments always sweep the same grid.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label.replace(',', ";"));
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label.replace(',', ";"));
        }
        out.push('\n');
        let Some(first) = self.series.first() else {
            return out;
        };
        for (i, &(x, _)) in first.points.iter().enumerate() {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                let (sx, sy) = s.points[i];
                assert!(
                    (sx - x).abs() < 1e-9,
                    "series '{}' x grid mismatch at row {i}",
                    s.label
                );
                out.push_str(&format!(",{sy}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Chart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {} ({} vs {})", self.title, self.y_label, self.x_label)?;
        write!(f, "{}", self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_lookup() {
        let mut s = Series::new("a");
        s.push(1.0, 10.0);
        s.push(2.0, 30.0);
        assert_eq!(s.y_at(2.0), Some(30.0));
        assert_eq!(s.y_at(3.0), None);
        assert_eq!(s.y_max(), Some(30.0));
        assert_eq!(Series::new("empty").y_max(), None);
    }

    #[test]
    fn chart_csv_layout() {
        let mut c = Chart::new("util", "jobs", "percent");
        {
            let s = c.add_series("shared");
            s.push(10.0, 90.0);
            s.push(20.0, 95.0);
        }
        {
            let s = c.add_series("exclusive");
            s.push(10.0, 40.0);
            s.push(20.0, 35.0);
        }
        let csv = c.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "jobs,shared,exclusive");
        assert_eq!(lines[1], "10,90,40");
        assert_eq!(lines[2], "20,95,35");
        assert!(c.get("shared").is_some());
        assert!(c.get("none").is_none());
    }

    #[test]
    #[should_panic(expected = "x grid mismatch")]
    fn chart_csv_rejects_misaligned_grids() {
        let mut c = Chart::new("t", "x", "y");
        c.add_series("a").push(1.0, 1.0);
        c.add_series("b").push(2.0, 2.0);
        let _ = c.to_csv();
    }
}
