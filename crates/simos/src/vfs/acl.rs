//! POSIX access control lists (the extended entries beyond the mode bits).
//!
//! Representation follows Linux: the **mask** is stored in the file's
//! group-class mode bits (see [`super::perm::Mode::group`]); this struct holds
//! the `ACL_GROUP_OBJ` permissions plus named `ACL_USER`/`ACL_GROUP` entries.
//! The paper's File Permission Handler restricts *which* entries a user may
//! set; that check lives in the VFS `setfacl` path so the data type itself
//! stays policy-free.

use crate::ids::{Gid, Uid};
use std::collections::BTreeMap;
use std::fmt;

use super::perm::Perm;

/// Extended ACL entries for one inode.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PosixAcl {
    /// Permissions of the owning group (`ACL_GROUP_OBJ`); with an ACL present
    /// the mode's group bits become the mask, so this is stored here.
    pub group_obj: Perm,
    users: BTreeMap<Uid, Perm>,
    groups: BTreeMap<Gid, Perm>,
}

impl PosixAcl {
    /// An ACL with the given owning-group permissions and no named entries.
    pub fn new(group_obj: Perm) -> Self {
        PosixAcl {
            group_obj,
            users: BTreeMap::new(),
            groups: BTreeMap::new(),
        }
    }

    /// Builder: add (or replace) a named user entry.
    pub fn with_user(mut self, uid: Uid, perm: Perm) -> Self {
        self.users.insert(uid, perm);
        self
    }

    /// Builder: add (or replace) a named group entry.
    pub fn with_group(mut self, gid: Gid, perm: Perm) -> Self {
        self.groups.insert(gid, perm);
        self
    }

    /// Permissions of a named user entry, if present.
    pub fn user_perm(&self, uid: Uid) -> Option<Perm> {
        self.users.get(&uid).copied()
    }

    /// Permissions of a named group entry, if present.
    pub fn group_perm(&self, gid: Gid) -> Option<Perm> {
        self.groups.get(&gid).copied()
    }

    /// Iterate named group entries.
    pub fn group_entries(&self) -> impl Iterator<Item = (Gid, Perm)> + '_ {
        self.groups.iter().map(|(g, p)| (*g, *p))
    }

    /// Iterate named user entries.
    pub fn user_entries(&self) -> impl Iterator<Item = (Uid, Perm)> + '_ {
        self.users.iter().map(|(u, p)| (*u, *p))
    }

    /// Number of named entries.
    pub fn named_len(&self) -> usize {
        self.users.len() + self.groups.len()
    }

    /// True when no named entries exist (the ACL is then equivalent to the
    /// plain mode bits with `group_obj` as the group class).
    pub fn is_trivial(&self) -> bool {
        self.users.is_empty() && self.groups.is_empty()
    }

    /// True if any entry (including group_obj) carries an execute bit; used
    /// for root's execute check.
    pub fn any_exec_entry(&self) -> bool {
        self.group_obj.contains(Perm::X)
            || self.users.values().any(|p| p.contains(Perm::X))
            || self.groups.values().any(|p| p.contains(Perm::X))
    }

    /// The smallest mask that would not cut any named entry or the owning
    /// group — what `setfacl` computes when no explicit mask is given.
    pub fn implied_mask(&self) -> Perm {
        let mut m = self.group_obj;
        for p in self.users.values() {
            m = m.union(*p);
        }
        for p in self.groups.values() {
            m = m.union(*p);
        }
        m
    }
}

impl fmt::Display for PosixAcl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group::{}", self.group_obj)?;
        for (u, p) in &self.users {
            write!(f, ",user:{}:{}", u.0, p)?;
        }
        for (g, p) in &self.groups {
            write!(f, ",group:{}:{}", g.0, p)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let acl = PosixAcl::new(Perm::RX)
            .with_user(Uid(5), Perm::RW)
            .with_group(Gid(9), Perm::R);
        assert_eq!(acl.user_perm(Uid(5)), Some(Perm::RW));
        assert_eq!(acl.user_perm(Uid(6)), None);
        assert_eq!(acl.group_perm(Gid(9)), Some(Perm::R));
        assert_eq!(acl.named_len(), 2);
        assert!(!acl.is_trivial());
        assert!(PosixAcl::new(Perm::R).is_trivial());
    }

    #[test]
    fn implied_mask_is_union() {
        let acl = PosixAcl::new(Perm::R)
            .with_user(Uid(5), Perm::W)
            .with_group(Gid(9), Perm::X);
        assert_eq!(acl.implied_mask(), Perm::RWX);
    }

    #[test]
    fn exec_detection() {
        assert!(!PosixAcl::new(Perm::RW).any_exec_entry());
        assert!(PosixAcl::new(Perm::NONE)
            .with_group(Gid(1), Perm::X)
            .any_exec_entry());
    }

    #[test]
    fn display_form() {
        let acl = PosixAcl::new(Perm::RX).with_user(Uid(5), Perm::RW);
        assert_eq!(acl.to_string(), "group::r-x,user:5:rw-");
    }

    #[test]
    fn replacing_entries() {
        let acl = PosixAcl::new(Perm::NONE)
            .with_user(Uid(5), Perm::R)
            .with_user(Uid(5), Perm::RWX);
        assert_eq!(acl.user_perm(Uid(5)), Some(Perm::RWX));
        assert_eq!(acl.named_len(), 1);
    }
}
