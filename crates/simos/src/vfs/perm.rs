//! File modes, permission classes, and the Linux access-check algorithm.
//!
//! [`check_access`] implements the POSIX.1e/Linux decision order: owner class
//! is *selected*, not merely preferred (a denying owner class never falls
//! through to group/other); named-ACL entries are filtered through the mask;
//! the group class grants if *any* matching entry grants; root bypasses
//! everything except execute-without-any-x-bit on regular files.

use crate::cred::Credentials;
use crate::ids::{Gid, Uid};
use std::fmt;

use super::acl::PosixAcl;

/// An rwx permission triple for one class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Perm(u8);

impl Perm {
    /// No permissions.
    pub const NONE: Perm = Perm(0);
    /// Read.
    pub const R: Perm = Perm(4);
    /// Write.
    pub const W: Perm = Perm(2);
    /// Execute / search.
    pub const X: Perm = Perm(1);
    /// Read + write.
    pub const RW: Perm = Perm(6);
    /// Read + execute.
    pub const RX: Perm = Perm(5);
    /// Write + execute.
    pub const WX: Perm = Perm(3);
    /// All three.
    pub const RWX: Perm = Perm(7);

    /// From the low three bits of an octal digit.
    #[inline]
    pub const fn from_bits(bits: u8) -> Perm {
        Perm(bits & 0o7)
    }

    /// Raw bits (0..=7).
    #[inline]
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Does this grant everything in `want`?
    #[inline]
    pub const fn contains(self, want: Perm) -> bool {
        self.0 & want.0 == want.0
    }

    /// Intersection (used for ACL masking).
    #[inline]
    pub const fn intersect(self, other: Perm) -> Perm {
        Perm(self.0 & other.0)
    }

    /// Union.
    #[inline]
    pub const fn union(self, other: Perm) -> Perm {
        Perm(self.0 | other.0)
    }
}

impl fmt::Display for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.contains(Perm::R) { 'r' } else { '-' },
            if self.contains(Perm::W) { 'w' } else { '-' },
            if self.contains(Perm::X) { 'x' } else { '-' },
        )
    }
}

/// A full file mode: permission bits plus setuid/setgid/sticky.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Mode(u16);

impl Mode {
    /// setuid bit.
    pub const SETUID: u16 = 0o4000;
    /// setgid bit (on directories: new files inherit the directory's group).
    pub const SETGID: u16 = 0o2000;
    /// Sticky bit (on directories: restricted deletion).
    pub const STICKY: u16 = 0o1000;

    /// Construct from an octal literal, e.g. `Mode::new(0o1777)`.
    #[inline]
    pub const fn new(bits: u16) -> Mode {
        Mode(bits & 0o7777)
    }

    /// Raw bits.
    #[inline]
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Owner-class permissions.
    #[inline]
    pub const fn owner(self) -> Perm {
        Perm::from_bits(((self.0 >> 6) & 0o7) as u8)
    }

    /// Group-class permissions. When a POSIX ACL is present these bits hold
    /// the ACL *mask*, exactly as on Linux.
    #[inline]
    pub const fn group(self) -> Perm {
        Perm::from_bits(((self.0 >> 3) & 0o7) as u8)
    }

    /// Other-class ("world") permissions.
    #[inline]
    pub const fn other(self) -> Perm {
        Perm::from_bits((self.0 & 0o7) as u8)
    }

    /// True if the sticky bit is set.
    #[inline]
    pub const fn is_sticky(self) -> bool {
        self.0 & Self::STICKY != 0
    }

    /// True if the setgid bit is set.
    #[inline]
    pub const fn is_setgid(self) -> bool {
        self.0 & Self::SETGID != 0
    }

    /// True if any execute bit is set in any class.
    #[inline]
    pub const fn any_exec(self) -> bool {
        self.0 & 0o111 != 0
    }

    /// True if any world (other-class) bit is set.
    #[inline]
    pub const fn any_world(self) -> bool {
        self.0 & 0o007 != 0
    }

    /// Clear every bit present in `mask` (umask/smask application).
    #[inline]
    pub const fn clear(self, mask: Mode) -> Mode {
        Mode(self.0 & !mask.0)
    }

    /// Union of bits.
    #[inline]
    pub const fn union(self, other: Mode) -> Mode {
        Mode(self.0 | other.0)
    }

    /// Replace the group-class bits (used when chmod adjusts the ACL mask).
    #[inline]
    pub const fn with_group(self, p: Perm) -> Mode {
        Mode((self.0 & !0o070) | ((p.bits() as u16) << 3))
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04o}", self.0)
    }
}

/// Minimal metadata needed for an access decision.
#[derive(Debug, Clone, PartialEq)]
pub struct PermMeta<'a> {
    /// Owning uid.
    pub uid: Uid,
    /// Owning gid.
    pub gid: Gid,
    /// Mode bits.
    pub mode: Mode,
    /// Optional POSIX ACL.
    pub acl: Option<&'a PosixAcl>,
    /// True for directories (affects root's execute handling).
    pub is_dir: bool,
}

/// The Linux permission check. Returns true when `cred` may perform `want`.
pub fn check_access(cred: &Credentials, meta: &PermMeta<'_>, want: Perm) -> bool {
    // Root: full read/write; execute requires at least one x bit somewhere
    // unless the object is a directory (CAP_DAC_OVERRIDE semantics).
    if cred.is_root() {
        if want.contains(Perm::X) && !meta.is_dir {
            let acl_has_x = meta.acl.map(|a| a.any_exec_entry()).unwrap_or(false);
            return meta.mode.any_exec() || acl_has_x;
        }
        return true;
    }

    // Owner class is selected exclusively — no fallthrough.
    if cred.uid == meta.uid {
        return meta.mode.owner().contains(want);
    }

    // The ACL mask lives in the group bits of the mode when an ACL exists.
    if let Some(acl) = meta.acl {
        let mask = meta.mode.group();
        // Named user entry: selected exclusively, masked.
        if let Some(p) = acl.user_perm(cred.uid) {
            return p.intersect(mask).contains(want);
        }
        // Group class: owning-group entry plus named group entries; any
        // matching entry that grants suffices.
        let mut matched = false;
        if cred.is_member(meta.gid) {
            matched = true;
            if acl.group_obj.intersect(mask).contains(want) {
                return true;
            }
        }
        for (g, p) in acl.group_entries() {
            if cred.is_member(g) {
                matched = true;
                if p.intersect(mask).contains(want) {
                    return true;
                }
            }
        }
        if matched {
            return false;
        }
        return meta.mode.other().contains(want);
    }

    // No ACL: plain mode-bit classes.
    if cred.is_member(meta.gid) {
        return meta.mode.group().contains(want);
    }
    meta.mode.other().contains(want)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(uid: u32, gid: u32, mode: u16) -> PermMeta<'static> {
        PermMeta {
            uid: Uid(uid),
            gid: Gid(gid),
            mode: Mode::new(mode),
            acl: None,
            is_dir: false,
        }
    }

    #[test]
    fn perm_display_and_ops() {
        assert_eq!(Perm::RWX.to_string(), "rwx");
        assert_eq!(Perm::R.union(Perm::X).to_string(), "r-x");
        assert!(Perm::RW.contains(Perm::R));
        assert!(!Perm::R.contains(Perm::W));
        assert_eq!(Perm::RWX.intersect(Perm::RX), Perm::RX);
    }

    #[test]
    fn mode_accessors() {
        let m = Mode::new(0o2754);
        assert_eq!(m.owner(), Perm::RWX);
        assert_eq!(m.group(), Perm::RX);
        assert_eq!(m.other(), Perm::R);
        assert!(m.is_setgid());
        assert!(!m.is_sticky());
        assert!(Mode::new(0o1777).is_sticky());
        assert_eq!(m.to_string(), "2754");
        assert_eq!(Mode::new(0o777).clear(Mode::new(0o007)).bits(), 0o770);
        assert_eq!(Mode::new(0o700).with_group(Perm::RX).bits(), 0o750);
    }

    #[test]
    fn owner_class_is_exclusive() {
        // Owner with 0o077: owner gets nothing even though group/other allow.
        let m = meta(10, 10, 0o077);
        let owner = Credentials::new(Uid(10), Gid(10));
        assert!(!check_access(&owner, &m, Perm::R));
        // Non-owner in group gets the group bits.
        let member = Credentials::with_groups(Uid(11), Gid(11), [Gid(10)]);
        assert!(check_access(&member, &m, Perm::RWX));
    }

    #[test]
    fn group_then_other_fallback() {
        let m = meta(10, 20, 0o640);
        let member = Credentials::with_groups(Uid(11), Gid(11), [Gid(20)]);
        assert!(check_access(&member, &m, Perm::R));
        assert!(!check_access(&member, &m, Perm::W));
        let stranger = Credentials::new(Uid(12), Gid(12));
        assert!(!check_access(&stranger, &m, Perm::R));
    }

    #[test]
    fn world_bits_grant_strangers() {
        let m = meta(10, 10, 0o604);
        let stranger = Credentials::new(Uid(12), Gid(12));
        assert!(check_access(&stranger, &m, Perm::R));
        assert!(!check_access(&stranger, &m, Perm::W));
    }

    #[test]
    fn root_rw_always_x_needs_a_bit() {
        let root = Credentials::root();
        let no_x = meta(10, 10, 0o600);
        assert!(check_access(&root, &no_x, Perm::RW));
        assert!(!check_access(&root, &no_x, Perm::X));
        let with_x = meta(10, 10, 0o100);
        assert!(check_access(&root, &with_x, Perm::X));
        // Directories: root always searches.
        let mut dir = meta(10, 10, 0o000);
        dir.is_dir = true;
        assert!(check_access(&root, &dir, Perm::X));
    }

    #[test]
    fn acl_named_user_is_masked_and_exclusive() {
        let acl = PosixAcl::new(Perm::NONE).with_user(Uid(50), Perm::RWX);
        // Mask (group bits) is r-- : named user's rwx is cut to r--.
        let m = PermMeta {
            uid: Uid(10),
            gid: Gid(10),
            mode: Mode::new(0o640),
            acl: Some(&acl),
            is_dir: false,
        };
        let named = Credentials::new(Uid(50), Gid(50));
        assert!(check_access(&named, &m, Perm::R));
        assert!(!check_access(&named, &m, Perm::W));
        // Named-user selection is exclusive: other bits don't rescue it.
        let m_other_open = PermMeta {
            mode: Mode::new(0o606),
            ..m.clone()
        };
        assert!(!check_access(&named, &m_other_open, Perm::W));
    }

    #[test]
    fn acl_group_class_any_entry_grants() {
        let acl = PosixAcl::new(Perm::NONE)
            .with_group(Gid(70), Perm::R)
            .with_group(Gid(71), Perm::RW);
        let m = PermMeta {
            uid: Uid(10),
            gid: Gid(10),
            mode: Mode::new(0o670), // mask rwx
            acl: Some(&acl),
            is_dir: false,
        };
        // Member of both: the RW entry grants W even though the R entry doesn't.
        let both = Credentials::with_groups(Uid(60), Gid(60), [Gid(70), Gid(71)]);
        assert!(check_access(&both, &m, Perm::W));
        // Member of only the R entry: W denied, and no fallthrough to other.
        let m_world = PermMeta {
            mode: Mode::new(0o672),
            ..m.clone()
        };
        let only_r = Credentials::with_groups(Uid(61), Gid(61), [Gid(70)]);
        assert!(!check_access(&only_r, &m_world, Perm::W));
        // Total stranger falls through to other bits.
        let stranger = Credentials::new(Uid(62), Gid(62));
        assert!(check_access(&stranger, &m_world, Perm::W));
    }

    #[test]
    fn acl_owning_group_entry_respects_mask() {
        let acl = PosixAcl::new(Perm::RWX); // group_obj rwx
        let m = PermMeta {
            uid: Uid(10),
            gid: Gid(20),
            mode: Mode::new(0o750), // mask r-x
            acl: Some(&acl),
            is_dir: false,
        };
        let member = Credentials::with_groups(Uid(11), Gid(11), [Gid(20)]);
        assert!(check_access(&member, &m, Perm::RX));
        assert!(!check_access(&member, &m, Perm::W));
    }
}
