//! In-memory Unix filesystem with full discretionary access control.
//!
//! This is the substrate the paper's File Permission Handler patches apply
//! to. It implements:
//!
//! * path resolution with search-permission checks and symlink following,
//! * the Linux permission algorithm (see [`perm::check_access`]) including
//!   POSIX ACLs with Linux's mask-in-group-bits convention,
//! * sticky-bit restricted deletion, setgid directory group inheritance,
//! * `umask` at create time — and, when the *smask kernel patch* is enabled
//!   ([`Vfs::enforce_smask`]), an immutable security mask applied at **create
//!   and chmod** for unprivileged users (paper Sec. IV-C),
//! * the *ACL restriction patch* ([`Vfs::restrict_acl`]): named-group grants
//!   require membership of the granting user, and named-user grants are
//!   limited to users sharing a group with the granter.
//!
//! The patch flags live here (they are kernel behaviour); the `eus-fsperm`
//! crate flips them and manages per-session smask values via PAM.

pub mod acl;
pub mod perm;

pub use acl::PosixAcl;
pub use perm::{check_access, Mode, Perm, PermMeta};

use crate::cred::Credentials;
use crate::devices::DeviceId;
use crate::ids::{Gid, Uid};
use crate::users::UserDb;
use std::collections::BTreeMap;
use std::fmt;

/// Inode number.
pub type Ino = u64;

/// What an inode is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InodeKind {
    /// Regular file with contents.
    File {
        /// File bytes.
        data: Vec<u8>,
    },
    /// Directory with named entries.
    Dir {
        /// Name → child inode.
        entries: BTreeMap<String, Ino>,
    },
    /// Character device node.
    Device {
        /// The device this node fronts.
        dev: DeviceId,
    },
    /// Symbolic link.
    Symlink {
        /// Link target (absolute, or relative without `..`).
        target: String,
    },
}

/// Ownership and permission metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Metadata {
    /// Owning user.
    pub uid: Uid,
    /// Owning group.
    pub gid: Gid,
    /// Mode bits (group bits double as the ACL mask when an ACL is present).
    pub mode: Mode,
    /// Extended ACL entries, if any.
    pub acl: Option<PosixAcl>,
}

/// One filesystem object.
#[derive(Debug, Clone, PartialEq)]
pub struct Inode {
    /// Inode number.
    pub ino: Ino,
    /// Ownership/permissions.
    pub meta: Metadata,
    /// Contents.
    pub kind: InodeKind,
}

impl Inode {
    fn is_dir(&self) -> bool {
        matches!(self.kind, InodeKind::Dir { .. })
    }

    fn perm_meta(&self) -> PermMeta<'_> {
        PermMeta {
            uid: self.meta.uid,
            gid: self.meta.gid,
            mode: self.meta.mode,
            acl: self.meta.acl.as_ref(),
            is_dir: self.is_dir(),
        }
    }
}

/// Coarse file type reported by [`Vfs::stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Regular file.
    File,
    /// Directory.
    Dir,
    /// Device node.
    Device,
    /// Symlink.
    Symlink,
}

/// `stat(2)`-shaped result.
#[derive(Debug, Clone, PartialEq)]
pub struct FileStat {
    /// Inode number.
    pub ino: Ino,
    /// Owning user.
    pub uid: Uid,
    /// Owning group.
    pub gid: Gid,
    /// Mode bits.
    pub mode: Mode,
    /// ACL, if present.
    pub acl: Option<PosixAcl>,
    /// File type.
    pub kind: FileKind,
    /// Content size (bytes for files, entry count for directories).
    pub size: usize,
}

/// The caller context for filesystem operations: credentials plus the
/// create-time masks. `umask` is the classic advisory mask; `smask` is the
/// paper's enforced security mask, set per session by the PAM module and
/// honored only when the kernel patch ([`Vfs::enforce_smask`]) is active.
#[derive(Debug, Clone, PartialEq)]
pub struct FsCtx {
    /// Acting credentials.
    pub cred: Credentials,
    /// Advisory create mask (default `022`).
    pub umask: Mode,
    /// Enforced security mask (default none; LLSC sets `007`).
    pub smask: Mode,
}

impl FsCtx {
    /// A regular user context with umask 022 and no smask.
    pub fn user(cred: Credentials) -> Self {
        FsCtx {
            cred,
            umask: Mode::new(0o022),
            smask: Mode::new(0),
        }
    }

    /// The root context used for system setup.
    pub fn root() -> Self {
        FsCtx::user(Credentials::root())
    }

    /// Builder: replace the umask.
    pub fn with_umask(mut self, m: Mode) -> Self {
        self.umask = m;
        self
    }

    /// Builder: replace the smask.
    pub fn with_smask(mut self, m: Mode) -> Self {
        self.smask = m;
        self
    }
}

/// Filesystem operation errors (errno-shaped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// ENOENT.
    NotFound(String),
    /// ENOTDIR.
    NotADirectory(String),
    /// EISDIR.
    IsADirectory(String),
    /// Not a regular file (read/write on a device or directory).
    NotAFile(String),
    /// Not a device node.
    NotADevice(String),
    /// EEXIST.
    AlreadyExists(String),
    /// EACCES/EPERM, with the denied operation.
    PermissionDenied {
        /// Which operation was refused.
        op: &'static str,
        /// The path involved.
        path: String,
    },
    /// The File Permission Handler ACL patch refused the grant.
    AclRestricted(String),
    /// ELOOP.
    SymlinkLoop(String),
    /// ENOTEMPTY.
    DirectoryNotEmpty(String),
    /// Malformed path (empty, relative at the API boundary, or `..` in a
    /// symlink target).
    InvalidPath(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            FsError::NotAFile(p) => write!(f, "not a regular file: {p}"),
            FsError::NotADevice(p) => write!(f, "not a device: {p}"),
            FsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            FsError::PermissionDenied { op, path } => {
                write!(f, "permission denied ({op}): {path}")
            }
            FsError::AclRestricted(msg) => write!(f, "acl restricted: {msg}"),
            FsError::SymlinkLoop(p) => write!(f, "too many levels of symbolic links: {p}"),
            FsError::DirectoryNotEmpty(p) => write!(f, "directory not empty: {p}"),
            FsError::InvalidPath(p) => write!(f, "invalid path: {p}"),
        }
    }
}

impl std::error::Error for FsError {}

/// Result alias for filesystem operations.
pub type FsResult<T> = Result<T, FsError>;

const SYMLINK_DEPTH_MAX: u32 = 8;

/// The filesystem.
#[derive(Debug, Clone)]
pub struct Vfs {
    /// Human-readable name (e.g. `"shared-home"`, `"node3-local"`).
    pub name: String,
    inodes: BTreeMap<Ino, Inode>,
    next_ino: Ino,
    root: Ino,
    /// File Permission Handler kernel patch #1: enforce `FsCtx::smask` at
    /// create and chmod for unprivileged users.
    pub enforce_smask: bool,
    /// File Permission Handler kernel patch #2: restrict ACL grants to
    /// groups the granter belongs to / users sharing a group with them.
    pub restrict_acl: bool,
}

impl Vfs {
    /// An empty filesystem: `/` owned root:root mode 0755, patches off
    /// (vanilla kernel).
    pub fn new(name: impl Into<String>) -> Self {
        let mut inodes = BTreeMap::new();
        inodes.insert(
            1,
            Inode {
                ino: 1,
                meta: Metadata {
                    uid: crate::ids::ROOT_UID,
                    gid: crate::ids::ROOT_GID,
                    mode: Mode::new(0o755),
                    acl: None,
                },
                kind: InodeKind::Dir {
                    entries: BTreeMap::new(),
                },
            },
        );
        Vfs {
            name: name.into(),
            inodes,
            next_ino: 2,
            root: 1,
            enforce_smask: false,
            restrict_acl: false,
        }
    }

    /// A node-local root filesystem with the standard world-writable
    /// directories the paper calls out: `/tmp` and `/dev/shm` (mode 1777)
    /// plus `/dev`, `/var`, `/etc`, `/usr`.
    pub fn standard_node_layout(name: impl Into<String>) -> Self {
        let mut fs = Vfs::new(name);
        let root_ctx = FsCtx::root().with_umask(Mode::new(0));
        fs.mkdir(&root_ctx, "/tmp", Mode::new(0o1777))
            .expect("setup");
        fs.mkdir(&root_ctx, "/dev", Mode::new(0o755))
            .expect("setup");
        fs.mkdir(&root_ctx, "/dev/shm", Mode::new(0o1777))
            .expect("setup");
        fs.mkdir(&root_ctx, "/var", Mode::new(0o755))
            .expect("setup");
        fs.mkdir(&root_ctx, "/etc", Mode::new(0o755))
            .expect("setup");
        fs.mkdir(&root_ctx, "/usr", Mode::new(0o755))
            .expect("setup");
        fs
    }

    fn inode(&self, ino: Ino) -> &Inode {
        self.inodes.get(&ino).expect("dangling ino")
    }

    fn inode_mut(&mut self, ino: Ino) -> &mut Inode {
        self.inodes.get_mut(&ino).expect("dangling ino")
    }

    fn alloc(&mut self, meta: Metadata, kind: InodeKind) -> Ino {
        let ino = self.next_ino;
        self.next_ino += 1;
        self.inodes.insert(ino, Inode { ino, meta, kind });
        ino
    }

    /// Lexically normalize an absolute path into components.
    fn normalize(path: &str) -> FsResult<Vec<String>> {
        if !path.starts_with('/') {
            return Err(FsError::InvalidPath(path.to_string()));
        }
        let mut comps: Vec<String> = Vec::new();
        for c in path.split('/') {
            match c {
                "" | "." => {}
                ".." => {
                    comps.pop();
                }
                other => comps.push(other.to_string()),
            }
        }
        Ok(comps)
    }

    /// Walk components from the root, enforcing search permission on every
    /// directory traversed and following symlinks (up to a depth cap). When
    /// `follow_last` is false a trailing symlink is returned as itself.
    fn walk(&self, ctx: &FsCtx, path: &str, follow_last: bool) -> FsResult<Ino> {
        let mut queue: std::collections::VecDeque<String> = Self::normalize(path)?.into(); // front = next component
        let mut cur = self.root;
        let mut depth = 0u32;
        while let Some(name) = queue.pop_front() {
            let dir = self.inode(cur);
            let entries = match &dir.kind {
                InodeKind::Dir { entries } => entries,
                _ => return Err(FsError::NotADirectory(path.to_string())),
            };
            if !check_access(&ctx.cred, &dir.perm_meta(), Perm::X) {
                return Err(FsError::PermissionDenied {
                    op: "search",
                    path: path.to_string(),
                });
            }
            let child = *entries
                .get(&name)
                .ok_or_else(|| FsError::NotFound(path.to_string()))?;
            if let InodeKind::Symlink { target } = &self.inode(child).kind {
                if queue.is_empty() && !follow_last {
                    return Ok(child);
                }
                depth += 1;
                if depth > SYMLINK_DEPTH_MAX {
                    return Err(FsError::SymlinkLoop(path.to_string()));
                }
                if target.contains("..") {
                    return Err(FsError::InvalidPath(target.clone()));
                }
                let tcomps: Vec<String> = target
                    .split('/')
                    .filter(|c| !c.is_empty() && *c != ".")
                    .map(str::to_string)
                    .collect();
                for c in tcomps.into_iter().rev() {
                    queue.push_front(c);
                }
                if target.starts_with('/') {
                    cur = self.root;
                }
                // Relative targets resolve from `cur` (the dir holding the
                // link), which is already correct.
                continue;
            }
            cur = child;
        }
        Ok(cur)
    }

    /// Resolve to the parent directory inode plus the final component name.
    fn walk_parent(&self, ctx: &FsCtx, path: &str) -> FsResult<(Ino, String)> {
        let comps = Self::normalize(path)?;
        let name = comps
            .last()
            .ok_or_else(|| FsError::InvalidPath(path.to_string()))?
            .clone();
        let parent_path = format!("/{}", comps[..comps.len() - 1].join("/"));
        let parent = self.walk(ctx, &parent_path, true)?;
        if !self.inode(parent).is_dir() {
            return Err(FsError::NotADirectory(parent_path));
        }
        Ok((parent, name))
    }

    fn check(
        &self,
        ctx: &FsCtx,
        ino: Ino,
        want: Perm,
        op: &'static str,
        path: &str,
    ) -> FsResult<()> {
        if check_access(&ctx.cred, &self.inode(ino).perm_meta(), want) {
            Ok(())
        } else {
            Err(FsError::PermissionDenied {
                op,
                path: path.to_string(),
            })
        }
    }

    /// Effective mode for a newly created object: umask always applies;
    /// smask additionally applies when the kernel patch is on and the caller
    /// is unprivileged.
    fn create_mode(&self, ctx: &FsCtx, requested: Mode) -> Mode {
        let mut m = requested.clear(ctx.umask);
        if self.enforce_smask && !ctx.cred.is_root() {
            m = m.clear(ctx.smask);
        }
        m
    }

    /// Group for a new object: setgid parents propagate their group (and the
    /// setgid bit itself, for directories), otherwise the creator's egid.
    fn new_object_group(&self, ctx: &FsCtx, parent: Ino, is_dir: bool, mode: Mode) -> (Gid, Mode) {
        let p = self.inode(parent);
        if p.meta.mode.is_setgid() {
            let mode = if is_dir {
                Mode::new(mode.bits() | Mode::SETGID)
            } else {
                mode
            };
            (p.meta.gid, mode)
        } else {
            (ctx.cred.gid, mode)
        }
    }

    fn insert_child(
        &mut self,
        ctx: &FsCtx,
        path: &str,
        kind_is_dir: bool,
        requested: Mode,
        build: impl FnOnce() -> InodeKind,
    ) -> FsResult<Ino> {
        let (parent, name) = self.walk_parent(ctx, path)?;
        self.check(ctx, parent, Perm::WX, "create", path)?;
        if let InodeKind::Dir { entries } = &self.inode(parent).kind {
            if entries.contains_key(&name) {
                return Err(FsError::AlreadyExists(path.to_string()));
            }
        }
        let mode = self.create_mode(ctx, requested);
        let (gid, mode) = self.new_object_group(ctx, parent, kind_is_dir, mode);
        let ino = self.alloc(
            Metadata {
                uid: ctx.cred.uid,
                gid,
                mode,
                acl: None,
            },
            build(),
        );
        if let InodeKind::Dir { entries } = &mut self.inode_mut(parent).kind {
            entries.insert(name, ino);
        }
        Ok(ino)
    }

    /// Create a directory.
    pub fn mkdir(&mut self, ctx: &FsCtx, path: &str, mode: Mode) -> FsResult<Ino> {
        self.insert_child(ctx, path, true, mode, || InodeKind::Dir {
            entries: BTreeMap::new(),
        })
    }

    /// Create every missing directory along `path` with the given mode
    /// (permission-checked at each step; handy for setup as root).
    pub fn mkdir_p(&mut self, ctx: &FsCtx, path: &str, mode: Mode) -> FsResult<()> {
        let comps = Self::normalize(path)?;
        let mut cur = String::new();
        for c in &comps {
            cur.push('/');
            cur.push_str(c);
            match self.mkdir(ctx, &cur, mode) {
                Ok(_) | Err(FsError::AlreadyExists(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Create an empty regular file.
    pub fn create(&mut self, ctx: &FsCtx, path: &str, mode: Mode) -> FsResult<Ino> {
        self.insert_child(ctx, path, false, mode, || InodeKind::File {
            data: Vec::new(),
        })
    }

    /// Create a device node (root only, as `mknod` without CAP_MKNOD fails).
    pub fn mknod(&mut self, ctx: &FsCtx, path: &str, dev: DeviceId, mode: Mode) -> FsResult<Ino> {
        if !ctx.cred.is_root() {
            return Err(FsError::PermissionDenied {
                op: "mknod",
                path: path.to_string(),
            });
        }
        self.insert_child(ctx, path, false, mode, || InodeKind::Device { dev })
    }

    /// Create a symlink (mode is conventionally 0777 and ignored by checks).
    pub fn symlink(&mut self, ctx: &FsCtx, target: &str, linkpath: &str) -> FsResult<Ino> {
        let target = target.to_string();
        self.insert_child(ctx, linkpath, false, Mode::new(0o777), move || {
            InodeKind::Symlink { target }
        })
    }

    /// Write (replace) a file's contents.
    pub fn write(&mut self, ctx: &FsCtx, path: &str, data: &[u8]) -> FsResult<()> {
        let ino = self.walk(ctx, path, true)?;
        self.check(ctx, ino, Perm::W, "write", path)?;
        match &mut self.inode_mut(ino).kind {
            InodeKind::File { data: d } => {
                d.clear();
                d.extend_from_slice(data);
                Ok(())
            }
            InodeKind::Dir { .. } => Err(FsError::IsADirectory(path.to_string())),
            _ => Err(FsError::NotAFile(path.to_string())),
        }
    }

    /// Create-or-truncate then write: the common "user drops a file" op.
    pub fn write_file(&mut self, ctx: &FsCtx, path: &str, mode: Mode, data: &[u8]) -> FsResult<()> {
        match self.create(ctx, path, mode) {
            Ok(_) | Err(FsError::AlreadyExists(_)) => {}
            Err(e) => return Err(e),
        }
        self.write(ctx, path, data)
    }

    /// Read a file's contents.
    pub fn read(&self, ctx: &FsCtx, path: &str) -> FsResult<Vec<u8>> {
        let ino = self.walk(ctx, path, true)?;
        self.check(ctx, ino, Perm::R, "read", path)?;
        match &self.inode(ino).kind {
            InodeKind::File { data } => Ok(data.clone()),
            InodeKind::Dir { .. } => Err(FsError::IsADirectory(path.to_string())),
            _ => Err(FsError::NotAFile(path.to_string())),
        }
    }

    /// List a directory's entry names (requires read on the directory —
    /// this is the `/tmp` *filename* disclosure path of Sec. V).
    pub fn readdir(&self, ctx: &FsCtx, path: &str) -> FsResult<Vec<String>> {
        let ino = self.walk(ctx, path, true)?;
        self.check(ctx, ino, Perm::R, "readdir", path)?;
        match &self.inode(ino).kind {
            InodeKind::Dir { entries } => Ok(entries.keys().cloned().collect()),
            _ => Err(FsError::NotADirectory(path.to_string())),
        }
    }

    /// `stat` (follows symlinks).
    pub fn stat(&self, ctx: &FsCtx, path: &str) -> FsResult<FileStat> {
        let ino = self.walk(ctx, path, true)?;
        let node = self.inode(ino);
        let (kind, size) = match &node.kind {
            InodeKind::File { data } => (FileKind::File, data.len()),
            InodeKind::Dir { entries } => (FileKind::Dir, entries.len()),
            InodeKind::Device { .. } => (FileKind::Device, 0),
            InodeKind::Symlink { target } => (FileKind::Symlink, target.len()),
        };
        Ok(FileStat {
            ino,
            uid: node.meta.uid,
            gid: node.meta.gid,
            mode: node.meta.mode,
            acl: node.meta.acl.clone(),
            kind,
            size,
        })
    }

    /// Does the path resolve for this caller?
    pub fn exists(&self, ctx: &FsCtx, path: &str) -> bool {
        self.walk(ctx, path, true).is_ok()
    }

    /// Would `want` access be granted on `path`? (`access(2)`.)
    pub fn access(&self, ctx: &FsCtx, path: &str, want: Perm) -> FsResult<bool> {
        let ino = self.walk(ctx, path, true)?;
        Ok(check_access(&ctx.cred, &self.inode(ino).perm_meta(), want))
    }

    /// Sticky-bit deletion rule: in a sticky directory only the file owner,
    /// the directory owner, or root may remove/rename an entry.
    fn sticky_ok(&self, ctx: &FsCtx, parent: Ino, child: Ino) -> bool {
        let p = self.inode(parent);
        if !p.meta.mode.is_sticky() || ctx.cred.is_root() {
            return true;
        }
        ctx.cred.uid == p.meta.uid || ctx.cred.uid == self.inode(child).meta.uid
    }

    /// Remove a file, device, or symlink.
    pub fn unlink(&mut self, ctx: &FsCtx, path: &str) -> FsResult<()> {
        let (parent, name) = self.walk_parent(ctx, path)?;
        self.check(ctx, parent, Perm::WX, "unlink", path)?;
        let child = match &self.inode(parent).kind {
            InodeKind::Dir { entries } => *entries
                .get(&name)
                .ok_or_else(|| FsError::NotFound(path.to_string()))?,
            _ => unreachable!("walk_parent returns dirs"),
        };
        if self.inode(child).is_dir() {
            return Err(FsError::IsADirectory(path.to_string()));
        }
        if !self.sticky_ok(ctx, parent, child) {
            return Err(FsError::PermissionDenied {
                op: "unlink (sticky)",
                path: path.to_string(),
            });
        }
        if let InodeKind::Dir { entries } = &mut self.inode_mut(parent).kind {
            entries.remove(&name);
        }
        self.inodes.remove(&child);
        Ok(())
    }

    /// Remove an empty directory.
    pub fn rmdir(&mut self, ctx: &FsCtx, path: &str) -> FsResult<()> {
        let (parent, name) = self.walk_parent(ctx, path)?;
        self.check(ctx, parent, Perm::WX, "rmdir", path)?;
        let child = match &self.inode(parent).kind {
            InodeKind::Dir { entries } => *entries
                .get(&name)
                .ok_or_else(|| FsError::NotFound(path.to_string()))?,
            _ => unreachable!(),
        };
        match &self.inode(child).kind {
            InodeKind::Dir { entries } if !entries.is_empty() => {
                return Err(FsError::DirectoryNotEmpty(path.to_string()))
            }
            InodeKind::Dir { .. } => {}
            _ => return Err(FsError::NotADirectory(path.to_string())),
        }
        if !self.sticky_ok(ctx, parent, child) {
            return Err(FsError::PermissionDenied {
                op: "rmdir (sticky)",
                path: path.to_string(),
            });
        }
        if let InodeKind::Dir { entries } = &mut self.inode_mut(parent).kind {
            entries.remove(&name);
        }
        self.inodes.remove(&child);
        Ok(())
    }

    /// Rename within this filesystem.
    pub fn rename(&mut self, ctx: &FsCtx, from: &str, to: &str) -> FsResult<()> {
        let (src_parent, src_name) = self.walk_parent(ctx, from)?;
        self.check(ctx, src_parent, Perm::WX, "rename-from", from)?;
        let moving = match &self.inode(src_parent).kind {
            InodeKind::Dir { entries } => *entries
                .get(&src_name)
                .ok_or_else(|| FsError::NotFound(from.to_string()))?,
            _ => unreachable!(),
        };
        if !self.sticky_ok(ctx, src_parent, moving) {
            return Err(FsError::PermissionDenied {
                op: "rename (sticky)",
                path: from.to_string(),
            });
        }
        let (dst_parent, dst_name) = self.walk_parent(ctx, to)?;
        self.check(ctx, dst_parent, Perm::WX, "rename-to", to)?;
        if let InodeKind::Dir { entries } = &self.inode(dst_parent).kind {
            if let Some(&existing) = entries.get(&dst_name) {
                if self.inode(existing).is_dir() {
                    return Err(FsError::IsADirectory(to.to_string()));
                }
                if !self.sticky_ok(ctx, dst_parent, existing) {
                    return Err(FsError::PermissionDenied {
                        op: "rename-replace (sticky)",
                        path: to.to_string(),
                    });
                }
            }
        }
        if let InodeKind::Dir { entries } = &mut self.inode_mut(src_parent).kind {
            entries.remove(&src_name);
        }
        if let InodeKind::Dir { entries } = &mut self.inode_mut(dst_parent).kind {
            if let Some(old) = entries.insert(dst_name, moving) {
                self.inodes.remove(&old);
            }
        }
        Ok(())
    }

    /// Change permission bits. Owner or root only. Under the smask patch the
    /// security mask is re-applied — world bits cannot be introduced by
    /// chmod, which is exactly what distinguishes smask from umask. Returns
    /// the mode that actually took effect.
    pub fn chmod(&mut self, ctx: &FsCtx, path: &str, mode: Mode) -> FsResult<Mode> {
        let ino = self.walk(ctx, path, true)?;
        let node = self.inode(ino);
        if !(ctx.cred.is_root() || ctx.cred.uid == node.meta.uid) {
            return Err(FsError::PermissionDenied {
                op: "chmod",
                path: path.to_string(),
            });
        }
        let mut effective = mode;
        if self.enforce_smask && !ctx.cred.is_root() {
            effective = effective.clear(ctx.smask);
        }
        self.inode_mut(ino).meta.mode = effective;
        Ok(effective)
    }

    /// Change ownership. Changing the uid requires root; changing the gid is
    /// allowed for the owner if (and only if) they are a member of the target
    /// group, per Linux chown(2).
    pub fn chown(
        &mut self,
        ctx: &FsCtx,
        path: &str,
        new_uid: Option<Uid>,
        new_gid: Option<Gid>,
    ) -> FsResult<()> {
        let ino = self.walk(ctx, path, true)?;
        let node = self.inode(ino);
        if let Some(u) = new_uid {
            if !ctx.cred.is_root() && u != node.meta.uid {
                return Err(FsError::PermissionDenied {
                    op: "chown",
                    path: path.to_string(),
                });
            }
        }
        if let Some(g) = new_gid {
            let owner_ok = ctx.cred.uid == node.meta.uid && ctx.cred.is_member(g);
            if !ctx.cred.is_root() && !owner_ok {
                return Err(FsError::PermissionDenied {
                    op: "chgrp",
                    path: path.to_string(),
                });
            }
        }
        let node = self.inode_mut(ino);
        if let Some(u) = new_uid {
            node.meta.uid = u;
        }
        if let Some(g) = new_gid {
            node.meta.gid = g;
        }
        Ok(())
    }

    /// Do two users share any group (used by the ACL restriction patch for
    /// named-user grants)?
    fn shares_group(db: &UserDb, granter: &Credentials, grantee: Uid) -> bool {
        if db.is_member(grantee, granter.gid) {
            return true;
        }
        granter.groups.iter().any(|g| db.is_member(grantee, *g))
    }

    /// Set the extended ACL. Owner or root only. With the ACL restriction
    /// patch active, named-group entries require the granter's membership and
    /// named-user entries require a shared group — the paper's "a user cannot
    /// grant permission to a group unless they are a member of said group"
    /// plus "ACLs to group members only".
    pub fn setfacl(&mut self, ctx: &FsCtx, path: &str, acl: PosixAcl, db: &UserDb) -> FsResult<()> {
        let ino = self.walk(ctx, path, true)?;
        let node = self.inode(ino);
        if !(ctx.cred.is_root() || ctx.cred.uid == node.meta.uid) {
            return Err(FsError::PermissionDenied {
                op: "setfacl",
                path: path.to_string(),
            });
        }
        if self.restrict_acl && !ctx.cred.is_root() {
            for (g, _) in acl.group_entries() {
                if !ctx.cred.is_member(g) {
                    return Err(FsError::AclRestricted(format!(
                        "cannot grant to {g}: granter is not a member"
                    )));
                }
            }
            for (u, _) in acl.user_entries() {
                if !Self::shares_group(db, &ctx.cred, u) {
                    return Err(FsError::AclRestricted(format!(
                        "cannot grant to {u}: no shared group with granter"
                    )));
                }
            }
        }
        // setfacl recomputes the mask (stored in the group bits) as the
        // union of all group-class entries, as the real tool does by default.
        let mask = acl.implied_mask();
        let node = self.inode_mut(ino);
        node.meta.mode = node.meta.mode.with_group(mask);
        node.meta.acl = Some(acl);
        Ok(())
    }

    /// Read the extended ACL (requires path search only, like getfacl).
    pub fn getfacl(&self, ctx: &FsCtx, path: &str) -> FsResult<Option<PosixAcl>> {
        let ino = self.walk(ctx, path, true)?;
        Ok(self.inode(ino).meta.acl.clone())
    }

    /// Open a device node with the requested access, returning its id.
    pub fn open_device(&self, ctx: &FsCtx, path: &str, want: Perm) -> FsResult<DeviceId> {
        let ino = self.walk(ctx, path, true)?;
        self.check(ctx, ino, want, "open-device", path)?;
        match &self.inode(ino).kind {
            InodeKind::Device { dev } => Ok(*dev),
            _ => Err(FsError::NotADevice(path.to_string())),
        }
    }

    /// Root-only escape hatch for cluster construction: set metadata fields
    /// directly (e.g. make `/home/alice` root-owned, group `alice`, 0770).
    pub fn set_meta_as_root(&mut self, path: &str, f: impl FnOnce(&mut Metadata)) -> FsResult<()> {
        let ctx = FsCtx::root();
        let ino = self.walk(&ctx, path, true)?;
        f(&mut self.inode_mut(ino).meta);
        Ok(())
    }

    /// Number of inodes (for tests/diagnostics).
    pub fn inode_count(&self) -> usize {
        self.inodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Gid, Uid};

    fn user_ctx(uid: u32) -> FsCtx {
        FsCtx::user(Credentials::new(Uid(uid), Gid(uid)))
    }

    fn setup() -> Vfs {
        let mut fs = Vfs::standard_node_layout("test");
        let root = FsCtx::root().with_umask(Mode::new(0));
        fs.mkdir(&root, "/home", Mode::new(0o755)).unwrap();
        // Paper-style home: root-owned, group = user's UPG, mode 0770.
        fs.mkdir(&root, "/home/u100", Mode::new(0o770)).unwrap();
        fs.set_meta_as_root("/home/u100", |m| {
            m.gid = Gid(100);
        })
        .unwrap();
        fs
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut fs = setup();
        let ctx = user_ctx(100);
        fs.create(&ctx, "/home/u100/notes.txt", Mode::new(0o644))
            .unwrap();
        fs.write(&ctx, "/home/u100/notes.txt", b"hello").unwrap();
        assert_eq!(fs.read(&ctx, "/home/u100/notes.txt").unwrap(), b"hello");
        let st = fs.stat(&ctx, "/home/u100/notes.txt").unwrap();
        assert_eq!(st.kind, FileKind::File);
        assert_eq!(st.size, 5);
        assert_eq!(st.uid, Uid(100));
        // umask 022 applied.
        assert_eq!(st.mode, Mode::new(0o644));
    }

    #[test]
    fn other_user_cannot_enter_home() {
        let mut fs = setup();
        let alice = user_ctx(100);
        let bob = user_ctx(101);
        fs.write_file(&alice, "/home/u100/secret", Mode::new(0o644), b"s")
            .unwrap();
        // Bob lacks search permission on /home/u100 (0770 root:upg100).
        let err = fs.read(&bob, "/home/u100/secret").unwrap_err();
        assert!(matches!(
            err,
            FsError::PermissionDenied { op: "search", .. }
        ));
    }

    #[test]
    fn home_owner_cannot_chmod_top_level() {
        let mut fs = setup();
        let alice = user_ctx(100);
        // Home is root-owned: the user cannot open it to the world.
        let err = fs
            .chmod(&alice, "/home/u100", Mode::new(0o777))
            .unwrap_err();
        assert!(matches!(err, FsError::PermissionDenied { op: "chmod", .. }));
    }

    #[test]
    fn umask_applies_smask_off_allows_world_bits_via_chmod() {
        let mut fs = setup();
        let ctx = user_ctx(100);
        fs.create(&ctx, "/home/u100/f", Mode::new(0o666)).unwrap();
        assert_eq!(
            fs.stat(&ctx, "/home/u100/f").unwrap().mode,
            Mode::new(0o644)
        );
        // Vanilla kernel: chmod can re-add world bits (this is the hole the
        // smask patch closes).
        fs.chmod(&ctx, "/home/u100/f", Mode::new(0o666)).unwrap();
        assert_eq!(
            fs.stat(&ctx, "/home/u100/f").unwrap().mode,
            Mode::new(0o666)
        );
    }

    #[test]
    fn smask_enforced_on_create_and_chmod() {
        let mut fs = setup();
        fs.enforce_smask = true;
        let ctx = user_ctx(100).with_smask(Mode::new(0o007));
        fs.create(&ctx, "/home/u100/f", Mode::new(0o666)).unwrap();
        assert_eq!(
            fs.stat(&ctx, "/home/u100/f").unwrap().mode,
            Mode::new(0o640)
        );
        let effective = fs.chmod(&ctx, "/home/u100/f", Mode::new(0o666)).unwrap();
        assert_eq!(effective, Mode::new(0o660));
        assert!(!fs.stat(&ctx, "/home/u100/f").unwrap().mode.any_world());
        // Root is exempt.
        let root = FsCtx::root().with_smask(Mode::new(0o007));
        fs.chmod(&root, "/home/u100/f", Mode::new(0o666)).unwrap();
        assert!(fs.stat(&root, "/home/u100/f").unwrap().mode.any_world());
    }

    #[test]
    fn tmp_sticky_semantics() {
        let mut fs = setup();
        let alice = user_ctx(100);
        let bob = user_ctx(101);
        fs.write_file(&alice, "/tmp/alice-scratch", Mode::new(0o644), b"x")
            .unwrap();
        // Bob can see the *name* (the residual path of Sec. V) ...
        assert!(fs
            .readdir(&bob, "/tmp")
            .unwrap()
            .contains(&"alice-scratch".to_string()));
        // ... and read a world-readable file (vanilla mode bits) ...
        assert!(fs.read(&bob, "/tmp/alice-scratch").is_ok());
        // ... but cannot delete or rename it (sticky).
        assert!(matches!(
            fs.unlink(&bob, "/tmp/alice-scratch").unwrap_err(),
            FsError::PermissionDenied { .. }
        ));
        assert!(matches!(
            fs.rename(&bob, "/tmp/alice-scratch", "/tmp/stolen")
                .unwrap_err(),
            FsError::PermissionDenied { .. }
        ));
        // The owner can.
        fs.unlink(&alice, "/tmp/alice-scratch").unwrap();
    }

    #[test]
    fn setgid_dir_inherits_group() {
        let mut fs = setup();
        let root = FsCtx::root().with_umask(Mode::new(0));
        fs.mkdir(&root, "/proj", Mode::new(0o755)).unwrap();
        fs.mkdir(&root, "/proj/alpha", Mode::new(0o2770)).unwrap();
        fs.set_meta_as_root("/proj/alpha", |m| m.gid = Gid(500))
            .unwrap();
        let member = FsCtx::user(Credentials::with_groups(Uid(100), Gid(100), [Gid(500)]));
        fs.create(&member, "/proj/alpha/data", Mode::new(0o664))
            .unwrap();
        let st = fs.stat(&member, "/proj/alpha/data").unwrap();
        assert_eq!(st.gid, Gid(500), "file inherits project group");
        // Subdir also inherits the setgid bit.
        fs.mkdir(&member, "/proj/alpha/sub", Mode::new(0o770))
            .unwrap();
        assert!(fs
            .stat(&member, "/proj/alpha/sub")
            .unwrap()
            .mode
            .is_setgid());
    }

    #[test]
    fn unlink_and_rmdir() {
        let mut fs = setup();
        let ctx = user_ctx(100);
        fs.mkdir(&ctx, "/home/u100/d", Mode::new(0o755)).unwrap();
        fs.create(&ctx, "/home/u100/d/f", Mode::new(0o644)).unwrap();
        assert!(matches!(
            fs.rmdir(&ctx, "/home/u100/d").unwrap_err(),
            FsError::DirectoryNotEmpty(_)
        ));
        assert!(matches!(
            fs.unlink(&ctx, "/home/u100/d").unwrap_err(),
            FsError::IsADirectory(_)
        ));
        fs.unlink(&ctx, "/home/u100/d/f").unwrap();
        fs.rmdir(&ctx, "/home/u100/d").unwrap();
        assert!(!fs.exists(&ctx, "/home/u100/d"));
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut fs = setup();
        let ctx = user_ctx(100);
        fs.write_file(&ctx, "/home/u100/a", Mode::new(0o644), b"a")
            .unwrap();
        fs.write_file(&ctx, "/home/u100/b", Mode::new(0o644), b"b")
            .unwrap();
        fs.rename(&ctx, "/home/u100/a", "/home/u100/b").unwrap();
        assert_eq!(fs.read(&ctx, "/home/u100/b").unwrap(), b"a");
        assert!(!fs.exists(&ctx, "/home/u100/a"));
    }

    #[test]
    fn symlink_resolution_and_loops() {
        let mut fs = setup();
        let ctx = user_ctx(100);
        fs.write_file(&ctx, "/home/u100/real", Mode::new(0o644), b"data")
            .unwrap();
        fs.symlink(&ctx, "/home/u100/real", "/home/u100/link")
            .unwrap();
        assert_eq!(fs.read(&ctx, "/home/u100/link").unwrap(), b"data");
        // lstat-style: stat on the link itself.
        let st = fs.stat(&ctx, "/home/u100/link");
        assert_eq!(st.unwrap().kind, FileKind::File, "stat follows");
        // Loop detection.
        fs.symlink(&ctx, "/home/u100/l2", "/home/u100/l1").unwrap();
        fs.symlink(&ctx, "/home/u100/l1", "/home/u100/l2").unwrap();
        assert!(matches!(
            fs.read(&ctx, "/home/u100/l1").unwrap_err(),
            FsError::SymlinkLoop(_)
        ));
        // Relative symlink.
        fs.symlink(&ctx, "real", "/home/u100/rel").unwrap();
        assert_eq!(fs.read(&ctx, "/home/u100/rel").unwrap(), b"data");
    }

    #[test]
    fn chown_rules() {
        let mut fs = setup();
        let alice = user_ctx(100);
        fs.create(&alice, "/home/u100/f", Mode::new(0o644)).unwrap();
        // Non-root cannot give files away.
        assert!(fs
            .chown(&alice, "/home/u100/f", Some(Uid(101)), None)
            .is_err());
        // Owner can chgrp only into a group they belong to.
        assert!(fs
            .chown(&alice, "/home/u100/f", None, Some(Gid(999)))
            .is_err());
        let member = FsCtx::user(Credentials::with_groups(Uid(100), Gid(100), [Gid(500)]));
        fs.chown(&member, "/home/u100/f", None, Some(Gid(500)))
            .unwrap();
        assert_eq!(fs.stat(&alice, "/home/u100/f").unwrap().gid, Gid(500));
        // Root can do anything.
        fs.chown(&FsCtx::root(), "/home/u100/f", Some(Uid(1)), Some(Gid(1)))
            .unwrap();
    }

    #[test]
    fn acl_grant_and_restriction_patch() {
        let mut fs = setup();
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let bob = db.create_user("bob").unwrap();
        let carol = db.create_user("carol").unwrap();
        let proj = db.create_project_group("proj", alice).unwrap();
        db.add_to_group(alice, proj, bob).unwrap();

        let root = FsCtx::root().with_umask(Mode::new(0));
        fs.mkdir(&root, "/work", Mode::new(0o777)).unwrap();

        let alice_ctx = FsCtx::user(db.credentials(alice).unwrap());
        fs.create(&alice_ctx, "/work/f", Mode::new(0o640)).unwrap();

        // Vanilla kernel: alice may grant to anyone.
        fs.setfacl(
            &alice_ctx,
            "/work/f",
            PosixAcl::new(Perm::NONE).with_user(carol, Perm::R),
            &db,
        )
        .unwrap();
        let carol_ctx = FsCtx::user(db.credentials(carol).unwrap());
        assert!(fs.read(&carol_ctx, "/work/f").is_ok());

        // Patched kernel: grants to strangers are refused.
        fs.restrict_acl = true;
        assert!(matches!(
            fs.setfacl(
                &alice_ctx,
                "/work/f",
                PosixAcl::new(Perm::NONE).with_user(carol, Perm::R),
                &db,
            )
            .unwrap_err(),
            FsError::AclRestricted(_)
        ));
        // Grants to a shared-group member are fine.
        fs.setfacl(
            &alice_ctx,
            "/work/f",
            PosixAcl::new(Perm::NONE).with_user(bob, Perm::R),
            &db,
        )
        .unwrap();
        // Group grants require membership.
        assert!(matches!(
            fs.setfacl(
                &alice_ctx,
                "/work/f",
                PosixAcl::new(Perm::NONE).with_group(Gid(4242), Perm::R),
                &db,
            )
            .unwrap_err(),
            FsError::AclRestricted(_)
        ));
        fs.setfacl(
            &alice_ctx,
            "/work/f",
            PosixAcl::new(Perm::NONE).with_group(proj, Perm::R),
            &db,
        )
        .unwrap();
        let bob_ctx = FsCtx::user(db.credentials(bob).unwrap());
        assert!(fs.read(&bob_ctx, "/work/f").is_ok());
    }

    #[test]
    fn setfacl_recomputes_mask_in_group_bits() {
        let mut fs = setup();
        let db = UserDb::new();
        let ctx = user_ctx(100);
        fs.create(&ctx, "/home/u100/f", Mode::new(0o600)).unwrap();
        fs.setfacl(
            &ctx,
            "/home/u100/f",
            PosixAcl::new(Perm::NONE).with_user(Uid(101), Perm::RW),
            &db,
        )
        .unwrap();
        let st = fs.stat(&ctx, "/home/u100/f").unwrap();
        assert_eq!(st.mode.group(), Perm::RW, "mask = union of entries");
    }

    #[test]
    fn device_nodes_root_only_and_permission_gated() {
        let mut fs = setup();
        let root = FsCtx::root().with_umask(Mode::new(0));
        let alice = user_ctx(100);
        let dev = DeviceId {
            major: 195,
            minor: 0,
        };
        assert!(fs
            .mknod(&alice, "/dev/gpu0", dev, Mode::new(0o660))
            .is_err());
        fs.mknod(&root, "/dev/gpu0", dev, Mode::new(0o660)).unwrap();
        // 0660 root:root — alice cannot open.
        assert!(fs.open_device(&alice, "/dev/gpu0", Perm::RW).is_err());
        // Assign to alice's private group (what the scheduler prolog does).
        fs.set_meta_as_root("/dev/gpu0", |m| m.gid = Gid(100))
            .unwrap();
        assert_eq!(fs.open_device(&alice, "/dev/gpu0", Perm::RW).unwrap(), dev);
    }

    #[test]
    fn invalid_paths_rejected() {
        let fs = Vfs::new("t");
        let ctx = FsCtx::root();
        assert!(matches!(
            fs.read(&ctx, "relative/path").unwrap_err(),
            FsError::InvalidPath(_)
        ));
        assert!(fs.walk(&ctx, "/", true).is_ok());
    }

    #[test]
    fn dotdot_normalization() {
        let mut fs = setup();
        let ctx = user_ctx(100);
        fs.write_file(&ctx, "/home/u100/f", Mode::new(0o644), b"x")
            .unwrap();
        assert_eq!(fs.read(&ctx, "/home/u100/../u100/./f").unwrap(), b"x");
        // `..` above root stays at root.
        assert!(fs.exists(&FsCtx::root(), "/../../tmp"));
    }

    #[test]
    fn search_permission_required_along_path() {
        let mut fs = setup();
        let root = FsCtx::root().with_umask(Mode::new(0));
        fs.mkdir(&root, "/locked", Mode::new(0o700)).unwrap();
        fs.mkdir(&root, "/locked/inner", Mode::new(0o777)).unwrap();
        let alice = user_ctx(100);
        let err = fs.readdir(&alice, "/locked/inner").unwrap_err();
        assert!(matches!(
            err,
            FsError::PermissionDenied { op: "search", .. }
        ));
    }

    #[test]
    fn write_file_is_idempotent_create() {
        let mut fs = setup();
        let ctx = user_ctx(100);
        fs.write_file(&ctx, "/home/u100/f", Mode::new(0o644), b"one")
            .unwrap();
        fs.write_file(&ctx, "/home/u100/f", Mode::new(0o644), b"two")
            .unwrap();
        assert_eq!(fs.read(&ctx, "/home/u100/f").unwrap(), b"two");
    }
}
