//! Character-device identities.
//!
//! GPUs (and other accelerators) appear as `/dev` nodes; the scheduler
//! assigns them to a job's user by flipping the group owner of the node to
//! the user's private group (paper Sec. IV-F). The device *state* (memory,
//! remanence) lives in `eus-accel`; this is just the identity the VFS stores.

use std::fmt;

/// A (major, minor) device number pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId {
    /// Major number (device class; 195 is the NVIDIA character range).
    pub major: u16,
    /// Minor number (instance).
    pub minor: u16,
}

impl DeviceId {
    /// Conventional id for the `n`-th GPU on a node.
    pub fn gpu(n: u16) -> Self {
        DeviceId {
            major: 195,
            minor: n,
        }
    }

    /// Conventional `/dev` path for this device.
    pub fn dev_path(&self) -> String {
        match self.major {
            195 => format!("/dev/gpu{}", self.minor),
            _ => format!("/dev/char-{}-{}", self.major, self.minor),
        }
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev({},{})", self.major, self.minor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_ids_and_paths() {
        let d = DeviceId::gpu(2);
        assert_eq!(d.major, 195);
        assert_eq!(d.dev_path(), "/dev/gpu2");
        assert_eq!(d.to_string(), "dev(195,2)");
        let other = DeviceId {
            major: 10,
            minor: 1,
        };
        assert_eq!(other.dev_path(), "/dev/char-10-1");
    }
}
