//! A miniature PAM (pluggable authentication modules) stack.
//!
//! Two of the paper's mechanisms are PAM modules: `pam_slurm` (ssh to a
//! compute node only while you have a job there, Sec. IV-B — implemented in
//! `eus-sched`) and the File Permission Handler's session module that sets
//! the enforced `smask` (Sec. IV-C / Appendix — implemented in `eus-fsperm`).
//! This module provides the stack they plug into: an *account* phase that can
//! deny access and a *session* phase that can decorate the resulting session
//! (credentials, umask, smask).

use crate::cred::Credentials;
use crate::ids::{NodeId, SessionId, Uid};
use crate::vfs::{FsCtx, Mode};
use std::fmt;

/// Outcome of a PAM module decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PamVerdict {
    /// Continue / allow.
    Success,
    /// Deny with a reason (maps to PAM_PERM_DENIED).
    Denied(String),
}

/// Inputs available to modules during a login attempt.
#[derive(Debug, Clone)]
pub struct PamContext {
    /// The service attempting login (`"sshd"`, `"slurmd"`, `"portal"`, …).
    pub service: String,
    /// The authenticating user.
    pub user: Uid,
    /// Full credentials resolved from the user database.
    pub cred: Credentials,
    /// The node being logged into.
    pub node: NodeId,
}

/// An established login session. Carries the mutable credential state the
/// support tools (`seepid`, `smask_relax`, `newgrp`) operate on.
#[derive(Debug, Clone)]
pub struct Session {
    /// Session id, unique per node.
    pub id: SessionId,
    /// The logged-in user.
    pub user: Uid,
    /// Effective credentials (may gain groups via `seepid`, swap egid via
    /// `newgrp`).
    pub cred: Credentials,
    /// Advisory file-creation mask.
    pub umask: Mode,
    /// Enforced security mask (honored when the kernel patch is active).
    pub smask: Mode,
    /// Node this session lives on.
    pub node: NodeId,
}

impl Session {
    /// The filesystem context this session performs I/O with.
    pub fn fs_ctx(&self) -> FsCtx {
        FsCtx {
            cred: self.cred.clone(),
            umask: self.umask,
            smask: self.smask,
        }
    }
}

/// A PAM module: both phases default to no-ops so modules implement only
/// what they need.
pub trait PamModule: Send + Sync {
    /// Module name for diagnostics.
    fn name(&self) -> &str;

    /// Account phase: may deny the login outright.
    fn account(&self, _ctx: &PamContext) -> PamVerdict {
        PamVerdict::Success
    }

    /// Session phase: may adjust the session being opened.
    fn open_session(&self, _ctx: &PamContext, _session: &mut Session) -> PamVerdict {
        PamVerdict::Success
    }
}

/// Login failure: which module denied, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PamDenied {
    /// The denying module.
    pub module: String,
    /// Its reason.
    pub reason: String,
}

impl fmt::Display for PamDenied {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pam module {} denied login: {}",
            self.module, self.reason
        )
    }
}

impl std::error::Error for PamDenied {}

/// An ordered stack of modules, all treated as `required`.
#[derive(Default)]
pub struct PamStack {
    modules: Vec<Box<dyn PamModule>>,
}

impl fmt::Debug for PamStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PamStack")
            .field(
                "modules",
                &self
                    .modules
                    .iter()
                    .map(|m| m.name().to_string())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl PamStack {
    /// An empty stack (every login allowed, default session settings).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a module.
    pub fn push(&mut self, module: Box<dyn PamModule>) {
        self.modules.push(module);
    }

    /// Names of installed modules, in order.
    pub fn module_names(&self) -> Vec<&str> {
        self.modules.iter().map(|m| m.name()).collect()
    }

    /// Run the full login flow: account phase (all modules must pass), then
    /// open a session and run the session phase.
    pub fn login(&self, ctx: &PamContext, id: SessionId) -> Result<Session, PamDenied> {
        for m in &self.modules {
            if let PamVerdict::Denied(reason) = m.account(ctx) {
                return Err(PamDenied {
                    module: m.name().to_string(),
                    reason,
                });
            }
        }
        let mut session = Session {
            id,
            user: ctx.user,
            cred: ctx.cred.clone(),
            umask: Mode::new(0o022),
            smask: Mode::new(0),
            node: ctx.node,
        };
        for m in &self.modules {
            if let PamVerdict::Denied(reason) = m.open_session(ctx, &mut session) {
                return Err(PamDenied {
                    module: m.name().to_string(),
                    reason,
                });
            }
        }
        Ok(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Gid;

    struct DenyService(String);
    impl PamModule for DenyService {
        fn name(&self) -> &str {
            "deny-service"
        }
        fn account(&self, ctx: &PamContext) -> PamVerdict {
            if ctx.service == self.0 {
                PamVerdict::Denied(format!("service {} blocked", self.0))
            } else {
                PamVerdict::Success
            }
        }
    }

    struct SetSmask(Mode);
    impl PamModule for SetSmask {
        fn name(&self) -> &str {
            "set-smask"
        }
        fn open_session(&self, _ctx: &PamContext, s: &mut Session) -> PamVerdict {
            s.smask = self.0;
            PamVerdict::Success
        }
    }

    fn ctx(service: &str) -> PamContext {
        PamContext {
            service: service.to_string(),
            user: Uid(100),
            cred: Credentials::new(Uid(100), Gid(100)),
            node: NodeId(1),
        }
    }

    #[test]
    fn empty_stack_allows_with_defaults() {
        let stack = PamStack::new();
        let s = stack.login(&ctx("sshd"), SessionId(1)).unwrap();
        assert_eq!(s.user, Uid(100));
        assert_eq!(s.umask, Mode::new(0o022));
        assert_eq!(s.smask, Mode::new(0));
    }

    #[test]
    fn account_phase_denies() {
        let mut stack = PamStack::new();
        stack.push(Box::new(DenyService("sshd".into())));
        let err = stack.login(&ctx("sshd"), SessionId(1)).unwrap_err();
        assert_eq!(err.module, "deny-service");
        assert!(stack.login(&ctx("portal"), SessionId(2)).is_ok());
    }

    #[test]
    fn session_phase_decorates() {
        let mut stack = PamStack::new();
        stack.push(Box::new(SetSmask(Mode::new(0o007))));
        let s = stack.login(&ctx("sshd"), SessionId(1)).unwrap();
        assert_eq!(s.smask, Mode::new(0o007));
        assert_eq!(s.fs_ctx().smask, Mode::new(0o007));
    }

    #[test]
    fn module_names_listed_in_order() {
        let mut stack = PamStack::new();
        stack.push(Box::new(DenyService("x".into())));
        stack.push(Box::new(SetSmask(Mode::new(0o007))));
        assert_eq!(stack.module_names(), vec!["deny-service", "set-smask"]);
    }
}
