//! # eus-simos — simulated Linux node substrate
//!
//! The paper's mechanisms are Linux configurations and kernel patches; this
//! crate is the Linux they apply to, reduced to the security semantics that
//! matter for multi-tenant HPC:
//!
//! * [`users`] — the **user private group** scheme and steward-managed
//!   project groups (Sec. IV-C),
//! * [`process`] / [`procfs`] — the process table and `/proc` with
//!   `hidepid=`/`gid=` mount options (Sec. IV-A),
//! * [`vfs`] — a full-DAC filesystem (mode bits, POSIX ACLs, sticky/setgid,
//!   umask) with the File Permission Handler's patch points (`smask`
//!   enforcement and ACL restriction — flipped on by `eus-fsperm`),
//! * [`pam`] — the module stack `pam_slurm` and the smask session module
//!   plug into,
//! * [`node`] — nodes with shared-filesystem mounts and login sessions,
//! * [`shm`] — abstract-namespace Unix sockets, one of the residual channels
//!   of Sec. V,
//! * [`devices`] — `/dev` identities for scheduler-assigned accelerators.
//!
//! Semantics are implemented from the relevant man pages (proc(5), acl(5),
//! chown(2), chmod(2)) so that "blocked" and "allowed" in the experiment
//! tables mean what they would mean on a production node.

#![warn(missing_docs)]

pub mod cred;
pub mod devices;
pub mod ids;
pub mod node;
pub mod pam;
pub mod process;
pub mod procfs;
pub mod shm;
pub mod users;
pub mod vfs;

pub use cred::Credentials;
pub use devices::DeviceId;
pub use ids::{Gid, NodeId, Pid, SessionId, Uid, ROOT_GID, ROOT_UID};
pub use node::{fs_handle, FsHandle, LoginError, MountTable, NodeOs};
pub use pam::{PamContext, PamDenied, PamModule, PamStack, PamVerdict, Session};
pub use process::{ProcState, Process, ProcessTable};
pub use procfs::{HidePid, ProcError, ProcFs, ProcMountOpts};
pub use shm::{AbstractSocket, AbstractSocketSpace, ShmError};
pub use users::{Group, GroupKind, User, UserDb, UserDbError};
pub use vfs::{
    check_access, FileKind, FileStat, FsCtx, FsError, FsResult, Mode, Perm, PermMeta, PosixAcl, Vfs,
};
