//! Process credentials: the (uid, egid, supplementary groups) triple every
//! access-control decision in the paper reduces to.

use crate::ids::{Gid, Uid, ROOT_GID, ROOT_UID};
use std::collections::BTreeSet;

/// The identity a process or session acts with.
///
/// `gid` is the *effective* gid (the one new files and listening sockets are
/// labeled with, and the one the User-Based Firewall's group opt-in consults);
/// `groups` are supplementary memberships. Group membership checks consider
/// both, matching Linux `in_group_p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credentials {
    /// Effective user id.
    pub uid: Uid,
    /// Effective (primary) group id.
    pub gid: Gid,
    /// Supplementary group ids.
    pub groups: BTreeSet<Gid>,
}

impl Credentials {
    /// Credentials with no supplementary groups.
    pub fn new(uid: Uid, gid: Gid) -> Self {
        Credentials {
            uid,
            gid,
            groups: BTreeSet::new(),
        }
    }

    /// Credentials with supplementary groups.
    pub fn with_groups(uid: Uid, gid: Gid, groups: impl IntoIterator<Item = Gid>) -> Self {
        Credentials {
            uid,
            gid,
            groups: groups.into_iter().collect(),
        }
    }

    /// The superuser.
    pub fn root() -> Self {
        Credentials::new(ROOT_UID, ROOT_GID)
    }

    /// True for uid 0.
    #[inline]
    pub fn is_root(&self) -> bool {
        self.uid == ROOT_UID
    }

    /// True when `g` is the effective gid or a supplementary group.
    #[inline]
    pub fn is_member(&self, g: Gid) -> bool {
        self.gid == g || self.groups.contains(&g)
    }

    /// A copy with a different effective gid, as produced by `newgrp`/`sg`.
    /// Membership validation belongs to [`crate::users::UserDb::newgrp`]; this
    /// is the raw credential operation.
    pub fn with_egid(&self, g: Gid) -> Self {
        let mut c = self.clone();
        // The old egid remains available as a supplementary group, as login
        // shells do.
        c.groups.insert(c.gid);
        c.gid = g;
        c.groups.remove(&g);
        c
    }

    /// A copy with an extra supplementary group (the `seepid` operation).
    pub fn with_extra_group(&self, g: Gid) -> Self {
        let mut c = self.clone();
        c.groups.insert(g);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_checks_egid_and_supplementary() {
        let c = Credentials::with_groups(Uid(10), Gid(10), [Gid(50), Gid(60)]);
        assert!(c.is_member(Gid(10)));
        assert!(c.is_member(Gid(50)));
        assert!(!c.is_member(Gid(99)));
    }

    #[test]
    fn root_detection() {
        assert!(Credentials::root().is_root());
        assert!(!Credentials::new(Uid(5), Gid(5)).is_root());
    }

    #[test]
    fn newgrp_swaps_egid_and_keeps_old_membership() {
        let c = Credentials::with_groups(Uid(10), Gid(10), [Gid(50)]);
        let c2 = c.with_egid(Gid(50));
        assert_eq!(c2.gid, Gid(50));
        assert!(c2.is_member(Gid(10)), "old primary stays supplementary");
        assert!(!c2.groups.contains(&Gid(50)), "new egid not duplicated");
    }

    #[test]
    fn extra_group_is_additive() {
        let c = Credentials::new(Uid(1), Gid(1)).with_extra_group(Gid(999));
        assert!(c.is_member(Gid(999)));
        assert_eq!(c.gid, Gid(1));
    }
}
