//! Identifier newtypes shared across the simulated cluster.

use std::fmt;

/// A numeric user id, as in `uid_t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Uid(pub u32);

/// A numeric group id, as in `gid_t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gid(pub u32);

/// A process id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

/// A cluster node (machine) id. Also used as the network host id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// A login-session id, unique per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

/// The superuser uid.
pub const ROOT_UID: Uid = Uid(0);
/// The superuser's primary group.
pub const ROOT_GID: Gid = Gid(0);

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid:{}", self.0)
    }
}
impl fmt::Display for Gid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gid:{}", self.0)
    }
}
impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}
impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node:{}", self.0)
    }
}
impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Uid(7).to_string(), "uid:7");
        assert_eq!(Gid(8).to_string(), "gid:8");
        assert_eq!(Pid(9).to_string(), "pid:9");
        assert_eq!(NodeId(1).to_string(), "node:1");
        assert_eq!(SessionId(3).to_string(), "session:3");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Uid(2) < Uid(10));
        assert!(Pid(100) > Pid(99));
    }
}
