//! Per-node process table.
//!
//! Processes carry the full credential triple plus the observable surfaces
//! the paper worries about leaking: the command line (world-readable in
//! default Linux via `/proc/<pid>/cmdline`) and the environment (owner-only
//! even in default Linux). `hidepid` filtering happens in [`crate::procfs`].

use crate::cred::Credentials;
use crate::ids::{Pid, Uid};
use eus_simcore::SimTime;
use std::collections::BTreeMap;

/// Process run state (coarse; enough for `ps`-shaped output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// On CPU or runnable.
    Running,
    /// Blocked.
    Sleeping,
    /// Exited, not yet reaped.
    Zombie,
}

/// One process.
#[derive(Debug, Clone)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Credentials the process runs with.
    pub cred: Credentials,
    /// argv, with `argv[0]` first.
    pub cmdline: Vec<String>,
    /// Environment variables (`/proc/<pid>/environ`).
    pub environ: BTreeMap<String, String>,
    /// Run state.
    pub state: ProcState,
    /// Simulated start time.
    pub started: SimTime,
    /// Parent pid, if any.
    pub parent: Option<Pid>,
}

impl Process {
    /// The owning uid.
    #[inline]
    pub fn uid(&self) -> Uid {
        self.cred.uid
    }

    /// The command name (`argv[0]`, or empty).
    pub fn comm(&self) -> &str {
        self.cmdline.first().map(String::as_str).unwrap_or("")
    }
}

/// A node's process table.
#[derive(Debug, Clone, Default)]
pub struct ProcessTable {
    procs: BTreeMap<Pid, Process>,
    next_pid: u32,
}

impl ProcessTable {
    /// An empty table; pid numbering starts at 1 (init-like daemons land
    /// first, just as on a real node).
    pub fn new() -> Self {
        ProcessTable {
            procs: BTreeMap::new(),
            next_pid: 1,
        }
    }

    /// Spawn a process and return its pid.
    pub fn spawn(
        &mut self,
        cred: Credentials,
        cmdline: impl IntoIterator<Item = impl Into<String>>,
        started: SimTime,
    ) -> Pid {
        self.spawn_with_env(cred, cmdline, BTreeMap::new(), None, started)
    }

    /// Spawn with an explicit environment and optional parent.
    pub fn spawn_with_env(
        &mut self,
        cred: Credentials,
        cmdline: impl IntoIterator<Item = impl Into<String>>,
        environ: BTreeMap<String, String>,
        parent: Option<Pid>,
        started: SimTime,
    ) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.procs.insert(
            pid,
            Process {
                pid,
                cred,
                cmdline: cmdline.into_iter().map(Into::into).collect(),
                environ,
                state: ProcState::Running,
                started,
                parent,
            },
        );
        pid
    }

    /// Look up a process.
    pub fn get(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.procs.get_mut(&pid)
    }

    /// Remove a process outright (exit + reap).
    pub fn remove(&mut self, pid: Pid) -> Option<Process> {
        self.procs.remove(&pid)
    }

    /// Kill every process owned by `uid`; returns the pids removed. Used by
    /// the scheduler epilog and by `pam_slurm_adopt`-style cleanup.
    pub fn kill_all_of(&mut self, uid: Uid) -> Vec<Pid> {
        let doomed: Vec<Pid> = self
            .procs
            .values()
            .filter(|p| p.uid() == uid)
            .map(|p| p.pid)
            .collect();
        for pid in &doomed {
            self.procs.remove(pid);
        }
        doomed
    }

    /// All processes, pid order.
    pub fn iter(&self) -> impl Iterator<Item = &Process> {
        self.procs.values()
    }

    /// Number of live processes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True when no processes exist.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Number of processes owned by `uid`.
    pub fn count_for(&self, uid: Uid) -> usize {
        self.procs.values().filter(|p| p.uid() == uid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Gid;

    fn cred(u: u32) -> Credentials {
        Credentials::new(Uid(u), Gid(u))
    }

    #[test]
    fn spawn_assigns_increasing_pids() {
        let mut t = ProcessTable::new();
        let a = t.spawn(cred(1), ["init"], SimTime::ZERO);
        let b = t.spawn(cred(1), ["sshd"], SimTime::ZERO);
        assert!(b > a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a).unwrap().comm(), "init");
    }

    #[test]
    fn kill_all_of_targets_one_uid() {
        let mut t = ProcessTable::new();
        t.spawn(cred(1), ["a"], SimTime::ZERO);
        t.spawn(cred(2), ["b"], SimTime::ZERO);
        t.spawn(cred(1), ["c"], SimTime::ZERO);
        let killed = t.kill_all_of(Uid(1));
        assert_eq!(killed.len(), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.count_for(Uid(2)), 1);
        assert_eq!(t.count_for(Uid(1)), 0);
    }

    #[test]
    fn environ_and_parent_retained() {
        let mut t = ProcessTable::new();
        let parent = t.spawn(cred(1), ["bash"], SimTime::ZERO);
        let env = BTreeMap::from([("SECRET".to_string(), "hunter2".to_string())]);
        let child = t.spawn_with_env(cred(1), ["srun"], env, Some(parent), SimTime::from_secs(1));
        let p = t.get(child).unwrap();
        assert_eq!(p.parent, Some(parent));
        assert_eq!(p.environ["SECRET"], "hunter2");
        assert_eq!(p.started, SimTime::from_secs(1));
    }

    #[test]
    fn remove_reaps() {
        let mut t = ProcessTable::new();
        let a = t.spawn(cred(1), ["x"], SimTime::ZERO);
        assert!(t.remove(a).is_some());
        assert!(t.remove(a).is_none());
        assert!(t.is_empty());
    }
}
