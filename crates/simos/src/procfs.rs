//! `/proc` visibility semantics (paper Sec. IV-A).
//!
//! Models the `hidepid=` and `gid=` options of the proc(5) mount:
//!
//! * `hidepid=0` — default Linux: everyone lists every pid and reads every
//!   process's cmdline.
//! * `hidepid=1` — other users' `/proc/<pid>` contents are unreadable, but
//!   the pid directories still appear (process *existence* leaks).
//! * `hidepid=2` — other users' processes are **invisible**: not listed, and
//!   probing a pid returns "no such process" rather than "permission denied",
//!   closing the existence side channel too.
//!
//! The `gid=` option names an exemption group; members see everything. The
//! paper's `seepid` tool adds that group to a whitelisted support-staff
//! session — implemented in `eus-fsperm::tools`.

use crate::cred::Credentials;
use crate::ids::{Gid, Pid, Uid};
use crate::process::{ProcState, ProcessTable};
use std::fmt;

/// The `hidepid=` mount option.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HidePid {
    /// `hidepid=0`: no restriction (Linux default).
    #[default]
    Off,
    /// `hidepid=1`: foreign `/proc/<pid>` unreadable but listed.
    NoAccess,
    /// `hidepid=2`: foreign processes invisible (the paper's setting).
    Invisible,
}

/// Mount options for a node's `/proc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProcMountOpts {
    /// The `hidepid=` level.
    pub hidepid: HidePid,
    /// The `gid=` exemption group, if configured.
    pub exempt_gid: Option<Gid>,
}

impl ProcMountOpts {
    /// The paper's configuration: `hidepid=2` plus a support-staff exemption
    /// group.
    pub fn llsc(exempt_gid: Gid) -> Self {
        ProcMountOpts {
            hidepid: HidePid::Invisible,
            exempt_gid: Some(exempt_gid),
        }
    }
}

/// Errors from probing `/proc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcError {
    /// ESRCH/ENOENT — the pid does not exist *as far as the viewer can tell*.
    NotFound,
    /// EACCES — the pid exists but its contents are not readable.
    PermissionDenied,
}

impl fmt::Display for ProcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcError::NotFound => f.write_str("no such process"),
            ProcError::PermissionDenied => f.write_str("permission denied"),
        }
    }
}

impl std::error::Error for ProcError {}

/// A `ps`-shaped row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcEntry {
    /// Process id.
    pub pid: Pid,
    /// Owner uid.
    pub uid: Uid,
    /// Command name.
    pub comm: String,
    /// Run state.
    pub state: ProcState,
}

/// A read-only view of a node's process table through its `/proc` mount.
pub struct ProcFs<'a> {
    table: &'a ProcessTable,
    opts: ProcMountOpts,
}

impl<'a> ProcFs<'a> {
    /// Bind a view to a table with the given mount options.
    pub fn new(table: &'a ProcessTable, opts: ProcMountOpts) -> Self {
        ProcFs { table, opts }
    }

    /// Full-content access check: owner, root, or exemption-group member.
    fn may_inspect(&self, viewer: &Credentials, owner: Uid) -> bool {
        viewer.is_root()
            || viewer.uid == owner
            || self
                .opts
                .exempt_gid
                .map(|g| viewer.is_member(g))
                .unwrap_or(false)
    }

    /// List the pids the viewer can see (what `ls /proc` / `ps` shows).
    pub fn list(&self, viewer: &Credentials) -> Vec<ProcEntry> {
        self.table
            .iter()
            .filter(|p| match self.opts.hidepid {
                HidePid::Off | HidePid::NoAccess => true,
                HidePid::Invisible => self.may_inspect(viewer, p.uid()),
            })
            .map(|p| ProcEntry {
                pid: p.pid,
                uid: p.uid(),
                comm: p.comm().to_string(),
                state: p.state,
            })
            .collect()
    }

    /// Read `/proc/<pid>/cmdline`. World-readable at `hidepid=0`; otherwise
    /// restricted to inspectors. At `hidepid=2` a foreign pid reads as
    /// *nonexistent*.
    pub fn read_cmdline(&self, viewer: &Credentials, pid: Pid) -> Result<Vec<String>, ProcError> {
        let p = self.table.get(pid).ok_or(ProcError::NotFound)?;
        match self.opts.hidepid {
            HidePid::Off => Ok(p.cmdline.clone()),
            HidePid::NoAccess => {
                if self.may_inspect(viewer, p.uid()) {
                    Ok(p.cmdline.clone())
                } else {
                    Err(ProcError::PermissionDenied)
                }
            }
            HidePid::Invisible => {
                if self.may_inspect(viewer, p.uid()) {
                    Ok(p.cmdline.clone())
                } else {
                    Err(ProcError::NotFound)
                }
            }
        }
    }

    /// Read `/proc/<pid>/environ`. Owner-or-root only at *every* hidepid
    /// level, as on stock Linux (mode 0400); at `hidepid=2` foreign pids are
    /// additionally indistinguishable from absent ones.
    pub fn read_environ(
        &self,
        viewer: &Credentials,
        pid: Pid,
    ) -> Result<Vec<(String, String)>, ProcError> {
        let p = self.table.get(pid).ok_or(ProcError::NotFound)?;
        if viewer.is_root() || viewer.uid == p.uid() {
            return Ok(p
                .environ
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect());
        }
        match self.opts.hidepid {
            HidePid::Invisible if !self.may_inspect(viewer, p.uid()) => Err(ProcError::NotFound),
            _ => Err(ProcError::PermissionDenied),
        }
    }

    /// Does the viewer learn that `pid` exists at all? (The existence side
    /// channel `hidepid=2` closes.)
    pub fn pid_exists_for(&self, viewer: &Credentials, pid: Pid) -> bool {
        match self.table.get(pid) {
            None => false,
            Some(p) => match self.opts.hidepid {
                HidePid::Off | HidePid::NoAccess => true,
                HidePid::Invisible => self.may_inspect(viewer, p.uid()),
            },
        }
    }

    /// Count of *foreign* (other users') processes visible to the viewer —
    /// the headline number of experiment E1.
    pub fn foreign_visible_count(&self, viewer: &Credentials) -> usize {
        self.list(viewer)
            .iter()
            .filter(|e| e.uid != viewer.uid)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eus_simcore::SimTime;

    fn table() -> (ProcessTable, Credentials, Credentials, Credentials) {
        let mut t = ProcessTable::new();
        let alice = Credentials::new(Uid(1000), Gid(1000));
        let bob = Credentials::new(Uid(1001), Gid(1001));
        let root = Credentials::root();
        t.spawn(root.clone(), ["systemd"], SimTime::ZERO);
        t.spawn(alice.clone(), ["python", "train.py"], SimTime::ZERO);
        t.spawn(bob.clone(), ["matlab", "-r", "sim"], SimTime::ZERO);
        (t, alice, bob, root)
    }

    #[test]
    fn hidepid_off_everyone_sees_everything() {
        let (t, alice, _bob, _root) = table();
        let fs = ProcFs::new(&t, ProcMountOpts::default());
        assert_eq!(fs.list(&alice).len(), 3);
        assert_eq!(fs.foreign_visible_count(&alice), 2);
        // Bob's cmdline is world-readable.
        assert_eq!(
            fs.read_cmdline(&alice, Pid(3)).unwrap(),
            vec!["matlab", "-r", "sim"]
        );
    }

    #[test]
    fn hidepid_1_lists_but_denies_content() {
        let (t, alice, _bob, _root) = table();
        let fs = ProcFs::new(
            &t,
            ProcMountOpts {
                hidepid: HidePid::NoAccess,
                exempt_gid: None,
            },
        );
        assert_eq!(fs.list(&alice).len(), 3, "pids still enumerable");
        assert_eq!(
            fs.read_cmdline(&alice, Pid(3)),
            Err(ProcError::PermissionDenied)
        );
        assert!(fs.pid_exists_for(&alice, Pid(3)), "existence still leaks");
    }

    #[test]
    fn hidepid_2_makes_foreign_processes_invisible() {
        let (t, alice, bob, root) = table();
        let fs = ProcFs::new(
            &t,
            ProcMountOpts {
                hidepid: HidePid::Invisible,
                exempt_gid: None,
            },
        );
        // Alice sees only her own process.
        let entries = fs.list(&alice);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].uid, alice.uid);
        assert_eq!(fs.foreign_visible_count(&alice), 0);
        // Probing bob's pid looks like ESRCH, not EACCES.
        assert_eq!(fs.read_cmdline(&alice, Pid(3)), Err(ProcError::NotFound));
        assert!(!fs.pid_exists_for(&alice, Pid(3)));
        // Bob still sees himself; root sees all.
        assert_eq!(fs.list(&bob).len(), 1);
        assert_eq!(fs.list(&root).len(), 3);
    }

    #[test]
    fn exempt_gid_restores_support_staff_view() {
        let (t, _alice, _bob, _root) = table();
        let seepid_gid = Gid(900);
        let fs = ProcFs::new(&t, ProcMountOpts::llsc(seepid_gid));
        let staff = Credentials::with_groups(Uid(2000), Gid(2000), [seepid_gid]);
        assert_eq!(fs.list(&staff).len(), 3);
        assert!(fs.read_cmdline(&staff, Pid(2)).is_ok());
        // Without the group, the same person sees nothing foreign.
        let plain = Credentials::new(Uid(2000), Gid(2000));
        assert_eq!(fs.list(&plain).len(), 0);
    }

    #[test]
    fn environ_is_owner_only_even_at_hidepid_0() {
        let mut t = ProcessTable::new();
        let alice = Credentials::new(Uid(1), Gid(1));
        let bob = Credentials::new(Uid(2), Gid(2));
        let env = std::collections::BTreeMap::from([("TOKEN".to_string(), "s3cret".to_string())]);
        let pid = t.spawn_with_env(alice.clone(), ["job"], env, None, SimTime::ZERO);
        let fs = ProcFs::new(&t, ProcMountOpts::default());
        assert!(fs.read_environ(&alice, pid).is_ok());
        assert_eq!(fs.read_environ(&bob, pid), Err(ProcError::PermissionDenied));
        assert!(fs.read_environ(&Credentials::root(), pid).is_ok());
    }

    #[test]
    fn nonexistent_pid_is_not_found() {
        let (t, alice, ..) = table();
        let fs = ProcFs::new(&t, ProcMountOpts::default());
        assert_eq!(fs.read_cmdline(&alice, Pid(999)), Err(ProcError::NotFound));
        assert!(!fs.pid_exists_for(&alice, Pid(999)));
    }
}
