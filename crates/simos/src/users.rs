//! Cluster user/group database implementing the paper's **user private group**
//! scheme (Sec. IV-C): every user's default group contains only themselves, so
//! group permission bits grant nothing until a *project group* — administered
//! by its data stewards — deliberately connects users.

use crate::cred::Credentials;
use crate::ids::{Gid, Uid, ROOT_GID, ROOT_UID};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// What kind of group an entry is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupKind {
    /// A user private group: exactly one member, ever.
    UserPrivate(Uid),
    /// An approved project group with data stewards who control membership.
    Project {
        /// Users allowed to add/remove members (usually project leaders).
        stewards: BTreeSet<Uid>,
    },
    /// System groups (root, the `seepid` exemption group, …).
    System,
}

/// One group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Group name.
    pub name: String,
    /// Group id.
    pub gid: Gid,
    /// Member uids.
    pub members: BTreeSet<Uid>,
    /// Group kind.
    pub kind: GroupKind,
}

/// One user account.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct User {
    /// Login name.
    pub name: String,
    /// User id.
    pub uid: Uid,
    /// The user's private group (their default/primary gid).
    pub private_group: Gid,
}

/// Errors from user-database operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserDbError {
    /// Unknown uid.
    NoSuchUser(Uid),
    /// Unknown gid.
    NoSuchGroup(Gid),
    /// A user or group with this name already exists.
    DuplicateName(String),
    /// The actor is not a steward of the project group (and not root).
    NotSteward {
        /// Who attempted the change.
        actor: Uid,
        /// The group involved.
        group: Gid,
    },
    /// The user is not a member of the group.
    NotMember {
        /// The non-member.
        user: Uid,
        /// The group involved.
        group: Gid,
    },
    /// User private groups never gain or lose members.
    PrivateGroupImmutable(Gid),
}

impl fmt::Display for UserDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UserDbError::NoSuchUser(u) => write!(f, "no such user {u}"),
            UserDbError::NoSuchGroup(g) => write!(f, "no such group {g}"),
            UserDbError::DuplicateName(n) => write!(f, "name already in use: {n}"),
            UserDbError::NotSteward { actor, group } => {
                write!(f, "{actor} is not a data steward of {group}")
            }
            UserDbError::NotMember { user, group } => {
                write!(f, "{user} is not a member of {group}")
            }
            UserDbError::PrivateGroupImmutable(g) => {
                write!(f, "{g} is a user private group; membership is fixed")
            }
        }
    }
}

impl std::error::Error for UserDbError {}

/// The cluster-wide account database (one instance shared by every node, the
/// scheduler, and the firewall daemons, as `/etc/passwd`+LDAP would be).
#[derive(Debug, Clone)]
pub struct UserDb {
    users: BTreeMap<Uid, User>,
    groups: BTreeMap<Gid, Group>,
    users_by_name: BTreeMap<String, Uid>,
    groups_by_name: BTreeMap<String, Gid>,
    next_uid: u32,
    next_gid: u32,
}

impl Default for UserDb {
    fn default() -> Self {
        Self::new()
    }
}

impl UserDb {
    /// A database containing only `root` (uid 0, gid 0).
    pub fn new() -> Self {
        let mut db = UserDb {
            users: BTreeMap::new(),
            groups: BTreeMap::new(),
            users_by_name: BTreeMap::new(),
            groups_by_name: BTreeMap::new(),
            next_uid: 1000,
            next_gid: 1000,
        };
        db.users.insert(
            ROOT_UID,
            User {
                name: "root".into(),
                uid: ROOT_UID,
                private_group: ROOT_GID,
            },
        );
        db.users_by_name.insert("root".into(), ROOT_UID);
        db.groups.insert(
            ROOT_GID,
            Group {
                name: "root".into(),
                gid: ROOT_GID,
                members: BTreeSet::from([ROOT_UID]),
                kind: GroupKind::System,
            },
        );
        db.groups_by_name.insert("root".into(), ROOT_GID);
        db
    }

    /// Create a user together with their user private group of the same name.
    pub fn create_user(&mut self, name: &str) -> Result<Uid, UserDbError> {
        if self.users_by_name.contains_key(name) || self.groups_by_name.contains_key(name) {
            return Err(UserDbError::DuplicateName(name.to_string()));
        }
        let uid = Uid(self.next_uid);
        self.next_uid += 1;
        let gid = Gid(self.next_gid);
        self.next_gid += 1;
        self.users.insert(
            uid,
            User {
                name: name.to_string(),
                uid,
                private_group: gid,
            },
        );
        self.users_by_name.insert(name.to_string(), uid);
        self.groups.insert(
            gid,
            Group {
                name: name.to_string(),
                gid,
                members: BTreeSet::from([uid]),
                kind: GroupKind::UserPrivate(uid),
            },
        );
        self.groups_by_name.insert(name.to_string(), gid);
        Ok(uid)
    }

    /// Create a system group (no steward workflow; root-managed).
    pub fn create_system_group(&mut self, name: &str) -> Result<Gid, UserDbError> {
        if self.groups_by_name.contains_key(name) {
            return Err(UserDbError::DuplicateName(name.to_string()));
        }
        let gid = Gid(self.next_gid);
        self.next_gid += 1;
        self.groups.insert(
            gid,
            Group {
                name: name.to_string(),
                gid,
                members: BTreeSet::new(),
                kind: GroupKind::System,
            },
        );
        self.groups_by_name.insert(name.to_string(), gid);
        Ok(gid)
    }

    /// Create an approved project group with an initial data steward, who is
    /// also its first member. In production this is done by HPC staff; here
    /// any caller may create groups but membership changes are steward-gated.
    pub fn create_project_group(&mut self, name: &str, steward: Uid) -> Result<Gid, UserDbError> {
        if !self.users.contains_key(&steward) {
            return Err(UserDbError::NoSuchUser(steward));
        }
        if self.groups_by_name.contains_key(name) {
            return Err(UserDbError::DuplicateName(name.to_string()));
        }
        let gid = Gid(self.next_gid);
        self.next_gid += 1;
        self.groups.insert(
            gid,
            Group {
                name: name.to_string(),
                gid,
                members: BTreeSet::from([steward]),
                kind: GroupKind::Project {
                    stewards: BTreeSet::from([steward]),
                },
            },
        );
        self.groups_by_name.insert(name.to_string(), gid);
        Ok(gid)
    }

    fn steward_check(&self, actor: Uid, group: &Group) -> Result<(), UserDbError> {
        if actor == ROOT_UID {
            return Ok(());
        }
        match &group.kind {
            GroupKind::Project { stewards } if stewards.contains(&actor) => Ok(()),
            GroupKind::UserPrivate(_) => Err(UserDbError::PrivateGroupImmutable(group.gid)),
            _ => Err(UserDbError::NotSteward {
                actor,
                group: group.gid,
            }),
        }
    }

    /// Add `user` to a project group. Only that group's data stewards (or
    /// root, standing in for HPC staff) may do this — the paper's "data
    /// stewards approve adding and deleting users in their groups".
    pub fn add_to_group(&mut self, actor: Uid, gid: Gid, user: Uid) -> Result<(), UserDbError> {
        if !self.users.contains_key(&user) {
            return Err(UserDbError::NoSuchUser(user));
        }
        let group = self
            .groups
            .get(&gid)
            .ok_or(UserDbError::NoSuchGroup(gid))?
            .clone();
        if matches!(group.kind, GroupKind::UserPrivate(_)) {
            return Err(UserDbError::PrivateGroupImmutable(gid));
        }
        if !matches!(group.kind, GroupKind::System) || actor != ROOT_UID {
            self.steward_check(actor, &group)?;
        }
        self.groups
            .get_mut(&gid)
            .expect("checked above")
            .members
            .insert(user);
        Ok(())
    }

    /// Remove `user` from a project group (steward- or root-gated).
    pub fn remove_from_group(
        &mut self,
        actor: Uid,
        gid: Gid,
        user: Uid,
    ) -> Result<(), UserDbError> {
        let group = self
            .groups
            .get(&gid)
            .ok_or(UserDbError::NoSuchGroup(gid))?
            .clone();
        self.steward_check(actor, &group)?;
        let g = self.groups.get_mut(&gid).expect("checked above");
        if !g.members.remove(&user) {
            return Err(UserDbError::NotMember { user, group: gid });
        }
        Ok(())
    }

    /// Promote a member to data steward (existing steward or root only).
    pub fn add_steward(&mut self, actor: Uid, gid: Gid, user: Uid) -> Result<(), UserDbError> {
        let group = self
            .groups
            .get(&gid)
            .ok_or(UserDbError::NoSuchGroup(gid))?
            .clone();
        self.steward_check(actor, &group)?;
        if !group.members.contains(&user) {
            return Err(UserDbError::NotMember { user, group: gid });
        }
        if let GroupKind::Project { stewards } =
            &mut self.groups.get_mut(&gid).expect("checked above").kind
        {
            stewards.insert(user);
        }
        Ok(())
    }

    /// Is `user` a member of `gid`?
    pub fn is_member(&self, user: Uid, gid: Gid) -> bool {
        self.groups
            .get(&gid)
            .map(|g| g.members.contains(&user))
            .unwrap_or(false)
    }

    /// All groups that list `user` as a member (includes the private group).
    pub fn groups_of(&self, user: Uid) -> BTreeSet<Gid> {
        self.groups
            .values()
            .filter(|g| g.members.contains(&user))
            .map(|g| g.gid)
            .collect()
    }

    /// Full login credentials for a user: primary gid is the private group,
    /// supplementary groups are every other membership.
    pub fn credentials(&self, user: Uid) -> Result<Credentials, UserDbError> {
        let u = self.users.get(&user).ok_or(UserDbError::NoSuchUser(user))?;
        let mut groups = self.groups_of(user);
        groups.remove(&u.private_group);
        Ok(Credentials {
            uid: user,
            gid: u.private_group,
            groups,
        })
    }

    /// `newgrp`/`sg`: switch a credential's effective gid to `gid`, verifying
    /// membership. This is how a user opts a listening service into a project
    /// group for the User-Based Firewall (Sec. IV-D).
    pub fn newgrp(&self, cred: &Credentials, gid: Gid) -> Result<Credentials, UserDbError> {
        if !self.groups.contains_key(&gid) {
            return Err(UserDbError::NoSuchGroup(gid));
        }
        if !self.is_member(cred.uid, gid) {
            return Err(UserDbError::NotMember {
                user: cred.uid,
                group: gid,
            });
        }
        Ok(cred.with_egid(gid))
    }

    /// Look up a user by id.
    pub fn user(&self, uid: Uid) -> Option<&User> {
        self.users.get(&uid)
    }

    /// Look up a user by name.
    pub fn user_by_name(&self, name: &str) -> Option<&User> {
        self.users_by_name.get(name).and_then(|u| self.users.get(u))
    }

    /// Look up a group by id.
    pub fn group(&self, gid: Gid) -> Option<&Group> {
        self.groups.get(&gid)
    }

    /// Look up a group by name.
    pub fn group_by_name(&self, name: &str) -> Option<&Group> {
        self.groups_by_name
            .get(name)
            .and_then(|g| self.groups.get(g))
    }

    /// Iterate all users (including root).
    pub fn users(&self) -> impl Iterator<Item = &User> {
        self.users.values()
    }

    /// Iterate all groups.
    pub fn groups(&self) -> impl Iterator<Item = &Group> {
        self.groups.values()
    }

    /// Non-root uids, ascending — the audit sweep's subject list.
    pub fn regular_uids(&self) -> Vec<Uid> {
        self.users
            .keys()
            .copied()
            .filter(|u| *u != ROOT_UID)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with(names: &[&str]) -> (UserDb, Vec<Uid>) {
        let mut db = UserDb::new();
        let uids = names.iter().map(|n| db.create_user(n).unwrap()).collect();
        (db, uids)
    }

    #[test]
    fn user_private_group_scheme() {
        let (db, uids) = db_with(&["alice", "bob"]);
        let alice = db.credentials(uids[0]).unwrap();
        let bob = db.credentials(uids[1]).unwrap();
        // Private groups contain exactly their owner.
        assert_ne!(alice.gid, bob.gid);
        assert!(db.is_member(uids[0], alice.gid));
        assert!(!db.is_member(uids[1], alice.gid));
        // Fresh users share no groups.
        assert!(alice.groups.is_empty());
    }

    #[test]
    fn private_groups_are_immutable() {
        let (mut db, uids) = db_with(&["alice", "bob"]);
        let alice_gid = db.user(uids[0]).unwrap().private_group;
        let err = db.add_to_group(ROOT_UID, alice_gid, uids[1]).unwrap_err();
        assert_eq!(err, UserDbError::PrivateGroupImmutable(alice_gid));
    }

    #[test]
    fn project_group_steward_workflow() {
        let (mut db, uids) = db_with(&["lead", "member", "outsider"]);
        let g = db.create_project_group("proj", uids[0]).unwrap();
        // Steward can add; non-steward cannot.
        db.add_to_group(uids[0], g, uids[1]).unwrap();
        let err = db.add_to_group(uids[2], g, uids[2]).unwrap_err();
        assert!(matches!(err, UserDbError::NotSteward { .. }));
        // Members get it in their supplementary set.
        let cred = db.credentials(uids[1]).unwrap();
        assert!(cred.is_member(g));
        // Steward can remove.
        db.remove_from_group(uids[0], g, uids[1]).unwrap();
        assert!(!db.is_member(uids[1], g));
    }

    #[test]
    fn root_can_manage_project_groups() {
        let (mut db, uids) = db_with(&["lead", "member"]);
        let g = db.create_project_group("proj", uids[0]).unwrap();
        db.add_to_group(ROOT_UID, g, uids[1]).unwrap();
        assert!(db.is_member(uids[1], g));
    }

    #[test]
    fn steward_promotion_requires_membership() {
        let (mut db, uids) = db_with(&["lead", "member", "outsider"]);
        let g = db.create_project_group("proj", uids[0]).unwrap();
        db.add_to_group(uids[0], g, uids[1]).unwrap();
        db.add_steward(uids[0], g, uids[1]).unwrap();
        // The new steward can now add people.
        db.add_to_group(uids[1], g, uids[2]).unwrap();
        // Promoting a non-member fails.
        let (mut db2, uids2) = db_with(&["lead", "outsider"]);
        let g2 = db2.create_project_group("p2", uids2[0]).unwrap();
        let err = db2.add_steward(uids2[0], g2, uids2[1]).unwrap_err();
        assert!(matches!(err, UserDbError::NotMember { .. }));
    }

    #[test]
    fn newgrp_requires_membership() {
        let (mut db, uids) = db_with(&["alice", "bob"]);
        let g = db.create_project_group("proj", uids[0]).unwrap();
        let alice = db.credentials(uids[0]).unwrap();
        let switched = db.newgrp(&alice, g).unwrap();
        assert_eq!(switched.gid, g);

        let bob = db.credentials(uids[1]).unwrap();
        let err = db.newgrp(&bob, g).unwrap_err();
        assert!(matches!(err, UserDbError::NotMember { .. }));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut db = UserDb::new();
        db.create_user("alice").unwrap();
        assert!(matches!(
            db.create_user("alice"),
            Err(UserDbError::DuplicateName(_))
        ));
        // User names also collide with group names (UPG scheme).
        assert!(matches!(
            db.create_project_group("alice", ROOT_UID),
            Err(UserDbError::DuplicateName(_))
        ));
    }

    #[test]
    fn credentials_for_unknown_user_fail() {
        let db = UserDb::new();
        assert!(matches!(
            db.credentials(Uid(4242)),
            Err(UserDbError::NoSuchUser(_))
        ));
    }

    #[test]
    fn lookups_by_name() {
        let (db, uids) = db_with(&["alice"]);
        assert_eq!(db.user_by_name("alice").unwrap().uid, uids[0]);
        assert_eq!(db.group_by_name("alice").unwrap().members.len(), 1);
        assert!(db.user_by_name("nobody").is_none());
    }

    #[test]
    fn regular_uids_excludes_root() {
        let (db, uids) = db_with(&["a", "b"]);
        assert_eq!(db.regular_uids(), uids);
    }
}
