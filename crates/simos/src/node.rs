//! A simulated cluster node: process table, `/proc` mount, local filesystem,
//! shared-filesystem mounts, PAM stack, login sessions, and the abstract
//! socket namespace.
//!
//! Shared filesystems (`/home`, `/proj`) are `Arc<RwLock<Vfs>>` handles
//! mounted on every node, mirroring how Lustre/NFS make one tree visible
//! cluster-wide; node-local storage (`/tmp`, `/dev/shm`, `/dev`) stays
//! per-node.

use crate::ids::{NodeId, Pid, SessionId, Uid};
use crate::pam::{PamContext, PamDenied, PamStack, Session};
use crate::process::ProcessTable;
use crate::procfs::{ProcFs, ProcMountOpts};
use crate::shm::AbstractSocketSpace;
use crate::users::{UserDb, UserDbError};
use crate::vfs::{FsCtx, FsResult, Vfs};
use eus_simcore::SimTime;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A shareable filesystem handle.
pub type FsHandle = Arc<RwLock<Vfs>>;

/// Wrap a [`Vfs`] for mounting.
pub fn fs_handle(fs: Vfs) -> FsHandle {
    Arc::new(RwLock::new(fs))
}

/// One mount table entry.
#[derive(Clone)]
pub struct Mount {
    /// Absolute path prefix (`"/"`, `"/home"`, …).
    pub prefix: String,
    /// The mounted filesystem.
    pub fs: FsHandle,
}

/// Longest-prefix mount resolution.
#[derive(Clone)]
pub struct MountTable {
    mounts: Vec<Mount>,
}

impl fmt::Debug for MountTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefixes: Vec<&str> = self.mounts.iter().map(|m| m.prefix.as_str()).collect();
        f.debug_struct("MountTable")
            .field("prefixes", &prefixes)
            .finish()
    }
}

impl MountTable {
    /// A table with a single root mount.
    pub fn new(root: FsHandle) -> Self {
        MountTable {
            mounts: vec![Mount {
                prefix: "/".to_string(),
                fs: root,
            }],
        }
    }

    /// Add a mount at `prefix` (must be absolute, not `/`).
    pub fn add(&mut self, prefix: &str, fs: FsHandle) {
        assert!(
            prefix.starts_with('/') && prefix.len() > 1 && !prefix.ends_with('/'),
            "mount prefix must be absolute and non-root: {prefix}"
        );
        self.mounts.push(Mount {
            prefix: prefix.to_string(),
            fs,
        });
        // Longest prefix first so resolution is a linear scan.
        self.mounts
            .sort_by_key(|m| std::cmp::Reverse(m.prefix.len()));
    }

    /// Resolve a path to (filesystem, path-within-filesystem).
    pub fn resolve(&self, path: &str) -> (FsHandle, String) {
        for m in &self.mounts {
            if m.prefix == "/" {
                return (m.fs.clone(), path.to_string());
            }
            if path == m.prefix {
                return (m.fs.clone(), "/".to_string());
            }
            if let Some(rest) = path.strip_prefix(&m.prefix) {
                if rest.starts_with('/') {
                    return (m.fs.clone(), rest.to_string());
                }
            }
        }
        unreachable!("the root mount matches every path");
    }

    /// All mounts (diagnostics).
    pub fn mounts(&self) -> &[Mount] {
        &self.mounts
    }
}

/// Errors from node login.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoginError {
    /// A PAM module denied the login.
    Pam(PamDenied),
    /// The user database rejected the user.
    User(UserDbError),
}

impl fmt::Display for LoginError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoginError::Pam(d) => write!(f, "{d}"),
            LoginError::User(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LoginError {}

/// One simulated machine.
pub struct NodeOs {
    /// Node identity.
    pub id: NodeId,
    /// Hostname for diagnostics.
    pub hostname: String,
    /// Live processes.
    pub procs: ProcessTable,
    /// `/proc` mount options (the hidepid configuration).
    pub proc_opts: ProcMountOpts,
    /// Node-local filesystem (also the root mount).
    pub local_fs: FsHandle,
    /// All mounts (local root + shared filesystems).
    pub mounts: MountTable,
    /// Abstract-namespace Unix sockets on this node.
    pub abstract_sockets: AbstractSocketSpace,
    /// The PAM stack gating logins.
    pub pam: PamStack,
    /// Open sessions.
    pub sessions: BTreeMap<SessionId, Session>,
    next_session: u64,
}

impl fmt::Debug for NodeOs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeOs")
            .field("id", &self.id)
            .field("hostname", &self.hostname)
            .field("procs", &self.procs.len())
            .field("sessions", &self.sessions.len())
            .finish()
    }
}

impl NodeOs {
    /// A fresh node with a standard local filesystem layout, default `/proc`
    /// options (hidepid off — vanilla Linux), and an empty PAM stack.
    pub fn new(id: NodeId, hostname: impl Into<String>) -> Self {
        let hostname = hostname.into();
        let local = fs_handle(Vfs::standard_node_layout(format!("{hostname}-local")));
        NodeOs {
            id,
            hostname,
            procs: ProcessTable::new(),
            proc_opts: ProcMountOpts::default(),
            local_fs: local.clone(),
            mounts: MountTable::new(local),
            abstract_sockets: AbstractSocketSpace::new(),
            pam: PamStack::new(),
            sessions: BTreeMap::new(),
            next_session: 1,
        }
    }

    /// Mount a shared filesystem at `prefix`.
    pub fn mount(&mut self, prefix: &str, fs: FsHandle) {
        self.mounts.add(prefix, fs);
    }

    /// Attempt a login through the PAM stack.
    pub fn login(
        &mut self,
        db: &UserDb,
        user: Uid,
        service: &str,
    ) -> Result<SessionId, LoginError> {
        let cred = db.credentials(user).map_err(LoginError::User)?;
        let ctx = PamContext {
            service: service.to_string(),
            user,
            cred,
            node: self.id,
        };
        let sid = SessionId(self.next_session);
        let session = self.pam.login(&ctx, sid).map_err(LoginError::Pam)?;
        self.next_session += 1;
        self.sessions.insert(sid, session);
        Ok(sid)
    }

    /// Close a session (processes it spawned keep running, as on Linux).
    pub fn logout(&mut self, sid: SessionId) -> bool {
        self.sessions.remove(&sid).is_some()
    }

    /// Borrow an open session.
    pub fn session(&self, sid: SessionId) -> Option<&Session> {
        self.sessions.get(&sid)
    }

    /// Mutably borrow an open session (the support tools adjust credentials).
    pub fn session_mut(&mut self, sid: SessionId) -> Option<&mut Session> {
        self.sessions.get_mut(&sid)
    }

    /// Spawn a process under a session's credentials.
    pub fn spawn(
        &mut self,
        sid: SessionId,
        cmdline: impl IntoIterator<Item = impl Into<String>>,
        now: SimTime,
    ) -> Option<Pid> {
        let cred = self.sessions.get(&sid)?.cred.clone();
        Some(self.procs.spawn(cred, cmdline, now))
    }

    /// The `/proc` view with this node's mount options.
    pub fn procfs(&self) -> ProcFs<'_> {
        ProcFs::new(&self.procs, self.proc_opts)
    }

    /// Run a closure against the filesystem owning `path`, with the path
    /// rebased into that filesystem.
    pub fn with_fs<R>(&self, path: &str, f: impl FnOnce(&mut Vfs, &str) -> R) -> R {
        let (fs, rebased) = self.mounts.resolve(path);
        let mut guard = fs.write();
        f(&mut guard, &rebased)
    }

    /// Read a file via the mount table.
    pub fn fs_read(&self, ctx: &FsCtx, path: &str) -> FsResult<Vec<u8>> {
        self.with_fs(path, |fs, p| fs.read(ctx, p))
    }

    /// Create-or-truncate and write a file via the mount table.
    pub fn fs_write(
        &self,
        ctx: &FsCtx,
        path: &str,
        mode: crate::vfs::Mode,
        data: &[u8],
    ) -> FsResult<()> {
        self.with_fs(path, |fs, p| fs.write_file(ctx, p, mode, data))
    }

    /// List a directory via the mount table.
    pub fn fs_readdir(&self, ctx: &FsCtx, path: &str) -> FsResult<Vec<String>> {
        self.with_fs(path, |fs, p| fs.readdir(ctx, p))
    }

    /// Stat via the mount table.
    pub fn fs_stat(&self, ctx: &FsCtx, path: &str) -> FsResult<crate::vfs::FileStat> {
        self.with_fs(path, |fs, p| fs.stat(ctx, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::Mode;

    #[test]
    fn mount_resolution_longest_prefix() {
        let root = fs_handle(Vfs::new("root"));
        let home = fs_handle(Vfs::new("home"));
        let proj = fs_handle(Vfs::new("proj"));
        let mut mt = MountTable::new(root.clone());
        mt.add("/home", home.clone());
        mt.add("/home/special", proj.clone());

        let (fs, p) = mt.resolve("/tmp/x");
        assert!(Arc::ptr_eq(&fs, &root));
        assert_eq!(p, "/tmp/x");

        let (fs, p) = mt.resolve("/home/alice/f");
        assert!(Arc::ptr_eq(&fs, &home));
        assert_eq!(p, "/alice/f");

        let (fs, p) = mt.resolve("/home/special/f");
        assert!(Arc::ptr_eq(&fs, &proj));
        assert_eq!(p, "/f");

        let (fs, p) = mt.resolve("/home");
        assert!(Arc::ptr_eq(&fs, &home));
        assert_eq!(p, "/");

        // Prefix must match at a component boundary.
        let (fs, _) = mt.resolve("/homework");
        assert!(Arc::ptr_eq(&fs, &root));
    }

    #[test]
    fn shared_mount_visible_from_two_nodes() {
        let shared = fs_handle(Vfs::new("shared-home"));
        shared
            .write()
            .mkdir(&FsCtx::root(), "/alice", Mode::new(0o700))
            .unwrap();
        let mut n1 = NodeOs::new(NodeId(1), "node1");
        let mut n2 = NodeOs::new(NodeId(2), "node2");
        n1.mount("/home", shared.clone());
        n2.mount("/home", shared.clone());

        let root_ctx = FsCtx::root();
        n1.fs_write(&root_ctx, "/home/alice/hello", Mode::new(0o600), b"hi")
            .unwrap();
        assert_eq!(n2.fs_read(&root_ctx, "/home/alice/hello").unwrap(), b"hi");
        // Local /tmp is NOT shared.
        n1.fs_write(&root_ctx, "/tmp/only-n1", Mode::new(0o600), b"x")
            .unwrap();
        assert!(n2.fs_read(&root_ctx, "/tmp/only-n1").is_err());
    }

    #[test]
    fn login_creates_session_and_spawn_uses_its_cred() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let mut node = NodeOs::new(NodeId(1), "login1");
        let sid = node.login(&db, alice, "sshd").unwrap();
        let pid = node.spawn(sid, ["bash"], SimTime::ZERO).unwrap();
        assert_eq!(node.procs.get(pid).unwrap().uid(), alice);
        assert!(node.logout(sid));
        assert!(!node.logout(sid));
        // Spawn after logout fails.
        assert!(node.spawn(sid, ["x"], SimTime::ZERO).is_none());
    }

    #[test]
    fn login_unknown_user_fails() {
        let db = UserDb::new();
        let mut node = NodeOs::new(NodeId(1), "n");
        assert!(matches!(
            node.login(&db, Uid(777), "sshd"),
            Err(LoginError::User(_))
        ));
    }

    #[test]
    #[should_panic(expected = "mount prefix")]
    fn bad_mount_prefix_panics() {
        let mut mt = MountTable::new(fs_handle(Vfs::new("r")));
        mt.add("relative", fs_handle(Vfs::new("x")));
    }
}
