//! Abstract-namespace Unix domain sockets.
//!
//! The paper's Results section (Sec. V) names these as one of the few
//! *residual* cross-user paths after all controls are deployed: abstract
//! sockets live in a per-network-namespace string namespace with **no
//! filesystem permissions at all**, so any local user can connect to any
//! listening abstract socket. We model that namespace per node so the audit
//! engine can demonstrate the residual channel (and so a future namespace-
//! per-job extension could close it).

use crate::cred::Credentials;
use crate::ids::Uid;
use std::collections::BTreeMap;
use std::fmt;

/// Errors from abstract-socket operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShmError {
    /// The name is already bound.
    NameInUse(String),
    /// Nobody is listening on that name.
    NotListening(String),
}

impl fmt::Display for ShmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShmError::NameInUse(n) => write!(f, "abstract socket name in use: @{n}"),
            ShmError::NotListening(n) => write!(f, "no listener on abstract socket @{n}"),
        }
    }
}

impl std::error::Error for ShmError {}

/// One bound abstract socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractSocket {
    /// The abstract name (conventionally shown with a leading `@`).
    pub name: String,
    /// The uid that bound it.
    pub owner: Uid,
}

/// The per-node abstract socket namespace.
#[derive(Debug, Clone, Default)]
pub struct AbstractSocketSpace {
    sockets: BTreeMap<String, AbstractSocket>,
}

impl AbstractSocketSpace {
    /// An empty namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a listener. First-come-first-served; no permissions involved.
    pub fn bind(&mut self, cred: &Credentials, name: &str) -> Result<(), ShmError> {
        if self.sockets.contains_key(name) {
            return Err(ShmError::NameInUse(name.to_string()));
        }
        self.sockets.insert(
            name.to_string(),
            AbstractSocket {
                name: name.to_string(),
                owner: cred.uid,
            },
        );
        Ok(())
    }

    /// Connect to a listener. Succeeds for **any** local user — this absence
    /// of a permission check is the modeled vulnerability; the return value
    /// tells the caller whose socket they reached.
    pub fn connect(&self, _cred: &Credentials, name: &str) -> Result<Uid, ShmError> {
        self.sockets
            .get(name)
            .map(|s| s.owner)
            .ok_or_else(|| ShmError::NotListening(name.to_string()))
    }

    /// Unbind (listener exit).
    pub fn unbind(&mut self, name: &str) -> Option<AbstractSocket> {
        self.sockets.remove(name)
    }

    /// Enumerate bound names — abstract names are also *listable* by any
    /// user (`/proc/net/unix`), a secondary disclosure the audit counts.
    pub fn list(&self) -> Vec<&AbstractSocket> {
        self.sockets.values().collect()
    }

    /// Remove every socket bound by `uid` (session/job cleanup).
    pub fn cleanup_user(&mut self, uid: Uid) -> usize {
        let before = self.sockets.len();
        self.sockets.retain(|_, s| s.owner != uid);
        before - self.sockets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Gid;

    fn cred(u: u32) -> Credentials {
        Credentials::new(Uid(u), Gid(u))
    }

    #[test]
    fn cross_user_connect_succeeds_by_design() {
        let mut ns = AbstractSocketSpace::new();
        ns.bind(&cred(1), "mpi-demon").unwrap();
        // A different user connects without any permission check: this is
        // the residual channel the paper acknowledges.
        let owner = ns.connect(&cred(2), "mpi-demon").unwrap();
        assert_eq!(owner, Uid(1));
    }

    #[test]
    fn name_collisions_and_missing_listeners() {
        let mut ns = AbstractSocketSpace::new();
        ns.bind(&cred(1), "x").unwrap();
        assert_eq!(
            ns.bind(&cred(2), "x").unwrap_err(),
            ShmError::NameInUse("x".into())
        );
        assert_eq!(
            ns.connect(&cred(2), "y").unwrap_err(),
            ShmError::NotListening("y".into())
        );
    }

    #[test]
    fn names_are_listable_by_anyone() {
        let mut ns = AbstractSocketSpace::new();
        ns.bind(&cred(1), "secret-project-app").unwrap();
        let names: Vec<&str> = ns.list().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["secret-project-app"]);
    }

    #[test]
    fn cleanup_removes_only_one_user() {
        let mut ns = AbstractSocketSpace::new();
        ns.bind(&cred(1), "a").unwrap();
        ns.bind(&cred(1), "b").unwrap();
        ns.bind(&cred(2), "c").unwrap();
        assert_eq!(ns.cleanup_user(Uid(1)), 2);
        assert_eq!(ns.list().len(), 1);
        assert!(ns.unbind("c").is_some());
        assert!(ns.unbind("c").is_none());
    }
}
