//! # eus-containers — HPC containers with host security passthrough
//!
//! Models paper Sec. IV-G: software-encapsulation containers
//! (Apptainer/Singularity-style) as *heavyweight environment modules* — not
//! enterprise service containers. The properties that matter for user
//! separation:
//!
//! * containerized processes keep the invoking user's credentials and live
//!   in the host process table, so **every host control (hidepid, UBF,
//!   smask) keeps applying inside containers**,
//! * image *builds* require privilege and are refused on the cluster,
//! * enterprise runtimes (root daemon) are rejected outright for users,
//! * image content goes stale: [`image`] models vulnerability accrual and
//!   [`registry`] models the clone-and-forget sprawl across the shared
//!   filesystem the paper warns about.

#![warn(missing_docs)]

pub mod image;
pub mod registry;
pub mod runtime;

pub use image::{Image, Package};
pub use registry::{ContainerRegistry, StoredImage};
pub use runtime::{ContainerError, ContainerProc, EnterpriseRuntime, HpcRuntime};
