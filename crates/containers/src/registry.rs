//! Container sprawl on shared filesystems (paper Sec. IV-G):
//!
//! > "because of the ease with which they can be shared among shared-group
//! > users, containers tend to get proliferated across central file systems
//! > by sharing, cloning, and modifying them. After a few years, there are
//! > just a lot of old, unused containers littering the home directories."
//!
//! This registry tracks every image copy on the shared filesystem with its
//! last-used time, so the sprawl experiment can measure stale-container
//! counts and their accumulated vulnerabilities over simulated years.

use crate::image::Image;
use eus_simcore::SimTime;
use eus_simos::Uid;

/// One stored image copy.
#[derive(Debug, Clone)]
pub struct StoredImage {
    /// Whose directory it sits in.
    pub owner: Uid,
    /// Path on the shared filesystem.
    pub path: String,
    /// The image.
    pub image: Image,
    /// Last time any job referenced it.
    pub last_used: SimTime,
}

/// All image copies on the shared filesystem.
#[derive(Debug, Default)]
pub struct ContainerRegistry {
    stored: Vec<StoredImage>,
}

impl ContainerRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A user drops (or clones) an image copy into their area.
    pub fn store(&mut self, owner: Uid, path: impl Into<String>, image: Image, now: SimTime) {
        self.stored.push(StoredImage {
            owner,
            path: path.into(),
            image,
            last_used: now,
        });
    }

    /// A user clones an existing copy into their own area (the proliferation
    /// mechanism). Returns false when the source path is unknown.
    pub fn clone_image(
        &mut self,
        src_path: &str,
        new_owner: Uid,
        new_path: impl Into<String>,
        now: SimTime,
    ) -> bool {
        let Some(src) = self.stored.iter().find(|s| s.path == src_path) else {
            return false;
        };
        let image = src.image.clone();
        self.store(new_owner, new_path, image, now);
        true
    }

    /// Mark an image as used now.
    pub fn touch(&mut self, path: &str, now: SimTime) -> bool {
        for s in &mut self.stored {
            if s.path == path {
                s.last_used = now;
                return true;
            }
        }
        false
    }

    /// Copies unused for at least `stale_after_days`.
    pub fn stale(&self, now: SimTime, stale_after_days: f64) -> Vec<&StoredImage> {
        self.stored
            .iter()
            .filter(|s| now.since(s.last_used).as_secs_f64() / 86_400.0 >= stale_after_days)
            .collect()
    }

    /// Total known vulnerabilities across *stale* copies — the attack
    /// surface the paper worries about.
    pub fn stale_vuln_load(&self, now: SimTime, stale_after_days: f64) -> u32 {
        self.stale(now, stale_after_days)
            .iter()
            .map(|s| s.image.total_vulns_at(now))
            .sum()
    }

    /// All copies.
    pub fn len(&self) -> usize {
        self.stored.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.stored.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: u64 = 86_400;

    #[test]
    fn cloning_proliferates() {
        let mut reg = ContainerRegistry::new();
        let img = Image::typical_research_stack("stack.sif", SimTime::ZERO);
        reg.store(Uid(1), "/proj/a/stack.sif", img, SimTime::ZERO);
        assert!(reg.clone_image(
            "/proj/a/stack.sif",
            Uid(2),
            "/home/u2/stack.sif",
            SimTime::from_secs(DAY)
        ));
        assert!(!reg.clone_image("/nope", Uid(3), "/x", SimTime::ZERO));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn staleness_and_vuln_load() {
        let mut reg = ContainerRegistry::new();
        let img = Image::typical_research_stack("stack.sif", SimTime::ZERO);
        reg.store(Uid(1), "/a", img.clone(), SimTime::ZERO);
        reg.store(Uid(2), "/b", img, SimTime::ZERO);
        let later = SimTime::from_secs(400 * DAY);
        // /a gets touched recently; /b rots.
        reg.touch("/a", SimTime::from_secs(395 * DAY));
        let stale = reg.stale(later, 90.0);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].path, "/b");
        assert!(reg.stale_vuln_load(later, 90.0) > 0);
        // Fresh cutoff catches both.
        assert_eq!(reg.stale(later, 1.0).len(), 2);
    }

    #[test]
    fn touch_unknown_is_false() {
        let mut reg = ContainerRegistry::new();
        assert!(!reg.touch("/missing", SimTime::ZERO));
        assert!(reg.is_empty());
    }
}
