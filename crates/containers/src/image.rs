//! Container images and the staleness model (paper Sec. IV-G).
//!
//! The paper's container concern is not the runtime but the *content*:
//! "they open the HPC system up to other attack vectors including stale code
//! and libraries and they are known to harbor vulnerable code", and shared
//! images "tend to get proliferated across central file systems". Images
//! here carry package metadata with vulnerability-accrual so the sprawl
//! experiment can quantify that claim (after Zerouali et al., ref. 47 of the paper).

use eus_simcore::SimTime;
use std::fmt;

/// One packaged library inside an image.
#[derive(Debug, Clone, PartialEq)]
pub struct Package {
    /// Name, e.g. `"openssl"`.
    pub name: String,
    /// Version string at build time.
    pub version: String,
    /// Known vulnerabilities at build time.
    pub vulns_at_build: u32,
    /// New vulnerabilities disclosed per 30 simulated days after build
    /// (the accrual rate from container-staleness studies).
    pub vuln_accrual_per_month: f64,
}

impl Package {
    /// A package with the given accrual model.
    pub fn new(
        name: impl Into<String>,
        version: impl Into<String>,
        vulns_at_build: u32,
        vuln_accrual_per_month: f64,
    ) -> Self {
        Package {
            name: name.into(),
            version: version.into(),
            vulns_at_build,
            vuln_accrual_per_month,
        }
    }

    /// Known vulnerabilities as of `now`, given the image build time.
    pub fn vulns_at(&self, built: SimTime, now: SimTime) -> u32 {
        let months = now.since(built).as_secs_f64() / (30.0 * 86_400.0);
        self.vulns_at_build + (months * self.vuln_accrual_per_month).floor() as u32
    }
}

/// A container image.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    /// Image name (e.g. `"pytorch-2.1.sif"`).
    pub name: String,
    /// Build time.
    pub built: SimTime,
    /// Contents.
    pub packages: Vec<Package>,
}

impl Image {
    /// An image built at `built`.
    pub fn new(name: impl Into<String>, built: SimTime) -> Self {
        Image {
            name: name.into(),
            built,
            packages: Vec::new(),
        }
    }

    /// Builder: add a package.
    pub fn with_package(mut self, p: Package) -> Self {
        self.packages.push(p);
        self
    }

    /// A typical research stack: a handful of system libraries with modest
    /// accrual rates.
    pub fn typical_research_stack(name: impl Into<String>, built: SimTime) -> Self {
        Image::new(name, built)
            .with_package(Package::new("openssl", "3.0.2", 0, 1.1))
            .with_package(Package::new("glibc", "2.35", 0, 0.4))
            .with_package(Package::new("python", "3.10.4", 0, 0.6))
            .with_package(Package::new("numpy", "1.22.3", 0, 0.2))
            .with_package(Package::new("openmpi", "4.1.2", 0, 0.3))
    }

    /// Total known vulnerabilities across packages as of `now`.
    pub fn total_vulns_at(&self, now: SimTime) -> u32 {
        self.packages
            .iter()
            .map(|p| p.vulns_at(self.built, now))
            .sum()
    }

    /// Image age at `now`, in days.
    pub fn age_days(&self, now: SimTime) -> f64 {
        now.since(self.built).as_secs_f64() / 86_400.0
    }

    /// Rebuild the image now: same packages, zeroed vuln baseline (fresh
    /// versions), new build time.
    pub fn rebuilt_at(&self, now: SimTime) -> Image {
        Image {
            name: self.name.clone(),
            built: now,
            packages: self
                .packages
                .iter()
                .map(|p| Package {
                    vulns_at_build: 0,
                    ..p.clone()
                })
                .collect(),
        }
    }
}

impl fmt::Display for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} packages)", self.name, self.packages.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vulns_accrue_with_age() {
        let built = SimTime::ZERO;
        let img = Image::typical_research_stack("pytorch.sif", built);
        assert_eq!(img.total_vulns_at(built), 0, "fresh image clean");
        let one_year = SimTime::from_secs(365 * 86_400);
        let old = img.total_vulns_at(one_year);
        assert!(old >= 25, "a year of accrual across 5 packages: {old}");
        assert!((img.age_days(one_year) - 365.0).abs() < 0.01);
    }

    #[test]
    fn rebuild_resets_the_clock() {
        let img = Image::typical_research_stack("stack.sif", SimTime::ZERO);
        let now = SimTime::from_secs(200 * 86_400);
        let stale = img.total_vulns_at(now);
        let fresh = img.rebuilt_at(now);
        assert_eq!(fresh.total_vulns_at(now), 0);
        assert!(stale > 0);
        assert_eq!(fresh.name, img.name);
    }

    #[test]
    fn package_accrual_floor() {
        let p = Package::new("x", "1", 2, 1.0);
        // Half a month: floor(0.5) = 0 new.
        let half_month = SimTime::from_secs(15 * 86_400);
        assert_eq!(p.vulns_at(SimTime::ZERO, half_month), 2);
        let two_months = SimTime::from_secs(60 * 86_400);
        assert_eq!(p.vulns_at(SimTime::ZERO, two_months), 4);
    }
}
