//! Container runtimes: HPC (Apptainer/Singularity-style) vs enterprise
//! (Docker-style), as contrasted in paper Sec. IV-G.
//!
//! The HPC runtime's defining properties, all modeled here:
//! * **unprivileged** — the contained process keeps the invoking user's
//!   credentials exactly; there is no API that could grant more,
//! * **host passthrough** — processes land in the host process table,
//!   network goes through the host stack, and the host/shared filesystems
//!   are bind-mounted — so `hidepid`, the UBF, and the smask patches all
//!   keep applying inside the container,
//! * **no image build on the cluster** — building requires administrative
//!   privileges users don't have; images arrive pre-built.
//!
//! The enterprise runtime is modeled only far enough to show why it is
//! rejected: it requires a root daemon and grants effective root to
//! container operators.

use crate::image::Image;
use eus_simcore::SimTime;
use eus_simos::{NodeOs, Pid, Session};
use std::fmt;

/// Runtime errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// The enterprise runtime refuses unprivileged users (and HPC policy
    /// forbids giving them privilege).
    RequiresRootDaemon,
    /// Attempted to build an image on the cluster.
    BuildRequiresPrivilege,
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::RequiresRootDaemon => {
                f.write_str("enterprise container runtimes require a root daemon")
            }
            ContainerError::BuildRequiresPrivilege => f.write_str(
                "image builds require administrative privileges; build on your own machine",
            ),
        }
    }
}

impl std::error::Error for ContainerError {}

/// A running HPC container: a host process plus the image it runs.
#[derive(Debug, Clone)]
pub struct ContainerProc {
    /// The host pid (visible in the host process table, subject to hidepid).
    pub pid: Pid,
    /// The image in use.
    pub image: Image,
}

/// The Apptainer-style runtime.
#[derive(Debug, Default)]
pub struct HpcRuntime;

impl HpcRuntime {
    /// Launch a containerized command under a login session. The spawned
    /// process carries the session's credentials unchanged — uid, egid, and
    /// supplementary groups pass straight through.
    pub fn launch(
        &self,
        node: &mut NodeOs,
        session: &Session,
        image: &Image,
        argv: impl IntoIterator<Item = impl Into<String>>,
        now: SimTime,
    ) -> ContainerProc {
        let mut cmdline: Vec<String> = vec![
            "apptainer".to_string(),
            "exec".to_string(),
            image.name.clone(),
        ];
        cmdline.extend(argv.into_iter().map(Into::into));
        let pid = node.procs.spawn(session.cred.clone(), cmdline, now);
        ContainerProc {
            pid,
            image: image.clone(),
        }
    }

    /// Building on the cluster is refused for everyone but root — users
    /// "must use their own computer where they have some administrative
    /// privileges".
    pub fn build(&self, session: &Session, _name: &str) -> Result<(), ContainerError> {
        if session.cred.is_root() {
            Ok(())
        } else {
            Err(ContainerError::BuildRequiresPrivilege)
        }
    }
}

/// The Docker-style runtime, present only to document the rejection.
#[derive(Debug, Default)]
pub struct EnterpriseRuntime;

impl EnterpriseRuntime {
    /// Enterprise container launch assumes the operator controls a root
    /// daemon; on a multi-user HPC system that is forbidden for general
    /// users, so this always fails for them.
    pub fn launch(&self, session: &Session) -> Result<(), ContainerError> {
        if session.cred.is_root() {
            Ok(())
        } else {
            Err(ContainerError::RequiresRootDaemon)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eus_simos::procfs::{HidePid, ProcMountOpts};
    use eus_simos::{NodeId, UserDb};

    fn node_with_users() -> (UserDb, NodeOs, eus_simos::Uid, eus_simos::Uid) {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let bob = db.create_user("bob").unwrap();
        let mut node = NodeOs::new(NodeId(1), "c1");
        node.proc_opts = ProcMountOpts {
            hidepid: HidePid::Invisible,
            exempt_gid: None,
        };
        (db, node, alice, bob)
    }

    #[test]
    fn container_process_keeps_user_credentials() {
        let (db, mut node, alice, _) = node_with_users();
        let sid = node.login(&db, alice, "sshd").unwrap();
        let session = node.session(sid).unwrap().clone();
        let image = Image::typical_research_stack("stack.sif", SimTime::ZERO);
        let cp = HpcRuntime.launch(
            &mut node,
            &session,
            &image,
            ["python", "train.py"],
            SimTime::ZERO,
        );
        let proc = node.procs.get(cp.pid).unwrap();
        assert_eq!(proc.cred, session.cred, "no privilege change");
        assert_eq!(proc.cmdline[0], "apptainer");
    }

    #[test]
    fn host_hidepid_applies_inside_container_world() {
        // The paper: "all of the security features described in this paper
        // pass through to the container as well." Containerized processes
        // live in the host table, so hidepid hides them from other users
        // and hides other users from them.
        let (db, mut node, alice, bob) = node_with_users();
        let sid_a = node.login(&db, alice, "sshd").unwrap();
        let sid_b = node.login(&db, bob, "sshd").unwrap();
        let sa = node.session(sid_a).unwrap().clone();
        let sb = node.session(sid_b).unwrap().clone();
        let image = Image::typical_research_stack("stack.sif", SimTime::ZERO);
        HpcRuntime.launch(&mut node, &sa, &image, ["job-a"], SimTime::ZERO);
        HpcRuntime.launch(&mut node, &sb, &image, ["job-b"], SimTime::ZERO);

        let procfs = node.procfs();
        assert_eq!(procfs.foreign_visible_count(&sa.cred), 0);
        assert_eq!(procfs.foreign_visible_count(&sb.cred), 0);
    }

    #[test]
    fn builds_refused_on_cluster() {
        let (db, mut node, alice, _) = node_with_users();
        let sid = node.login(&db, alice, "sshd").unwrap();
        let session = node.session(sid).unwrap().clone();
        assert_eq!(
            HpcRuntime.build(&session, "new.sif").unwrap_err(),
            ContainerError::BuildRequiresPrivilege
        );
    }

    #[test]
    fn enterprise_runtime_rejected_for_users() {
        let (db, mut node, alice, _) = node_with_users();
        let sid = node.login(&db, alice, "sshd").unwrap();
        let session = node.session(sid).unwrap().clone();
        assert_eq!(
            EnterpriseRuntime.launch(&session).unwrap_err(),
            ContainerError::RequiresRootDaemon
        );
    }
}
