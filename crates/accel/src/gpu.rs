//! GPU devices with explicit memory remanence (paper Sec. IV-F).
//!
//! "GPUs do not clear their memory before reassignment to another job/user
//! ... the data of the previous user's job will remain in GPU memory and
//! registers." The model keeps device memory as a persistent byte store that
//! survives assignment changes; only an explicit [`Gpu::scrub`] (the
//! vendor-provided clear the paper runs in the scheduler epilog) zeroes it.

use eus_simcore::SimDuration;
use eus_simos::{DeviceId, NodeId, Uid};
use std::fmt;

/// GPU access errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// Access beyond the device memory.
    OutOfBounds {
        /// Memory size.
        len: usize,
        /// Attempted end offset.
        end: usize,
    },
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfBounds { len, end } => {
                write!(f, "gpu access out of bounds: end {end} > len {len}")
            }
        }
    }
}

impl std::error::Error for GpuError {}

/// Result of a scrub pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubReport {
    /// The device scrubbed.
    pub device: DeviceId,
    /// Bytes cleared.
    pub bytes: usize,
    /// Modeled wall time of the clear.
    pub duration: SimDuration,
}

/// Scrub throughput: modeled 4 GiB/s (one `cudaMemset`-style pass).
pub const SCRUB_BYTES_PER_US: usize = 4 * 1024;

/// One GPU.
#[derive(Debug, Clone)]
pub struct Gpu {
    /// Device identity (as exposed in `/dev`).
    pub device: DeviceId,
    /// Node hosting the device.
    pub node: NodeId,
    /// Current assignee, if any. Enforcement happens at the device-file
    /// layer ([`crate::devfile`]); this field is bookkeeping for the pool.
    pub assigned_to: Option<Uid>,
    mem: Vec<u8>,
}

impl Gpu {
    /// A GPU with `mem_bytes` of device memory, initially zeroed.
    pub fn new(node: NodeId, index: u16, mem_bytes: usize) -> Self {
        Gpu {
            device: DeviceId::gpu(index),
            node,
            assigned_to: None,
            mem: vec![0u8; mem_bytes],
        }
    }

    /// Device memory size.
    pub fn mem_len(&self) -> usize {
        self.mem.len()
    }

    /// Write into device memory. NOTE: deliberately no credential check —
    /// the hardware has "no concept of data ownership"; gating is done by
    /// whether the caller could open the device file at all.
    pub fn write(&mut self, offset: usize, bytes: &[u8]) -> Result<(), GpuError> {
        let end = offset + bytes.len();
        if end > self.mem.len() {
            return Err(GpuError::OutOfBounds {
                len: self.mem.len(),
                end,
            });
        }
        self.mem[offset..end].copy_from_slice(bytes);
        Ok(())
    }

    /// Read from device memory (same non-check as write).
    pub fn read(&self, offset: usize, len: usize) -> Result<Vec<u8>, GpuError> {
        let end = offset + len;
        if end > self.mem.len() {
            return Err(GpuError::OutOfBounds {
                len: self.mem.len(),
                end,
            });
        }
        Ok(self.mem[offset..end].to_vec())
    }

    /// Any non-zero byte in device memory (remanent data present)?
    pub fn is_dirty(&self) -> bool {
        self.mem.iter().any(|b| *b != 0)
    }

    /// Vendor-style clear: zero all device memory; returns the modeled cost.
    pub fn scrub(&mut self) -> ScrubReport {
        let bytes = self.mem.len();
        self.mem.fill(0);
        ScrubReport {
            device: self.device,
            bytes,
            duration: SimDuration::from_micros(bytes.div_ceil(SCRUB_BYTES_PER_US) as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut g = Gpu::new(NodeId(1), 0, 4096);
        g.write(100, b"weights").unwrap();
        assert_eq!(g.read(100, 7).unwrap(), b"weights");
        assert!(g.is_dirty());
    }

    #[test]
    fn remanence_survives_reassignment() {
        let mut g = Gpu::new(NodeId(1), 0, 4096);
        g.assigned_to = Some(Uid(100));
        g.write(0, b"victim secret").unwrap();
        // Reassignment does nothing to memory — that's the vulnerability.
        g.assigned_to = Some(Uid(200));
        assert_eq!(g.read(0, 13).unwrap(), b"victim secret");
    }

    #[test]
    fn scrub_clears_and_costs_time() {
        let mut g = Gpu::new(NodeId(1), 0, 1 << 20);
        g.write(12345, &[0xAB; 100]).unwrap();
        let report = g.scrub();
        assert!(!g.is_dirty());
        assert_eq!(report.bytes, 1 << 20);
        assert_eq!(
            report.duration,
            SimDuration::from_micros(((1usize << 20) / SCRUB_BYTES_PER_US) as u64)
        );
        assert_eq!(g.read(12345, 100).unwrap(), vec![0u8; 100]);
    }

    #[test]
    fn bounds_checked() {
        let mut g = Gpu::new(NodeId(1), 0, 16);
        assert_eq!(
            g.write(10, &[0; 10]).unwrap_err(),
            GpuError::OutOfBounds { len: 16, end: 20 }
        );
        assert!(g.read(0, 17).is_err());
    }
}
