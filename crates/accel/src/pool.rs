//! The per-cluster GPU pool: ties device state ([`crate::gpu::Gpu`]) to the
//! `/dev` permission lifecycle ([`crate::devfile`]) and the scheduler epilog.

use crate::devfile::{assign_device, create_device_node, revoke_device};
use crate::gpu::{Gpu, ScrubReport};
use eus_simos::node::FsHandle;
use eus_simos::vfs::FsResult;
use eus_simos::{DeviceId, Gid, NodeId, Uid};
use std::collections::BTreeMap;

/// All GPUs in the cluster, keyed by (node, index).
#[derive(Debug, Default)]
pub struct GpuPool {
    gpus: BTreeMap<(NodeId, u16), Gpu>,
}

impl GpuPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install `count` GPUs on a node, creating their device files in the
    /// node's local filesystem (unassigned, invisible).
    pub fn install(
        &mut self,
        node: NodeId,
        count: u16,
        mem_bytes: usize,
        fs: &FsHandle,
    ) -> FsResult<()> {
        for i in 0..count {
            let gpu = Gpu::new(node, i, mem_bytes);
            create_device_node(fs, gpu.device)?;
            self.gpus.insert((node, i), gpu);
        }
        Ok(())
    }

    /// GPUs on a node.
    pub fn on_node(&self, node: NodeId) -> Vec<&Gpu> {
        self.gpus
            .range((node, 0)..=(node, u16::MAX))
            .map(|(_, g)| g)
            .collect()
    }

    /// Borrow one GPU.
    pub fn get(&self, node: NodeId, index: u16) -> Option<&Gpu> {
        self.gpus.get(&(node, index))
    }

    /// Mutably borrow one GPU (jobs write/read device memory through this).
    pub fn get_mut(&mut self, node: NodeId, index: u16) -> Option<&mut Gpu> {
        self.gpus.get_mut(&(node, index))
    }

    /// Assign the first `count` free GPUs on `node` to a user (prolog):
    /// records the assignee and flips the device-file group to their UPG.
    /// Returns the device ids assigned.
    pub fn assign(
        &mut self,
        node: NodeId,
        count: u16,
        user: Uid,
        upg: Gid,
        fs: &FsHandle,
    ) -> FsResult<Vec<DeviceId>> {
        let free: Vec<u16> = self
            .gpus
            .range((node, 0)..=(node, u16::MAX))
            .filter(|(_, g)| g.assigned_to.is_none())
            .map(|((_, i), _)| *i)
            .take(count as usize)
            .collect();
        let mut out = Vec::with_capacity(free.len());
        for i in free {
            let gpu = self.gpus.get_mut(&(node, i)).expect("listed above");
            gpu.assigned_to = Some(user);
            assign_device(fs, gpu.device, upg)?;
            out.push(gpu.device);
        }
        Ok(out)
    }

    /// Release a user's GPUs on a node (epilog): revoke `/dev` access and,
    /// when `scrub` is set (the paper's configuration), clear device memory.
    /// Returns one report per GPU (empty duration reports when not scrubbed).
    pub fn release_user(
        &mut self,
        node: NodeId,
        user: Uid,
        scrub: bool,
        fs: &FsHandle,
    ) -> FsResult<Vec<ScrubReport>> {
        let mine: Vec<u16> = self
            .gpus
            .range((node, 0)..=(node, u16::MAX))
            .filter(|(_, g)| g.assigned_to == Some(user))
            .map(|((_, i), _)| *i)
            .collect();
        let mut reports = Vec::with_capacity(mine.len());
        for i in mine {
            let gpu = self.gpus.get_mut(&(node, i)).expect("listed above");
            gpu.assigned_to = None;
            revoke_device(fs, gpu.device)?;
            if scrub {
                reports.push(gpu.scrub());
            }
        }
        Ok(reports)
    }

    /// Total GPUs in the pool.
    pub fn len(&self) -> usize {
        self.gpus.len()
    }

    /// True when no GPUs are installed.
    pub fn is_empty(&self) -> bool {
        self.gpus.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eus_simos::node::fs_handle;
    use eus_simos::Vfs;

    fn setup() -> (GpuPool, FsHandle) {
        let fs = fs_handle(Vfs::standard_node_layout("gpu-node"));
        let mut pool = GpuPool::new();
        pool.install(NodeId(1), 2, 4096, &fs).unwrap();
        (pool, fs)
    }

    #[test]
    fn install_creates_device_files() {
        let (pool, fs) = setup();
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.on_node(NodeId(1)).len(), 2);
        let root = eus_simos::FsCtx::root();
        assert!(fs.read().stat(&root, "/dev/gpu0").is_ok());
        assert!(fs.read().stat(&root, "/dev/gpu1").is_ok());
    }

    #[test]
    fn assign_takes_free_gpus_only() {
        let (mut pool, fs) = setup();
        let a = pool.assign(NodeId(1), 1, Uid(100), Gid(100), &fs).unwrap();
        assert_eq!(a.len(), 1);
        let b = pool.assign(NodeId(1), 2, Uid(101), Gid(101), &fs).unwrap();
        assert_eq!(b.len(), 1, "only one GPU left");
        assert_ne!(a[0], b[0]);
        let none = pool.assign(NodeId(1), 1, Uid(102), Gid(102), &fs).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn remanence_attack_without_scrub_and_defense_with() {
        let (mut pool, fs) = setup();
        // Victim writes a secret, job ends WITHOUT scrub.
        pool.assign(NodeId(1), 1, Uid(100), Gid(100), &fs).unwrap();
        pool.get_mut(NodeId(1), 0)
            .unwrap()
            .write(0, b"victim model weights")
            .unwrap();
        pool.release_user(NodeId(1), Uid(100), false, &fs).unwrap();

        // Attacker allocates next and reads the residue.
        pool.assign(NodeId(1), 1, Uid(200), Gid(200), &fs).unwrap();
        let stolen = pool.get(NodeId(1), 0).unwrap().read(0, 20).unwrap();
        assert_eq!(stolen, b"victim model weights", "remanence leaks");
        pool.release_user(NodeId(1), Uid(200), false, &fs).unwrap();

        // Same flow with epilog scrub: the attacker reads zeros.
        pool.assign(NodeId(1), 1, Uid(100), Gid(100), &fs).unwrap();
        pool.get_mut(NodeId(1), 0)
            .unwrap()
            .write(0, b"secret2")
            .unwrap();
        let reports = pool.release_user(NodeId(1), Uid(100), true, &fs).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].duration > eus_simcore::SimDuration::ZERO);
        pool.assign(NodeId(1), 1, Uid(200), Gid(200), &fs).unwrap();
        assert_eq!(
            pool.get(NodeId(1), 0).unwrap().read(0, 7).unwrap(),
            vec![0u8; 7]
        );
    }

    #[test]
    fn release_only_touches_that_users_gpus() {
        let (mut pool, fs) = setup();
        pool.assign(NodeId(1), 1, Uid(100), Gid(100), &fs).unwrap();
        pool.assign(NodeId(1), 1, Uid(101), Gid(101), &fs).unwrap();
        pool.release_user(NodeId(1), Uid(100), true, &fs).unwrap();
        assert_eq!(pool.get(NodeId(1), 0).unwrap().assigned_to, None);
        assert_eq!(pool.get(NodeId(1), 1).unwrap().assigned_to, Some(Uid(101)));
    }
}
