//! # eus-accel — accelerators with remanent memory
//!
//! Models the GPU story of paper Sec. IV-F: devices have "no concept of data
//! ownership" and "do not clear their memory before reassignment", so the
//! cluster must (a) gate access by flipping `/dev` node permissions to the
//! allocated user's private group, and (b) run a vendor-style scrub in the
//! scheduler epilog.
//!
//! * [`gpu`] — device memory with explicit remanence and the scrub cost
//!   model.
//! * [`devfile`] — the prolog/epilog `/dev` permission flips.
//! * [`pool`] — the cluster-wide pool: install → assign → release(scrub).

#![warn(missing_docs)]

pub mod devfile;
pub mod gpu;
pub mod pool;

pub use devfile::{
    assign_device, create_device_node, revoke_device, set_device_world_open, ASSIGNED_MODE,
    UNASSIGNED_MODE,
};
pub use gpu::{Gpu, GpuError, ScrubReport, SCRUB_BYTES_PER_US};
pub use pool::GpuPool;
