//! `/dev` permission management for accelerators (paper Sec. IV-F):
//!
//! > "GPUs are assigned as a single-user resource. This is accomplished by
//! > modifying the permissions on relevant character special files in /dev/
//! > to allow only the user private group of the user allocated that GPU via
//! > the scheduler. With this method, GPUs that have not been assigned to a
//! > user are not visible at all."

use eus_simos::node::FsHandle;
use eus_simos::vfs::{FsCtx, FsResult, Mode};
use eus_simos::{DeviceId, Gid, ROOT_GID, ROOT_UID};

/// Mode of an unassigned device: no access for anyone but root.
pub const UNASSIGNED_MODE: Mode = Mode::new(0o000);

/// Mode of an assigned device: read/write for owner group (the assignee's
/// user private group).
pub const ASSIGNED_MODE: Mode = Mode::new(0o660);

/// Create the device node for a GPU in a node's local filesystem, in the
/// unassigned (invisible) state.
pub fn create_device_node(fs: &FsHandle, dev: DeviceId) -> FsResult<()> {
    let ctx = FsCtx::root().with_umask(Mode::new(0));
    let mut guard = fs.write();
    guard.mknod(&ctx, &dev.dev_path(), dev, UNASSIGNED_MODE)?;
    Ok(())
}

/// Assign the device to a user private group: root chgrps the node and opens
/// group read/write (what the scheduler prolog does).
pub fn assign_device(fs: &FsHandle, dev: DeviceId, upg: Gid) -> FsResult<()> {
    let mut guard = fs.write();
    let path = dev.dev_path();
    guard.set_meta_as_root(&path, |m| {
        m.gid = upg;
        m.mode = ASSIGNED_MODE;
    })
}

/// Baseline (pre-hardening) configuration: many sites ship accelerator
/// device nodes world read/write (the `0666` udev default), which is what
/// makes Sec. IV-F's permission flipping necessary. The audit's baseline
/// cluster uses this.
pub fn set_device_world_open(fs: &FsHandle, dev: DeviceId) -> FsResult<()> {
    let mut guard = fs.write();
    let path = dev.dev_path();
    guard.set_meta_as_root(&path, |m| {
        m.mode = Mode::new(0o666);
    })
}

/// Revoke access (epilog): back to root-only, invisible.
pub fn revoke_device(fs: &FsHandle, dev: DeviceId) -> FsResult<()> {
    let mut guard = fs.write();
    let path = dev.dev_path();
    guard.set_meta_as_root(&path, |m| {
        m.uid = ROOT_UID;
        m.gid = ROOT_GID;
        m.mode = UNASSIGNED_MODE;
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eus_simos::node::fs_handle;
    use eus_simos::vfs::Perm;
    use eus_simos::{Credentials, Uid, Vfs};

    fn node_fs() -> FsHandle {
        fs_handle(Vfs::standard_node_layout("gpu-node"))
    }

    #[test]
    fn lifecycle_unassigned_assigned_revoked() {
        let fs = node_fs();
        let dev = DeviceId::gpu(0);
        create_device_node(&fs, dev).unwrap();

        let alice = FsCtx::user(Credentials::new(Uid(100), Gid(100)));
        // Unassigned: no access.
        assert!(fs
            .read()
            .open_device(&alice, "/dev/gpu0", Perm::RW)
            .is_err());

        // Assigned to alice's UPG: she can open, bob cannot.
        assign_device(&fs, dev, Gid(100)).unwrap();
        assert_eq!(
            fs.read()
                .open_device(&alice, "/dev/gpu0", Perm::RW)
                .unwrap(),
            dev
        );
        let bob = FsCtx::user(Credentials::new(Uid(101), Gid(101)));
        assert!(fs.read().open_device(&bob, "/dev/gpu0", Perm::RW).is_err());

        // Revoked: nobody again.
        revoke_device(&fs, dev).unwrap();
        assert!(fs
            .read()
            .open_device(&alice, "/dev/gpu0", Perm::RW)
            .is_err());
    }

    #[test]
    fn assignment_is_group_based_so_project_peers_do_not_inherit() {
        let fs = node_fs();
        let dev = DeviceId::gpu(1);
        create_device_node(&fs, dev).unwrap();
        assign_device(&fs, dev, Gid(100)).unwrap();
        // A project peer shares a *project* group, not the UPG: no access.
        let peer = FsCtx::user(Credentials::with_groups(Uid(102), Gid(102), [Gid(500)]));
        assert!(fs.read().open_device(&peer, "/dev/gpu1", Perm::RW).is_err());
    }
}
