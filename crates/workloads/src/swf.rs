//! Standard Workload Format (SWF) interchange.
//!
//! The Parallel Workloads Archive's SWF is the lingua franca for scheduler
//! traces. LLSC's own traces are not public, but sites that *can* publish
//! use SWF — supporting it lets every experiment in this repository run on
//! real archive traces, and lets our synthetic traces be consumed by other
//! simulators.
//!
//! We implement the fields the scheduler model uses (one line per job):
//!
//! ```text
//! job_id submit wait run procs avg_cpu mem req_procs req_time req_mem
//! status user group exe queue partition prev_job think_time
//! ```
//!
//! Unused fields are written as `-1`, as the format specifies.

use crate::mix::{Trace, TraceEntry};
use eus_sched::JobSpec;
use eus_simcore::{SimDuration, SimTime};
use eus_simos::Uid;
use std::fmt::Write as _;

/// Errors from SWF parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwfError {
    /// A data line had fewer than 18 fields.
    TooFewFields {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
    },
    /// A field failed to parse as a number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// 0-based field index.
        field: usize,
    },
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwfError::TooFewFields { line, found } => {
                write!(f, "swf line {line}: expected 18 fields, found {found}")
            }
            SwfError::BadNumber { line, field } => {
                write!(f, "swf line {line}: field {field} is not a number")
            }
        }
    }
}

impl std::error::Error for SwfError {}

/// Serialize a trace to SWF text (with a minimal comment header).
pub fn to_swf(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("; SWF export from hpc-user-separation synthetic workload\n");
    out.push_str("; UnixStartTime: 0\n");
    for (i, e) in trace.entries.iter().enumerate() {
        let spec = &e.spec;
        // status 1 = completed (we export offered load, not outcomes).
        let _ = writeln!(
            out,
            "{} {} -1 {} {} -1 {} {} {} -1 1 {} -1 -1 -1 {} -1 -1",
            i + 1,
            e.at.as_micros() / 1_000_000,
            spec.duration.as_secs_f64().ceil() as u64,
            spec.total_cores(),
            spec.mem_per_task_mib,
            spec.total_cores(),
            spec.time_limit.as_secs_f64().ceil() as u64,
            spec.user.0,
            spec.partition.as_ref().map(|p| hash_name(p)).unwrap_or(-1),
        );
    }
    out
}

/// Stable small integer for a partition name (SWF stores numbers).
fn hash_name(name: &str) -> i64 {
    (name
        .bytes()
        .fold(7u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64))
        % 1_000) as i64
}

/// Parse SWF text into a [`Trace`]. Only the fields the scheduler model
/// needs are consumed: submit(1), run(3), procs(4), req_time(8), user(11).
/// Jobs with non-positive run time or procs are skipped, as archive
/// conventions recommend.
pub fn from_swf(text: &str) -> Result<Trace, SwfError> {
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 18 {
            return Err(SwfError::TooFewFields {
                line: lineno + 1,
                found: fields.len(),
            });
        }
        let num = |idx: usize| -> Result<i64, SwfError> {
            fields[idx]
                .parse::<f64>()
                .map(|v| v as i64)
                .map_err(|_| SwfError::BadNumber {
                    line: lineno + 1,
                    field: idx,
                })
        };
        let submit = num(1)?;
        let run = num(3)?;
        let procs = num(4)?;
        let req_time = num(8)?;
        let user = num(11)?;
        if run <= 0 || procs <= 0 {
            continue;
        }
        let mut spec = JobSpec::new(
            Uid(user.max(0) as u32 + 1000),
            format!("swf-{}", fields[0]),
            SimDuration::from_secs(run as u64),
        )
        .with_tasks(procs as u32)
        .with_mem_per_task(256);
        if req_time > 0 {
            spec = spec.with_time_limit(SimDuration::from_secs(req_time as u64));
        }
        entries.push(TraceEntry {
            at: SimTime::from_secs(submit.max(0) as u64),
            spec,
        });
    }
    entries.sort_by_key(|e| e.at);
    Ok(Trace { entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::WorkloadMix;
    use crate::population::UserPopulation;
    use eus_simcore::SimRng;
    use eus_simos::UserDb;

    fn synthetic() -> Trace {
        let mut rng = SimRng::seed_from_u64(1);
        let mut db = UserDb::new();
        let pop = UserPopulation::build(&mut db, 10, 2, 1.0, &mut rng);
        WorkloadMix::llsc_like().generate(&pop, SimTime::from_secs(1800), &mut rng)
    }

    #[test]
    fn roundtrip_preserves_load_shape() {
        let original = synthetic();
        let text = to_swf(&original);
        let parsed = from_swf(&text).unwrap();
        assert_eq!(parsed.len(), original.len());
        // Core-seconds agree to within rounding (durations ceil to seconds).
        let a = original.total_core_seconds();
        let b = parsed.total_core_seconds();
        assert!((a - b).abs() / a < 0.02, "core-seconds {a} vs {b}");
        // Arrival order preserved.
        assert!(parsed.entries.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn parses_archive_style_lines() {
        let text = "\
; header comment
1 0 3 100 8 -1 512 8 120 -1 1 5 -1 -1 -1 -1 -1 -1
2 10 -1 0 4 -1 -1 4 -1 -1 0 6 -1 -1 -1 -1 -1 -1
3 20 -1 60 -4 -1 -1 -1 -1 -1 1 7 -1 -1 -1 -1 -1 -1
4 30 1 50 2 -1 -1 2 200 -1 1 5 -1 -1 -1 -1 -1 -1
";
        let trace = from_swf(text).unwrap();
        // Jobs 2 (run=0) and 3 (procs<0) are skipped.
        assert_eq!(trace.len(), 2);
        let first = &trace.entries[0].spec;
        assert_eq!(first.tasks, 8);
        assert_eq!(first.duration, SimDuration::from_secs(100));
        assert_eq!(first.time_limit, SimDuration::from_secs(120));
        assert_eq!(first.user, Uid(1005));
        let second = &trace.entries[1].spec;
        assert_eq!(second.time_limit, SimDuration::from_secs(200));
    }

    #[test]
    fn errors_are_located() {
        assert_eq!(
            from_swf("1 2 3").unwrap_err(),
            SwfError::TooFewFields { line: 1, found: 3 }
        );
        let bad = "1 x -1 10 1 -1 -1 1 -1 -1 1 1 -1 -1 -1 -1 -1 -1";
        assert_eq!(
            from_swf(bad).unwrap_err(),
            SwfError::BadNumber { line: 1, field: 1 }
        );
    }

    #[test]
    fn swf_trace_runs_through_the_scheduler() {
        use eus_sched::{SchedConfig, Scheduler};
        let trace = from_swf(&to_swf(&synthetic())).unwrap();
        let mut sched = Scheduler::new(SchedConfig::default());
        for _ in 0..16 {
            sched.add_node(16, 65_536, 0);
        }
        trace.submit_all(&mut sched);
        sched.run_to_completion();
        assert_eq!(sched.metrics.completed.get() as usize, trace.len());
    }
}
