//! # eus-workloads — synthetic HPC workloads
//!
//! LLSC's production traces are not public, so the scheduler and separation
//! experiments run on synthetic workloads shaped like the environment the
//! paper describes (Secs. I–II): interactive, diverse, dominated by many
//! short bulk-synchronous jobs, with MPI gangs and notebook sessions mixed
//! in.
//!
//! * [`population`] — users + steward-managed project groups with Zipf
//!   activity.
//! * [`jobs`] — generators: parameter sweeps, Monte Carlo batches, MPI gang
//!   jobs, GPU training, interactive and Jupyter sessions.
//! * [`mix`] — categorical batch mixes with Poisson arrivals →
//!   deterministic, seeded [`mix::Trace`]s.

#![warn(missing_docs)]

pub mod jobs;
pub mod mix;
pub mod population;
pub mod swf;

pub use jobs::{gpu_training, interactive_session, jupyter, monte_carlo, mpi_job, parameter_sweep};
pub use mix::{
    hours, interactive_vs_bulk, multi_partition_storm, poisson_arrivals, submission_storm,
    SharedTrace, Trace, TraceEntry, WorkloadMix,
};
pub use population::UserPopulation;
pub use swf::{from_swf, to_swf, SwfError};
