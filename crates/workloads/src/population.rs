//! Synthetic user populations.
//!
//! Builds a realistic account layout in the [`UserDb`]: N users under the
//! user-private-group scheme, P project groups with steward-managed rosters,
//! and a Zipf activity distribution (a few users submit most jobs — the
//! university-cluster shape Sec. II describes).

use eus_simcore::{SimRng, Zipf};
use eus_simos::{Gid, Uid, UserDb};

/// A generated population.
#[derive(Debug, Clone)]
pub struct UserPopulation {
    /// All generated users, index-aligned with the activity distribution.
    pub users: Vec<Uid>,
    /// Project groups.
    pub projects: Vec<Gid>,
    activity: Zipf,
}

impl UserPopulation {
    /// Create `n_users` users and `n_projects` project groups in `db`.
    /// Each project gets a random steward and a random membership of 2–8
    /// users. `activity_skew` is the Zipf exponent (0 = uniform activity).
    pub fn build(
        db: &mut UserDb,
        n_users: usize,
        n_projects: usize,
        activity_skew: f64,
        rng: &mut SimRng,
    ) -> Self {
        assert!(n_users > 0, "population needs at least one user");
        let users: Vec<Uid> = (0..n_users)
            .map(|i| db.create_user(&format!("user{i:04}")).expect("unique name"))
            .collect();
        let mut projects = Vec::with_capacity(n_projects);
        for p in 0..n_projects {
            let steward = *rng.pick(&users);
            let gid = db
                .create_project_group(&format!("proj{p:03}"), steward)
                .expect("unique name");
            let size = rng.range_u64(2, 9) as usize;
            for _ in 0..size {
                let member = *rng.pick(&users);
                // Ignore "already a member" duplicates.
                let _ = db.add_to_group(steward, gid, member);
            }
            projects.push(gid);
        }
        UserPopulation {
            users,
            projects,
            activity: Zipf::new(n_users, activity_skew),
        }
    }

    /// Draw a user weighted by activity (rank 0 = most active).
    pub fn active_user(&self, rng: &mut SimRng) -> Uid {
        self.users[self.activity.sample(rng)]
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Never true: construction requires at least one user.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_has_upgs_and_projects() {
        let mut db = UserDb::new();
        let mut rng = SimRng::seed_from_u64(1);
        let pop = UserPopulation::build(&mut db, 20, 5, 1.0, &mut rng);
        assert_eq!(pop.len(), 20);
        assert_eq!(pop.projects.len(), 5);
        // Every user has a private group containing exactly themselves.
        for &u in &pop.users {
            let cred = db.credentials(u).unwrap();
            let g = db.group(cred.gid).unwrap();
            assert_eq!(g.members.len(), 1);
        }
        // Projects have at least their steward.
        for &p in &pop.projects {
            assert!(!db.group(p).unwrap().members.is_empty());
        }
    }

    #[test]
    fn activity_skew_concentrates_submissions() {
        let mut db = UserDb::new();
        let mut rng = SimRng::seed_from_u64(2);
        let pop = UserPopulation::build(&mut db, 50, 0, 1.2, &mut rng);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            let u = pop.active_user(&mut rng);
            let idx = pop.users.iter().position(|x| *x == u).unwrap();
            counts[idx] += 1;
        }
        assert!(
            counts[0] > counts[25] * 3,
            "heavy head expected: {counts:?}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let build = |seed| {
            let mut db = UserDb::new();
            let mut rng = SimRng::seed_from_u64(seed);
            let pop = UserPopulation::build(&mut db, 10, 3, 1.0, &mut rng);
            (0..5)
                .map(|_| pop.active_user(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(7), build(7));
    }
}
