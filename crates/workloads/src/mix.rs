//! Workload mixes and trace generation.
//!
//! A [`WorkloadMix`] draws job *batches* (a sweep, an MC study, one MPI run,
//! an interactive session) from a categorical distribution, attaches them to
//! Zipf-active users, and schedules batch arrivals as a Poisson process —
//! the synthetic stand-in for LLSC's production traces (which are not
//! public; see DESIGN.md fidelity notes).

use crate::jobs;
use crate::population::UserPopulation;
use eus_sched::{JobKind, JobSpec, Scheduler};
use eus_simcore::{SimDuration, SimRng, SimTime};
use std::sync::Arc;

/// One dated submission.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Arrival time.
    pub at: SimTime,
    /// The job.
    pub spec: JobSpec,
}

/// A generated submission trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Entries in arrival order.
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    /// Submit every entry into a scheduler.
    pub fn submit_all(&self, sched: &mut Scheduler) {
        for e in &self.entries {
            sched.submit_at(e.at, e.spec.clone());
        }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total requested core-seconds (a load sanity check).
    pub fn total_core_seconds(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.spec.total_cores() as f64 * e.spec.duration.as_secs_f64())
            .collect::<Vec<_>>()
            .iter()
            .sum()
    }

    /// Convert into a replayable trace whose specs sit behind `Arc` — each
    /// subsequent replay submits with zero deep clones (the shape the
    /// throughput benches and `exp_sched_scale` replay repeatedly).
    pub fn to_shared(&self) -> SharedTrace {
        SharedTrace {
            entries: self
                .entries
                .iter()
                .map(|e| (e.at, Arc::new(e.spec.clone())))
                .collect(),
        }
    }
}

/// A trace with `Arc`-shared specs: built once, replayed many times (or
/// into many schedulers) without per-submission deep copies.
#[derive(Debug, Clone, Default)]
pub struct SharedTrace {
    /// Entries in arrival order.
    pub entries: Vec<(SimTime, Arc<JobSpec>)>,
}

impl SharedTrace {
    /// Submit every entry into a scheduler, sharing the spec.
    pub fn submit_all(&self, sched: &mut Scheduler) {
        for (at, spec) in &self.entries {
            sched.submit_at_shared(*at, Arc::clone(spec));
        }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A **submission storm**: `jobs` individual submissions packed into
/// `window` — the everyone-hits-sbatch-at-once shape (morning logins, a
/// sweep script gone wide) that stresses the scheduler's per-cycle cost
/// rather than steady-state capacity. Dominated by short single-task jobs
/// with a tail of gangs, like the LLSC-like mix but compressed in time.
pub fn submission_storm(
    pop: &UserPopulation,
    jobs: usize,
    window: SimTime,
    rng: &mut SimRng,
) -> Trace {
    let window_s = window.as_secs_f64();
    let mut entries: Vec<TraceEntry> = (0..jobs)
        .map(|i| {
            let at = SimTime::from_micros((rng.f64() * window_s * 1e6) as u64);
            let user = pop.active_user(rng);
            let draw = rng.f64();
            let spec = if draw < 0.60 {
                // Short single-task sweep point.
                let secs = 30.0 + rng.f64() * 270.0;
                JobSpec::new(user, format!("storm-{i}"), SimDuration::from_secs_f64(secs))
                    .with_cpus_per_task(1)
                    .with_mem_per_task(1024)
            } else if draw < 0.85 {
                // Small gang.
                let tasks = 4 + (rng.range_u64(0, 13) as u32);
                let secs = 300.0 + rng.f64() * 1500.0;
                JobSpec::new(user, format!("gang-{i}"), SimDuration::from_secs_f64(secs))
                    .with_tasks(tasks)
                    .with_cpus_per_task(1)
                    .with_mem_per_task(2048)
            } else if draw < 0.95 {
                // MPI job.
                let ranks = 16 + (rng.range_u64(0, 49) as u32);
                let secs = 600.0 + rng.f64() * 3000.0;
                jobs::mpi_job(user, ranks, secs)
            } else {
                jobs::interactive_session(user, 0.5 + rng.f64())
            };
            TraceEntry { at, spec }
        })
        .collect();
    entries.sort_by_key(|e| e.at);
    Trace { entries }
}

/// An **interactive-vs-bulk storm**: the workload shape the scheduler's
/// preemption knob exists for. A front of wide, long `QosClass::Bulk` jobs
/// lands in the first seconds and saturates the cluster for the whole
/// window; short, narrow `QosClass::Urgent` interactive sessions then
/// arrive throughout. Without preemption every interactive job waits out a
/// bulk completion; with it they displace the cheapest bulk victim and
/// start in seconds. Entries are in arrival order; tell the two
/// populations apart by `spec.qos` (bulk = `Bulk`, interactive =
/// `Urgent`).
pub fn interactive_vs_bulk(
    pop: &UserPopulation,
    bulk_jobs: usize,
    interactive_jobs: usize,
    window: SimTime,
    rng: &mut SimRng,
) -> Trace {
    use eus_sched::QosClass;
    let window_s = window.as_secs_f64();
    let mut entries: Vec<TraceEntry> = Vec::with_capacity(bulk_jobs + interactive_jobs);
    for i in 0..bulk_jobs {
        // Wide and long: each bulk job spans several nodes and outlives
        // the window, so the cluster never drains on its own.
        let at = SimTime::from_micros((rng.f64() * 30.0 * 1e6) as u64);
        let tasks = 16 + (rng.range_u64(0, 49) as u32);
        let secs = window_s * (1.5 + rng.f64());
        entries.push(TraceEntry {
            at,
            spec: JobSpec::new(
                pop.active_user(rng),
                format!("bulk-{i}"),
                SimDuration::from_secs_f64(secs),
            )
            .with_tasks(tasks)
            .with_cpus_per_task(1)
            .with_mem_per_task(2048)
            .with_qos(QosClass::Bulk),
        });
    }
    for i in 0..interactive_jobs {
        // Arrive after the bulk front owns the cluster.
        let at = SimTime::from_micros(((60.0 + rng.f64() * (window_s - 60.0)) * 1e6) as u64);
        let secs = 120.0 + rng.f64() * 480.0;
        entries.push(TraceEntry {
            at,
            spec: JobSpec::new(
                pop.active_user(rng),
                format!("int-{i}"),
                SimDuration::from_secs_f64(secs),
            )
            .with_tasks(4)
            .with_cpus_per_task(1)
            .with_mem_per_task(2048)
            .with_kind(JobKind::Interactive)
            .with_qos(QosClass::Urgent),
        });
    }
    entries.sort_by_key(|e| e.at);
    Trace { entries }
}

/// A **multi-partition storm**: one partition drowns under a deep backlog
/// while the others receive steady light work — the head-of-line-blocking
/// shape multi-partition fair-share exists for. `partitions[0]` receives
/// `backlog_share` of the jobs as long, wide work submitted up front; the
/// remaining partitions share short jobs spread over the window. Under
/// global FCFS the backlog partition's blocked head (plus a bounded
/// backfill budget) starves the others; with fair-share each partition
/// dispatches independently.
pub fn multi_partition_storm(
    pop: &UserPopulation,
    partitions: &[&str],
    jobs: usize,
    backlog_share: f64,
    window: SimTime,
    rng: &mut SimRng,
) -> Trace {
    assert!(
        partitions.len() >= 2,
        "needs a backlog and a victim partition"
    );
    let window_s = window.as_secs_f64();
    let backlog_jobs = ((jobs as f64) * backlog_share.clamp(0.0, 1.0)) as usize;
    let mut entries: Vec<TraceEntry> = Vec::with_capacity(jobs);
    for i in 0..jobs {
        let (partition, spec) = if i < backlog_jobs {
            // The backlog: wide jobs, all submitted in the first seconds,
            // long enough to keep the partition's queue deep for the whole
            // window but short enough that releases churn — so the
            // partition always *could* dispatch (starvation measurements
            // stay meaningful).
            let at = SimTime::from_micros((rng.f64() * 10.0 * 1e6) as u64);
            let tasks = 8 + (rng.range_u64(0, 25) as u32);
            let secs = window_s * (0.3 + 0.7 * rng.f64());
            (
                partitions[0],
                TraceEntry {
                    at,
                    spec: JobSpec::new(
                        pop.active_user(rng),
                        format!("backlog-{i}"),
                        SimDuration::from_secs_f64(secs),
                    )
                    .with_tasks(tasks)
                    .with_cpus_per_task(1)
                    .with_mem_per_task(1024),
                },
            )
        } else {
            // Steady light work for the other partitions.
            let at = SimTime::from_micros((rng.f64() * window_s * 1e6) as u64);
            let p = partitions[1 + (rng.range_u64(0, partitions.len() as u64 - 1) as usize)];
            let secs = 30.0 + rng.f64() * 270.0;
            (
                p,
                TraceEntry {
                    at,
                    spec: JobSpec::new(
                        pop.active_user(rng),
                        format!("light-{i}"),
                        SimDuration::from_secs_f64(secs),
                    )
                    .with_cpus_per_task(1)
                    .with_mem_per_task(1024),
                },
            )
        };
        let mut e = spec;
        e.spec = e.spec.with_partition(partition);
        entries.push(e);
    }
    entries.sort_by_key(|e| e.at);
    Trace { entries }
}

/// Batch-type weights and parameters.
#[derive(Debug, Clone)]
pub struct WorkloadMix {
    /// Probability a batch is a parameter sweep.
    pub sweep_weight: f64,
    /// Probability a batch is a Monte Carlo study.
    pub monte_carlo_weight: f64,
    /// Probability a batch is one MPI gang job.
    pub mpi_weight: f64,
    /// Probability a batch is an interactive session.
    pub interactive_weight: f64,
    /// Mean batch arrivals per simulated hour.
    pub batches_per_hour: f64,
    /// Sweep size range (points).
    pub sweep_points: (u32, u32),
    /// Mean sweep task length (seconds).
    pub sweep_task_secs: f64,
    /// MC replicas range.
    pub mc_replicas: (u32, u32),
    /// MPI ranks range (powers of two look right but aren't required).
    pub mpi_ranks: (u32, u32),
    /// MPI run length range (seconds).
    pub mpi_secs: (f64, f64),
}

impl WorkloadMix {
    /// The interactive, many-short-jobs LLSC-like mix the paper's
    /// scheduling policy targets.
    pub fn llsc_like() -> Self {
        WorkloadMix {
            sweep_weight: 0.45,
            monte_carlo_weight: 0.25,
            mpi_weight: 0.15,
            interactive_weight: 0.15,
            batches_per_hour: 40.0,
            sweep_points: (16, 128),
            sweep_task_secs: 60.0,
            mc_replicas: (32, 256),
            mpi_ranks: (8, 64),
            mpi_secs: (600.0, 7200.0),
        }
    }

    /// A traditional batch-MPI-dominated center.
    pub fn batch_heavy() -> Self {
        WorkloadMix {
            sweep_weight: 0.15,
            monte_carlo_weight: 0.10,
            mpi_weight: 0.70,
            interactive_weight: 0.05,
            batches_per_hour: 10.0,
            mpi_ranks: (32, 256),
            mpi_secs: (3600.0, 36_000.0),
            ..Self::llsc_like()
        }
    }

    /// Generate a trace over `[0, horizon]`.
    pub fn generate(&self, pop: &UserPopulation, horizon: SimTime, rng: &mut SimRng) -> Trace {
        let rate_per_sec = self.batches_per_hour / 3600.0;
        let mut entries = Vec::new();
        let mut t = 0.0f64;
        let horizon_s = horizon.as_secs_f64();
        loop {
            t += rng.exponential(rate_per_sec);
            if t >= horizon_s {
                break;
            }
            let at = SimTime::from_micros((t * 1e6) as u64);
            let user = pop.active_user(rng);
            let total = self.sweep_weight
                + self.monte_carlo_weight
                + self.mpi_weight
                + self.interactive_weight;
            let draw = rng.f64() * total;
            let sweep_end = self.sweep_weight;
            let mc_end = sweep_end + self.monte_carlo_weight;
            let mpi_end = mc_end + self.mpi_weight;
            let batch: Vec<JobSpec> = if draw < sweep_end {
                let n = rng.range_u64(self.sweep_points.0 as u64, self.sweep_points.1 as u64 + 1)
                    as u32;
                jobs::parameter_sweep(user, n, self.sweep_task_secs, rng)
            } else if draw < mc_end {
                let n =
                    rng.range_u64(self.mc_replicas.0 as u64, self.mc_replicas.1 as u64 + 1) as u32;
                jobs::monte_carlo(user, n, 10.0, rng)
            } else if draw < mpi_end {
                let ranks =
                    rng.range_u64(self.mpi_ranks.0 as u64, self.mpi_ranks.1 as u64 + 1) as u32;
                let secs = self.mpi_secs.0 + rng.f64() * (self.mpi_secs.1 - self.mpi_secs.0);
                vec![jobs::mpi_job(user, ranks, secs)]
            } else {
                vec![jobs::interactive_session(user, 1.0 + rng.f64() * 3.0)]
            };
            for spec in batch {
                entries.push(TraceEntry { at, spec });
            }
        }
        Trace { entries }
    }
}

/// Poisson arrival times over `[0, horizon]` at `rate_per_sec` — exposed for
/// experiments that schedule their own batches.
pub fn poisson_arrivals(rate_per_sec: f64, horizon: SimTime, rng: &mut SimRng) -> Vec<SimTime> {
    let mut out = Vec::new();
    let mut t = 0.0;
    let horizon_s = horizon.as_secs_f64();
    loop {
        t += rng.exponential(rate_per_sec);
        if t >= horizon_s {
            return out;
        }
        out.push(SimTime::from_micros((t * 1e6) as u64));
    }
}

/// A convenience duration for trace horizons.
pub const fn hours(h: u64) -> SimDuration {
    SimDuration::from_secs(h * 3600)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eus_simos::UserDb;

    fn pop(rng: &mut SimRng) -> (UserDb, UserPopulation) {
        let mut db = UserDb::new();
        let p = UserPopulation::build(&mut db, 30, 5, 1.0, rng);
        (db, p)
    }

    #[test]
    fn trace_generation_is_deterministic_and_nonempty() {
        let gen = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            let (_db, p) = pop(&mut rng);
            let mix = WorkloadMix::llsc_like();
            let t = mix.generate(&p, SimTime::from_secs(4 * 3600), &mut rng);
            (t.len(), t.total_core_seconds())
        };
        let (n1, cs1) = gen(42);
        let (n2, cs2) = gen(42);
        assert_eq!(n1, n2);
        assert_eq!(cs1, cs2);
        assert!(n1 > 100, "4h of llsc-like load should be busy: {n1}");
    }

    #[test]
    fn llsc_mix_dominated_by_short_jobs() {
        let mut rng = SimRng::seed_from_u64(3);
        let (_db, p) = pop(&mut rng);
        let t = WorkloadMix::llsc_like().generate(&p, SimTime::from_secs(4 * 3600), &mut rng);
        let short = t
            .entries
            .iter()
            .filter(|e| e.spec.duration < SimDuration::from_secs(600))
            .count();
        assert!(
            short as f64 / t.len() as f64 > 0.6,
            "mostly short jobs: {short}/{}",
            t.len()
        );
    }

    #[test]
    fn storm_is_deterministic_sorted_and_shaped() {
        let gen = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            let (_db, p) = pop(&mut rng);
            submission_storm(&p, 2_000, SimTime::from_secs(600), &mut rng)
        };
        let a = gen(9);
        let b = gen(9);
        assert_eq!(a.len(), 2_000);
        assert_eq!(a.total_core_seconds(), b.total_core_seconds(), "seeded");
        assert!(
            a.entries.windows(2).all(|w| w[0].at <= w[1].at),
            "arrival order"
        );
        assert!(
            a.entries.iter().all(|e| e.at < SimTime::from_secs(600)),
            "inside the window"
        );
        let singles = a.entries.iter().filter(|e| e.spec.tasks == 1).count();
        assert!(
            singles as f64 / a.len() as f64 > 0.5,
            "storms are mostly single-task: {singles}"
        );
        // Shared replay preserves the job set without per-submission clones.
        let shared = a.to_shared();
        assert_eq!(shared.len(), a.len());
        let mut s = Scheduler::new(eus_sched::SchedConfig::default());
        for _ in 0..64 {
            s.add_node(16, 64_000, 0);
        }
        shared.submit_all(&mut s);
        assert_eq!(s.jobs.len(), a.len());
    }

    #[test]
    fn interactive_vs_bulk_is_shaped_and_deterministic() {
        use eus_sched::QosClass;
        let gen = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            let (_db, p) = pop(&mut rng);
            interactive_vs_bulk(&p, 40, 60, SimTime::from_secs(1200), &mut rng)
        };
        let t = gen(7);
        assert_eq!(t.len(), 100);
        assert_eq!(t.total_core_seconds(), gen(7).total_core_seconds());
        let bulk: Vec<_> = t
            .entries
            .iter()
            .filter(|e| e.spec.qos == QosClass::Bulk)
            .collect();
        let inter: Vec<_> = t
            .entries
            .iter()
            .filter(|e| e.spec.qos == QosClass::Urgent)
            .collect();
        assert_eq!((bulk.len(), inter.len()), (40, 60));
        // Bulk front lands early and outlives the window; interactive work
        // arrives after it and is short.
        assert!(bulk.iter().all(|e| e.at < SimTime::from_secs(30)));
        assert!(bulk
            .iter()
            .all(|e| e.spec.duration > SimDuration::from_secs(1200)));
        assert!(inter.iter().all(|e| e.at >= SimTime::from_secs(60)));
        assert!(inter
            .iter()
            .all(|e| e.spec.duration <= SimDuration::from_secs(600)));
        assert!(inter.iter().all(|e| e.spec.kind == JobKind::Interactive));
    }

    #[test]
    fn multi_partition_storm_routes_and_backlogs() {
        let mut rng = SimRng::seed_from_u64(11);
        let (_db, p) = pop(&mut rng);
        let parts = ["batch", "short", "debug"];
        let t = multi_partition_storm(&p, &parts, 200, 0.7, SimTime::from_secs(600), &mut rng);
        assert_eq!(t.len(), 200);
        let by_part = |name: &str| {
            t.entries
                .iter()
                .filter(|e| e.spec.partition.as_deref() == Some(name))
                .count()
        };
        assert_eq!(by_part("batch"), 140, "70% backlog share");
        assert!(by_part("short") > 0 && by_part("debug") > 0);
        // Backlog is front-loaded; light work spreads across the window.
        let backlog_late = t
            .entries
            .iter()
            .filter(|e| e.spec.partition.as_deref() == Some("batch"))
            .filter(|e| e.at > SimTime::from_secs(10))
            .count();
        assert_eq!(backlog_late, 0);
    }

    #[test]
    fn poisson_rate_roughly_right() {
        let mut rng = SimRng::seed_from_u64(4);
        let arr = poisson_arrivals(0.1, SimTime::from_secs(100_000), &mut rng);
        let n = arr.len() as f64;
        assert!((n - 10_000.0).abs() < 400.0, "n={n}");
        assert!(arr.windows(2).all(|w| w[0] < w[1]), "sorted");
    }

    #[test]
    fn submit_all_into_scheduler() {
        let mut rng = SimRng::seed_from_u64(5);
        let (_db, p) = pop(&mut rng);
        let t = WorkloadMix::llsc_like().generate(&p, SimTime::from_secs(1800), &mut rng);
        let mut s = Scheduler::new(eus_sched::SchedConfig::default());
        for _ in 0..32 {
            s.add_node(16, 64_000, 0);
        }
        t.submit_all(&mut s);
        s.run_to_completion();
        let done = s.metrics.completed.get() as usize;
        assert_eq!(done, t.len(), "all jobs eventually complete");
    }
}
