//! Job generators for the workload classes the paper's environment serves
//! (Secs. I–II): bulk-synchronous parameter sweeps and Monte Carlo batches
//! (many short single-task jobs), MPI gang jobs, and interactive/web
//! sessions.

use eus_sched::{JobKind, JobSpec};
use eus_simcore::{SimDuration, SimRng};
use eus_simos::Uid;

/// A parameter sweep: `points` independent single-task jobs whose runtimes
/// are log-normally distributed around `task_secs` (bulk synchronous, short).
pub fn parameter_sweep(user: Uid, points: u32, task_secs: f64, rng: &mut SimRng) -> Vec<JobSpec> {
    let mu = task_secs.max(1.0).ln();
    (0..points)
        .map(|i| {
            let secs = rng.log_normal(mu, 0.3).clamp(1.0, task_secs * 10.0);
            JobSpec::new(
                user,
                format!("sweep-{i:04}"),
                SimDuration::from_secs_f64(secs),
            )
            .with_cpus_per_task(1)
            .with_mem_per_task(2048)
            .with_cmdline(["python", "sweep.py", &format!("--point={i}")])
        })
        .collect()
}

/// A Monte Carlo batch: like a sweep but with heavier-tailed runtimes
/// (bounded Pareto), the shape that makes exclusive scheduling so wasteful.
pub fn monte_carlo(user: Uid, replicas: u32, min_secs: f64, rng: &mut SimRng) -> Vec<JobSpec> {
    (0..replicas)
        .map(|i| {
            let secs = rng.bounded_pareto(1.5, min_secs.max(1.0), min_secs.max(1.0) * 100.0);
            JobSpec::new(user, format!("mc-{i:04}"), SimDuration::from_secs_f64(secs))
                .with_cpus_per_task(1)
                .with_mem_per_task(1024)
                .with_cmdline(["./mc_sim", &format!("--seed={i}")])
        })
        .collect()
}

/// An MPI gang job: `ranks` tasks that start and finish together, with
/// per-rank resources sized like a typical solver.
pub fn mpi_job(user: Uid, ranks: u32, secs: f64) -> JobSpec {
    JobSpec::new(
        user,
        format!("mpi-{ranks}r"),
        SimDuration::from_secs_f64(secs),
    )
    .with_tasks(ranks)
    .with_cpus_per_task(2)
    .with_mem_per_task(4096)
    .with_cmdline(["mpirun", "./solver"])
}

/// A GPU training job.
pub fn gpu_training(user: Uid, gpus: u32, secs: f64) -> JobSpec {
    JobSpec::new(user, "train", SimDuration::from_secs_f64(secs))
        .with_tasks(gpus.max(1))
        .with_cpus_per_task(4)
        .with_mem_per_task(16_384)
        .with_gpus_per_task(1)
        .with_cmdline(["python", "train.py"])
}

/// An interactive session (shell or notebook kernel).
pub fn interactive_session(user: Uid, hours: f64) -> JobSpec {
    JobSpec::new(
        user,
        "interactive",
        SimDuration::from_secs_f64(hours * 3600.0),
    )
    .with_cpus_per_task(2)
    .with_mem_per_task(8192)
    .with_kind(JobKind::Interactive)
    .with_cmdline(["bash", "-l"])
}

/// A web-app job (Jupyter-style), portal-routable.
pub fn jupyter(user: Uid, hours: f64) -> JobSpec {
    JobSpec::new(user, "jupyter", SimDuration::from_secs_f64(hours * 3600.0))
        .with_cpus_per_task(2)
        .with_mem_per_task(8192)
        .with_kind(JobKind::WebApp)
        .with_cmdline(["jupyter", "lab", "--no-browser"])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_many_short_singles() {
        let mut rng = SimRng::seed_from_u64(1);
        let jobs = parameter_sweep(Uid(1), 100, 30.0, &mut rng);
        assert_eq!(jobs.len(), 100);
        assert!(jobs.iter().all(|j| j.tasks == 1));
        let mean: f64 = jobs.iter().map(|j| j.duration.as_secs_f64()).sum::<f64>() / 100.0;
        assert!((10.0..120.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn monte_carlo_is_heavy_tailed() {
        let mut rng = SimRng::seed_from_u64(2);
        let jobs = monte_carlo(Uid(1), 500, 10.0, &mut rng);
        let mut secs: Vec<f64> = jobs.iter().map(|j| j.duration.as_secs_f64()).collect();
        secs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = secs[250];
        let p99 = secs[494];
        assert!(
            p99 > median * 5.0,
            "tail expected: median {median} p99 {p99}"
        );
        assert!(secs[0] >= 10.0);
    }

    #[test]
    fn gang_and_sessions_shapes() {
        let mpi = mpi_job(Uid(1), 64, 3600.0);
        assert_eq!(mpi.tasks, 64);
        assert_eq!(mpi.total_cores(), 128);

        let gpu = gpu_training(Uid(1), 4, 100.0);
        assert_eq!(gpu.total_gpus(), 4);

        let sess = interactive_session(Uid(1), 2.0);
        assert_eq!(sess.kind, JobKind::Interactive);
        assert_eq!(sess.duration, SimDuration::from_secs(7200));

        let jup = jupyter(Uid(1), 1.0);
        assert_eq!(jup.kind, JobKind::WebApp);
        assert_eq!(jup.cmdline[0], "jupyter");
    }
}
