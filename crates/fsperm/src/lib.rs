//! # eus-fsperm — the File Permission Handler
//!
//! Reproduction of the paper's first released artifact
//! (`mit-llsc/HPCFilePermissionHandler`, Sec. IV-C + Appendix): two kernel
//! patches and a PAM module that, combined with the user-private-group
//! scheme, prevent users from sharing data through the filesystem except via
//! membership in a common supplementary (project) group.
//!
//! * [`smask`] — patch activation ([`smask::apply_kernel_patches`]) and site
//!   policy ([`smask::FilePermissionHandler`]). The `smask` is like
//!   `umask 007` but **immutable and enforced, even on chmod**.
//! * [`pam_module`] — [`pam_module::PamSmask`], the session module that
//!   installs the smask at login.
//! * [`tools`] — `seepid` and `smask_relax`/`smask_restore`, the whitelisted
//!   support-staff escape hatches.
//! * [`lustre`] — the LU-4746 model: pre-2.7.0 Lustre clients bypassed the
//!   smask accessor at create time.
//!
//! Property tests at the bottom of this crate state the headline invariant:
//! under the patch + PAM module, **no operation available to an unprivileged
//! user ever produces a world-accessible file**.

#![warn(missing_docs)]

pub mod lustre;
pub mod pam_module;
pub mod smask;
pub mod tools;

pub use lustre::LustreClient;
pub use pam_module::PamSmask;
pub use smask::{
    apply_kernel_patches, apply_kernel_patches_handle, FilePermissionHandler, LLSC_SMASK,
    RELAXED_SMASK,
};
pub use tools::{seepid, smask_relax, smask_restore, ToolError};

#[cfg(test)]
mod prop_tests {
    use super::*;
    use eus_simos::{Credentials, FsCtx, Gid, Mode, Perm, PosixAcl, Uid, UserDb, Vfs};
    use proptest::prelude::*;

    fn patched_fs() -> Vfs {
        let mut fs = Vfs::standard_node_layout("prop");
        apply_kernel_patches(&mut fs);
        fs
    }

    fn llsc_ctx(uid: u32) -> FsCtx {
        FsCtx::user(Credentials::new(Uid(uid), Gid(uid)))
            .with_umask(Mode::new(0o022))
            .with_smask(LLSC_SMASK)
    }

    proptest! {
        /// For any requested mode, a file created in an smask-007 session has
        /// no world bits.
        #[test]
        fn created_files_never_world_accessible(bits in 0u16..0o7777) {
            let mut fs = patched_fs();
            let ctx = llsc_ctx(100);
            fs.create(&ctx, "/tmp/f", Mode::new(bits)).unwrap();
            let mode = fs.stat(&ctx, "/tmp/f").unwrap().mode;
            prop_assert!(!mode.any_world(), "requested {bits:o} got {mode}");
        }

        /// For any chmod request on an existing file, world bits never appear.
        #[test]
        fn chmod_never_introduces_world_bits(
            create_bits in 0u16..0o7777,
            chmod_bits in 0u16..0o7777,
        ) {
            let mut fs = patched_fs();
            let ctx = llsc_ctx(100);
            fs.create(&ctx, "/tmp/f", Mode::new(create_bits)).unwrap();
            let effective = fs.chmod(&ctx, "/tmp/f", Mode::new(chmod_bits)).unwrap();
            prop_assert!(!effective.any_world());
            prop_assert!(!fs.stat(&ctx, "/tmp/f").unwrap().mode.any_world());
        }

        /// Root (system services) is exempt from the smask, for any mode.
        #[test]
        fn root_exempt_from_smask(bits in 0u16..0o777) {
            let mut fs = patched_fs();
            let root = FsCtx::root().with_umask(Mode::new(0)).with_smask(LLSC_SMASK);
            fs.create(&root, "/tmp/sys", Mode::new(bits)).unwrap();
            let mode = fs.stat(&root, "/tmp/sys").unwrap().mode;
            prop_assert_eq!(mode.bits(), bits);
        }

        /// The ACL restriction patch: a grant to a user with no shared group
        /// is always rejected; a grant to a shared project-group member is
        /// always accepted — regardless of the permission bits requested.
        #[test]
        fn acl_grants_respect_group_boundaries(perm_bits in 0u8..8) {
            let mut fs = patched_fs();
            let mut db = UserDb::new();
            let granter = db.create_user("granter").unwrap();
            let friend = db.create_user("friend").unwrap();
            let stranger = db.create_user("stranger").unwrap();
            let proj = db.create_project_group("proj", granter).unwrap();
            db.add_to_group(granter, proj, friend).unwrap();

            let ctx = FsCtx::user(db.credentials(granter).unwrap())
                .with_smask(LLSC_SMASK);
            fs.create(&ctx, "/tmp/data", Mode::new(0o640)).unwrap();
            let perm = Perm::from_bits(perm_bits);

            let to_stranger = PosixAcl::new(Perm::NONE).with_user(stranger, perm);
            prop_assert!(fs.setfacl(&ctx, "/tmp/data", to_stranger, &db).is_err());

            let to_friend = PosixAcl::new(Perm::NONE).with_user(friend, perm);
            prop_assert!(fs.setfacl(&ctx, "/tmp/data", to_friend, &db).is_ok());

            let to_proj = PosixAcl::new(Perm::NONE).with_group(proj, perm);
            prop_assert!(fs.setfacl(&ctx, "/tmp/data", to_proj, &db).is_ok());
        }

        /// Sharing invariant (the Appendix claim): with patches + UPG scheme,
        /// for ANY sequence of create/chmod attempts by user A in a sticky
        /// world-writable directory, user B (no shared groups) can never read
        /// the file contents.
        #[test]
        fn no_cross_user_read_via_tmp(
            create_bits in 0u16..0o7777,
            chmod_bits in proptest::option::of(0u16..0o7777),
        ) {
            let mut fs = patched_fs();
            let a = llsc_ctx(100);
            let b = llsc_ctx(101);
            fs.create(&a, "/tmp/x", Mode::new(create_bits)).unwrap();
            fs.write(&a, "/tmp/x", b"secret").ok(); // may fail if A stripped own w
            if let Some(bits) = chmod_bits {
                fs.chmod(&a, "/tmp/x", Mode::new(bits)).unwrap();
            }
            prop_assert!(fs.read(&b, "/tmp/x").is_err(), "B must never read A's file");
        }
    }
}
