//! The File Permission Handler's PAM module: installs the enforced `smask`
//! into every login session it opens. With the kernel patch active
//! ([`crate::smask::apply_kernel_patches`]), nothing the user does in that
//! session can set world permission bits.

use crate::smask::FilePermissionHandler;
use eus_simos::pam::{PamContext, PamModule, PamVerdict, Session};
use eus_simos::Mode;

/// PAM session module setting the per-session security mask.
#[derive(Debug, Clone)]
pub struct PamSmask {
    smask: Mode,
}

impl PamSmask {
    /// A module that installs the given smask.
    pub fn new(smask: Mode) -> Self {
        PamSmask { smask }
    }

    /// A module configured from site policy.
    pub fn from_handler(h: &FilePermissionHandler) -> Self {
        PamSmask {
            smask: h.default_smask,
        }
    }
}

impl PamModule for PamSmask {
    fn name(&self) -> &str {
        "pam_smask"
    }

    fn open_session(&self, _ctx: &PamContext, session: &mut Session) -> PamVerdict {
        session.smask = self.smask;
        PamVerdict::Success
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smask::{apply_kernel_patches_handle, LLSC_SMASK};
    use eus_simos::{Gid, NodeId, NodeOs, Uid, UserDb};

    #[test]
    fn sessions_get_the_site_smask() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let mut node = NodeOs::new(NodeId(1), "login1");
        let handler = FilePermissionHandler::new(Gid(900));
        node.pam.push(Box::new(PamSmask::from_handler(&handler)));

        let sid = node.login(&db, alice, "sshd").unwrap();
        let session = node.session(sid).unwrap();
        assert_eq!(session.smask, LLSC_SMASK);
        assert_eq!(session.fs_ctx().smask, LLSC_SMASK);
    }

    #[test]
    fn pam_plus_patch_blocks_world_sharing_via_session_io() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let mut node = NodeOs::new(NodeId(1), "login1");
        apply_kernel_patches_handle(&node.local_fs);
        node.pam.push(Box::new(PamSmask::new(LLSC_SMASK)));
        let sid = node.login(&db, alice, "sshd").unwrap();
        let ctx = node.session(sid).unwrap().fs_ctx();

        node.fs_write(&ctx, "/tmp/drop", eus_simos::Mode::new(0o666), b"payload")
            .unwrap();
        let st = node.fs_stat(&ctx, "/tmp/drop").unwrap();
        assert!(!st.mode.any_world(), "world bits must be stripped");

        // And chmod inside the session cannot restore them.
        node.with_fs("/tmp/drop", |fs, p| {
            fs.chmod(&ctx, p, eus_simos::Mode::new(0o666)).unwrap();
        });
        assert!(!node.fs_stat(&ctx, "/tmp/drop").unwrap().mode.any_world());
    }

    #[test]
    fn unconfigured_node_keeps_vanilla_behaviour() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let mut node = NodeOs::new(NodeId(1), "login1");
        let sid = node.login(&db, alice, "sshd").unwrap();
        assert_eq!(node.session(sid).unwrap().smask, Mode::new(0));
        let uid = Uid(0);
        let _ = uid; // silence potential unused in minimal builds
    }
}
