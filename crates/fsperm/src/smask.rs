//! The File Permission Handler configuration and kernel-patch activation
//! (paper Sec. IV-C and the Reproducibility Appendix).
//!
//! The real artifact is two Linux kernel patches plus a PAM module. In this
//! reproduction the patch *points* live in `eus-simos::vfs` (they are kernel
//! behaviour); this module owns turning them on and the site policy around
//! them: the default smask value and the whitelists for the `smask_relax`
//! and `seepid` support tools.

use eus_simos::node::FsHandle;
use eus_simos::{Gid, Mode, Uid, Vfs};
use std::collections::BTreeSet;

/// The smask value LLSC deploys: clear all world (other-class) bits —
/// `umask 007`'s effect, but immutable and enforced even on chmod.
pub const LLSC_SMASK: Mode = Mode::new(0o007);

/// The relaxed mask `smask_relax` grants support staff: world write is still
/// blocked but world read/execute may be set, so widely-used datasets and
/// tools can be published.
pub const RELAXED_SMASK: Mode = Mode::new(0o002);

/// Enable both kernel patches on a filesystem: smask enforcement at
/// create/chmod, and the ACL grant restrictions.
pub fn apply_kernel_patches(fs: &mut Vfs) {
    fs.enforce_smask = true;
    fs.restrict_acl = true;
}

/// [`apply_kernel_patches`] through a shared mount handle.
pub fn apply_kernel_patches_handle(fs: &FsHandle) {
    apply_kernel_patches(&mut fs.write());
}

/// Site policy for the File Permission Handler deployment.
#[derive(Debug, Clone)]
pub struct FilePermissionHandler {
    /// The smask installed into every login session by the PAM module.
    pub default_smask: Mode,
    /// Support staff allowed to run `smask_relax`.
    pub relax_whitelist: BTreeSet<Uid>,
    /// Support staff allowed to run `seepid`.
    pub seepid_whitelist: BTreeSet<Uid>,
    /// The hidepid-exemption group `seepid` grants (the `gid=` mount option
    /// value on `/proc`).
    pub seepid_gid: Gid,
}

impl FilePermissionHandler {
    /// LLSC defaults: smask 007, empty whitelists, with the given exemption
    /// group.
    pub fn new(seepid_gid: Gid) -> Self {
        FilePermissionHandler {
            default_smask: LLSC_SMASK,
            relax_whitelist: BTreeSet::new(),
            seepid_whitelist: BTreeSet::new(),
            seepid_gid,
        }
    }

    /// Builder: whitelist a support-staff user for `smask_relax`.
    pub fn allow_relax(mut self, uid: Uid) -> Self {
        self.relax_whitelist.insert(uid);
        self
    }

    /// Builder: whitelist a support-staff user for `seepid`.
    pub fn allow_seepid(mut self, uid: Uid) -> Self {
        self.seepid_whitelist.insert(uid);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eus_simos::{Credentials, FsCtx};

    #[test]
    fn patches_flip_both_flags() {
        let mut fs = Vfs::new("t");
        assert!(!fs.enforce_smask && !fs.restrict_acl);
        apply_kernel_patches(&mut fs);
        assert!(fs.enforce_smask && fs.restrict_acl);
    }

    #[test]
    fn smask_constants_match_paper() {
        // smask 007: no world bits survive.
        assert_eq!(Mode::new(0o777).clear(LLSC_SMASK).bits(), 0o770);
        // smask 002: world r-x allowed, world w blocked.
        assert_eq!(Mode::new(0o777).clear(RELAXED_SMASK).bits(), 0o775);
    }

    #[test]
    fn patched_fs_blocks_world_bits_end_to_end() {
        let mut fs = Vfs::standard_node_layout("t");
        apply_kernel_patches(&mut fs);
        let ctx = FsCtx::user(Credentials::new(Uid(100), Gid(100)))
            .with_smask(LLSC_SMASK)
            .with_umask(Mode::new(0));
        fs.create(&ctx, "/tmp/f", Mode::new(0o777)).unwrap();
        let st = fs.stat(&ctx, "/tmp/f").unwrap();
        assert_eq!(st.mode.bits(), 0o770);
        fs.chmod(&ctx, "/tmp/f", Mode::new(0o707)).unwrap();
        assert!(!fs.stat(&ctx, "/tmp/f").unwrap().mode.any_world());
    }

    #[test]
    fn whitelists_build() {
        let h = FilePermissionHandler::new(Gid(900))
            .allow_relax(Uid(5))
            .allow_seepid(Uid(5))
            .allow_seepid(Uid(6));
        assert!(h.relax_whitelist.contains(&Uid(5)));
        assert_eq!(h.seepid_whitelist.len(), 2);
        assert_eq!(h.default_smask, LLSC_SMASK);
    }
}
