//! The Lustre `umask`/`smask` interaction (paper Sec. IV-C, footnote on
//! LU-4746, merged in Lustre 2.7.0).
//!
//! Pre-patch Lustre's create path read the process's `umask` variable
//! directly instead of going through the kernel accessor that the smask
//! patch hooks — so files created over Lustre silently escaped smask
//! enforcement. The fix replaced the direct read with the standard accessor.
//! We model both client generations so the regression is demonstrable.

use eus_simos::vfs::{FsCtx, FsResult, Ino, Mode, Vfs};

/// A Lustre client create path, patched or not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LustreClient {
    /// True for Lustre ≥ 2.7.0 (LU-4746 merged): the create mask goes
    /// through the kernel accessor, so smask applies.
    pub patched: bool,
}

impl LustreClient {
    /// A fixed client.
    pub fn patched() -> Self {
        LustreClient { patched: true }
    }

    /// A pre-2.7.0 client exhibiting the bug.
    pub fn unpatched() -> Self {
        LustreClient { patched: false }
    }

    /// The effective creation mask this client applies. The unpatched client
    /// reads only the raw `umask`; the patched one uses the accessor, which
    /// the smask kernel patch extends to `umask | smask`.
    pub fn effective_mask(&self, ctx: &FsCtx) -> Mode {
        if self.patched {
            ctx.umask.union(ctx.smask)
        } else {
            ctx.umask
        }
    }

    /// Create a file on a Lustre-backed filesystem through this client.
    pub fn create(&self, fs: &mut Vfs, ctx: &FsCtx, path: &str, mode: Mode) -> FsResult<Ino> {
        if self.patched {
            // Normal kernel path: Vfs applies umask + (if enforced) smask.
            fs.create(ctx, path, mode)
        } else {
            // Bug path: the smask never reaches the create, regardless of
            // the kernel patch. chmod on the same file would still be
            // smask-filtered — the leak is specifically at create time.
            let bypass = ctx.clone().with_smask(Mode::new(0));
            fs.create(&bypass, path, mode)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smask::{apply_kernel_patches, LLSC_SMASK};
    use eus_simos::{Credentials, Gid, Uid};

    fn lustre_fs() -> (Vfs, FsCtx) {
        let mut fs = Vfs::standard_node_layout("lustre-scratch");
        apply_kernel_patches(&mut fs);
        let ctx = FsCtx::user(Credentials::new(Uid(100), Gid(100)))
            .with_umask(Mode::new(0))
            .with_smask(LLSC_SMASK);
        (fs, ctx)
    }

    #[test]
    fn unpatched_client_leaks_world_bits() {
        let (mut fs, ctx) = lustre_fs();
        LustreClient::unpatched()
            .create(&mut fs, &ctx, "/tmp/leaky", Mode::new(0o666))
            .unwrap();
        let mode = fs.stat(&ctx, "/tmp/leaky").unwrap().mode;
        assert!(mode.any_world(), "pre-LU-4746 escapes smask: {mode}");
    }

    #[test]
    fn patched_client_honors_smask() {
        let (mut fs, ctx) = lustre_fs();
        LustreClient::patched()
            .create(&mut fs, &ctx, "/tmp/tight", Mode::new(0o666))
            .unwrap();
        let mode = fs.stat(&ctx, "/tmp/tight").unwrap().mode;
        assert!(!mode.any_world(), "LU-4746 fixed: {mode}");
        assert_eq!(mode.bits(), 0o660);
    }

    #[test]
    fn effective_masks_differ_only_by_smask() {
        let ctx = FsCtx::user(Credentials::new(Uid(1), Gid(1)))
            .with_umask(Mode::new(0o022))
            .with_smask(LLSC_SMASK);
        assert_eq!(LustreClient::unpatched().effective_mask(&ctx).bits(), 0o022);
        assert_eq!(LustreClient::patched().effective_mask(&ctx).bits(), 0o027);
    }

    #[test]
    fn chmod_still_enforced_even_with_unpatched_client() {
        // The bug is create-time only; the kernel chmod path still masks.
        let (mut fs, ctx) = lustre_fs();
        LustreClient::unpatched()
            .create(&mut fs, &ctx, "/tmp/f", Mode::new(0o666))
            .unwrap();
        fs.chmod(&ctx, "/tmp/f", Mode::new(0o666)).unwrap();
        assert!(!fs.stat(&ctx, "/tmp/f").unwrap().mode.any_world());
    }
}
