//! Support-staff escape hatches (paper Secs. IV-A, IV-C).
//!
//! HPC research facilitators are not full administrators but occasionally
//! need more than a regular user:
//!
//! * [`seepid`] — add the hidepid-exemption group to a whitelisted session so
//!   staff can attribute system load to users when troubleshooting.
//! * [`smask_relax`] — enter a relaxed smask (002) so staff can publish
//!   world-readable datasets, AI models, and tool trees; [`smask_restore`]
//!   returns to site default.
//!
//! Both are whitelist-gated: an unlisted user keeps full separation.

use crate::smask::{FilePermissionHandler, RELAXED_SMASK};
use eus_simos::pam::Session;
use eus_simos::Uid;
use std::fmt;

/// Tool invocation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToolError {
    /// The caller is not on the whitelist for this tool.
    NotWhitelisted {
        /// Who asked.
        uid: Uid,
        /// Which tool refused.
        tool: &'static str,
    },
}

impl fmt::Display for ToolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolError::NotWhitelisted { uid, tool } => {
                write!(f, "{uid} is not whitelisted for {tool}")
            }
        }
    }
}

impl std::error::Error for ToolError {}

/// Add the `/proc` exemption group to the session's supplementary groups so
/// the caller sees all processes despite `hidepid=2`.
pub fn seepid(handler: &FilePermissionHandler, session: &mut Session) -> Result<(), ToolError> {
    if !handler.seepid_whitelist.contains(&session.user) {
        return Err(ToolError::NotWhitelisted {
            uid: session.user,
            tool: "seepid",
        });
    }
    session.cred = session.cred.with_extra_group(handler.seepid_gid);
    Ok(())
}

/// Relax the session's enforced smask to 002 (world read/execute allowed,
/// world write still blocked) for publishing shared data areas.
pub fn smask_relax(
    handler: &FilePermissionHandler,
    session: &mut Session,
) -> Result<(), ToolError> {
    if !handler.relax_whitelist.contains(&session.user) {
        return Err(ToolError::NotWhitelisted {
            uid: session.user,
            tool: "smask_relax",
        });
    }
    session.smask = RELAXED_SMASK;
    Ok(())
}

/// Leave the relaxed shell: restore the site-default smask.
pub fn smask_restore(handler: &FilePermissionHandler, session: &mut Session) {
    session.smask = handler.default_smask;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pam_module::PamSmask;
    use crate::smask::{apply_kernel_patches_handle, LLSC_SMASK};
    use eus_simcore::SimTime;
    use eus_simos::procfs::{HidePid, ProcMountOpts};
    use eus_simos::{Gid, Mode, NodeId, NodeOs, UserDb};

    fn staff_node() -> (UserDb, NodeOs, FilePermissionHandler, Uid, Uid) {
        let mut db = UserDb::new();
        let staff = db.create_user("staff").unwrap();
        let user = db.create_user("researcher").unwrap();
        let seepid_gid = db.create_system_group("proc-exempt").unwrap();
        let mut node = NodeOs::new(NodeId(1), "login1");
        node.proc_opts = ProcMountOpts {
            hidepid: HidePid::Invisible,
            exempt_gid: Some(seepid_gid),
        };
        apply_kernel_patches_handle(&node.local_fs);
        let handler = FilePermissionHandler::new(seepid_gid)
            .allow_relax(staff)
            .allow_seepid(staff);
        node.pam.push(Box::new(PamSmask::from_handler(&handler)));
        (db, node, handler, staff, user)
    }

    #[test]
    fn seepid_reveals_foreign_processes_for_staff_only() {
        let (db, mut node, handler, staff, user) = staff_node();
        // A researcher's job is running.
        let user_sid = node.login(&db, user, "sshd").unwrap();
        node.spawn(user_sid, ["python", "train.py"], SimTime::ZERO)
            .unwrap();

        let staff_sid = node.login(&db, staff, "sshd").unwrap();
        // Before seepid: hidepid=2 hides the researcher's process.
        let cred_before = node.session(staff_sid).unwrap().cred.clone();
        assert_eq!(node.procfs().foreign_visible_count(&cred_before), 0);

        // After seepid: full view.
        seepid(&handler, node.session_mut(staff_sid).unwrap()).unwrap();
        let cred_after = node.session(staff_sid).unwrap().cred.clone();
        assert_eq!(node.procfs().foreign_visible_count(&cred_after), 1);

        // The researcher cannot run seepid.
        let err = seepid(&handler, node.session_mut(user_sid).unwrap()).unwrap_err();
        assert!(matches!(
            err,
            ToolError::NotWhitelisted { tool: "seepid", .. }
        ));
    }

    #[test]
    fn smask_relax_allows_world_read_not_world_write() {
        let (db, mut node, handler, staff, _user) = staff_node();
        let sid = node.login(&db, staff, "sshd").unwrap();
        assert_eq!(node.session(sid).unwrap().smask, LLSC_SMASK);

        smask_relax(&handler, node.session_mut(sid).unwrap()).unwrap();
        let ctx = node.session(sid).unwrap().fs_ctx().with_umask(Mode::new(0));
        node.fs_write(&ctx, "/tmp/dataset", Mode::new(0o777), b"model")
            .unwrap();
        let mode = node.fs_stat(&ctx, "/tmp/dataset").unwrap().mode;
        assert_eq!(mode.bits(), 0o775, "world r-x allowed, world w stripped");

        // Leaving the relaxed shell restores enforcement.
        smask_restore(&handler, node.session_mut(sid).unwrap());
        let ctx2 = node.session(sid).unwrap().fs_ctx().with_umask(Mode::new(0));
        node.fs_write(&ctx2, "/tmp/private", Mode::new(0o777), b"x")
            .unwrap();
        assert!(!node
            .fs_stat(&ctx2, "/tmp/private")
            .unwrap()
            .mode
            .any_world());
    }

    #[test]
    fn relax_denied_for_regular_users() {
        let (db, mut node, handler, _staff, user) = staff_node();
        let sid = node.login(&db, user, "sshd").unwrap();
        let err = smask_relax(&handler, node.session_mut(sid).unwrap()).unwrap_err();
        assert_eq!(
            err,
            ToolError::NotWhitelisted {
                uid: user,
                tool: "smask_relax"
            }
        );
        assert_eq!(node.session(sid).unwrap().smask, LLSC_SMASK);
    }

    #[test]
    fn seepid_grants_membership_in_exemption_group_only() {
        let (db, mut node, handler, staff, _user) = staff_node();
        let sid = node.login(&db, staff, "sshd").unwrap();
        seepid(&handler, node.session_mut(sid).unwrap()).unwrap();
        let cred = &node.session(sid).unwrap().cred;
        assert!(cred.is_member(handler.seepid_gid));
        // No other elevation: still not root, gid unchanged.
        assert!(!cred.is_root());
        assert_eq!(cred.uid, staff);
        let _ = Gid(0);
    }
}
