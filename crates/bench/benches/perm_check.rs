//! Microbenchmarks of the VFS permission machinery — the code on every I/O
//! hot path once the File Permission Handler is deployed. Verifies the
//! smask/ACL checks add only constant, nanosecond-scale work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eus_simos::vfs::{check_access, FsCtx, Mode, Perm, PermMeta, PosixAcl, Vfs};
use eus_simos::{Credentials, Gid, Uid};
use std::hint::black_box;

fn bench_check_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("perm_check/access_decision");
    let owner = Credentials::new(Uid(100), Gid(100));
    let member = Credentials::with_groups(Uid(101), Gid(101), [Gid(100), Gid(200), Gid(300)]);
    let stranger = Credentials::new(Uid(102), Gid(102));

    let plain = PermMeta {
        uid: Uid(100),
        gid: Gid(100),
        mode: Mode::new(0o640),
        acl: None,
        is_dir: false,
    };
    g.bench_function("owner_plain", |b| {
        b.iter(|| check_access(black_box(&owner), black_box(&plain), Perm::RW))
    });
    g.bench_function("group_member_plain", |b| {
        b.iter(|| check_access(black_box(&member), black_box(&plain), Perm::R))
    });
    g.bench_function("stranger_plain", |b| {
        b.iter(|| check_access(black_box(&stranger), black_box(&plain), Perm::R))
    });

    let mut acl = PosixAcl::new(Perm::RX);
    for i in 0..16 {
        acl = acl
            .with_user(Uid(500 + i), Perm::R)
            .with_group(Gid(600 + i), Perm::R);
    }
    let with_acl = PermMeta {
        acl: Some(&acl),
        ..plain.clone()
    };
    g.bench_function("stranger_16_entry_acl", |b| {
        b.iter(|| check_access(black_box(&stranger), black_box(&with_acl), Perm::R))
    });
    g.finish();
}

fn bench_path_resolution(c: &mut Criterion) {
    let mut g = c.benchmark_group("perm_check/path_resolution");
    for depth in [2usize, 8, 32] {
        let mut fs = Vfs::new("bench");
        let root = FsCtx::root().with_umask(Mode::new(0));
        let mut path = String::new();
        for i in 0..depth {
            path.push_str(&format!("/d{i}"));
            fs.mkdir(&root, &path, Mode::new(0o755)).unwrap();
        }
        path.push_str("/file");
        fs.write_file(&root, &path, Mode::new(0o644), b"x").unwrap();
        let user = FsCtx::user(Credentials::new(Uid(1), Gid(1)));
        g.bench_with_input(BenchmarkId::new("read", depth), &path, |b, p| {
            b.iter(|| fs.read(black_box(&user), black_box(p)).unwrap())
        });
    }
    g.finish();
}

fn bench_create_with_masks(c: &mut Criterion) {
    let mut g = c.benchmark_group("perm_check/create");
    for (name, smask_on) in [("vanilla", false), ("smask_patched", true)] {
        let mut fs = Vfs::standard_node_layout("bench");
        fs.enforce_smask = smask_on;
        let ctx = FsCtx::user(Credentials::new(Uid(1), Gid(1))).with_smask(Mode::new(0o007));
        let mut i = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                i += 1;
                fs.create(&ctx, &format!("/tmp/f{i}"), Mode::new(0o666))
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_check_access,
    bench_path_resolution,
    bench_create_with_masks
);
criterion_main!(benches);
