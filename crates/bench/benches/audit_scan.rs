//! Full separation-audit cost (experiment E12's performance face): a
//! complete channel sweep — one cluster construction plus probe per
//! channel —
//! per configuration. This is the "how long does it take to re-verify the
//! whole deployment" number an operator cares about.

use criterion::{criterion_group, criterion_main, Criterion};
use eus_core::{audit, ClusterSpec, SeparationConfig};
use std::hint::black_box;

fn bench_audit(c: &mut Criterion) {
    let mut g = c.benchmark_group("audit/full_sweep");
    g.sample_size(10);
    for (label, cfg) in [
        ("baseline", SeparationConfig::baseline()),
        ("llsc", SeparationConfig::llsc()),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| black_box(audit::run_audit(&cfg, &ClusterSpec::tiny())))
        });
    }
    g.finish();
}

fn bench_cluster_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("audit/cluster_construction");
    for (label, spec) in [
        ("tiny", ClusterSpec::tiny()),
        ("default", ClusterSpec::default()),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(eus_core::SecureCluster::new(
                    SeparationConfig::llsc(),
                    spec.clone(),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_audit, bench_cluster_construction);
criterion_main!(benches);
