//! `/proc` scan cost vs hidepid level and process count (experiment E1's
//! performance face): hiding must not make `ps` slower for legitimate use.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eus_simcore::SimTime;
use eus_simos::procfs::{HidePid, ProcFs, ProcMountOpts};
use eus_simos::{Credentials, Gid, ProcessTable, Uid};
use std::hint::black_box;

fn bench_proc_listing(c: &mut Criterion) {
    let mut g = c.benchmark_group("proc_scan/list");
    for n in [64usize, 512, 4096] {
        let mut table = ProcessTable::new();
        for i in 0..n {
            let uid = 1000 + (i % 50) as u32;
            table.spawn(
                Credentials::new(Uid(uid), Gid(uid)),
                ["python", "job.py"],
                SimTime::ZERO,
            );
        }
        let viewer = Credentials::new(Uid(1000), Gid(1000));
        for (label, level) in [("hidepid0", HidePid::Off), ("hidepid2", HidePid::Invisible)] {
            let opts = ProcMountOpts {
                hidepid: level,
                exempt_gid: None,
            };
            g.bench_with_input(BenchmarkId::new(label, n), &table, |b, t| {
                b.iter(|| {
                    let fs = ProcFs::new(black_box(t), opts);
                    black_box(fs.list(&viewer).len())
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_proc_listing);
criterion_main!(benches);
