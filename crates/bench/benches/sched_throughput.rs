//! Scheduler engine throughput per policy (experiment E4's performance
//! face): events processed per second of wall time while replaying the
//! LLSC-like trace, plus the backfill on/off cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eus_bench::{partition_round_robin, standard_trace};
use eus_sched::{NodeSharing, ReferenceScheduler, SchedConfig, Scheduler};
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched/replay_1h_trace");
    g.sample_size(10);
    let trace = standard_trace(20, 1, 99);
    for policy in NodeSharing::all() {
        g.bench_with_input(BenchmarkId::new("policy", policy), &trace, |b, trace| {
            b.iter(|| {
                let mut s = Scheduler::new(SchedConfig {
                    policy,
                    ..SchedConfig::default()
                });
                for _ in 0..16 {
                    s.add_node(16, 65_536, 0);
                }
                trace.submit_all(&mut s);
                black_box(s.run_to_completion())
            })
        });
    }
    g.finish();
}

/// The 256-node row: the optimized engine (incremental placement index +
/// capacity-vector shadow) against the retained reference implementation on
/// the identical trace — the ≥3× hot-path claim, measured every run.
fn bench_256_nodes_vs_reference(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched/replay_1h_trace");
    g.sample_size(10);
    let trace = standard_trace(60, 1, 99).to_shared();
    let policy = NodeSharing::WholeNodeUser;
    g.bench_with_input(
        BenchmarkId::new("impl_256nodes", "optimized"),
        &trace,
        |b, trace| {
            b.iter(|| {
                let mut s = Scheduler::new(SchedConfig {
                    policy,
                    ..SchedConfig::default()
                });
                for _ in 0..256 {
                    s.add_node(16, 65_536, 0);
                }
                trace.submit_all(&mut s);
                black_box(s.run_to_completion())
            })
        },
    );
    g.bench_with_input(
        BenchmarkId::new("impl_256nodes", "reference"),
        &trace,
        |b, trace| {
            b.iter(|| {
                let mut s = ReferenceScheduler::new(SchedConfig {
                    policy,
                    ..SchedConfig::default()
                });
                for _ in 0..256 {
                    s.add_node(16, 65_536, 0);
                }
                for (at, spec) in &trace.entries {
                    s.submit_at_shared(*at, std::sync::Arc::clone(spec));
                }
                black_box(s.run_to_completion())
            })
        },
    );
    g.finish();
}

/// The policy plane's replay cost: the identical trace through the engine
/// with every plane knob off (the reference-identical path) vs all three
/// on (fair-share + preemption + an 8-deep reservation calendar). Keeps
/// the "policy is opt-in, the hot path doesn't pay for it" claim measured.
fn bench_policy_plane_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched/policy_plane");
    g.sample_size(10);
    let trace = standard_trace(20, 1, 99).to_shared();
    for (label, fair_share, preemption, reservations) in [
        ("plane_off", false, false, 0usize),
        ("plane_on", true, true, 8),
    ] {
        g.bench_with_input(BenchmarkId::new("mode", label), &trace, |b, trace| {
            b.iter(|| {
                let mut s = Scheduler::new(SchedConfig {
                    policy: NodeSharing::WholeNodeUser,
                    fair_share,
                    preemption,
                    reservations,
                    ..SchedConfig::default()
                });
                for _ in 0..16 {
                    s.add_node(16, 65_536, 0);
                }
                trace.submit_all(&mut s);
                black_box(s.run_to_completion())
            })
        });
    }
    g.finish();
}

/// Shard-plan width cost on the fair-share path: the identical two-class
/// trace at plan width 1 (sharding off) vs 4 (planning fanned over the
/// rayon shim). Schedules are bit-identical by construction — this row
/// measures only the fan-out overhead, keeping the "sharding is a pure
/// planning optimization" claim priced.
fn bench_shard_width_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched/shard_width");
    g.sample_size(10);
    // Alternate jobs between the two partitions so both classes stay
    // populated (the shard plane only engages with >1 schedulable class).
    let trace = partition_round_robin(standard_trace(20, 1, 99).to_shared(), &["batch", "debug"]);
    for width in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("threads", width), &trace, |b, trace| {
            b.iter(|| {
                let mut s = Scheduler::new(SchedConfig {
                    policy: NodeSharing::Shared,
                    fair_share: true,
                    ..SchedConfig::default()
                });
                let ids: Vec<_> = (0..16).map(|_| s.add_node(16, 65_536, 0)).collect();
                let (a, b_half) = ids.split_at(8);
                s.partitions_mut()
                    .add("batch", a.iter().copied(), true)
                    .unwrap();
                s.partitions_mut()
                    .add("debug", b_half.iter().copied(), false)
                    .unwrap();
                s.set_shard_threads(width);
                trace.submit_all(&mut s);
                black_box(s.run_to_completion())
            })
        });
    }
    g.finish();
}

fn bench_backfill_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched/backfill");
    g.sample_size(10);
    let trace = standard_trace(20, 1, 99);
    for (label, backfill) in [("fcfs_only", false), ("easy_backfill", true)] {
        g.bench_with_input(BenchmarkId::new("mode", label), &trace, |b, trace| {
            b.iter(|| {
                let mut s = Scheduler::new(SchedConfig {
                    policy: NodeSharing::WholeNodeUser,
                    backfill,
                    ..SchedConfig::default()
                });
                for _ in 0..16 {
                    s.add_node(16, 65_536, 0);
                }
                trace.submit_all(&mut s);
                black_box(s.run_to_completion())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_policies,
    bench_256_nodes_vs_reference,
    bench_policy_plane_cost,
    bench_shard_width_cost,
    bench_backfill_cost
);
criterion_main!(benches);
