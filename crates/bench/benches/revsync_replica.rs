//! Replica-lookup hot path: cross-realm validation against a local CRL
//! replica must stay O(1) nanoseconds with a large replicated revocation
//! list — the whole premise of replacing the synchronous issuer query is
//! that the local check costs the same as the old in-memory one, minus the
//! WAN dependency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eus_fedauth::{
    shared_broker, BrokerPolicy, CredError, CredSerial, CredentialBroker, CredentialPlane,
    FederationDirectory, RealmId, SignedToken, TrustPolicy,
};
use eus_revsync::{CrlReplica, RevSyncConfig};
use eus_simcore::SimTime;
use eus_simos::{Uid, UserDb};
use std::hint::black_box;

const HOME: RealmId = RealmId(1);
const SISTER: RealmId = RealmId(2);

fn sister_with_revocations(revoked: u64) -> (UserDb, CredentialBroker, Uid, SignedToken) {
    let mut db = UserDb::new();
    let alice = db.create_user("alice").unwrap();
    let mut broker = CredentialBroker::new(SISTER, 0xBE9C, BrokerPolicy::default());
    let token = broker.login(&db, alice, None).unwrap();
    for i in 0..revoked {
        broker.revoke_serial(CredSerial(1_000_000 + i));
    }
    (db, broker, alice, token)
}

fn bench_replica_validate(c: &mut Criterion) {
    let mut g = c.benchmark_group("revsync/replica_validate");
    for revoked in [0u64, 100_000] {
        let (_db, broker, _alice, token) = sister_with_revocations(revoked);
        let replica = CrlReplica::bootstrap(
            SISTER,
            broker.verifier(),
            CredentialPlane::revocations_since(&broker, 0),
            SimTime::ZERO,
        );
        let budget = RevSyncConfig::default().max_lag;
        g.bench_with_input(BenchmarkId::new("revoked", revoked), &revoked, |b, _| {
            b.iter(|| {
                black_box(replica.validate_token(black_box(&token), SimTime::ZERO, budget)).unwrap()
            })
        });
        // A revoked serial must cost the same (hash miss vs hit).
        let dead = CredSerial(1_000_001);
        if revoked > 0 {
            g.bench_with_input(
                BenchmarkId::new("revoked_hit", revoked),
                &revoked,
                |b, _| {
                    // A tampered serial would break the signature before the
                    // list lookup, so probe the membership check alone.
                    b.iter(|| black_box(replica.is_revoked(black_box(dead))))
                },
            );
        }
    }
    g.finish();
}

fn bench_vs_synchronous_directory(c: &mut Criterion) {
    // The PR-2 path this subsystem retires: same in-memory cost, but the
    // lookup conceptually crosses the WAN to the issuer on every call.
    let (_db, broker, _alice, token) = sister_with_revocations(100_000);
    let replica = CrlReplica::bootstrap(
        SISTER,
        broker.verifier(),
        CredentialPlane::revocations_since(&broker, 0),
        SimTime::ZERO,
    );
    let budget = RevSyncConfig::default().max_lag;

    let mut dir = FederationDirectory::new();
    let home_plane = shared_broker(CredentialBroker::new(HOME, 0x1111, BrokerPolicy::default()));
    dir.register(
        HOME,
        home_plane,
        TrustPolicy::home_only(HOME).with_trusted(SISTER),
    );
    dir.register(
        SISTER,
        shared_broker(broker),
        TrustPolicy::home_only(SISTER),
    );

    let mut g = c.benchmark_group("revsync/hot_path_vs_sync");
    g.bench_function("local_replica", |b| {
        b.iter(|| {
            black_box(replica.validate_token(black_box(&token), SimTime::ZERO, budget)).unwrap()
        })
    });
    g.bench_function("sync_issuer_query", |b| {
        b.iter(|| {
            let r: Result<Uid, CredError> = dir.validate_token_at(HOME, black_box(&token));
            black_box(r).unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_replica_validate,
    bench_vs_synchronous_directory
);
criterion_main!(benches);
