//! Sharded-broker batch-verification throughput: the scale claim, measured.
//!
//! A single broker verifies a batch sequentially; the sharded plane buckets
//! tokens by uid-hash and fans the buckets out across shards on real
//! threads (the rayon shim's scoped-thread pool). Throughput should grow
//! near-linearly with shard count until the core count saturates, and the
//! 1-shard row must stay at single-broker cost (no sharding tax on small
//! deployments).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eus_fedauth::{
    shared_broker, BrokerPolicy, CredentialPlane, RealmId, ShardedBroker, SignedToken,
};
use eus_simos::{Uid, UserDb};
use rayon::prelude::*;
use std::hint::black_box;

const USERS: usize = 128;
const TOKENS_PER_USER: usize = 512;

fn populated(shards: usize) -> (ShardedBroker, Vec<SignedToken>) {
    let mut db = UserDb::new();
    let users: Vec<Uid> = (0..USERS)
        .map(|i| db.create_user(&format!("u{i}")).unwrap())
        .collect();
    let mut plane = ShardedBroker::new(RealmId(1), 7, shards, BrokerPolicy::default());
    let mut tokens = Vec::with_capacity(USERS * TOKENS_PER_USER);
    for _ in 0..TOKENS_PER_USER {
        for &u in &users {
            tokens.push(plane.login(&db, u, None).unwrap());
        }
    }
    (plane, tokens)
}

fn bench_batch_validate(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map_or(1, |v| v.get());
    println!("(fan-out parallelism on this machine: {cores} core(s))");
    let mut g = c.benchmark_group("fedauth/shard_batch_validate");
    for shards in [1usize, 2, 4, 8] {
        let (plane, tokens) = populated(shards);
        g.throughput(Throughput::Elements(tokens.len() as u64));
        g.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, _| {
            b.iter(|| {
                let verdicts = plane.validate_batch(black_box(&tokens));
                assert!(verdicts.iter().all(Result::is_ok));
                black_box(verdicts)
            })
        });
    }
    g.finish();

    // The always-bucketed fan-out path, regardless of core count (on a
    // 1-core box this shows the bucketing overhead the dispatcher avoids).
    let mut g = c.benchmark_group("fedauth/shard_batch_fanout");
    for shards in [2usize, 8] {
        let (plane, tokens) = populated(shards);
        g.throughput(Throughput::Elements(tokens.len() as u64));
        g.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, _| {
            b.iter(|| black_box(plane.validate_batch_fanout(black_box(&tokens))))
        });
    }
    g.finish();
}

fn bench_single_op_routing(c: &mut Criterion) {
    // The per-op path must stay O(1): the uid-hash route adds a few
    // nanoseconds at most over the single broker.
    let mut g = c.benchmark_group("fedauth/shard_single_validate");
    for shards in [1usize, 8] {
        let (plane, tokens) = populated(shards);
        let t = tokens[tokens.len() / 2];
        g.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, _| {
            b.iter(|| black_box(plane.validate_token(black_box(&t))).unwrap())
        });
    }
    g.finish();
}

fn bench_concurrent_login_paths(c: &mut Criterion) {
    // The per-shard-locking win: the old path serializes every login on
    // the plane-wide write lock; the shared path takes the plane lock for
    // *reading* and lets logins landing on different shards run in
    // parallel on their own shard locks. Same decisions (property-tested);
    // different wall-clock under concurrency.
    let cores = std::thread::available_parallelism().map_or(1, |v| v.get());
    println!("(concurrent-login parallelism on this machine: {cores} core(s))");
    let mut db = UserDb::new();
    let users: Vec<Uid> = (0..256)
        .map(|i| db.create_user(&format!("c{i}")).unwrap())
        .collect();
    let mut g = c.benchmark_group("fedauth/concurrent_login");
    g.throughput(Throughput::Elements(users.len() as u64));

    let plane = shared_broker(ShardedBroker::new(
        RealmId(1),
        7,
        8,
        BrokerPolicy::default(),
    ));
    g.bench_function("plane_write_lock", |b| {
        b.iter(|| {
            let minted: Vec<bool> = users
                .par_iter()
                .map(|&u| plane.write().login(&db, u, None).is_ok())
                .collect();
            assert!(minted.iter().all(|ok| *ok));
            black_box(minted)
        })
    });
    // Fresh plane so both paths start from comparable table sizes.
    let plane = shared_broker(ShardedBroker::new(
        RealmId(1),
        7,
        8,
        BrokerPolicy::default(),
    ));
    g.bench_function("per_shard_shared", |b| {
        b.iter(|| {
            let minted: Vec<bool> = users
                .par_iter()
                .map(|&u| {
                    plane
                        .read()
                        .try_login_shared(&db, u, None)
                        .expect("sharded plane supports the shared path")
                        .is_ok()
                })
                .collect();
            assert!(minted.iter().all(|ok| *ok));
            black_box(minted)
        })
    });
    g.finish();
}

fn bench_many_sessions_per_user(c: &mut Criterion) {
    // The many-sessions-per-user shape: one principal holding hundreds of
    // concurrent tokens (portal tabs + sbatch tokens). `validate_serial`
    // must stay a map hit — flat across session counts — now that the
    // session table is serial-keyed instead of a linearly-scanned Vec.
    use eus_fedauth::CredentialBroker;
    let mut g = c.benchmark_group("fedauth/many_sessions_validate");
    for sessions in [1usize, 64, 1024] {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let mut broker = CredentialBroker::new(RealmId(1), 11, BrokerPolicy::default());
        let tokens: Vec<SignedToken> = (0..sessions)
            .map(|_| broker.login(&db, alice, None).unwrap())
            .collect();
        // The *oldest* serial is the old implementation's worst case (full
        // reverse scan); for the index it is just another key.
        let oldest = tokens[0].serial;
        g.bench_with_input(BenchmarkId::new("sessions", sessions), &sessions, |b, _| {
            b.iter(|| {
                broker
                    .validate_serial(black_box(alice), black_box(oldest))
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_batch_validate,
    bench_single_op_routing,
    bench_concurrent_login_paths,
    bench_many_sessions_per_user
);
criterion_main!(benches);
