//! UBF decision-path cost (experiment E9): wall-clock cost of the daemon's
//! judge path (cache hit vs miss), full connection establishment with and
//! without the UBF, and established-flow sends. The paper's structural
//! claim — cost confined to setup — shows up as `send` being unaffected by
//! the firewall's presence.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use eus_simnet::{Fabric, PeerInfo, Proto, SocketAddr};
use eus_simos::{NodeId, UserDb};
use eus_ubf::{deploy_ubf, shared_user_db, SharedUserDb, UbfConfig};
use std::hint::black_box;

fn fabric_pair(ubf: bool, cache: bool) -> (Fabric, SharedUserDb, PeerInfo) {
    let mut db = UserDb::new();
    let alice = db.create_user("alice").unwrap();
    let shared = shared_user_db(db);
    let mut f = Fabric::new();
    f.add_host(NodeId(1));
    f.add_host(NodeId(2));
    if ubf {
        let cfg = UbfConfig {
            cache_capacity: if cache { 4096 } else { 0 },
            ..UbfConfig::default()
        };
        for n in [NodeId(1), NodeId(2)] {
            deploy_ubf(f.host_mut(n).unwrap(), shared.clone(), cfg.clone());
        }
    }
    let peer = PeerInfo::from_cred(&shared.read().credentials(alice).unwrap());
    f.listen(NodeId(2), Proto::Tcp, 9000, peer).unwrap();
    (f, shared, peer)
}

fn bench_connect(c: &mut Criterion) {
    let mut g = c.benchmark_group("ubf/connect");
    for (label, ubf, cache) in [
        ("no_ubf", false, false),
        ("ubf_no_cache", true, false),
        ("ubf_cached", true, true),
    ] {
        let (mut f, _db, peer) = fabric_pair(ubf, cache);
        g.bench_function(label, |b| {
            b.iter(|| {
                let (conn, lat) = f
                    .connect(
                        NodeId(1),
                        peer,
                        SocketAddr::new(NodeId(2), 9000),
                        Proto::Tcp,
                    )
                    .unwrap();
                f.close(conn);
                black_box(lat)
            })
        });
    }
    g.finish();
}

fn bench_established_send(c: &mut Criterion) {
    let mut g = c.benchmark_group("ubf/established_send");
    for (label, ubf) in [("no_ubf", false), ("with_ubf", true)] {
        let (mut f, _db, peer) = fabric_pair(ubf, true);
        let (conn, _) = f
            .connect(
                NodeId(1),
                peer,
                SocketAddr::new(NodeId(2), 9000),
                Proto::Tcp,
            )
            .unwrap();
        let payload = Bytes::from_static(&[0u8; 4096]);
        g.bench_function(label, |b| {
            b.iter(|| black_box(f.send(conn, &payload).unwrap()))
        });
    }
    g.finish();
}

fn bench_denied_connect(c: &mut Criterion) {
    // Denials must also be cheap (a scan shouldn't melt the daemon).
    let mut g = c.benchmark_group("ubf/denied_connect");
    let mut db = UserDb::new();
    let alice = db.create_user("alice").unwrap();
    let bob = db.create_user("bob").unwrap();
    let shared = shared_user_db(db);
    let mut f = Fabric::new();
    f.add_host(NodeId(1));
    f.add_host(NodeId(2));
    for n in [NodeId(1), NodeId(2)] {
        deploy_ubf(f.host_mut(n).unwrap(), shared.clone(), UbfConfig::default());
    }
    let a = PeerInfo::from_cred(&shared.read().credentials(alice).unwrap());
    let b_peer = PeerInfo::from_cred(&shared.read().credentials(bob).unwrap());
    f.listen(NodeId(2), Proto::Tcp, 9000, a).unwrap();
    g.bench_function("stranger_denied", |bch| {
        bch.iter(|| {
            black_box(
                f.connect(
                    NodeId(1),
                    b_peer,
                    SocketAddr::new(NodeId(2), 9000),
                    Proto::Tcp,
                )
                .is_err(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_connect,
    bench_established_send,
    bench_denied_connect
);
criterion_main!(benches);
