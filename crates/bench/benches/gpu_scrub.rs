//! GPU scrub cost (experiment E11's performance face): wall-clock cost of
//! the epilog clear as device memory grows, and the device-file permission
//! flip that accompanies every assignment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eus_accel::{assign_device, create_device_node, revoke_device, Gpu};
use eus_simos::node::fs_handle;
use eus_simos::{DeviceId, Gid, NodeId, Vfs};
use std::hint::black_box;

fn bench_scrub(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu/scrub");
    for mib in [1usize, 16, 64] {
        let bytes = mib << 20;
        g.throughput(Throughput::Bytes(bytes as u64));
        g.bench_with_input(BenchmarkId::new("mib", mib), &bytes, |b, &bytes| {
            let mut gpu = Gpu::new(NodeId(1), 0, bytes);
            b.iter(|| {
                gpu.write(0, &[0xAB; 64]).unwrap();
                black_box(gpu.scrub())
            })
        });
    }
    g.finish();
}

fn bench_device_perm_flip(c: &mut Criterion) {
    let fs = fs_handle(Vfs::standard_node_layout("bench"));
    let dev = DeviceId::gpu(0);
    create_device_node(&fs, dev).unwrap();
    c.bench_function("gpu/assign_revoke_cycle", |b| {
        b.iter(|| {
            assign_device(&fs, dev, Gid(1000)).unwrap();
            revoke_device(&fs, dev).unwrap();
        })
    });
}

criterion_group!(benches, bench_scrub, bench_device_perm_flip);
criterion_main!(benches);
