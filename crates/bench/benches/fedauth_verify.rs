//! Microbenchmarks of the credential-verification hot path: every ssh, job
//! submission, and portal fetch performs one of these checks, so they must
//! stay O(1) and nanosecond-to-microsecond scale regardless of revocation
//! list size or session count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eus_fedauth::{BrokerPolicy, CredSerial, CredentialBroker, RealmId};
use eus_simos::UserDb;
use std::hint::black_box;

fn setup(revoked: u64) -> (CredentialBroker, eus_fedauth::SignedToken, eus_simos::Uid) {
    let mut db = UserDb::new();
    let alice = db.create_user("alice").unwrap();
    let mut broker = CredentialBroker::new(RealmId(1), 7, BrokerPolicy::default());
    let token = broker.login(&db, alice, None).unwrap();
    for i in 0..revoked {
        broker.revoke_serial(CredSerial(1_000_000 + i));
    }
    (broker, token, alice)
}

fn bench_token_verify(c: &mut Criterion) {
    let mut g = c.benchmark_group("fedauth/validate_token");
    for revoked in [0u64, 1_000, 100_000] {
        let (broker, token, _) = setup(revoked);
        g.bench_with_input(BenchmarkId::new("revlist", revoked), &revoked, |b, _| {
            b.iter(|| black_box(broker.validate_token(black_box(&token))).unwrap())
        });
    }
    g.finish();
}

fn bench_cert_authorize(c: &mut Criterion) {
    let mut g = c.benchmark_group("fedauth/authorize_ssh");
    let (broker, _, alice) = setup(10_000);
    g.bench_function("live_cert", |b| {
        b.iter(|| black_box(broker.authorize_ssh(black_box(alice))).unwrap())
    });
    let (broker, token, alice) = setup(10_000);
    g.bench_function("submit_gate", |b| {
        b.iter(|| black_box(broker.authorize_submit(black_box(alice))).unwrap())
    });
    // Rejection must be as cheap as acceptance (it runs on attack paths).
    let mut revoked_broker = broker;
    revoked_broker.revoke_serial(token.serial);
    g.bench_function("revoked_reject", |b| {
        b.iter(|| black_box(revoked_broker.validate_token(black_box(&token))).unwrap_err())
    });
    g.finish();
}

criterion_group!(benches, bench_token_verify, bench_cert_authorize);
criterion_main!(benches);
