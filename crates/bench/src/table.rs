//! Minimal aligned-text table rendering for experiment output.
//!
//! Experiments print human-readable tables to stdout and can emit the same
//! rows as CSV (for EXPERIMENTS.md regeneration) — no serialization
//! dependency needed.

/// A simple table: header plus rows of strings.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: append a row of displayable items.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for i in 0..cols {
                widths[i] = widths[i].max(row[i].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| s.replace(',', ";");
        let mut out = self
            .header
            .iter()
            .map(|h| esc(h))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with fixed decimals (table-cell helper).
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_csv() {
        let mut t = TextTable::new(&["policy", "util"]);
        t.row(&["shared".into(), "35.6".into()]);
        t.row(&["whole-node".into(), "34.2".into()]);
        let r = t.render();
        assert!(r.contains("policy"));
        assert!(r.lines().count() == 4);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "policy,util");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        TextTable::new(&["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.356), "35.6%");
    }
}
