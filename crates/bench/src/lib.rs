//! # eus-bench — experiment harness and benchmarks
//!
//! One binary per experiment in DESIGN.md's index (`exp_*` under
//! `src/bin/`), each printing the table(s) recorded in EXPERIMENTS.md, plus
//! Criterion benchmark groups under `benches/`. Shared scenario builders
//! live here so binaries and benches measure the same code paths.

pub mod table;

/// Assert with forensics: when `cond` fails, print the prepared dump (a
/// rendered [`eus_obs::FlightRecorder::render_tail`], typically) to stderr
/// before panicking, so a failed acceptance gate ships with the event
/// history that led to it instead of a bare number mismatch.
#[macro_export]
macro_rules! assert_or_dump {
    ($cond:expr, $forensics:expr, $($arg:tt)+) => {
        if !$cond {
            eprintln!("{}", $forensics);
            panic!($($arg)+);
        }
    };
}

use eus_core::{ClusterSpec, SecureCluster, SeparationConfig};
use eus_sched::{NodeSharing, SchedConfig, Scheduler};
use eus_simcore::{SimRng, SimTime};
use eus_simos::{Uid, UserDb};
use eus_workloads::{SharedTrace, Trace, UserPopulation, WorkloadMix};
use std::sync::Arc;

/// Build a hardened (or baseline) cluster with two users, ready for probes.
pub fn two_user_cluster(config: SeparationConfig) -> (SecureCluster, Uid, Uid) {
    let mut c = SecureCluster::new(config, ClusterSpec::default());
    let a = c.add_user("alice").expect("fresh db");
    let b = c.add_user("bob").expect("fresh db");
    (c, a, b)
}

/// Results of one scheduler-policy run.
#[derive(Debug, Clone, Copy)]
pub struct PolicyStats {
    /// Jobs completed.
    pub completed: u64,
    /// Claimed-core utilization.
    pub claimed_util: f64,
    /// Used-core utilization.
    pub effective_util: f64,
    /// Median queue wait (seconds).
    pub p50_wait: f64,
    /// 95th percentile queue wait (seconds).
    pub p95_wait: f64,
    /// Workload makespan (seconds).
    pub makespan: f64,
}

/// Run the LLSC-like workload under a policy. Same seed ⇒ identical trace,
/// so policies are compared on identical offered load.
pub fn run_policy_sim(
    policy: NodeSharing,
    nodes: u32,
    cores: u32,
    horizon_hours: u64,
    users: usize,
    seed: u64,
) -> PolicyStats {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut db = UserDb::new();
    let pop = UserPopulation::build(&mut db, users, users / 5 + 1, 1.1, &mut rng);
    let trace =
        WorkloadMix::llsc_like().generate(&pop, SimTime::from_secs(horizon_hours * 3600), &mut rng);
    run_policy_on_trace(policy, nodes, cores, &trace)
}

/// Run a pre-generated trace under a policy.
pub fn run_policy_on_trace(
    policy: NodeSharing,
    nodes: u32,
    cores: u32,
    trace: &Trace,
) -> PolicyStats {
    let mut sched = Scheduler::new(SchedConfig {
        policy,
        ..SchedConfig::default()
    });
    for _ in 0..nodes {
        sched.add_node(cores, 65_536, 0);
    }
    trace.submit_all(&mut sched);
    let end = sched.run_to_completion();
    let wait = sched
        .metrics
        .wait_times
        .summary()
        .expect("workload is non-empty");
    PolicyStats {
        completed: sched.metrics.completed.get(),
        claimed_util: sched.utilization(),
        effective_util: sched.effective_utilization(),
        p50_wait: wait.p50,
        p95_wait: wait.p95,
        makespan: end.as_secs_f64(),
    }
}

/// Generate the standard LLSC-like trace used by several experiments.
pub fn standard_trace(users: usize, horizon_hours: u64, seed: u64) -> Trace {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut db = UserDb::new();
    let pop = UserPopulation::build(&mut db, users, users / 5 + 1, 1.1, &mut rng);
    WorkloadMix::llsc_like().generate(&pop, SimTime::from_secs(horizon_hours * 3600), &mut rng)
}

/// Re-decorate a shared trace's jobs round-robin across partition names —
/// the shard-plane benchmarks use this to keep every scheduling class
/// populated (per-partition sharding only engages with more than one
/// schedulable class). Deterministic: decoration depends only on entry
/// order, so the same trace always yields the same classes.
pub fn partition_round_robin(mut trace: SharedTrace, parts: &[&str]) -> SharedTrace {
    assert!(!parts.is_empty(), "need at least one partition name");
    trace.entries = trace
        .entries
        .into_iter()
        .enumerate()
        .map(|(i, (at, spec))| {
            let part = parts[i % parts.len()];
            (at, Arc::new((*spec).clone().with_partition(part)))
        })
        .collect();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_sim_smoke() {
        let s = run_policy_sim(NodeSharing::Shared, 8, 16, 1, 10, 1);
        assert!(s.completed > 0);
        assert!(s.effective_util > 0.0 && s.effective_util <= 1.0);
        assert!((s.claimed_util - s.effective_util).abs() < 1e-9);
    }

    #[test]
    fn two_user_cluster_smoke() {
        let (c, a, b) = two_user_cluster(SeparationConfig::llsc());
        assert_ne!(a, b);
        assert!(!c.compute_ids.is_empty());
    }
}

/// Replication support: run a seeded measurement across seeds in parallel
/// and summarize with a 95% confidence interval, so experiment tables can
/// report `mean ± ci` instead of single-run numbers.
pub mod replicate {
    use rayon::prelude::*;

    /// Mean, spread, and bounds over replications.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Replication {
        /// Number of replications.
        pub n: usize,
        /// Sample mean.
        pub mean: f64,
        /// Half-width of the 95% confidence interval (normal approximation).
        pub ci95: f64,
        /// Smallest observation.
        pub min: f64,
        /// Largest observation.
        pub max: f64,
    }

    impl std::fmt::Display for Replication {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{:.2} ± {:.2}", self.mean, self.ci95)
        }
    }

    /// Run `f(seed)` for every seed in parallel and summarize.
    pub fn replicate(
        seeds: impl IntoIterator<Item = u64>,
        f: impl Fn(u64) -> f64 + Sync + Send,
    ) -> Replication {
        let xs: Vec<f64> = seeds
            .into_iter()
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(f)
            .collect();
        assert!(!xs.is_empty(), "replication needs at least one seed");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let se = (var / n as f64).sqrt();
        Replication {
            n,
            mean,
            ci95: 1.96 * se,
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn summarizes_constant_and_varying_samples() {
            let c = replicate(0..5, |_| 7.0);
            assert_eq!(c.mean, 7.0);
            assert_eq!(c.ci95, 0.0);
            assert_eq!((c.min, c.max), (7.0, 7.0));

            let v = replicate(0..100, |s| s as f64);
            assert!((v.mean - 49.5).abs() < 1e-9);
            assert!(v.ci95 > 0.0);
            assert_eq!(v.n, 100);
            assert_eq!(format!("{v}"), format!("{:.2} ± {:.2}", v.mean, v.ci95));
        }

        #[test]
        #[should_panic(expected = "at least one seed")]
        fn empty_seeds_panic() {
            replicate(std::iter::empty(), |_| 0.0);
        }
    }
}

pub use replicate::{replicate, Replication};
