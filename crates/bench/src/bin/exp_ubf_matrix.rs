//! E8 — User-Based Firewall decision matrix (paper Sec. IV-D + Appendix).
//!
//! Connection attempts across every relationship (same user, project-group
//! member with and without the listener's `newgrp` opt-in, stranger, system
//! service) for both TCP and UDP, with the UBF on and off.

use eus_bench::table::TextTable;
use eus_core::{ClusterSpec, SecureCluster, SeparationConfig};
use eus_simnet::{Proto, SocketAddr};

fn main() {
    println!("E8: UBF decision matrix (Sec. IV-D)\n");
    let mut table = TextTable::new(&["firewall", "proto", "relationship", "outcome"]);

    for ubf in [false, true] {
        let mut cfg = SeparationConfig::llsc();
        cfg.ubf = ubf;
        let mut c = SecureCluster::new(cfg, ClusterSpec::default());
        let alice = c.add_user("alice").unwrap();
        let bob = c.add_user("bob").unwrap();
        let eve = c.add_user("eve").unwrap();
        let proj = c.create_project("proj", alice).unwrap();
        c.add_project_member(alice, proj, bob).unwrap();
        let n1 = c.compute_ids[0];
        let n2 = c.compute_ids[1];
        let fw = if ubf { "UBF" } else { "none" };

        for proto in [Proto::Tcp, Proto::Udp] {
            let base = if proto == Proto::Tcp { 9000u16 } else { 9500 };
            // Listener with default egid (alice's UPG).
            c.listen(alice, n2, proto, base, None).unwrap();
            // Listener opted into the project group.
            c.listen(alice, n2, proto, base + 1, Some(proj)).unwrap();

            let mut attempt = |c: &mut SecureCluster, who, port, rel: &str| {
                let res = match c.connect(who, n1, SocketAddr::new(n2, port), proto) {
                    Ok((conn, setup)) => {
                        c.fabric.close(conn);
                        format!("allowed ({setup})")
                    }
                    Err(e) => format!("denied ({e})"),
                };
                table.row(&[fw.to_string(), proto.to_string(), rel.to_string(), res]);
            };

            attempt(&mut c, alice, base, "same user");
            attempt(&mut c, bob, base, "groupmate, no opt-in");
            attempt(&mut c, bob, base + 1, "groupmate, newgrp opt-in");
            attempt(&mut c, eve, base + 1, "stranger vs opted listener");
            attempt(&mut c, eve, base, "stranger");
        }
    }

    print!("{}", table.render());
    println!("\nclaim check: with the UBF only same-user and explicit group-opt-in rows");
    println!("connect; sharing requires BOTH membership and the listener's consent (egid).");
}
