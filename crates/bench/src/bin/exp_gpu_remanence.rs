//! E11 — GPU remanence and the epilog scrub (paper Sec. IV-F).
//!
//! A victim training job writes a recognizable pattern into GPU memory; the
//! next job on the device belongs to the attacker. We report how many bytes
//! of the pattern survive per configuration, and the modeled scrub cost
//! across device sizes.

use eus_bench::table::{f, TextTable};
use eus_core::{ClusterSpec, SecureCluster, SeparationConfig};
use eus_sched::JobSpec;
use eus_simcore::{SimDuration, SimTime};
use eus_simos::Gid;

const PATTERN: &[u8] = b"victim model weights v3";

fn residue(config: SeparationConfig) -> (usize, bool) {
    let mut c = SecureCluster::new(config, ClusterSpec::default());
    let victim = c.add_user("victim").unwrap();
    let attacker = c.add_user("attacker").unwrap();

    c.submit(JobSpec::new(victim, "train", SimDuration::from_secs(10)).with_gpus_per_task(1));
    c.advance_to(SimTime::from_secs(1));
    let node = c.compute_ids[0];
    c.gpus.get_mut(node, 0).unwrap().write(0, PATTERN).unwrap();
    c.run_to_completion();

    c.submit(JobSpec::new(attacker, "probe", SimDuration::from_secs(10)).with_gpus_per_task(1));
    let t = c.sched.read().now() + SimDuration::from_secs(1);
    c.advance_to(t);
    // Can the attacker even open the device file on this config?
    let ctx = c.user_fs_ctx(attacker);
    let dev_open = c
        .node(node)
        .with_fs("/dev/gpu0", |fs, p| {
            fs.open_device(&ctx, p, eus_simos::Perm::RW)
        })
        .is_ok();
    let bytes = c.gpus.get(node, 0).unwrap().read(0, PATTERN.len()).unwrap();
    let surviving = bytes
        .iter()
        .zip(PATTERN)
        .filter(|(a, b)| a == b && **b != 0)
        .count();
    (surviving, dev_open)
}

fn main() {
    println!("E11: GPU memory remanence (Sec. IV-F)\n");
    let mut table = TextTable::new(&["config", "pattern bytes surviving", "attacker dev access"]);

    let mut scrub_only = SeparationConfig::baseline();
    scrub_only.gpu_scrub = true;
    let mut perms_only = SeparationConfig::baseline();
    perms_only.gpu_dev_perms = true;

    for (label, cfg) in [
        ("baseline", SeparationConfig::baseline()),
        ("scrub only", scrub_only),
        ("dev perms only", perms_only),
        ("llsc (both)", SeparationConfig::llsc()),
    ] {
        let (surviving, dev_open) = residue(cfg);
        table.row(&[
            label.to_string(),
            format!("{surviving}/{}", PATTERN.len()),
            if dev_open {
                "open (own job)".into()
            } else {
                "own job only".to_string()
            },
        ]);
    }
    print!("{}", table.render());

    // Scrub cost model across device sizes.
    println!("\nmodeled epilog scrub cost (vendor clear at 4 GiB/s):");
    let mut cost = TextTable::new(&["device memory", "scrub time"]);
    for (label, bytes) in [
        ("16 GiB", 16usize << 30),
        ("40 GiB", 40usize << 30),
        ("80 GiB", 80usize << 30),
    ] {
        let gpu = eus_accel::Gpu::new(eus_simos::NodeId(1), 0, 0);
        let _ = gpu; // cost is linear; compute directly to avoid huge allocs
        let us = bytes.div_ceil(eus_accel::SCRUB_BYTES_PER_US);
        cost.row(&[label.to_string(), format!("{} s", f(us as f64 / 1e6, 2))]);
    }
    print!("{}", cost.render());

    let _ = Gid(0);
    println!("\nclaim check: without the scrub the next tenant reads the previous job's");
    println!("data verbatim; the epilog scrub zeroes it at seconds-per-job cost.");
}
