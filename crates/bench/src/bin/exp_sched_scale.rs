//! Scheduler scale experiment: submission storms replayed through the
//! optimized engine from 256 to 10k nodes, reporting events/sec per
//! node-sharing policy with backfill on and off — the measurement that
//! keeps the hot-path overhaul honest (mitigations get adopted when their
//! overhead is measured and driven to noise; the scheduler deserves the
//! same discipline as the ~25 ns fedauth verify path).
//!
//! Emits `BENCH_sched.json` so the perf trajectory has a machine-readable
//! first point; CI replays `--smoke` (small scale, same code paths).
//!
//! Every row additionally carries a `"phases"` breakdown (cycle-phase span
//! totals, memo/backfill counters, derived ratios) from a second,
//! obs-enabled replay of the same storm. The timed pass stays quiet so the
//! wall numbers measure the engine, not the instrumentation; the loud pass
//! doubles as an equivalence check (identical makespan and completion
//! counts, or the instrumentation perturbed the schedule).
//!
//! Each scale additionally replays a fair-share storm (four striped
//! partitions, jobs decorated round-robin) at shard width 1 and at the
//! `RAYON_THREADS` width, asserting the two schedules bit-identical
//! before emitting both as `"fair_share": true` rows with a `"threads"`
//! field — the scale-level proof that sharded dispatch is a pure
//! planning optimization.

use eus_bench::table::{f, TextTable};
use eus_obs::ObsConfig;
use eus_sched::{NodeSharing, SchedConfig, Scheduler};
use eus_simcore::{SimRng, SimTime};
use eus_simos::UserDb;
use eus_workloads::{submission_storm, SharedTrace, UserPopulation};
use std::fmt::Write as _;
use std::time::Instant;

/// Striped partitions for the fair-share rows: node `i` lands in
/// `p{i % SHARD_PARTS}`, job `j` requests `p{j % SHARD_PARTS}`.
const SHARD_PARTS: usize = 4;

struct Row {
    nodes: u32,
    jobs: usize,
    policy: NodeSharing,
    backfill: bool,
    /// Fair-share rows carry the striped-partition storm (and are the
    /// only rows where `threads` can exceed 1).
    fair_share: bool,
    /// Shard-plan width the row replayed under (`Scheduler::set_shard_threads`).
    threads: usize,
    wall_ms: f64,
    events: u64,
    events_per_sec: f64,
    makespan_s: f64,
    completed: u64,
    /// Pre-rendered JSON for the row's `"phases"`, `"counters"`, and
    /// `"ratios"` fields, from the obs-enabled pass.
    obs_json: String,
    shadow_memo_ratio: f64,
    backfill_accept_ratio: f64,
}

fn storm_for(nodes_hint: u64, jobs: usize) -> SharedTrace {
    let mut rng = SimRng::seed_from_u64(0x5c4ed ^ nodes_hint);
    let mut db = UserDb::new();
    let pop = UserPopulation::build(&mut db, 200, 40, 1.1, &mut rng);
    submission_storm(&pop, jobs, SimTime::from_secs(600), &mut rng).to_shared()
}

fn replay(nodes: u32, policy: NodeSharing, backfill: bool, trace: &SharedTrace) -> Row {
    let mut s = Scheduler::new(SchedConfig {
        policy,
        backfill,
        ..SchedConfig::default()
    });
    for _ in 0..nodes {
        s.add_node(16, 65_536, 0);
    }
    let t0 = Instant::now();
    trace.submit_all(&mut s);
    let end = s.run_to_completion();
    let wall = t0.elapsed();
    let terminal = s.metrics.completed.get() + s.metrics.failed.get() + s.metrics.timed_out.get();
    assert_eq!(s.pending_count(), 0, "storm must drain (policy {policy})");
    assert_eq!(s.running_count(), 0);
    // One Submit event per job plus one JobEnd per terminal job.
    let events = trace.len() as u64 + terminal;

    // Second, obs-enabled pass over the same storm: per-phase breakdowns
    // for the JSON row. Replaying loud also proves the instrumentation
    // does not perturb the schedule — identical makespan and outcomes.
    let mut loud = Scheduler::new(SchedConfig {
        policy,
        backfill,
        ..SchedConfig::default()
    });
    loud.enable_obs(ObsConfig::enabled());
    for _ in 0..nodes {
        loud.add_node(16, 65_536, 0);
    }
    trace.submit_all(&mut loud);
    let loud_end = loud.run_to_completion();
    assert_eq!(
        loud_end, end,
        "obs-enabled replay must match (policy {policy})"
    );
    assert_eq!(loud.metrics.completed.get(), s.metrics.completed.get());

    Row {
        nodes,
        jobs: trace.len(),
        policy,
        backfill,
        fair_share: false,
        threads: 1,
        wall_ms: wall.as_secs_f64() * 1e3,
        events,
        events_per_sec: events as f64 / wall.as_secs_f64(),
        makespan_s: end.since(SimTime::ZERO).as_secs_f64(),
        completed: s.metrics.completed.get(),
        obs_json: obs_fields(&loud),
        shadow_memo_ratio: loud.obs.shadow_memo_ratio(),
        backfill_accept_ratio: loud.obs.backfill_accept_ratio(),
    }
}

/// Decorate a storm with round-robin partition requests so the fair-share
/// replay exercises multi-class head selection (the sharded plane only
/// engages with more than one schedulable class).
fn partitioned(trace: &SharedTrace) -> SharedTrace {
    let names: Vec<String> = (0..SHARD_PARTS).map(|i| format!("p{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    eus_bench::partition_round_robin(trace.clone(), &refs)
}

/// Build the fair-share scheduler for the sharded rows: shared nodes
/// striped across [`SHARD_PARTS`] partitions, EASY backfill on, shard
/// planning at `threads`.
fn sharded_scheduler(nodes: u32, threads: usize) -> Scheduler {
    let mut s = Scheduler::new(SchedConfig {
        policy: NodeSharing::Shared,
        backfill: true,
        fair_share: true,
        ..SchedConfig::default()
    });
    let mut stripes: Vec<Vec<_>> = vec![Vec::new(); SHARD_PARTS];
    for i in 0..nodes {
        let id = s.add_node(16, 65_536, 0);
        stripes[i as usize % SHARD_PARTS].push(id);
    }
    for (p, ids) in stripes.into_iter().enumerate() {
        s.partitions_mut()
            .add(&format!("p{p}"), ids, p == 0)
            .unwrap_or_else(|e| panic!("partition p{p}: {e}"));
    }
    s.set_shard_threads(threads);
    s
}

/// Replay the partitioned storm through the fair-share engine at a given
/// shard width. Same quiet-timed / loud-obs structure as [`replay`].
fn replay_sharded(nodes: u32, threads: usize, trace: &SharedTrace) -> Row {
    let mut s = sharded_scheduler(nodes, threads);
    let t0 = Instant::now();
    trace.submit_all(&mut s);
    let end = s.run_to_completion();
    let wall = t0.elapsed();
    let terminal = s.metrics.completed.get() + s.metrics.failed.get() + s.metrics.timed_out.get();
    assert_eq!(s.pending_count(), 0, "fair-share storm must drain");
    assert_eq!(s.running_count(), 0);
    let events = trace.len() as u64 + terminal;

    let mut loud = sharded_scheduler(nodes, threads);
    loud.enable_obs(ObsConfig::enabled());
    trace.submit_all(&mut loud);
    let loud_end = loud.run_to_completion();
    assert_eq!(
        loud_end, end,
        "obs-enabled fair-share replay must match (threads {threads})"
    );
    assert_eq!(loud.metrics.completed.get(), s.metrics.completed.get());

    Row {
        nodes,
        jobs: trace.len(),
        policy: NodeSharing::Shared,
        backfill: true,
        fair_share: true,
        threads,
        wall_ms: wall.as_secs_f64() * 1e3,
        events,
        events_per_sec: events as f64 / wall.as_secs_f64(),
        makespan_s: end.since(SimTime::ZERO).as_secs_f64(),
        completed: s.metrics.completed.get(),
        obs_json: obs_fields(&loud),
        shadow_memo_ratio: loud.obs.shadow_memo_ratio(),
        backfill_accept_ratio: loud.obs.backfill_accept_ratio(),
    }
}

/// Render the obs-enabled pass's breakdown as the row's `"phases"` (span
/// count + total ns), `"counters"` (every non-zero `sched.*` counter), and
/// `"ratios"` fields.
fn obs_fields(s: &Scheduler) -> String {
    let snap = s.obs.snapshot();
    let mut out = String::from("\"phases\": { ");
    let mut first = true;
    for sp in &snap.spans {
        if sp.count == 0 {
            continue;
        }
        let _ = write!(
            out,
            "{}\"{}\": {{ \"count\": {}, \"total_ns\": {} }}",
            if first { "" } else { ", " },
            sp.name,
            sp.count,
            sp.total_ns
        );
        first = false;
    }
    out.push_str(" }, \"counters\": { ");
    first = true;
    for (name, v) in &snap.counters {
        if *v == 0 {
            continue;
        }
        let _ = write!(out, "{}\"{}\": {}", if first { "" } else { ", " }, name, v);
        first = false;
    }
    let _ = write!(
        out,
        " }}, \"ratios\": {{ \"shadow_memo\": {:.4}, \"shadow_early_exit\": {:.4}, \"backfill_accept\": {:.4} }}",
        s.obs.shadow_memo_ratio(),
        s.obs.shadow_early_exit_ratio(),
        s.obs.backfill_accept_ratio()
    );
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("exp_sched_scale: submission-storm replay at cluster scale\n");
    let scales: &[(u32, usize)] = if smoke {
        &[(256, 5_000)]
    } else {
        &[
            (256, 100_000),
            (1_024, 100_000),
            (4_096, 100_000),
            (10_000, 100_000),
        ]
    };

    let mut rows: Vec<Row> = Vec::new();
    for &(nodes, jobs) in scales {
        println!("-- {nodes} nodes x 16 cores, {jobs}-job storm in a 600 s window");
        let trace = storm_for(nodes as u64, jobs);
        let mut table = TextTable::new(&[
            "policy",
            "backfill",
            "threads",
            "wall ms",
            "events",
            "events/sec",
            "makespan s",
            "completed",
            "memo hit",
            "bf accept",
        ]);
        let mut push = |table: &mut TextTable, r: Row| {
            table.row(&[
                if r.fair_share {
                    format!("{}+fs", r.policy)
                } else {
                    r.policy.to_string()
                },
                if r.backfill { "easy" } else { "fcfs" }.to_string(),
                r.threads.to_string(),
                f(r.wall_ms, 1),
                r.events.to_string(),
                f(r.events_per_sec, 0),
                f(r.makespan_s, 0),
                r.completed.to_string(),
                f(r.shadow_memo_ratio, 3),
                f(r.backfill_accept_ratio, 3),
            ]);
            rows.push(r);
        };
        for policy in NodeSharing::all() {
            for backfill in [false, true] {
                push(&mut table, replay(nodes, policy, backfill, &trace));
            }
        }
        // Fair-share rows: the same storm striped across partitions,
        // replayed sequentially and sharded. The schedules must be
        // bit-identical — sharding is a planning optimization, never a
        // policy change.
        let ptrace = partitioned(&trace);
        let par_width = rayon::default_threads().max(2);
        let seq = replay_sharded(nodes, 1, &ptrace);
        let par = replay_sharded(nodes, par_width, &ptrace);
        assert_eq!(
            seq.makespan_s, par.makespan_s,
            "sharded makespan must be bit-identical at {nodes} nodes"
        );
        assert_eq!(
            seq.completed, par.completed,
            "sharded completions must be bit-identical at {nodes} nodes"
        );
        push(&mut table, seq);
        push(&mut table, par);
        print!("{}", table.render());
        println!();
    }

    // Acceptance: the 10k-node / 100k-job storm replays in seconds.
    if !smoke {
        let worst = rows
            .iter()
            .filter(|r| r.nodes == 10_000)
            .map(|r| r.wall_ms)
            .fold(0.0f64, f64::max);
        println!(
            "10k-node worst-case wall: {:.1} s (per-policy rows above)",
            worst / 1e3
        );
        assert!(
            worst < 120_000.0,
            "10k-node storm must replay in seconds, took {worst} ms"
        );
    }

    // Machine-readable trajectory point.
    let mut json = String::new();
    json.push_str("{\n  \"experiment\": \"sched_scale\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    json.push_str("  \"cluster\": { \"cores_per_node\": 16, \"mem_mib_per_node\": 65536 },\n");
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"nodes\": {}, \"jobs\": {}, \"policy\": \"{}\", \"backfill\": {}, \
             \"fair_share\": {}, \"threads\": {}, \
             \"wall_ms\": {:.2}, \"events\": {}, \"events_per_sec\": {:.0}, \
             \"makespan_s\": {:.0}, \"completed\": {}, {} }}{}",
            r.nodes,
            r.jobs,
            r.policy,
            r.backfill,
            r.fair_share,
            r.threads,
            r.wall_ms,
            r.events,
            r.events_per_sec,
            r.makespan_s,
            r.completed,
            r.obs_json,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    // Smoke runs write to a sibling path so CI cannot clobber the
    // committed full-mode trajectory point.
    let out = if smoke {
        "BENCH_sched.smoke.json"
    } else {
        "BENCH_sched.json"
    };
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out} ({} rows)", rows.len());
}
