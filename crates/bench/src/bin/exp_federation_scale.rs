//! E14 — federation at scale (multi-realm trust + sharded broker).
//!
//! Three claims, measured:
//!
//! 1. **Cross-realm matrix**: with an explicit trust allow-list, an
//!    allow-listed sister realm's token validates at the home site; realms
//!    off the list — registered or not — fail closed, and re-stamping a
//!    trusted realm's token as the home realm breaks its signature.
//! 2. **Ablation row**: the `CrossRealmSpoof` audit channel stays blocked
//!    under llsc (trust list or no trust list, sharded or single broker)
//!    and re-opens only when the whole credential plane is ablated.
//! 3. **Shard scale**: a uid-hashed [`ShardedBroker`] sustains
//!    single-broker validate throughput per op, partitions a million-ish
//!    session table into bounded shards, and fans batch verification out
//!    across cores (near-linear on multicore; this box reports its core
//!    count).

use eus_bench::table::TextTable;
use eus_core::{audit, Channel, ClusterSpec, SecureCluster, SeparationConfig, HOME_REALM};
use eus_fedauth::{
    shared_broker, BrokerPolicy, CredError, CredentialBroker, CredentialPlane, RealmId,
    ShardedBroker,
};
use eus_simos::{Uid, UserDb};
use std::time::Instant;

fn verdict(r: &Result<Uid, CredError>) -> String {
    match r {
        Ok(_) => "ACCEPT".to_string(),
        Err(CredError::UntrustedRealm { .. }) => "reject: untrusted realm".to_string(),
        Err(CredError::UnknownRealm(_)) => "reject: unknown realm".to_string(),
        Err(CredError::BadSignature) => "reject: bad signature".to_string(),
        Err(e) => format!("reject: {e}"),
    }
}

fn cross_realm_matrix() {
    println!("-- cross-realm trust matrix (home = {HOME_REALM}, allow-list = {{realm2}}) --\n");
    let cfg = SeparationConfig::llsc().with_trusted_realms([2u32]);
    let mut c = SecureCluster::new(cfg, ClusterSpec::tiny());
    let alice = c.add_user("alice").unwrap();
    let db = c.db.read().clone();

    let trusted = shared_broker(CredentialBroker::new(
        RealmId(2),
        0x5157_E401,
        BrokerPolicy::default(),
    ));
    let registered_untrusted = shared_broker(CredentialBroker::new(
        RealmId(3),
        0x5157_E402,
        BrokerPolicy::default(),
    ));
    c.register_sister_realm(RealmId(2), trusted.clone());
    c.register_sister_realm(RealmId(3), registered_untrusted.clone());

    let home_token = c
        .broker
        .as_ref()
        .unwrap()
        .read()
        .current_token(alice)
        .unwrap();
    let t2 = trusted.write().login(&db, alice, None).unwrap();
    let t3 = registered_untrusted
        .write()
        .login(&db, alice, None)
        .unwrap();
    let mut rogue = CredentialBroker::new(RealmId(99), 0x0BAD_5EED, BrokerPolicy::default());
    let t99 = rogue.login(&db, alice, None).unwrap();
    let mut restamped = t2;
    restamped.realm = HOME_REALM;

    let mut table = TextTable::new(&["issuer", "relationship", "verdict at home"]);
    let rows: [(&str, &str, Result<Uid, CredError>); 5] = [
        ("realm1", "home", c.validate_federated_token(&home_token)),
        (
            "realm2",
            "allow-listed sister",
            c.validate_federated_token(&t2),
        ),
        (
            "realm3",
            "registered, not allow-listed",
            c.validate_federated_token(&t3),
        ),
        ("realm99", "unregistered", c.validate_federated_token(&t99)),
        (
            "realm2→1",
            "trusted realm re-stamped as home",
            c.validate_federated_token(&restamped),
        ),
    ];
    for (issuer, rel, r) in &rows {
        table.row(&[issuer.to_string(), rel.to_string(), verdict(r)]);
    }
    print!("{}", table.render());

    assert!(rows[0].2.is_ok(), "home realm must accept its own token");
    assert!(
        rows[1].2.is_ok(),
        "allow-listed sister must validate at home"
    );
    assert!(
        matches!(rows[2].2, Err(CredError::UntrustedRealm { .. })),
        "registered-but-untrusted must fail closed"
    );
    assert!(rows[3].2.is_err(), "unregistered realm must fail closed");
    assert_eq!(
        rows[4].2,
        Err(CredError::BadSignature),
        "re-stamped realm must break the issuer signature"
    );
    // Revocation at the issuing site is honored at home asynchronously:
    // the eus-revsync delta feed lands within one feed interval (exp_revsync
    // charts the lag-vs-cadence tradeoff in detail).
    trusted.write().revoke_user(alice);
    let after_feed = c.sched.read().now()
        + c.config.revsync_feed_interval
        + eus_simcore::SimDuration::from_secs(1);
    c.advance_to(after_feed);
    assert!(c.validate_federated_token(&t2).is_err());
    println!("\nsister-site revocation: honored at home within one feed interval\n");
}

fn ablation_rows() {
    println!("-- CrossRealmSpoof across configurations (audit) --\n");
    let spec = ClusterSpec::tiny();
    let configs: [(&str, SeparationConfig); 4] = [
        ("llsc", SeparationConfig::llsc()),
        (
            "llsc+trust[2]",
            SeparationConfig::llsc().with_trusted_realms([2u32]),
        ),
        ("llsc/1-shard", SeparationConfig::llsc().single_shard()),
        ("-fedauth", {
            let mut c = SeparationConfig::llsc();
            c.federated_auth = false;
            c
        }),
    ];
    let mut table = TextTable::new(&["config", "CrossRealmSpoof", "unexpected leaks"]);
    let mut reports = Vec::new();
    for (name, cfg) in &configs {
        let report = audit::run_audit(cfg, &spec);
        let open = report.open_channels().contains(&Channel::CrossRealmSpoof);
        table.row(&[
            name.to_string(),
            if open { "OPEN" } else { "blocked" }.to_string(),
            report.unexpected_leaks().len().to_string(),
        ]);
        reports.push((*name, report));
    }
    print!("{}", table.render());

    for (name, report) in &reports {
        let open = report.open_channels().contains(&Channel::CrossRealmSpoof);
        if *name == "-fedauth" {
            assert!(open, "ablating the plane must re-open CrossRealmSpoof");
        } else {
            assert!(!open, "{name}: CrossRealmSpoof must stay blocked");
            assert!(
                report.only_expected_residuals(),
                "{name}: trust lists and sharding must not open anything"
            );
        }
    }
    println!("\nclaim check: trust allow-lists and broker sharding change no channel");
    println!("outcome; only ablating the credential plane re-opens the spoof.\n");
}

fn shard_scale() {
    let cores = std::thread::available_parallelism().map_or(1, |v| v.get());
    println!("-- sharded-broker scale ({cores} core(s) for fan-out) --\n");
    const USERS: usize = 512;
    const SESSIONS_PER_USER: usize = 32;
    let mut db = UserDb::new();
    let users: Vec<Uid> = (0..USERS)
        .map(|i| db.create_user(&format!("u{i}")).unwrap())
        .collect();

    let mut table = TextTable::new(&[
        "shards",
        "sessions",
        "largest shard",
        "login µs/op",
        "validate ns/op",
        "batch Melem/s",
    ]);
    for shards in [1usize, 2, 4, 8, 16] {
        let mut plane = ShardedBroker::new(HOME_REALM, 7, shards, BrokerPolicy::default());
        let t0 = Instant::now();
        let mut tokens = Vec::with_capacity(USERS * SESSIONS_PER_USER);
        for _ in 0..SESSIONS_PER_USER {
            for &u in &users {
                tokens.push(plane.login(&db, u, None).unwrap());
            }
        }
        let login_us = t0.elapsed().as_micros() as f64 / tokens.len() as f64;

        let iters = 200_000usize;
        let t0 = Instant::now();
        for i in 0..iters {
            std::hint::black_box(
                plane
                    .validate_token(std::hint::black_box(&tokens[i % tokens.len()]))
                    .unwrap(),
            );
        }
        let validate_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

        let t0 = Instant::now();
        let verdicts = plane.validate_batch(&tokens);
        let batch_s = t0.elapsed().as_secs_f64();
        assert!(verdicts.iter().all(Result::is_ok));

        // Table-bound check: sessions partition, no shard hoards.
        let per_shard_max = plane.largest_shard_sessions();
        assert_eq!(plane.live_sessions(), tokens.len());

        table.row(&[
            shards.to_string(),
            tokens.len().to_string(),
            per_shard_max.to_string(),
            format!("{login_us:.2}"),
            format!("{validate_ns:.0}"),
            format!("{:.1}", tokens.len() as f64 / batch_s / 1e6),
        ]);
    }
    print!("{}", table.render());
    println!("\nper-op validate stays flat as shard count grows (O(1) routing);");
    println!("batch fan-out parallelism equals the machine's core count.\n");
}

fn main() {
    println!("E14: federation at scale (multi-realm trust + sharded broker)\n");
    cross_realm_matrix();
    ablation_rows();
    shard_scale();
    println!("result: trusted federation without widened attack surface, and a");
    println!("credential plane that partitions to million-session scale.");
}
