//! Obs v2 acceptance experiment: causal tracing + the SLO/alerting plane.
//!
//! Four gates, one artifact (`BENCH_obs_trace.json`; `--smoke` writes a
//! sibling path so CI cannot clobber the committed trajectory point):
//!
//! 1. **Trace coverage** — a portal-initiated revocation assembles into
//!    one well-formed tree spanning the portal, issuer-broker, revsync
//!    (WAN), and replica planes; the rendered tree ships in the artifact.
//! 2. **Revoke-to-enforcement latency** — the sim-time distribution from
//!    the portal click to the fail-closed deny at the home replica, over
//!    revocations landing at random phases of the feed cadence.
//! 3. **Alert precision** — a clean baseline raises zero alerts; a
//!    severed sister feed raises exactly `revsync.replica.lag`; an
//!    interactive-QoS wait storm raises exactly `sched.interactive.wait`.
//! 4. **Overhead** — with trace hooks compiled into every entry point,
//!    the disabled path stays **< 1%** of the quiet replay (record-count
//!    × isolated per-call bound) and the trace hooks' *marginal* cost on
//!    a loud replay (loud minus counters-only, both rings lit the same
//!    way otherwise) stays **< 5%**, with loud outcomes identical to the
//!    quiet ones. The counter plane's own full enabled cost remains
//!    `exp_obs_overhead`'s number and is reported here informationally.

use eus_bench::assert_or_dump;
use eus_core::obs::{check_well_formed, ObsConfig, TraceBuffer};
use eus_core::{ClusterSpec, SecureCluster, SeparationConfig};
use eus_fedauth::{shared_broker, BrokerPolicy, CredError, CredentialBroker, RealmId};
use eus_obs::AlertKind;
use eus_sched::{JobSpec, QosClass};
use eus_simcore::{SimDuration, SimRng, SimTime};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// A hardened federated cluster with one trusted sister realm, every ring
/// loud when `loud`.
fn federated_cluster(loud: bool) -> (SecureCluster, eus_fedauth::SharedBroker) {
    let cfg = SeparationConfig::llsc().with_trusted_realms([2u32]);
    let mut c = SecureCluster::new(cfg, ClusterSpec::tiny());
    if loud {
        c.enable_obs(ObsConfig::enabled());
    }
    let sister = shared_broker(CredentialBroker::new(
        RealmId(2),
        0x0b57,
        BrokerPolicy::default(),
    ));
    if loud {
        if let Some(tb) = sister.read().trace_buffer() {
            tb.set_enabled(true);
        }
    }
    c.register_sister_realm(RealmId(2), sister.clone());
    (c, sister)
}

/// Gate 1 + 2: trace the revoke chain `trials` times at random feed
/// phases; return (per-plane span counts of the last tree, rendered tree,
/// enforcement latencies in sim-seconds).
fn revoke_chain(trials: usize) -> (Vec<(String, usize)>, String, Vec<f64>) {
    let (mut c, sister) = federated_cluster(true);
    let alice = c.add_user("alice").expect("fresh db");
    let db = c.db.read().clone();
    let mut rng = SimRng::seed_from_u64(0x0b5_7ace);
    let feed_s = c.config.revsync_feed_interval.as_secs_f64() as u64;
    let mut latencies = Vec::new();
    let mut now = SimTime::ZERO;
    let mut last_trace = 0u64;
    for _ in 0..trials {
        // Land the revoke at a random phase of the feed cadence.
        now += SimDuration::from_secs(1 + rng.range_u64(0, feed_s));
        c.advance_to(now);
        let token = sister.write().login(&db, alice, None).expect("login");
        assert_eq!(c.validate_federated_token(&token), Ok(alice));
        let revoked_at = now;
        assert!(c.portal_revoke_serial(RealmId(2), token.serial));
        // Walk forward until the home replica enforces the revocation.
        loop {
            now += SimDuration::from_secs(1);
            c.advance_to(now);
            match c.validate_federated_token(&token) {
                Err(CredError::Revoked(_)) => break,
                _ => assert!(
                    (now - revoked_at).as_secs_f64() as u64 <= 2 * feed_s + 2,
                    "revocation must land within two feed intervals"
                ),
            }
        }
        latencies.push((now - revoked_at).as_secs_f64());
        let root = c
            .portal
            .obs
            .trace
            .spans()
            .into_iter()
            .rfind(|s| s.name == "portal.route.revoke")
            .expect("portal minted the revoke root");
        last_trace = root.trace;
    }
    let spans = c.collect_trace(last_trace);
    check_well_formed(&spans).expect("revoke tree must be well-formed");
    let mut coverage: Vec<(String, usize)> = Vec::new();
    for s in &spans {
        match coverage.iter_mut().find(|(p, _)| p == s.plane) {
            Some((_, n)) => *n += 1,
            None => coverage.push((s.plane.to_string(), 1)),
        }
    }
    for plane in ["portal", "cred", "revsync"] {
        assert!(
            coverage.iter().any(|(p, _)| p == plane),
            "plane {plane} missing from the revoke tree"
        );
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (coverage, c.render_trace(last_trace), latencies)
}

/// One alert-precision scenario: the slice of `Fire` alerts it raised.
fn fired(c: &SecureCluster) -> Vec<&'static str> {
    c.obs
        .slo
        .alerts()
        .entries()
        .iter()
        .filter(|a| a.kind == AlertKind::Fire)
        .map(|a| a.slo)
        .collect()
}

/// Gate 3a: healthy feed, ordinary work — zero alerts.
fn scenario_clean(horizon_s: u64) -> Vec<&'static str> {
    let (mut c, _sister) = federated_cluster(true);
    let alice = c.add_user("alice").expect("fresh db");
    for i in 0..4 {
        let _ = c.try_submit(JobSpec::new(
            alice,
            format!("batch{i}"),
            SimDuration::from_secs(30),
        ));
    }
    let mut t = SimTime::ZERO;
    while t < SimTime::from_secs(horizon_s) {
        t += SimDuration::from_secs(10);
        c.advance_to(t);
    }
    fired(&c)
}

/// Gate 3b: sever the sister feed until replica lag breaches max_lag/2.
fn scenario_lag() -> Vec<&'static str> {
    let (mut c, _sister) = federated_cluster(true);
    let mut t = SimTime::ZERO;
    for _ in 0..6 {
        t += SimDuration::from_secs(10);
        c.advance_to(t);
    }
    c.partition_sister_feed(RealmId(2), true);
    let budget = c.config.revsync_max_lag;
    while t < SimTime::ZERO + budget {
        t += SimDuration::from_secs(10);
        c.advance_to(t);
    }
    fired(&c)
}

/// Gate 3c: an interactive wait storm — 8-core interactive jobs far past
/// the 2×8-core tiny cluster's capacity, so queue waits blow through the
/// 60 s objective.
fn scenario_interactive_storm(horizon_s: u64) -> Vec<&'static str> {
    let cfg = SeparationConfig::llsc();
    let mut c = SecureCluster::new(cfg, ClusterSpec::tiny());
    c.enable_obs(ObsConfig::enabled());
    let alice = c.add_user("alice").expect("fresh db");
    for i in 0..24 {
        let _ = c.try_submit(
            JobSpec::new(alice, format!("shell{i}"), SimDuration::from_secs(120))
                .with_tasks(1)
                .with_cpus_per_task(8)
                .with_qos(QosClass::Interactive),
        );
    }
    let mut t = SimTime::ZERO;
    while t < SimTime::from_secs(horizon_s) {
        t += SimDuration::from_secs(10);
        c.advance_to(t);
    }
    fired(&c)
}

/// Gate-4 replay configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Production default: everything off.
    Quiet,
    /// PR-6 plane on (counters/spans/SLOs), v2 trace rings off.
    CountersOnly,
    /// Everything on, trace rings included.
    Loud,
}

struct Replay {
    wall_s: f64,
    makespan: SimTime,
    completed: u64,
}

/// Gate 4 workload: a mixed-shape submission storm on a mid-size cluster,
/// every job entering through the traced `try_submit` entry point. The
/// cluster is big enough that placement — not instrumentation — dominates,
/// matching how the overhead budget is phrased against a real replay.
fn replay(jobs: usize, mode: Mode) -> (Replay, Option<SecureCluster>) {
    let spec = ClusterSpec {
        compute_nodes: 48,
        cores_per_node: 16,
        mem_per_node_mib: 65_536,
        gpus_per_node: 0,
        gpu_mem_bytes: 1024,
        login_nodes: 1,
    };
    let mut c = SecureCluster::new(SeparationConfig::llsc(), spec);
    if mode != Mode::Quiet {
        c.enable_obs(ObsConfig::enabled());
    }
    if mode == Mode::CountersOnly {
        // Counters/spans/SLOs stay on; only the v2 trace rings go dark,
        // isolating the marginal cost of the causal-tracing hooks.
        c.obs.trace.set_enabled(false);
        c.portal.obs.trace.set_enabled(false);
        c.sched.read().obs.trace.set_enabled(false);
        if let Some(b) = &c.broker {
            if let Some(tb) = b.read().trace_buffer() {
                tb.set_enabled(false);
            }
        }
        if let Some(m) = &c.revsync {
            m.obs.trace.set_enabled(false);
        }
    }
    let users: Vec<_> = (0..8)
        .map(|i| c.add_user(&format!("u{i}")).expect("fresh db"))
        .collect();
    let mut rng = SimRng::seed_from_u64(0x0b5_0e4);
    let t0 = Instant::now();
    for i in 0..jobs {
        let user = *rng.pick(&users);
        let dur = SimDuration::from_secs(30 + rng.range_u64(0, 600));
        let spec = JobSpec::new(user, format!("j{i}"), dur)
            .with_tasks(1 + rng.range_u64(0, 8) as u32)
            .with_cpus_per_task(1 + rng.range_u64(0, 4) as u32)
            .with_mem_per_task(512);
        c.try_submit(spec).expect("home submits authorize");
        if i % 256 == 0 {
            c.advance_to(SimTime::from_secs((i as u64 / 256) * 60));
        }
    }
    let makespan = c.run_to_completion();
    let wall_s = t0.elapsed().as_secs_f64();
    let completed = c.sched.read().metrics.completed.get();
    let r = Replay {
        wall_s,
        makespan,
        completed,
    };
    (r, (mode == Mode::Loud).then_some(c))
}

/// Per-call cost of a *disabled* trace mint (root + finish), isolated.
fn disabled_trace_per_call_ns(iters: u64) -> f64 {
    let tb = TraceBuffer::disabled("bench", 7);
    let t0 = Instant::now();
    for i in 0..iters {
        let b = black_box(&tb);
        let tok = b.root("bench.disabled.root", SimTime::from_secs(i));
        b.finish(tok, SimTime::from_secs(i));
    }
    let per_iter = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;
    assert_eq!(tb.pushed(), 0, "disabled ring must push nothing");
    per_iter / 2.0
}

/// Per-call cost of an *enabled* trace record (root + child hit + two
/// finishes → 4 ring touches per iteration), isolated on a live ring.
fn enabled_trace_per_call_ns(iters: u64) -> f64 {
    let tb = TraceBuffer::new("bench", 7, 4096, true);
    let t0 = Instant::now();
    for i in 0..iters {
        let b = black_box(&tb);
        let tok = b.root("bench.enabled.root", SimTime::from_secs(i));
        let ctx = b.hit(tok.ctx(), "bench.enabled.hit", SimTime::from_secs(i), i);
        black_box(ctx);
        b.finish(tok, SimTime::from_secs(i + 1));
    }
    let per_iter = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;
    assert!(tb.pushed() >= iters, "enabled ring must record");
    per_iter / 2.0
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (trials, horizon_s, jobs, reps) = if smoke {
        (4usize, 400u64, 1_500usize, 5usize)
    } else {
        (24, 900, 12_000, 9)
    };
    println!(
        "exp_obs_trace: {trials} revocations, {jobs}-job replay ({} mode)\n",
        if smoke { "smoke" } else { "full" }
    );

    // Gates 1 + 2: the cross-plane revoke chain.
    let (coverage, tree, latencies) = revoke_chain(trials);
    let mean_lat = latencies.iter().sum::<f64>() / latencies.len() as f64;
    println!("revoke trace coverage (last tree):");
    for (plane, n) in &coverage {
        println!("  {plane:<8} {n} spans");
    }
    println!("{tree}");
    println!(
        "revoke→enforcement: mean {:.1} s, p50 {:.1} s, max {:.1} s over {} trials\n",
        mean_lat,
        quantile(&latencies, 0.5),
        latencies.last().copied().unwrap_or(0.0),
        latencies.len()
    );

    // Gate 3: alert precision.
    let clean = scenario_clean(horizon_s.min(300));
    assert_or_dump!(
        clean.is_empty(),
        format!("{clean:?}"),
        "clean baseline must raise zero alerts"
    );
    let lag = scenario_lag();
    assert_or_dump!(
        lag == ["revsync.replica.lag"],
        format!("{lag:?}"),
        "severed feed must raise exactly the lag SLO"
    );
    let storm = scenario_interactive_storm(horizon_s);
    assert_or_dump!(
        storm == ["sched.interactive.wait"],
        format!("{storm:?}"),
        "wait storm must raise exactly the interactive-wait SLO"
    );
    println!("alert precision: clean 0 alerts, lag -> {lag:?}, storm -> {storm:?}\n");

    // Gate 4: overhead with trace hooks on the entry points. The three
    // modes are interleaved within each rep (not run in three separate
    // blocks) so slow time-varying machine load hits them alike; min-of-
    // reps then compares like with like.
    let mut quiet_wall = f64::INFINITY;
    let mut counters_wall = f64::INFINITY;
    let mut loud_wall = f64::INFINITY;
    let mut quiet: Option<Replay> = None;
    let mut loud: Option<(Replay, SecureCluster)> = None;
    for _ in 0..reps {
        let (r, _) = replay(jobs, Mode::Quiet);
        quiet_wall = quiet_wall.min(r.wall_s);
        quiet = Some(r);
        let (r, _) = replay(jobs, Mode::CountersOnly);
        counters_wall = counters_wall.min(r.wall_s);
        let (r, c) = replay(jobs, Mode::Loud);
        loud_wall = loud_wall.min(r.wall_s);
        loud = Some((r, c.unwrap()));
    }
    let quiet = quiet.unwrap();
    let (loud, c) = loud.unwrap();
    assert_or_dump!(
        loud.makespan == quiet.makespan && loud.completed == quiet.completed,
        c.obs.rec.flight.render_tail("obs-trace", 64),
        "tracing must not change outcomes: loud ({:?}, {}) vs quiet ({:?}, {})",
        loud.makespan,
        loud.completed,
        quiet.makespan,
        quiet.completed
    );
    let rec_ops = c.obs.rec.ops_estimate() + c.sched.read().obs.rec.ops_estimate();
    let trace_ops =
        c.obs.trace.pushed() + c.portal.obs.trace.pushed() + c.sched.read().obs.trace.pushed();
    let micro_iters = if smoke { 2_000_000 } else { 10_000_000 };
    let per_call_ns = disabled_trace_per_call_ns(micro_iters);
    let disabled_cost_s = (rec_ops + trace_ops) as f64 * per_call_ns / 1e9;
    let disabled_pct = 100.0 * disabled_cost_s / quiet_wall;
    // What the trace hooks add on top of the already-accepted counter
    // plane (exp_obs_overhead reports that plane's full enabled cost).
    // Both gates use the exp_obs_overhead discipline — call count × an
    // isolated per-call microbench — because the replay walls are ~0.1 s
    // and wall-vs-wall deltas at that size are dominated by machine
    // noise; the wall-derived percentages below stay informational.
    let enabled_call_ns = enabled_trace_per_call_ns(micro_iters / 10);
    let trace_bound_pct = 100.0 * trace_ops as f64 * enabled_call_ns / 1e9 / quiet_wall;
    let trace_marginal_pct = 100.0 * (loud_wall - counters_wall) / quiet_wall;
    let enabled_pct = 100.0 * (loud_wall - quiet_wall) / quiet_wall;
    println!(
        "overhead: {rec_ops} record + {trace_ops} trace calls, disabled bound \
         {disabled_pct:.4}% of {quiet_wall:.3} s quiet wall, trace-hook bound \
         {trace_bound_pct:.4}% ({enabled_call_ns:.0} ns/call enabled), wall-derived \
         trace-marginal {trace_marginal_pct:+.2}% / full-enabled {enabled_pct:+.2}% \
         (informational)"
    );
    assert_or_dump!(
        disabled_pct < 1.0,
        c.obs.rec.flight.render_tail("obs-trace", 64),
        "disabled-path overhead must stay below 1%, measured {disabled_pct:.4}%"
    );
    assert_or_dump!(
        trace_bound_pct < 5.0,
        c.obs.rec.flight.render_tail("obs-trace", 64),
        "trace hooks must cost below 5% of the quiet replay, bound {trace_bound_pct:.4}%"
    );

    // Artifact.
    let mut json = String::new();
    json.push_str("{\n  \"experiment\": \"obs_trace\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    json.push_str("  \"trace_coverage\": { ");
    for (i, (plane, n)) in coverage.iter().enumerate() {
        let _ = write!(json, "{}\"{plane}\": {n}", if i == 0 { "" } else { ", " });
    }
    json.push_str(" },\n");
    let _ = writeln!(
        json,
        "  \"revoke_to_enforcement_s\": {{ \"trials\": {}, \"mean\": {:.2}, \"p50\": {:.2}, \
         \"p99\": {:.2}, \"max\": {:.2} }},",
        latencies.len(),
        mean_lat,
        quantile(&latencies, 0.5),
        quantile(&latencies, 0.99),
        latencies.last().copied().unwrap_or(0.0)
    );
    let _ = writeln!(
        json,
        "  \"alert_precision\": {{ \"clean\": [], \"forced_lag\": [\"revsync.replica.lag\"], \
         \"interactive_storm\": [\"sched.interactive.wait\"] }},"
    );
    let _ = writeln!(json, "  \"record_calls\": {rec_ops},");
    let _ = writeln!(json, "  \"trace_calls\": {trace_ops},");
    let _ = writeln!(json, "  \"disabled_call_ns\": {per_call_ns:.4},");
    let _ = writeln!(json, "  \"disabled_overhead_pct\": {disabled_pct:.5},");
    let _ = writeln!(json, "  \"enabled_call_ns\": {enabled_call_ns:.4},");
    let _ = writeln!(json, "  \"trace_hook_bound_pct\": {trace_bound_pct:.5},");
    let _ = writeln!(json, "  \"trace_marginal_pct\": {trace_marginal_pct:.3},");
    let _ = writeln!(json, "  \"enabled_overhead_pct\": {enabled_pct:.3},");
    let _ = writeln!(json, "  \"render_trace\": {:?}", tree);
    json.push_str("}\n");
    let out = if smoke {
        "BENCH_obs_trace.smoke.json"
    } else {
        "BENCH_obs_trace.json"
    };
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out}");
}
