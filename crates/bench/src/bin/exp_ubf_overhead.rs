//! E9a — where the UBF's cost lands (paper Sec. IV-D / V).
//!
//! Modeled latency of: connection setup without UBF, with UBF (cold cache),
//! with UBF (warm cache), and per-packet cost on the established flow — then
//! amortization across flow lengths. The paper's claim: the UBF touches only
//! connection setup; established traffic is conntrack-accepted.

use bytes::Bytes;
use eus_bench::table::{f, TextTable};
use eus_bench::two_user_cluster;
use eus_core::SeparationConfig;
use eus_simcore::SimDuration;
use eus_simnet::{Proto, SocketAddr};

fn main() {
    println!("E9a: UBF overhead structure (Sec. IV-D)\n");

    // -- setup latency table ------------------------------------------------
    let mut table = TextTable::new(&["path", "setup latency (us)"]);

    let (mut base, alice_b, _) = two_user_cluster(SeparationConfig::baseline());
    let n1 = base.compute_ids[0];
    let n2 = base.compute_ids[1];
    base.listen(alice_b, n2, Proto::Tcp, 9000, None).unwrap();
    let (_, no_ubf) = base
        .connect(alice_b, n1, SocketAddr::new(n2, 9000), Proto::Tcp)
        .unwrap();
    table.row(&["no UBF".into(), no_ubf.as_micros().to_string()]);

    let (mut hard, alice, _) = two_user_cluster(SeparationConfig::llsc());
    let n1 = hard.compute_ids[0];
    let n2 = hard.compute_ids[1];
    hard.listen(alice, n2, Proto::Tcp, 9000, None).unwrap();
    let (c1, cold) = hard
        .connect(alice, n1, SocketAddr::new(n2, 9000), Proto::Tcp)
        .unwrap();
    table.row(&[
        "UBF, cold cache (ident RTT)".into(),
        cold.as_micros().to_string(),
    ]);
    let (c2, warm) = hard
        .connect(alice, n1, SocketAddr::new(n2, 9000), Proto::Tcp)
        .unwrap();
    table.row(&["UBF, warm cache".into(), warm.as_micros().to_string()]);

    // Established per-packet cost (identical with and without UBF).
    let pkt = Bytes::from_static(&[0u8; 1024]);
    let mut total = SimDuration::ZERO;
    for _ in 0..1000 {
        total += hard.fabric.send(c1, &pkt).unwrap();
    }
    let per_packet = total / 1000;
    table.row(&[
        "established, per 1 KiB packet".into(),
        per_packet.as_micros().to_string(),
    ]);
    hard.fabric.close(c1);
    hard.fabric.close(c2);
    print!("{}", table.render());

    // -- amortization over flow length ---------------------------------------
    println!("\namortized overhead vs flow length (1 KiB packets):");
    let mut amort = TextTable::new(&[
        "packets in flow",
        "no-UBF total us",
        "UBF total us",
        "overhead",
    ]);
    for n in [1u64, 10, 100, 1000, 10000] {
        let base_total = no_ubf.as_micros() + per_packet.as_micros() * n;
        let ubf_total = cold.as_micros() + per_packet.as_micros() * n;
        let overhead = (ubf_total as f64 / base_total as f64) - 1.0;
        amort.row(&[
            n.to_string(),
            base_total.to_string(),
            ubf_total.to_string(),
            format!("{}%", f(100.0 * overhead, 2)),
        ]);
    }
    print!("{}", amort.render());

    let queued = hard.fabric.metrics.queued_packets.get();
    let established = hard.fabric.metrics.established_packets.get();
    println!("\npackets queued to the daemon: {queued} (the two setups only)");
    println!("established packets (never queued): {established}");
    println!("\nclaim check: overhead decays toward 0% as flows lengthen — an MPI job");
    println!("pays one ident RTT per peer pair at wire-up and nothing afterwards.");
}
