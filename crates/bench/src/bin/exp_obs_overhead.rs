//! Observability overhead experiment: the number that keeps `eus-obs`
//! honest about "zero-overhead when off".
//!
//! The instrumentation is compiled into the hot path unconditionally —
//! there is no uninstrumented build to diff against — so the disabled-path
//! cost is bounded from measurements we *can* make:
//!
//! 1. Replay a 1 h submission storm with obs **disabled** (the default)
//!    and time it. This is the production configuration.
//! 2. Replay the same storm with obs **enabled**; the recorder's
//!    [`ops_estimate`](eus_obs::Recorder::ops_estimate) counts exactly how
//!    many record calls the replay issued (each enabled record is one
//!    disabled never-taken branch in the quiet run).
//! 3. Microbenchmark the disabled record call in isolation (a tight loop
//!    over a disabled recorder) to get a per-call upper bound.
//!
//! `ops × per_call / quiet_wall` then bounds the disabled-path share of
//! the replay, and the acceptance gate asserts it stays **< 1%**. The
//! loud replay doubles as the no-perturbation proof: identical makespan
//! and completion counts, or instrumentation changed a scheduling
//! decision. Emits `BENCH_obs_overhead.json` (smoke mode writes a sibling
//! path so CI cannot clobber the committed trajectory point).

use eus_bench::assert_or_dump;
use eus_obs::{ObsConfig, Recorder};
use eus_sched::{SchedConfig, Scheduler};
use eus_simcore::{SimRng, SimTime};
use eus_simos::UserDb;
use eus_workloads::{submission_storm, SharedTrace, UserPopulation};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// One hour of submissions — the paper-scale replay window.
const WINDOW_S: u64 = 3_600;

fn storm(jobs: usize) -> SharedTrace {
    let mut rng = SimRng::seed_from_u64(0x0b5_0e4);
    let mut db = UserDb::new();
    let pop = UserPopulation::build(&mut db, 200, 40, 1.1, &mut rng);
    submission_storm(&pop, jobs, SimTime::from_secs(WINDOW_S), &mut rng).to_shared()
}

struct Replay {
    wall_s: f64,
    makespan: SimTime,
    completed: u64,
}

fn replay(nodes: u32, trace: &SharedTrace, obs: Option<ObsConfig>) -> (Replay, Option<Scheduler>) {
    let mut s = Scheduler::new(SchedConfig::default());
    if let Some(cfg) = obs {
        s.enable_obs(cfg);
    }
    for _ in 0..nodes {
        s.add_node(16, 65_536, 0);
    }
    let t0 = Instant::now();
    trace.submit_all(&mut s);
    let makespan = s.run_to_completion();
    let wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(s.pending_count(), 0, "storm must drain");
    let r = Replay {
        wall_s,
        makespan,
        completed: s.metrics.completed.get(),
    };
    (r, obs.map(|_| s))
}

/// Per-call cost of a *disabled* record, measured in isolation: one
/// counter bump plus one span start/end pair per iteration, averaged over
/// the three calls. The recorder is `black_box`ed so the enabled check
/// cannot be hoisted out of the loop.
fn disabled_per_call_ns(iters: u64) -> f64 {
    let mut rec = Recorder::disabled();
    let c = rec.counter("bench.disabled.counter");
    let sp = rec.span("bench.disabled.span");
    let t0 = Instant::now();
    for _ in 0..iters {
        let r = black_box(&mut rec);
        r.incr(c);
        let tok = black_box(r.span_start());
        r.span_end(sp, tok);
    }
    let per_iter = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;
    assert_eq!(
        rec.ops_estimate(),
        0,
        "disabled recorder must record nothing"
    );
    per_iter / 3.0
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (nodes, jobs, reps) = if smoke {
        (256u32, 3_000usize, 2usize)
    } else {
        (1_024, 60_000, 3)
    };
    println!(
        "exp_obs_overhead: {jobs}-job / {WINDOW_S} s storm on {nodes} nodes ({} mode)\n",
        if smoke { "smoke" } else { "full" }
    );
    let trace = storm(jobs);

    // Quiet replays (production configuration): best-of-N wall time.
    let mut quiet_wall = f64::INFINITY;
    let mut quiet: Option<Replay> = None;
    for _ in 0..reps {
        let (r, _) = replay(nodes, &trace, None);
        quiet_wall = quiet_wall.min(r.wall_s);
        quiet = Some(r);
    }
    let quiet = quiet.unwrap();
    println!("quiet replay:   {:.3} s wall (best of {reps})", quiet_wall);

    // Loud replay: same storm, obs on. Must not perturb the schedule.
    let (loud, s) = replay(nodes, &trace, Some(ObsConfig::enabled()));
    let s = s.unwrap();
    assert_or_dump!(
        loud.makespan == quiet.makespan,
        s.obs.rec.flight.render_tail("obs-overhead", 64),
        "enabling obs must not change the makespan: loud {:?} vs quiet {:?}",
        loud.makespan,
        quiet.makespan
    );
    assert_or_dump!(
        loud.completed == quiet.completed,
        s.obs.rec.flight.render_tail("obs-overhead", 64),
        "enabling obs must not change job outcomes: loud {} vs quiet {}",
        loud.completed,
        quiet.completed
    );
    println!(
        "loud replay:    {:.3} s wall, outcomes identical",
        loud.wall_s
    );

    // Every enabled record call was a disabled branch in the quiet run.
    let ops = s.obs.rec.ops_estimate();
    let per_call_ns = disabled_per_call_ns(if smoke { 5_000_000 } else { 20_000_000 });
    let disabled_cost_s = ops as f64 * per_call_ns / 1e9;
    let disabled_pct = 100.0 * disabled_cost_s / quiet_wall;
    let enabled_pct = 100.0 * (loud.wall_s - quiet_wall) / quiet_wall;
    println!("record calls:   {ops} (from the loud run's ops_estimate)");
    println!("disabled call:  {per_call_ns:.3} ns (isolated microbench, upper bound)");
    println!(
        "disabled path:  {disabled_cost_s:.6} s of {quiet_wall:.3} s = {disabled_pct:.4}% of the replay"
    );
    println!("enabled path:   {enabled_pct:+.1}% wall vs quiet (informational)");

    // Acceptance: the disabled instrumentation path costs < 1% of the
    // 1 h-trace replay.
    assert_or_dump!(
        disabled_pct < 1.0,
        s.obs.rec.flight.render_tail("obs-overhead", 64),
        "disabled-path overhead must stay below 1%, measured {disabled_pct:.4}%"
    );

    // Phase breakdown from the loud run, for the artifact.
    let snap = s.obs.snapshot();
    let mut phases = String::from("{ ");
    let mut first = true;
    for sp in &snap.spans {
        if sp.count == 0 {
            continue;
        }
        let _ = write!(
            phases,
            "{}\"{}\": {{ \"count\": {}, \"total_ns\": {} }}",
            if first { "" } else { ", " },
            sp.name,
            sp.count,
            sp.total_ns
        );
        first = false;
    }
    phases.push_str(" }");

    let mut json = String::new();
    json.push_str("{\n  \"experiment\": \"obs_overhead\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(
        json,
        "  \"nodes\": {nodes}, \"jobs\": {jobs}, \"window_s\": {WINDOW_S},"
    );
    let _ = writeln!(json, "  \"quiet_wall_s\": {quiet_wall:.4},");
    let _ = writeln!(json, "  \"loud_wall_s\": {:.4},", loud.wall_s);
    let _ = writeln!(json, "  \"record_calls\": {ops},");
    let _ = writeln!(json, "  \"disabled_call_ns\": {per_call_ns:.4},");
    let _ = writeln!(json, "  \"disabled_overhead_pct\": {disabled_pct:.5},");
    let _ = writeln!(json, "  \"enabled_overhead_pct\": {enabled_pct:.3},");
    let _ = writeln!(json, "  \"phases\": {phases}");
    json.push_str("}\n");
    let out = if smoke {
        "BENCH_obs_overhead.smoke.json"
    } else {
        "BENCH_obs_overhead.json"
    };
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out}");
}
