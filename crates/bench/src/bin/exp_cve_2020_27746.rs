//! E2 — CVE-2020-27746 pre-mitigation (paper Sec. IV-A).
//!
//! A vulnerable `srun --x11` places an X11 magic cookie on a task command
//! line. An attacker sweeps `/proc` on the compute node. The table shows
//! how many secrets the sweep harvests per configuration.

use eus_bench::table::TextTable;
use eus_core::{ClusterSpec, SecureCluster, SeparationConfig};
use eus_sched::JobSpec;
use eus_simcore::{SimDuration, SimTime};
use eus_simos::Pid;

const COOKIE: &str = "MIT-MAGIC-COOKIE-1:deadbeef";

fn harvest(config: SeparationConfig, victims: usize) -> usize {
    let mut c = SecureCluster::new(config, ClusterSpec::default());
    let attacker = c.add_user("attacker").unwrap();
    for i in 0..victims {
        let v = c.add_user(&format!("victim{i}")).unwrap();
        c.submit(
            JobSpec::new(v, "x11-job", SimDuration::from_secs(600)).with_cmdline([
                "srun",
                "--x11",
                &format!("--xauth={COOKIE}-{i}"),
            ]),
        );
    }
    c.advance_to(SimTime::from_secs(1));
    let a_cred = c.credentials(attacker);
    let mut stolen = 0;
    for &node in &c.compute_ids {
        let node_os = c.node(node);
        let procfs = node_os.procfs();
        for pid in 1..=128u32 {
            if let Ok(cmdline) = procfs.read_cmdline(&a_cred, Pid(pid)) {
                stolen += cmdline
                    .iter()
                    .filter(|a| a.contains("MIT-MAGIC-COOKIE"))
                    .count();
            }
        }
    }
    stolen
}

fn main() {
    println!("E2: CVE-2020-27746 cookie harvest (Sec. IV-A)\n");
    let mut table = TextTable::new(&["config", "victims", "cookies stolen"]);

    let mut hidepid_only = SeparationConfig::baseline();
    hidepid_only.hidepid = true;

    for victims in [1usize, 4, 8] {
        for (label, cfg) in [
            ("baseline", SeparationConfig::baseline()),
            ("hidepid-only", hidepid_only.clone()),
            ("llsc", SeparationConfig::llsc()),
        ] {
            table.row(&[
                label.to_string(),
                victims.to_string(),
                harvest(cfg, victims).to_string(),
            ]);
        }
    }

    print!("{}", table.render());
    println!("\nclaim check: any configuration with hidepid=2 steals zero cookies —");
    println!("the vulnerability was mitigated before it was announced (defense in depth).");
}
