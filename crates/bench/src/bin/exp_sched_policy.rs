//! Scheduler policy-plane experiment: measures the three PR-5 knobs on the
//! workload shapes they exist for, and asserts the acceptance criteria.
//!
//! * **interactive-vs-bulk storm** (preemption): a bulk front saturates the
//!   cluster for the whole window while short urgent sessions arrive
//!   throughout. Replayed with `preemption` off/on; asserts the mean
//!   interactive wait drops by ≥10×.
//! * **multi-partition storm** (fair-share): one partition is buried under
//!   a deep backlog while the others receive steady light work. Replayed
//!   with `fair_share` off/on; asserts that with it on, every partition
//!   with eligible work starts ≥1 job in every replay window (no
//!   starvation), and prints the off-mode starvation for contrast.
//! * **reservation calendar** (conservative backfill): a blocked queue gets
//!   planned starts — the "when will my job run?" answer EASY cannot give.
//!
//! Emits `BENCH_sched_policy.json` (smoke runs write the `.smoke` sibling
//! so CI never clobbers the committed full-mode trajectory point).

use eus_bench::assert_or_dump;
use eus_bench::table::{f, TextTable};
use eus_obs::ObsConfig;
use eus_sched::{JobState, NodeSharing, QosClass, SchedConfig, Scheduler};
use eus_simcore::{SimDuration, SimRng, SimTime};
use eus_simos::UserDb;
use eus_workloads::{interactive_vs_bulk, multi_partition_storm, UserPopulation};
use std::fmt::Write as _;

struct PreemptRow {
    mode: &'static str,
    interactive_jobs: usize,
    mean_wait_s: f64,
    p95_wait_s: f64,
    max_wait_s: f64,
    preemptions: usize,
    bulk_completed: u64,
    /// Rendered flight-recorder tail, dumped if an acceptance gate fails.
    flight_tail: String,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Scenario A: the interactive-vs-bulk storm, with and without preemption.
fn run_preemption(nodes: u32, bulk: usize, interactive: usize, window: SimTime) -> Vec<PreemptRow> {
    let mut rows = Vec::new();
    for (mode, preemption) in [("no-preempt", false), ("preempt", true)] {
        // Identical trace per mode: same seed end to end.
        let mut rng = SimRng::seed_from_u64(0x9e05);
        let mut db = UserDb::new();
        let pop = UserPopulation::build(&mut db, 60, 10, 1.1, &mut rng);
        let trace = interactive_vs_bulk(&pop, bulk, interactive, window, &mut rng);

        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::WholeNodeUser,
            preemption,
            ..SchedConfig::default()
        });
        s.enable_obs(ObsConfig::enabled());
        for _ in 0..nodes {
            s.add_node(16, 65_536, 0);
        }
        trace.submit_all(&mut s);
        s.run_to_completion();

        let mut waits: Vec<f64> = s
            .jobs
            .values()
            .filter(|j| j.spec.qos == QosClass::Urgent)
            .map(|j| {
                j.started
                    .expect("storm drains")
                    .since(j.submitted)
                    .as_secs_f64()
            })
            .collect();
        waits.sort_by(f64::total_cmp);
        let bulk_completed = s
            .jobs
            .values()
            .filter(|j| j.spec.qos == QosClass::Bulk && j.state == JobState::Completed)
            .count() as u64;
        rows.push(PreemptRow {
            mode,
            interactive_jobs: waits.len(),
            mean_wait_s: waits.iter().sum::<f64>() / waits.len().max(1) as f64,
            p95_wait_s: percentile(&waits, 0.95),
            max_wait_s: waits.last().copied().unwrap_or(0.0),
            preemptions: s.preemptions.len(),
            bulk_completed,
            flight_tail: s.obs.rec.flight.render_tail(mode, 48),
        });
    }
    rows
}

struct FairShareRow {
    mode: &'static str,
    /// `starts[partition][window]`
    starts: Vec<Vec<u64>>,
    starved_windows: usize,
    /// Rendered flight-recorder tail, dumped if an acceptance gate fails.
    flight_tail: String,
}

/// Scenario B: the multi-partition storm, with and without fair-share.
/// Returns per-partition per-window start counts; a "starved" window is one
/// where a partition had eligible pending work at the window start yet
/// started nothing.
fn run_fair_share(
    jobs: usize,
    window: SimTime,
    windows: usize,
    partitions: &[(&str, u32)],
) -> Vec<FairShareRow> {
    let names: Vec<&str> = partitions.iter().map(|(n, _)| *n).collect();
    let mut rows = Vec::new();
    for (mode, fair_share) in [("fcfs", false), ("fair-share", true)] {
        let mut rng = SimRng::seed_from_u64(0xfa15);
        let mut db = UserDb::new();
        let pop = UserPopulation::build(&mut db, 80, 12, 1.1, &mut rng);
        let trace = multi_partition_storm(&pop, &names, jobs, 0.8, window, &mut rng);

        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            fair_share,
            ..SchedConfig::default()
        });
        s.enable_obs(ObsConfig::enabled());
        let mut next = 1u32;
        {
            let mut ranges: Vec<(&str, Vec<eus_simos::NodeId>)> = Vec::new();
            for (name, count) in partitions {
                let ids: Vec<eus_simos::NodeId> =
                    (next..next + count).map(eus_simos::NodeId).collect();
                next += count;
                ranges.push((name, ids));
            }
            for _ in 1..next {
                s.add_node(16, 65_536, 0);
            }
            for (i, (name, ids)) in ranges.into_iter().enumerate() {
                s.partitions_mut().add(name, ids, i == 0).unwrap();
            }
        }
        trace.submit_all(&mut s);

        // Replay in windows, sampling starts per partition per window.
        let win = SimDuration::from_secs_f64(window.as_secs_f64() / windows as f64);
        let mut starts = vec![vec![0u64; windows]; names.len()];
        let mut starved = 0usize;
        let mut started_before: Vec<std::collections::BTreeSet<eus_sched::JobId>> =
            vec![Default::default(); names.len()];
        #[allow(clippy::needless_range_loop)] // w also drives the horizon
        for w in 0..windows {
            // Eligibility check at window start: pending jobs per partition.
            let pending_at_start: Vec<bool> = names
                .iter()
                .map(|name| {
                    s.jobs.values().any(|j| {
                        j.state == JobState::Pending && j.spec.partition.as_deref() == Some(*name)
                    })
                })
                .collect();
            s.run_until(SimTime::ZERO + win * (w as u64 + 1));
            for (pi, name) in names.iter().enumerate() {
                let now_started: std::collections::BTreeSet<eus_sched::JobId> = s
                    .jobs
                    .values()
                    .filter(|j| j.spec.partition.as_deref() == Some(*name) && j.started.is_some())
                    .map(|j| j.id)
                    .collect();
                let new = now_started.difference(&started_before[pi]).count() as u64;
                starts[pi][w] = new;
                if pending_at_start[pi] && new == 0 {
                    starved += 1;
                }
                started_before[pi] = now_started;
            }
        }
        rows.push(FairShareRow {
            mode,
            starts,
            starved_windows: starved,
            flight_tail: s.obs.rec.flight.render_tail(mode, 48),
        });
    }
    rows
}

/// Scenario C: the reservation calendar answering "earliest start".
fn run_reservations() -> Vec<(u64, f64)> {
    let mut s = Scheduler::new(SchedConfig {
        policy: NodeSharing::Shared,
        reservations: 8,
        ..SchedConfig::default()
    });
    s.enable_obs(ObsConfig::enabled());
    for _ in 0..4 {
        s.add_node(16, 65_536, 0);
    }
    // Fill all four nodes until t=600.
    for _ in 0..4 {
        s.submit_at(
            SimTime::ZERO,
            eus_sched::JobSpec::new(eus_simos::Uid(1), "wall", SimDuration::from_secs(600))
                .with_tasks(16)
                .with_mem_per_task(1024),
        );
    }
    // Queue three full-cluster jobs: planned back to back.
    let mut queued = Vec::new();
    for i in 0..3 {
        queued.push(
            s.submit_at(
                SimTime::from_secs(1),
                eus_sched::JobSpec::new(
                    eus_simos::Uid(2 + i),
                    format!("queued-{i}"),
                    SimDuration::from_secs(300),
                )
                .with_tasks(64)
                .with_mem_per_task(1024),
            ),
        );
    }
    s.run_until(SimTime::from_secs(2));
    let mut out = Vec::new();
    for (i, id) in queued.iter().enumerate() {
        let est = s.earliest_start(*id).expect("queued job has an estimate");
        out.push((i as u64, est.since(SimTime::ZERO).as_secs_f64()));
    }
    // Back-to-back plan: 600, 900, 1200.
    assert_or_dump!(
        out[0].1 == 600.0,
        s.obs.rec.flight.render_tail("reservations", 48),
        "first reservation at the wall release, got {out:?}"
    );
    assert_or_dump!(
        out[1].1 >= 900.0 && out[2].1 >= 1200.0,
        s.obs.rec.flight.render_tail("reservations", 48),
        "{out:?}"
    );
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("exp_sched_policy: scheduler policy plane (fair-share, preemption, reservations)\n");

    // ---- Scenario A: preemption --------------------------------------
    let (nodes, bulk, interactive, window) = if smoke {
        (16, 20, 30, SimTime::from_secs(900))
    } else {
        (32, 40, 60, SimTime::from_secs(1200))
    };
    println!(
        "-- interactive-vs-bulk storm: {nodes} nodes x 16 cores, {bulk} bulk + \
         {interactive} urgent jobs, {} s window, whole-node policy",
        window.as_secs_f64()
    );
    let prows = run_preemption(nodes, bulk, interactive, window);
    let mut table = TextTable::new(&[
        "mode",
        "interactive",
        "mean wait s",
        "p95 wait s",
        "max wait s",
        "preemptions",
        "bulk done",
    ]);
    for r in &prows {
        table.row(&[
            r.mode.to_string(),
            r.interactive_jobs.to_string(),
            f(r.mean_wait_s, 1),
            f(r.p95_wait_s, 1),
            f(r.max_wait_s, 1),
            r.preemptions.to_string(),
            r.bulk_completed.to_string(),
        ]);
    }
    print!("{}", table.render());
    let wait_ratio = prows[0].mean_wait_s / prows[1].mean_wait_s.max(1.0);
    println!("interactive mean-wait improvement: {:.0}x\n", wait_ratio);
    assert_or_dump!(
        wait_ratio >= 10.0,
        prows[1].flight_tail,
        "preemption must cut interactive wait by >=10x, got {wait_ratio:.1}x"
    );
    assert_or_dump!(
        prows[1].preemptions > 0,
        prows[1].flight_tail,
        "preemption must actually fire"
    );
    assert_or_dump!(
        prows[0].preemptions == 0,
        prows[0].flight_tail,
        "no preemptions with the knob off, got {}",
        prows[0].preemptions
    );

    // ---- Scenario B: multi-partition fair-share ----------------------
    let (jobs, fwindow, windows) = if smoke {
        (200, SimTime::from_secs(900), 4)
    } else {
        (600, SimTime::from_secs(1800), 6)
    };
    let partitions: &[(&str, u32)] = &[("batch", 24), ("short", 4), ("debug", 4)];
    println!(
        "-- multi-partition storm: {} jobs (80% backlog into 'batch'), {} s window, \
         partitions batch=24/short=4/debug=4 nodes",
        jobs,
        fwindow.as_secs_f64()
    );
    let frows = run_fair_share(jobs, fwindow, windows, partitions);
    for r in &frows {
        let mut t = TextTable::new(&["partition", "starts per window", "total"]);
        for (pi, (name, _)) in partitions.iter().enumerate() {
            let per: Vec<String> = r.starts[pi].iter().map(u64::to_string).collect();
            t.row(&[
                name.to_string(),
                per.join(" "),
                r.starts[pi].iter().sum::<u64>().to_string(),
            ]);
        }
        println!("mode = {} (starved windows: {})", r.mode, r.starved_windows);
        print!("{}", t.render());
    }
    let fcfs = &frows[0];
    let fair = &frows[1];
    assert_or_dump!(
        fair.starved_windows == 0,
        fair.flight_tail,
        "with fair-share on, every partition with eligible work starts >=1 job per window \
         (got {} starved)",
        fair.starved_windows
    );
    println!(
        "head-of-line starvation: fcfs {} starved windows -> fair-share {}\n",
        fcfs.starved_windows, fair.starved_windows
    );

    // ---- Scenario C: reservation calendar ----------------------------
    println!("-- reservation calendar: 4 busy nodes, 3 full-cluster jobs queued");
    let planned = run_reservations();
    let mut t = TextTable::new(&["queued job", "planned start s"]);
    for (i, start) in &planned {
        t.row(&[format!("queued-{i}"), f(*start, 0)]);
    }
    print!("{}", t.render());
    println!("(EASY alone answers only the head; the calendar answers all three)\n");

    // ---- Machine-readable trajectory point ---------------------------
    let mut json = String::new();
    json.push_str("{\n  \"experiment\": \"sched_policy\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    json.push_str("  \"preemption\": [\n");
    for (i, r) in prows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"mode\": \"{}\", \"interactive_jobs\": {}, \"mean_wait_s\": {:.2}, \
             \"p95_wait_s\": {:.2}, \"max_wait_s\": {:.2}, \"preemptions\": {}, \
             \"bulk_completed\": {} }}{}",
            r.mode,
            r.interactive_jobs,
            r.mean_wait_s,
            r.p95_wait_s,
            r.max_wait_s,
            r.preemptions,
            r.bulk_completed,
            if i + 1 == prows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"interactive_wait_improvement\": {:.1},",
        wait_ratio
    );
    json.push_str("  \"fair_share\": [\n");
    for (i, r) in frows.iter().enumerate() {
        let starts: Vec<String> = partitions
            .iter()
            .enumerate()
            .map(|(pi, (name, _))| {
                let per: Vec<String> = r.starts[pi].iter().map(u64::to_string).collect();
                format!("\"{}\": [{}]", name, per.join(", "))
            })
            .collect();
        let _ = writeln!(
            json,
            "    {{ \"mode\": \"{}\", \"starved_windows\": {}, \"starts\": {{ {} }} }}{}",
            r.mode,
            r.starved_windows,
            starts.join(", "),
            if i + 1 == frows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let planned_json: Vec<String> = planned
        .iter()
        .map(|(i, s)| format!("{{ \"job\": {i}, \"planned_start_s\": {s:.0} }}"))
        .collect();
    let _ = writeln!(
        json,
        "  \"reservations\": [ {} ]\n}}",
        planned_json.join(", ")
    );
    let out = if smoke {
        "BENCH_sched_policy.smoke.json"
    } else {
        "BENCH_sched_policy.json"
    };
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
