//! E3 — scheduler information leakage and `PrivateData` (paper Sec. IV-B).
//!
//! Ten users submit named jobs; each viewer class then runs `squeue` and
//! `sacct`. The table counts *foreign* rows visible — job names, commands,
//! and usage are exactly the "private information" the paper worries about.

use eus_bench::table::TextTable;
use eus_sched::{JobSpec, PrivateData, SchedConfig, Scheduler};
use eus_simcore::{SimDuration, SimTime};
use eus_simos::{Credentials, Gid, Uid, UserDb};

fn main() {
    println!("E3: scheduler privacy with PrivateData (Sec. IV-B)\n");
    let mut table = TextTable::new(&[
        "config",
        "viewer",
        "squeue foreign rows",
        "sacct foreign rows",
    ]);

    for private in [false, true] {
        let mut db = UserDb::new();
        let users: Vec<Uid> = (0..10)
            .map(|i| db.create_user(&format!("user{i}")).unwrap())
            .collect();
        let operator = db.create_user("operator").unwrap();

        let mut sched = Scheduler::new(SchedConfig {
            private_data: if private {
                PrivateData::llsc()
            } else {
                PrivateData::open()
            },
            ..SchedConfig::default()
        });
        sched.add_admin(operator);
        for _ in 0..8 {
            sched.add_node(16, 65_536, 0);
        }
        // Half the jobs finish (sacct rows), half keep running (squeue rows).
        for (i, &u) in users.iter().enumerate() {
            sched.submit_at(
                SimTime::ZERO,
                JobSpec::new(
                    u,
                    format!("sponsor-{i}-analysis"),
                    SimDuration::from_secs(5),
                ),
            );
            sched.submit_at(
                SimTime::ZERO,
                JobSpec::new(u, format!("sponsor-{i}-train"), SimDuration::from_secs(500)),
            );
        }
        sched.run_until(SimTime::from_secs(60));

        let label = if private {
            "PrivateData=all"
        } else {
            "default"
        };
        let viewers: Vec<(&str, Credentials)> = vec![
            ("user0", db.credentials(users[0]).unwrap()),
            ("operator", db.credentials(operator).unwrap()),
            ("root", Credentials::root()),
        ];
        for (vname, cred) in viewers {
            let squeue_foreign = sched
                .squeue(&cred)
                .iter()
                .filter(|v| v.user != cred.uid)
                .count();
            let sacct_foreign = sched
                .sacct(&cred)
                .iter()
                .filter(|r| r.user != cred.uid)
                .count();
            table.row(&[
                label.to_string(),
                vname.to_string(),
                squeue_foreign.to_string(),
                sacct_foreign.to_string(),
            ]);
        }
        let _ = Gid(0);
    }

    print!("{}", table.render());
    println!("\nclaim check: with PrivateData, regular users see zero foreign rows");
    println!("while operators and root retain the full view for troubleshooting.");
}
