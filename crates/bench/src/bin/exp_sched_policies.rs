//! E4 — node-sharing policy trade-off (paper Sec. IV-B, refs 25/26).
//!
//! Identical LLSC-like workloads run under shared / exclusive / whole-node
//! scheduling at several load levels. Reported: effective utilization,
//! claimed-but-unused waste, waits, and makespan. The paper's qualitative
//! claims are that exclusive collapses for many-short-job workloads while
//! whole-node tracks shared closely.

use eus_bench::table::{f, pct, TextTable};
use eus_bench::{run_policy_on_trace, standard_trace};
use eus_sched::NodeSharing;
use eus_simcore::Chart;

fn main() {
    println!("E4: node-sharing policy comparison (Sec. IV-B)\n");

    for (label, users, hours, nodes) in [
        ("light load", 20usize, 2u64, 32u32),
        ("heavy load", 60, 4, 32),
    ] {
        println!("-- {label}: {users} users, {hours}h trace, {nodes} nodes x 16 cores");
        let trace = standard_trace(users, hours, 42);
        println!("   ({} jobs submitted)\n", trace.len());
        let mut table = TextTable::new(&[
            "policy",
            "completed",
            "useful util",
            "claimed util",
            "waste",
            "p50 wait s",
            "p95 wait s",
            "makespan s",
        ]);
        for policy in NodeSharing::all() {
            let s = run_policy_on_trace(policy, nodes, 16, &trace);
            table.row(&[
                policy.to_string(),
                s.completed.to_string(),
                pct(s.effective_util),
                pct(s.claimed_util),
                pct(s.claimed_util - s.effective_util),
                f(s.p50_wait, 1),
                f(s.p95_wait, 1),
                f(s.makespan, 0),
            ]);
        }
        print!("{}", table.render());
        println!();
    }

    // Figure: useful utilization vs offered load (user count), one series
    // per policy — the crossover-free ordering the paper implies.
    println!("-- figure: useful utilization vs offered load (CSV)\n");
    let mut chart = Chart::new(
        "useful utilization vs load",
        "users",
        "useful utilization (%)",
    );
    for policy in NodeSharing::all() {
        let label = policy.to_string();
        let series = chart.add_series(label);
        for users in [10usize, 20, 40, 60, 80] {
            let trace = standard_trace(users, 2, 7);
            let s = run_policy_on_trace(policy, 24, 16, &trace);
            series.push(users as f64, 100.0 * s.effective_util);
        }
    }
    println!("{chart}");

    println!("claim check: whole-node ≈ shared on useful utilization and makespan;");
    println!("exclusive wastes most of its claim and inflates waits by orders of magnitude;");
    println!("the gap persists at every load level (figure above).");
}
