//! E12 — the full separation audit (paper Sec. V).
//!
//! Sweeps every cross-user channel under: the stock baseline, the paper's
//! full configuration, and every single-mechanism ablation. Reproduces the
//! Results-section claims: the full config reduces the open surface to
//! exactly three named residual paths, and each mechanism independently
//! carries weight (defense in depth).

use eus_bench::table::TextTable;
use eus_core::{audit, ClusterSpec, SeparationConfig};

fn main() {
    println!("E12: separation audit (Sec. V)\n");
    let spec = ClusterSpec::default();

    // Full channel tables for the two corner configurations.
    let baseline = audit::run_audit(&SeparationConfig::baseline(), &spec);
    println!("{baseline}");
    let llsc = audit::run_audit(&SeparationConfig::llsc(), &spec);
    println!("{llsc}");

    // Ablation summary: which channels each mechanism's removal re-opens.
    println!("ablation sweep (start from llsc, remove one mechanism):\n");
    let mut table = TextTable::new(&["ablation", "open", "unexpected", "channels re-opened"]);
    table.row(&[
        "(full llsc)".into(),
        llsc.open_count().to_string(),
        llsc.unexpected_leaks().len().to_string(),
        "-".into(),
    ]);
    for (name, cfg) in SeparationConfig::ablations() {
        let report = audit::run_audit(&cfg, &spec);
        let reopened: Vec<String> = report
            .unexpected_leaks()
            .iter()
            .map(|c| c.to_string())
            .collect();
        table.row(&[
            name.to_string(),
            report.open_count().to_string(),
            report.unexpected_leaks().len().to_string(),
            if reopened.is_empty() {
                "-".to_string()
            } else {
                reopened.join(", ")
            },
        ]);
    }
    print!("{}", table.render());

    println!(
        "\nclaim check: baseline {} open; llsc {} open — exactly the Sec. V residuals",
        baseline.open_count(),
        llsc.open_count()
    );
    println!("(tmp filenames, abstract unix sockets, native-CM IB verbs); and every");
    println!("ablation row re-opens at least one channel, so no mechanism is redundant.");
    assert!(llsc.only_expected_residuals());
}
