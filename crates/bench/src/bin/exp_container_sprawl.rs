//! E13 — container sprawl and stale-image vulnerability load (paper
//! Sec. IV-G, after Zerouali et al., paper ref. 47).
//!
//! Users clone and share images; old copies are forgotten on the central
//! filesystem and quietly accrue known CVEs. We simulate three years of a
//! 40-user population cloning/touching images and report the stale-copy
//! count and their total vulnerability load over time — the reason LLSC
//! prefers curated shared module trees for common software.

use eus_bench::table::TextTable;
use eus_containers::{ContainerRegistry, Image};
use eus_simcore::{SimRng, SimTime};
use eus_simos::Uid;

const DAY: u64 = 86_400;

fn main() {
    println!("E13: container sprawl over 3 simulated years (Sec. IV-G)\n");

    let mut rng = SimRng::seed_from_u64(2024);
    let mut reg = ContainerRegistry::new();

    // Seed: five curated base images in project areas.
    for (i, name) in ["pytorch", "tensorflow", "openfoam", "gromacs", "lammps"]
        .iter()
        .enumerate()
    {
        reg.store(
            Uid(1000 + i as u32),
            format!("/proj/base/{name}.sif"),
            Image::typical_research_stack(format!("{name}.sif"), SimTime::ZERO),
            SimTime::ZERO,
        );
    }

    let mut table = TextTable::new(&[
        "day",
        "copies",
        "stale >90d",
        "stale fraction",
        "stale vuln load",
        "vulns if rebuilt",
    ]);
    let mut paths: Vec<String> = (0..5)
        .map(|i| {
            format!(
                "/proj/base/{}.sif",
                ["pytorch", "tensorflow", "openfoam", "gromacs", "lammps"][i]
            )
        })
        .collect();

    for day in 1..=(3 * 365u64) {
        let now = SimTime::from_secs(day * DAY);
        // ~1 clone every 4 days: someone copies a random existing image into
        // their home and forgets about it.
        if rng.chance(0.25) {
            let src = rng.pick(&paths).clone();
            let owner = Uid(2000 + rng.range_u64(0, 40) as u32);
            let dst = format!("/home/u{}/copy-{day}.sif", owner.0 - 2000);
            if reg.clone_image(&src, owner, &dst, now) {
                paths.push(dst);
            }
        }
        // ~10% of copies get touched per month (active projects).
        if day % 30 == 0 {
            let n_touch = paths.len() / 10 + 1;
            for _ in 0..n_touch {
                let p = rng.pick(&paths).clone();
                reg.touch(&p, now);
            }
        }
        if day % 180 == 0 {
            let stale = reg.stale(now, 90.0);
            let rebuilt_load: u32 = 0; // a rebuilt image starts at zero CVEs
            table.row(&[
                day.to_string(),
                reg.len().to_string(),
                stale.len().to_string(),
                format!("{:.0}%", 100.0 * stale.len() as f64 / reg.len() as f64),
                reg.stale_vuln_load(now, 90.0).to_string(),
                rebuilt_load.to_string(),
            ]);
        }
    }

    print!("{}", table.render());
    println!("\nclaim check: \"after a few years, there are just a lot of old, unused");
    println!("containers littering the home directories\" — the stale fraction grows");
    println!("toward dominance and its CVE load grows without bound, while a curated,");
    println!("rebuilt module tree would sit at zero.");
}
