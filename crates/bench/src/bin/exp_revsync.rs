//! E15 — asynchronous cross-realm revocation propagation (`eus-revsync`).
//!
//! Four claims, measured:
//!
//! 1. **Propagation lag tracks feed cadence**: across 2–8 realm meshes, a
//!    serial revoked at its issuer is rejected at every subscribed sister
//!    within roughly one feed interval plus WAN latency — and always inside
//!    the staleness budget. With lossy push transport, anti-entropy bounds
//!    the tail instead.
//! 2. **The cluster timeline**: revoke-at-issuer → still-accepted (the
//!    replica has not heard) → rejected once the delta lands. Asynchrony is
//!    explicit and bounded, not hidden.
//! 3. **Bounded staleness fails closed**: sever the feed and the replica
//!    keeps answering only until its lag exceeds the budget; past that,
//!    cross-realm validation refuses outright (`StaleReplica`) rather than
//!    trusting possibly-revoked credentials.
//! 4. **No synchronous issuer query on the hot path**: validation keeps
//!    working (within budget) while the issuer is unreachable, and the
//!    local replica lookup costs the same O(1) nanoseconds as the old
//!    direct-broker check — without the cross-WAN round trip the old path
//!    implied.

use eus_bench::table::TextTable;
use eus_core::{ClusterSpec, SecureCluster, SeparationConfig, HOME_REALM};
use eus_fedauth::{
    shared_broker, BrokerPolicy, CredError, CredentialBroker, FederationDirectory, RealmId,
    TrustPolicy,
};
use eus_revsync::{RevSyncConfig, RevSyncMesh};
use eus_simcore::{SimDuration, SimTime};
use eus_simos::{Uid, UserDb};
use std::time::Instant;

/// Build an all-to-all mesh of `n` realms (every site subscribes to every
/// other site's feed) and return it with the planes.
fn full_mesh(
    n: u32,
    cfg: RevSyncConfig,
) -> (
    UserDb,
    Uid,
    RevSyncMesh,
    Vec<(RealmId, eus_fedauth::SharedBroker)>,
) {
    let mut db = UserDb::new();
    let alice = db.create_user("alice").unwrap();
    let mut mesh = RevSyncMesh::new(cfg);
    let mut planes = Vec::new();
    for r in 1..=n {
        let realm = RealmId(r);
        let plane = shared_broker(CredentialBroker::new(
            realm,
            0x0E15_0000 + r as u64,
            BrokerPolicy::default(),
        ));
        mesh.add_realm(realm, plane.clone());
        planes.push((realm, plane));
    }
    for (site, _) in &planes {
        for (issuer, _) in &planes {
            if site != issuer {
                mesh.subscribe(*site, *issuer);
            }
        }
    }
    (db, alice, mesh, planes)
}

/// Revoke at the issuer at `t0` and step the mesh until every other site
/// rejects the token; returns the propagation lag (revoke → last rejection).
fn propagation_lag(
    db: &UserDb,
    alice: Uid,
    mesh: &mut RevSyncMesh,
    planes: &[(RealmId, eus_fedauth::SharedBroker)],
    t0: SimTime,
    step: SimDuration,
    deadline: SimDuration,
) -> SimDuration {
    let (issuer, plane) = planes.last().unwrap();
    let token = plane.write().login(db, alice, None).unwrap();
    mesh.pump(t0);
    plane.write().revoke_user(alice);
    let mut t = t0;
    loop {
        let all_reject = planes[..planes.len() - 1].iter().all(|(site, _)| {
            matches!(
                mesh.validate_token_at(*site, &token, t),
                Err(CredError::Revoked(_))
            )
        });
        if all_reject {
            return t.since(t0);
        }
        assert!(
            t.since(t0) < deadline,
            "revocation failed to propagate from {issuer} within {deadline}"
        );
        t += step;
        mesh.pump(t);
    }
}

fn lag_vs_cadence() {
    println!("-- propagation lag vs feed cadence (full mesh, 5 revocations each) --\n");
    let mut table = TextTable::new(&[
        "realms",
        "feed",
        "anti-entropy",
        "push loss",
        "mean lag",
        "max lag",
        "budget",
        "verdict",
    ]);
    let step = SimDuration::from_millis(100);
    let cases: Vec<(u32, SimDuration, SimDuration, f64)> = vec![
        (
            2,
            SimDuration::from_secs(2),
            SimDuration::from_secs(300),
            0.0,
        ),
        (
            2,
            SimDuration::from_secs(10),
            SimDuration::from_secs(300),
            0.0,
        ),
        (
            4,
            SimDuration::from_secs(10),
            SimDuration::from_secs(300),
            0.0,
        ),
        (
            8,
            SimDuration::from_secs(10),
            SimDuration::from_secs(300),
            0.0,
        ),
        (
            4,
            SimDuration::from_secs(30),
            SimDuration::from_secs(300),
            0.0,
        ),
        (
            4,
            SimDuration::from_secs(60),
            SimDuration::from_secs(300),
            0.0,
        ),
        // Lossy push transport: anti-entropy bounds the tail.
        (
            4,
            SimDuration::from_secs(10),
            SimDuration::from_secs(60),
            0.5,
        ),
    ];
    for (realms, feed, ae, loss) in cases {
        let cfg = RevSyncConfig {
            feed_interval: feed,
            anti_entropy: ae,
            push_loss: loss,
            ..RevSyncConfig::default()
        };
        let (db, alice, mut mesh, planes) = full_mesh(realms, cfg);
        let mut lags = Vec::new();
        for k in 0..5u64 {
            // Stagger revocations against the feed phase.
            let t0 = SimTime::from_secs(100 * (k + 1)) + SimDuration::from_millis(1700 * k);
            let deadline = ae + feed + SimDuration::from_secs(5);
            lags.push(propagation_lag(
                &db, alice, &mut mesh, &planes, t0, step, deadline,
            ));
        }
        let max = *lags.iter().max().unwrap();
        let mean_us = lags.iter().map(|l| l.as_micros()).sum::<u64>() / lags.len() as u64;
        let within = max <= cfg.max_lag;
        assert!(within, "propagation must stay inside the staleness budget");
        if loss == 0.0 {
            assert!(
                max <= feed + SimDuration::from_secs(1),
                "lossless feeds must propagate within one interval (+wire): {max}"
            );
        } else {
            assert!(
                max <= ae + feed + SimDuration::from_secs(1),
                "anti-entropy must bound the lossy tail: {max}"
            );
        }
        table.row(&[
            realms.to_string(),
            feed.to_string(),
            ae.to_string(),
            format!("{:.0}%", loss * 100.0),
            SimDuration::from_micros(mean_us).to_string(),
            max.to_string(),
            cfg.max_lag.to_string(),
            "within budget".to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("\nclaim check: lag ≈ feed cadence + WAN wire time; loss shifts the");
    println!("tail to the anti-entropy period; both stay inside the budget.\n");
}

fn cluster_timeline() {
    println!("-- revoke-at-issuer → reject-at-home timeline (SecureCluster) --\n");
    let cfg = SeparationConfig::llsc().with_trusted_realms([2u32]);
    let feed = cfg.revsync_feed_interval;
    let budget = cfg.revsync_max_lag;
    let mut c = SecureCluster::new(cfg, ClusterSpec::tiny());
    let alice = c.add_user("alice").unwrap();
    let sister = shared_broker(CredentialBroker::new(
        RealmId(2),
        0x0E15_0051,
        BrokerPolicy::default(),
    ));
    c.register_sister_realm(RealmId(2), sister.clone());
    let db = c.db.read().clone();

    let mut table = TextTable::new(&["t", "event", "validate at home"]);
    let token = sister.write().login(&db, alice, None).unwrap();
    let v0 = c.validate_federated_token(&token);
    table.row(&["0s".into(), "login at sister realm2".into(), verdict(&v0)]);
    assert!(v0.is_ok());

    sister.write().revoke_user(alice);
    let v1 = c.validate_federated_token(&token);
    table.row(&[
        "0s".into(),
        "revoke_user at realm2 (issuer)".into(),
        verdict(&v1),
    ]);
    assert!(v1.is_ok(), "the replica has not heard yet — by design");

    let t_feed = SimTime::ZERO + feed + SimDuration::from_secs(1);
    c.advance_to(t_feed);
    let v2 = c.validate_federated_token(&token);
    table.row(&[
        format!("{}", feed + SimDuration::from_secs(1)),
        "CRL delta feed lands".into(),
        verdict(&v2),
    ]);
    assert_eq!(v2, Err(CredError::Revoked(token.serial)));
    let lag = c.replica_lag(RealmId(2)).unwrap();
    assert!(lag <= budget, "replica lag {lag} must be inside {budget}");

    // Sever the feed: validation keeps working on the replica alone (no
    // synchronous issuer query!) until the budget runs out, then fails
    // closed.
    c.partition_sister_feed(RealmId(2), true);
    let fresh = sister.write().login(&db, alice, None).unwrap();
    // Lag counts from the last feed's issuer-side snapshot, so the budget
    // edge sits at last_sync + budget.
    let last_sync = c
        .revsync
        .as_ref()
        .unwrap()
        .replica(HOME_REALM, RealmId(2))
        .unwrap()
        .last_sync();
    let t_in = last_sync + budget;
    c.advance_to(t_in);
    let v3 = c.validate_federated_token(&fresh);
    table.row(&[
        format!("{}", t_in.since(SimTime::ZERO)),
        "feed severed; inside staleness budget".into(),
        verdict(&v3),
    ]);
    assert!(
        v3.is_ok(),
        "within budget the local replica answers with the issuer unreachable — \
         proof there is no synchronous issuer query on the hot path"
    );

    let t_out = t_in + SimDuration::from_secs(1);
    c.advance_to(t_out);
    let v4 = c.validate_federated_token(&fresh);
    table.row(&[
        format!("{}", t_out.since(SimTime::ZERO)),
        "lag exceeds budget".into(),
        verdict(&v4),
    ]);
    assert!(
        matches!(
            v4,
            Err(CredError::StaleReplica {
                realm: RealmId(2),
                ..
            })
        ),
        "past the budget validation fails closed"
    );
    print!("{}", table.render());
    println!();
}

fn verdict(r: &Result<Uid, CredError>) -> String {
    match r {
        Ok(u) => format!("ACCEPT ({u})"),
        Err(e) => format!("reject: {e}"),
    }
}

fn hot_path_cost() {
    println!("-- validate hot path: local replica vs synchronous issuer query --\n");
    const REVOKED: u64 = 100_000;
    let mut db = UserDb::new();
    let alice = db.create_user("alice").unwrap();
    let home = shared_broker(CredentialBroker::new(
        HOME_REALM,
        0x0E15_0001,
        BrokerPolicy::default(),
    ));
    let sister = shared_broker(CredentialBroker::new(
        RealmId(2),
        0x0E15_0002,
        BrokerPolicy::default(),
    ));
    let token = sister.write().login(&db, alice, None).unwrap();
    {
        let mut s = sister.write();
        for i in 0..REVOKED {
            s.revoke_serial(eus_fedauth::CredSerial(1_000_000 + i));
        }
    }

    // Old path: the federation directory queries the issuer's plane.
    let mut dir = FederationDirectory::new();
    dir.register(
        HOME_REALM,
        home.clone(),
        TrustPolicy::home_only(HOME_REALM).with_trusted(RealmId(2)),
    );
    dir.register(
        RealmId(2),
        sister.clone(),
        TrustPolicy::home_only(RealmId(2)),
    );

    // New path: a local replica of the sister's CRL.
    let cfg = RevSyncConfig::default();
    let mut mesh = RevSyncMesh::new(cfg);
    mesh.add_realm(HOME_REALM, home);
    mesh.add_realm(RealmId(2), sister);
    mesh.subscribe(HOME_REALM, RealmId(2));

    let iters = 200_000u64;
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(dir.validate_token_at(HOME_REALM, std::hint::black_box(&token)))
            .unwrap();
    }
    let sync_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(mesh.validate_token_at(
            HOME_REALM,
            std::hint::black_box(&token),
            SimTime::ZERO,
        ))
        .unwrap();
    }
    let replica_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    let mut table = TextTable::new(&["path", "issuer contact", "ns/op (100k-entry CRL)"]);
    table.row(&[
        "synchronous issuer query (PR 2)".into(),
        "every validation".into(),
        format!("{sync_ns:.0}"),
    ]);
    table.row(&[
        "local CRL replica (eus-revsync)".into(),
        "none".into(),
        format!("{replica_ns:.0}"),
    ]);
    print!("{}", table.render());
    println!("\nboth are O(1) in-memory checks — but the replica path carries no");
    println!("cross-WAN dependency, so the in-simulation ns/op is the true cost.");
    println!("(criterion bench: benches/revsync_replica.rs)\n");
}

fn main() {
    println!("E15: asynchronous cross-realm revocation propagation (eus-revsync)\n");
    lag_vs_cadence();
    cluster_timeline();
    hot_path_cost();
    println!("result: revocations travel as append-only CRL deltas on push feeds");
    println!("with pull anti-entropy repair; sisters reject within one feed");
    println!("interval, unreachable issuers degrade to fail-closed at the");
    println!("staleness budget, and the validate hot path never leaves the site.");
}
