//! E5 — node-failure blast radius (paper Sec. IV-B).
//!
//! "If a node fails because one of the tasks executing on it tries to use
//! more memory than is available on the node, all of the jobs running on
//! that same node will fail." Under whole-node scheduling those jobs all
//! belong to one user. We inject node failures into a busy cluster under
//! each policy, replicated over independent seeds, and report how many
//! *distinct users* a failure takes down (mean ± 95% CI over seeds).

use eus_bench::table::TextTable;
use eus_bench::{replicate, standard_trace};
use eus_sched::{NodeSharing, SchedConfig, Scheduler};
use eus_simcore::{SimRng, SimTime};
use eus_simos::NodeId;

/// One replication: run the trace with 8 injected crashes; return the mean
/// users-affected per (non-empty) failure.
fn blast_radius_for(policy: NodeSharing, seed: u64) -> (f64, usize, usize) {
    let trace = standard_trace(40, 3, seed);
    let mut sched = Scheduler::new(SchedConfig {
        policy,
        ..SchedConfig::default()
    });
    for _ in 0..24 {
        sched.add_node(16, 65_536, 0);
    }
    trace.submit_all(&mut sched);
    let mut rng = SimRng::seed_from_u64(seed ^ 0xF00D);
    for k in 1..=8u64 {
        let node = NodeId(rng.range_u64(1, 25) as u32);
        sched.schedule_node_failure(SimTime::from_secs(k * 1200), node);
    }
    sched.run_to_completion();
    let victims: Vec<usize> = sched
        .failures
        .iter()
        .map(|r| r.affected_users().len())
        .filter(|n| *n > 0)
        .collect();
    let max = victims.iter().max().copied().unwrap_or(0);
    let jobs_killed: usize = sched.failures.iter().map(|r| r.failed_jobs.len()).sum();
    let mean = if victims.is_empty() {
        0.0
    } else {
        victims.iter().sum::<usize>() as f64 / victims.len() as f64
    };
    (mean, max, jobs_killed)
}

fn main() {
    println!("E5: OOM/node-failure blast radius, 10 seeds x 8 crashes (Sec. IV-B)\n");
    let mut table = TextTable::new(&[
        "policy",
        "users hit per failure (mean ± ci95)",
        "worst case",
        "jobs killed (mean)",
    ]);

    for policy in NodeSharing::all() {
        let seeds: Vec<u64> = (0..10).collect();
        let stats = replicate(seeds.clone(), |s| blast_radius_for(policy, s).0);
        let worst = seeds
            .iter()
            .map(|&s| blast_radius_for(policy, s).1)
            .max()
            .unwrap_or(0);
        let jobs = replicate(seeds, |s| blast_radius_for(policy, s).2 as f64);
        table.row(&[
            policy.to_string(),
            stats.to_string(),
            worst.to_string(),
            format!("{:.1}", jobs.mean),
        ]);
    }

    print!("{}", table.render());
    println!("\nclaim check: under whole-node (and exclusive) scheduling the mean is");
    println!("exactly 1.00 ± 0.00 — no failure ever crosses a user boundary; shared");
    println!("nodes regularly take down several users at once.");
}
