//! E1 — process visibility under `hidepid` (paper Sec. IV-A).
//!
//! A login node runs `n` foreign processes plus 3 of the viewer's own. The
//! table reports what a `ps`-sweep sees at each hidepid level, and what a
//! whitelisted facilitator sees after `seepid`.

use eus_bench::table::TextTable;
use eus_fsperm::{seepid, FilePermissionHandler};
use eus_simcore::SimTime;
use eus_simos::procfs::{HidePid, ProcMountOpts};
use eus_simos::{NodeId, NodeOs, UserDb};

fn main() {
    println!("E1: /proc visibility (Sec. IV-A)\n");
    let mut table = TextTable::new(&[
        "foreign procs",
        "hidepid=0",
        "hidepid=1 list",
        "hidepid=1 cmdline",
        "hidepid=2",
        "hidepid=2 + seepid",
    ]);

    for n in [1usize, 8, 64, 256] {
        let mut db = UserDb::new();
        let viewer = db.create_user("viewer").unwrap();
        let staff = db.create_user("staff").unwrap();
        let others: Vec<_> = (0..8)
            .map(|i| db.create_user(&format!("other{i}")).unwrap())
            .collect();
        let seepid_gid = db.create_system_group("proc-exempt").unwrap();
        let handler = FilePermissionHandler::new(seepid_gid).allow_seepid(staff);

        let mut node = NodeOs::new(NodeId(1), "login1");
        let v_sid = node.login(&db, viewer, "sshd").unwrap();
        for _ in 0..3 {
            node.spawn(v_sid, ["my-own-shell"], SimTime::ZERO);
        }
        for i in 0..n {
            let owner = others[i % others.len()];
            node.procs.spawn(
                db.credentials(owner).unwrap(),
                ["python", "job.py"],
                SimTime::ZERO,
            );
        }
        let v_cred = db.credentials(viewer).unwrap();

        let count_at = |node: &mut NodeOs, level: HidePid| -> (usize, usize) {
            node.proc_opts = ProcMountOpts {
                hidepid: level,
                exempt_gid: Some(seepid_gid),
            };
            let procfs = node.procfs();
            let listed = procfs.foreign_visible_count(&v_cred);
            let readable = procfs
                .list(&v_cred)
                .iter()
                .filter(|e| e.uid != viewer)
                .filter(|e| procfs.read_cmdline(&v_cred, e.pid).is_ok())
                .count();
            (listed, readable)
        };

        let (l0, _) = count_at(&mut node, HidePid::Off);
        let (l1, r1) = count_at(&mut node, HidePid::NoAccess);
        let (l2, _) = count_at(&mut node, HidePid::Invisible);

        // Facilitator view with seepid at hidepid=2.
        let s_sid = node.login(&db, staff, "sshd").unwrap();
        seepid(&handler, node.session_mut(s_sid).unwrap()).unwrap();
        let s_cred = node.session(s_sid).unwrap().cred.clone();
        let staff_sees = node.procfs().foreign_visible_count(&s_cred);

        table.row(&[
            n.to_string(),
            l0.to_string(),
            l1.to_string(),
            r1.to_string(),
            l2.to_string(),
            staff_sees.to_string(),
        ]);
    }

    print!("{}", table.render());
    println!("\ncsv:\n{}", table.to_csv());
    println!(
        "claim check: hidepid=2 column must be 0 at every scale; seepid restores the full view."
    );
}
