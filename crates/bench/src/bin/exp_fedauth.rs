//! E13 — federated authentication (companion paper, Prout et al. 2019).
//!
//! Measures the credential plane the same way E12 measures every other
//! mechanism: the three credential channels (stolen-token replay,
//! expired-cert ssh, cross-realm impersonation) must be Blocked under the
//! full configuration and re-open — alone — under the `-fedauth` ablation,
//! leaving the paper's original three residuals untouched.

use eus_bench::table::TextTable;
use eus_core::{audit, Channel, ClusterSpec, SeparationConfig};
use eus_fedauth::{BrokerPolicy, CredentialBroker, RealmId};
use eus_simos::UserDb;
use std::time::Instant;

fn credential_channels() -> [Channel; 3] {
    [
        Channel::AuthTokenReplay,
        Channel::SshExpiredCert,
        Channel::CrossRealmSpoof,
    ]
}

fn main() {
    println!("E13: federated authentication (companion paper)\n");
    let spec = ClusterSpec::default();

    let llsc = audit::run_audit(&SeparationConfig::llsc(), &spec);
    let mut ablated_cfg = SeparationConfig::llsc();
    ablated_cfg.federated_auth = false;
    let ablated = audit::run_audit(&ablated_cfg, &spec);
    let baseline = audit::run_audit(&SeparationConfig::baseline(), &spec);

    let mut table = TextTable::new(&["channel", "llsc", "-fedauth", "baseline"]);
    for ch in credential_channels() {
        let cell = |report: &audit::AuditReport| {
            if report.open_channels().contains(&ch) {
                "OPEN".to_string()
            } else {
                "blocked".to_string()
            }
        };
        table.row(&[ch.to_string(), cell(&llsc), cell(&ablated), cell(&baseline)]);
    }
    print!("{}", table.render());

    // The ablation must flip exactly the credential channels.
    let reopened = ablated.unexpected_leaks();
    assert_eq!(
        reopened.len(),
        3,
        "ablation must re-open exactly 3 channels"
    );
    for ch in credential_channels() {
        assert!(reopened.contains(&ch), "{ch} must re-open without fedauth");
        assert!(!llsc.open_channels().contains(&ch), "{ch} must be blocked");
    }
    assert!(llsc.only_expected_residuals());
    println!("\nclaim check: -fedauth re-opens exactly the 3 credential channels;");
    println!("the paper's original residuals are unchanged in every row.\n");

    // Verification hot-path cost: the O(1) promise, measured.
    let mut db = UserDb::new();
    let alice = db.create_user("alice").unwrap();
    let mut broker = CredentialBroker::new(RealmId(1), 7, BrokerPolicy::default());
    let token = broker.login(&db, alice, None).unwrap();
    for i in 0..50_000u64 {
        // A populated revocation list, so the O(1) check is not trivially
        // hitting an empty set.
        broker.revoke_serial(eus_fedauth::CredSerial(1_000_000 + i));
    }
    let iters = 200_000u32;
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(broker.validate_token(std::hint::black_box(&token)).unwrap());
    }
    let per = t0.elapsed() / iters;
    println!(
        "verify hot path: {per:?}/validate_token with a 50k-entry revocation list ({iters} iters)"
    );
}
