//! Chaos acceptance experiment: what graceful degradation buys, measured.
//!
//! Four gates, one artifact (`BENCH_chaos.json`; `--smoke` writes a
//! sibling path so CI cannot clobber the committed trajectory point):
//!
//! 1. **Clean baseline** — a fault-free run probes at 100% availability
//!    and raises zero `cluster.dependency.degraded` alerts.
//! 2. **Severed feed** — a WAN partition walks the feed ladder to
//!    `FailClosed` within the staleness budget (never before half of it),
//!    stale validation refuses while closed, and the ladder recovers
//!    within one anti-entropy round of the heal — with the degraded SLO
//!    firing and clearing around the episode.
//! 3. **IdP outage** — already-minted tokens validate at 100% through
//!    the outage while every new login is refused `Unavailable`; the
//!    heal restores logins.
//! 4. **Intensity sweep** — availability, degraded-time fraction, and
//!    alert volume across fault-plan intensities, byte-for-byte
//!    reproducible from the seed.

use eus_bench::assert_or_dump;
use eus_chaos::{sister_realms, ChaosController, Fault, FaultPlan, PlanShape, HOME_REALM};
use eus_core::obs::ObsConfig;
use eus_core::{ClusterSpec, DepHealth, Dependency, SecureCluster, SeparationConfig};
use eus_fedauth::{shared_broker, BrokerPolicy, CredError, CredentialBroker, RealmId};
use eus_obs::AlertKind;
use eus_simcore::{SimDuration, SimTime};
use std::fmt::Write as _;

/// A hardened federated cluster with one trusted sister realm, obs loud.
fn federated_cluster() -> (SecureCluster, eus_fedauth::SharedBroker) {
    let cfg = SeparationConfig::llsc().with_trusted_realms([2u32]);
    let mut c = SecureCluster::new(cfg, ClusterSpec::tiny());
    c.enable_obs(ObsConfig::enabled());
    let sister = shared_broker(CredentialBroker::new(
        RealmId(2),
        0xC405,
        BrokerPolicy::default(),
    ));
    c.register_sister_realm(RealmId(2), sister.clone());
    (c, sister)
}

/// Alerts (fire or clear) for one SLO name.
fn alert_kinds(c: &SecureCluster, slo: &str) -> Vec<AlertKind> {
    c.obs
        .slo
        .alerts()
        .for_slo(slo)
        .iter()
        .map(|a| a.kind)
        .collect()
}

/// Gate 2: sever the WAN feed; measure `(time_to_fail_closed_s,
/// time_to_recover_s)` from the sever and the heal respectively.
fn scenario_severed_feed(step_s: u64) -> (f64, f64) {
    let (mut c, sister) = federated_cluster();
    let alice = c.add_user("alice").expect("fresh db");
    let db = c.db.read().clone();
    let budget = c.config.revsync_max_lag;
    let sever_at = SimTime::from_secs(60);
    let heal_after = budget + SimDuration::from_secs(120);
    let plan = FaultPlan::new(0xFEED).inject(
        sever_at,
        Fault::LinkPartition {
            a: RealmId(2),
            b: HOME_REALM,
            heal_after,
        },
    );
    let mut ctrl = ChaosController::new(plan);
    ctrl.arm(&mut c);
    let token = sister.write().login(&db, alice, None).expect("login");

    let heal_at = sever_at + heal_after;
    let recover_deadline = heal_at + c.config.revsync_anti_entropy + SimDuration::from_secs(60);
    let mut t = SimTime::ZERO;
    let mut failed_closed_at: Option<SimTime> = None;
    let mut recovered_at: Option<SimTime> = None;
    while t < recover_deadline + SimDuration::from_secs(300) {
        t += SimDuration::from_secs(step_s);
        ctrl.advance_to(&mut c, t);
        let feed = c.dependency_health(Dependency::Feed);
        if failed_closed_at.is_none() && feed == DepHealth::FailClosed {
            failed_closed_at = Some(t);
            assert_or_dump!(
                matches!(
                    c.validate_federated_token(&token),
                    Err(CredError::StaleReplica { .. })
                ),
                format!("{:?}", c.validate_federated_token(&token)),
                "a fail-closed replica must refuse stale validation"
            );
        }
        if recovered_at.is_none() && t >= heal_at && feed == DepHealth::Healthy {
            recovered_at = Some(t);
        }
    }

    let failed_closed_at = failed_closed_at.expect("severed feed must reach fail-closed");
    let ttfc = failed_closed_at - sever_at;
    assert_or_dump!(
        ttfc > budget / 2,
        format!("{ttfc:?}"),
        "fail-closed before half the staleness budget was spent"
    );
    assert_or_dump!(
        ttfc <= budget + SimDuration::from_secs(2 * step_s) + c.config.revsync_feed_interval,
        format!("{ttfc:?} vs budget {budget:?}"),
        "fail-closed must land within the staleness budget"
    );
    let recovered_at = recovered_at.expect("healed feed must recover");
    assert_or_dump!(
        recovered_at <= recover_deadline,
        format!("recovered {recovered_at:?}, heal {heal_at:?}"),
        "recovery must land within one anti-entropy round of the heal"
    );
    assert_or_dump!(
        c.validate_federated_token(&token) == Ok(alice),
        format!("{:?}", c.validate_federated_token(&token)),
        "a recovered replica must serve again"
    );
    let kinds = alert_kinds(&c, "cluster.dependency.degraded");
    assert_or_dump!(
        kinds.contains(&AlertKind::Fire) && kinds.contains(&AlertKind::Clear),
        format!("{kinds:?}"),
        "the degraded SLO must fire during the episode and clear after it"
    );
    (ttfc.as_secs_f64(), (recovered_at - heal_at).as_secs_f64())
}

/// Gate 3: IdP outage. Returns `(validate_probes, rejected_logins)` taken
/// while the outage held — validation must never miss, logins never pass.
fn scenario_idp_outage(step_s: u64) -> (usize, usize) {
    let (mut c, _sister) = federated_cluster();
    let alice = c.add_user("alice").expect("fresh db");
    let db = c.db.read().clone();
    let broker = c.broker.clone().expect("llsc has a broker");
    let minted = broker.write().login(&db, alice, None).expect("pre-outage");
    let outage_at = SimTime::from_secs(60);
    let heal_after = SimDuration::from_secs(600);
    let plan = FaultPlan::new(0x1D9).inject(outage_at, Fault::IdpOutage { heal_after });
    let mut ctrl = ChaosController::new(plan);
    ctrl.arm(&mut c);

    let mut validated = 0usize;
    let mut rejected = 0usize;
    let mut t = SimTime::ZERO;
    while t < outage_at + heal_after + SimDuration::from_secs(120) {
        t += SimDuration::from_secs(step_s);
        ctrl.advance_to(&mut c, t);
        if t > outage_at && t < outage_at + heal_after {
            assert_or_dump!(
                broker.read().validate_token(&minted) == Ok(alice),
                format!("{:?}", broker.read().validate_token(&minted)),
                "minted tokens must keep validating through an IdP outage"
            );
            validated += 1;
            assert_or_dump!(
                broker.write().login(&db, alice, None) == Err(CredError::Unavailable),
                "new login passed during the outage".to_string(),
                "new logins must refuse Unavailable while the IdP is dark"
            );
            rejected += 1;
            assert_or_dump!(
                !matches!(c.dependency_health(Dependency::Idp), DepHealth::Healthy),
                format!("{:?}", c.dependency_health(Dependency::Idp)),
                "the IdP ladder must leave Healthy during the outage"
            );
        }
    }
    assert_or_dump!(
        broker.write().login(&db, alice, None).is_ok(),
        format!("{:?}", c.dependency_health(Dependency::Idp)),
        "logins must serve again after the heal"
    );
    assert_or_dump!(
        c.dependency_health(Dependency::Idp) == DepHealth::Healthy,
        format!("{:?}", c.dependency_health(Dependency::Idp)),
        "the IdP ladder must snap Healthy after the heal"
    );
    (validated, rejected)
}

/// One point of the gate-4 sweep.
struct SweepPoint {
    faults: usize,
    availability: f64,
    degraded_fraction: f64,
    alerts_fired: usize,
    applied: usize,
}

/// Drive a random plan of `faults` faults; probe availability every
/// `probe_s` (home login + fresh federated validate), and measure the
/// fraction of boundaries the cluster reports itself degraded.
fn sweep_point(seed: u64, faults: usize, horizon_s: u64, probe_s: u64) -> SweepPoint {
    let (mut c, sister) = federated_cluster();
    let alice = c.add_user("alice").expect("fresh db");
    let db = c.db.read().clone();
    let broker = c.broker.clone().expect("llsc has a broker");
    let plan = if faults == 0 {
        FaultPlan::new(seed)
    } else {
        let shape = PlanShape {
            realms: sister_realms(&c),
            nodes: c.compute_ids.clone(),
            shards: c.config.broker_shards as usize,
            faults,
            horizon: SimDuration::from_secs(horizon_s),
            max_heal: SimDuration::from_secs(horizon_s / 4),
        };
        FaultPlan::random(seed, &shape)
    };
    let mut ctrl = ChaosController::new(plan);
    ctrl.arm(&mut c);

    let mut ok = 0usize;
    let mut probes = 0usize;
    let mut degraded = 0usize;
    let mut boundaries = 0usize;
    let mut t = SimTime::ZERO;
    while t < SimTime::from_secs(horizon_s) {
        t += SimDuration::from_secs(probe_s);
        ctrl.advance_to(&mut c, t);
        boundaries += 1;
        if c.degraded() {
            degraded += 1;
        }
        // Probe 1: a new home login (IdP/CA outages and shard seizures).
        probes += 1;
        if broker.write().login(&db, alice, None).is_ok() {
            ok += 1;
        }
        // Probe 2: a fresh sister credential validated at the home
        // replica (feed staleness fails closed).
        probes += 1;
        if let Ok(tok) = sister.write().login(&db, alice, None) {
            if c.validate_federated_token(&tok).is_ok() {
                ok += 1;
            }
        }
    }
    SweepPoint {
        faults,
        availability: ok as f64 / probes as f64,
        degraded_fraction: degraded as f64 / boundaries as f64,
        alerts_fired: c.obs.slo.alerts().fired(),
        applied: ctrl.applied.len(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (step_s, horizon_s, probe_s, intensities): (u64, u64, u64, &[usize]) = if smoke {
        (20, 1800, 60, &[0, 3])
    } else {
        (10, 3600, 30, &[0, 2, 5, 10])
    };
    println!(
        "exp_chaos: fault injection + degradation ({} mode)\n",
        if smoke { "smoke" } else { "full" }
    );

    // Gate 2: severed feed (run first — it is the headline number).
    let (ttfc_s, recover_s) = scenario_severed_feed(step_s);
    println!(
        "severed feed: fail-closed {ttfc_s:.0} s after sever (budget {:.0} s), \
         recovered {recover_s:.0} s after heal (anti-entropy {:.0} s)",
        SeparationConfig::llsc().revsync_max_lag.as_secs_f64(),
        SeparationConfig::llsc().revsync_anti_entropy.as_secs_f64(),
    );

    // Gate 3: IdP outage.
    let (validated, rejected) = scenario_idp_outage(step_s);
    println!(
        "idp outage: {validated}/{validated} minted-token validations served, \
         {rejected}/{rejected} new logins refused Unavailable\n"
    );

    // Gates 1 + 4: the intensity sweep (intensity 0 is the baseline).
    let mut points = Vec::new();
    for &faults in intensities {
        let p = sweep_point(0xC4A0, faults, horizon_s, probe_s);
        println!(
            "intensity {:>2}: availability {:.3}, degraded {:.3} of boundaries, \
             {} alerts, {} faults applied",
            p.faults, p.availability, p.degraded_fraction, p.alerts_fired, p.applied
        );
        points.push(p);
    }
    let baseline = &points[0];
    assert_or_dump!(
        baseline.availability == 1.0,
        format!("{}", baseline.availability),
        "the fault-free baseline must probe at 100% availability"
    );
    assert_or_dump!(
        baseline.alerts_fired == 0 && baseline.degraded_fraction == 0.0,
        format!(
            "{} alerts, degraded {}",
            baseline.alerts_fired, baseline.degraded_fraction
        ),
        "the fault-free baseline must raise zero alerts"
    );
    // Same-seed determinism: the sweep's heaviest point replays exactly.
    let heaviest = *intensities.last().expect("non-empty sweep");
    let a = sweep_point(0xC4A0, heaviest, horizon_s, probe_s);
    let b = &points[points.len() - 1];
    assert_or_dump!(
        a.availability == b.availability
            && a.degraded_fraction == b.degraded_fraction
            && a.alerts_fired == b.alerts_fired
            && a.applied == b.applied,
        format!(
            "({}, {}, {}, {}) vs ({}, {}, {}, {})",
            a.availability,
            a.degraded_fraction,
            a.alerts_fired,
            a.applied,
            b.availability,
            b.degraded_fraction,
            b.alerts_fired,
            b.applied
        ),
        "same seed must reproduce the identical sweep point"
    );
    println!("\nreplay check: intensity {heaviest} reproduced bit-identically");

    // Artifact.
    let mut json = String::new();
    json.push_str("{\n  \"experiment\": \"chaos\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(
        json,
        "  \"severed_feed\": {{ \"time_to_fail_closed_s\": {ttfc_s:.0}, \
         \"budget_s\": {:.0}, \"time_to_recover_s\": {recover_s:.0}, \
         \"anti_entropy_s\": {:.0} }},",
        SeparationConfig::llsc().revsync_max_lag.as_secs_f64(),
        SeparationConfig::llsc().revsync_anti_entropy.as_secs_f64(),
    );
    let _ = writeln!(
        json,
        "  \"idp_outage\": {{ \"minted_validations_served\": {validated}, \
         \"new_logins_rejected\": {rejected} }},",
    );
    json.push_str("  \"intensity_sweep\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"faults\": {}, \"availability\": {:.4}, \
             \"degraded_fraction\": {:.4}, \"alerts_fired\": {}, \"applied\": {} }}{}",
            p.faults,
            p.availability,
            p.degraded_fraction,
            p.alerts_fired,
            p.applied,
            if i + 1 == points.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    let out = if smoke {
        "BENCH_chaos.smoke.json"
    } else {
        "BENCH_chaos.json"
    };
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
