//! E7 — filesystem sharing matrix (paper Sec. IV-C + Appendix).
//!
//! Every sharing technique a user might try, against: a stranger, a fellow
//! project-group member, and the intended project path — under the vanilla
//! kernel and under the File Permission Handler. The Appendix claim: the
//! patches + user private groups "effectively prevent users sharing data via
//! the filesystem unless they are both members of the same supplemental
//! group".

use eus_bench::table::TextTable;
use eus_core::{ClusterSpec, SecureCluster, SeparationConfig};
use eus_simos::{Mode, Perm, PosixAcl};

fn main() {
    println!("E7: filesystem sharing matrix (Sec. IV-C)\n");
    let mut table = TextTable::new(&["kernel", "attempt", "target", "outcome"]);

    for fsperm in [false, true] {
        let mut cfg = SeparationConfig::llsc();
        cfg.fsperm = fsperm;
        let mut c = SecureCluster::new(cfg, ClusterSpec::default());
        let alice = c.add_user("alice").unwrap();
        let bob = c.add_user("bob").unwrap();
        let eve = c.add_user("eve").unwrap();
        let proj = c.create_project("fusion", alice).unwrap();
        c.add_project_member(alice, proj, bob).unwrap();
        let login = c.login_node();
        let kernel = if fsperm {
            "patched (smask 007)"
        } else {
            "vanilla"
        };

        let outcome = |ok: bool| if ok { "SHARED" } else { "blocked" }.to_string();

        // world bits at create
        c.fs_write(alice, login, "/tmp/w", Mode::new(0o666), b"x")
            .unwrap();
        table.row(&[
            kernel.to_string(),
            "create mode 0666 in /tmp".into(),
            "stranger".into(),
            outcome(c.fs_read(eve, login, "/tmp/w").is_ok()),
        ]);

        // world bits via chmod
        c.fs_write(alice, login, "/tmp/wc", Mode::new(0o600), b"x")
            .unwrap();
        let _ = c.fs_chmod(alice, login, "/tmp/wc", Mode::new(0o666));
        table.row(&[
            kernel.to_string(),
            "chmod 0666 after create".into(),
            "stranger".into(),
            outcome(c.fs_read(eve, login, "/tmp/wc").is_ok()),
        ]);

        // ACL to a stranger
        c.fs_write(alice, login, "/tmp/acl-e", Mode::new(0o600), b"x")
            .unwrap();
        let granted = c
            .fs_setfacl(
                alice,
                login,
                "/tmp/acl-e",
                PosixAcl::new(Perm::NONE).with_user(eve, Perm::R),
            )
            .is_ok();
        table.row(&[
            kernel.to_string(),
            "setfacl u:eve:r".into(),
            "stranger".into(),
            outcome(granted && c.fs_read(eve, login, "/tmp/acl-e").is_ok()),
        ]);

        // ACL to a group the granter is not in
        let eve_upg = c.db.read().user(eve).unwrap().private_group;
        let granted = c
            .fs_setfacl(
                alice,
                login,
                "/tmp/acl-e",
                PosixAcl::new(Perm::NONE).with_group(eve_upg, Perm::R),
            )
            .is_ok();
        table.row(&[
            kernel.to_string(),
            "setfacl g:<eve's upg>:r".into(),
            "stranger".into(),
            outcome(granted && c.fs_read(eve, login, "/tmp/acl-e").is_ok()),
        ]);

        // home directory default-mode file
        c.fs_write(
            alice,
            login,
            "/home/alice/paper.tex",
            Mode::new(0o644),
            b"x",
        )
        .unwrap();
        table.row(&[
            kernel.to_string(),
            "0644 file in own home".into(),
            "stranger".into(),
            outcome(c.fs_read(eve, login, "/home/alice/paper.tex").is_ok()),
        ]);

        // ACL to a fellow project member (intended fine-grained share)
        c.fs_write(alice, login, "/tmp/acl-b", Mode::new(0o600), b"x")
            .unwrap();
        let granted = c
            .fs_setfacl(
                alice,
                login,
                "/tmp/acl-b",
                PosixAcl::new(Perm::NONE).with_user(bob, Perm::R),
            )
            .is_ok();
        table.row(&[
            kernel.to_string(),
            "setfacl u:bob:r (groupmate)".into(),
            "group member".into(),
            outcome(granted && c.fs_read(bob, login, "/tmp/acl-b").is_ok()),
        ]);

        // the project directory (the intended channel)
        c.fs_write(alice, login, "/proj/fusion/data", Mode::new(0o660), b"x")
            .unwrap();
        table.row(&[
            kernel.to_string(),
            "file in setgid /proj/fusion".into(),
            "group member".into(),
            outcome(c.fs_read(bob, login, "/proj/fusion/data").is_ok()),
        ]);
        table.row(&[
            kernel.to_string(),
            "file in setgid /proj/fusion".into(),
            "stranger".into(),
            outcome(c.fs_read(eve, login, "/proj/fusion/data").is_ok()),
        ]);
    }

    print!("{}", table.render());
    println!("\nclaim check: on the patched kernel the ONLY rows reading SHARED are the");
    println!("intended group-scoped ones; on vanilla, every accidental path shares too.");
}
