//! E14 (context) — the security/performance trade-off of paper Sec. I.
//!
//! "The patches that mitigated the Spectre and Meltdown hardware
//! vulnerabilities impacted performance between 15-40%" (paper ref. 2) — the class of
//! control whose cost *scales with work* and which some sites therefore
//! disable. This experiment contrasts that with the paper's separation
//! mechanisms: we inflate job runtimes by a syscall-weighted mitigation
//! penalty and measure cluster throughput, then show the UBF's cost on the
//! same workload model for comparison (per-connection, not per-cycle).

use eus_bench::standard_trace;
use eus_bench::table::{f, pct, TextTable};
use eus_sched::{NodeSharing, SchedConfig, Scheduler};
use eus_simcore::SimDuration;

fn run_with_penalty(penalty: f64) -> (u64, f64, f64) {
    let trace = standard_trace(40, 2, 11);
    let mut sched = Scheduler::new(SchedConfig {
        policy: NodeSharing::WholeNodeUser,
        ..SchedConfig::default()
    });
    for _ in 0..24 {
        sched.add_node(16, 65_536, 0);
    }
    for e in &trace.entries {
        let mut spec = e.spec.clone();
        let slowed = spec.duration.as_secs_f64() * (1.0 + penalty);
        spec.duration = SimDuration::from_secs_f64(slowed);
        spec.time_limit = spec.duration;
        sched.submit_at(e.at, spec);
    }
    let end = sched.run_to_completion();
    let makespan = end.as_secs_f64();
    (
        sched.metrics.completed.get(),
        sched.metrics.completed.get() as f64 / (makespan / 3600.0),
        sched.effective_utilization(),
    )
}

fn main() {
    println!("E14 (context): per-cycle mitigations vs per-connection separation (Sec. I)\n");
    let mut table = TextTable::new(&[
        "mitigation penalty",
        "jobs",
        "throughput jobs/h",
        "effective util",
    ]);
    let baseline = run_with_penalty(0.0);
    for penalty in [0.0, 0.15, 0.40] {
        let (jobs, thpt, util) = run_with_penalty(penalty);
        table.row(&[pct(penalty), jobs.to_string(), f(thpt, 0), pct(util)]);
    }
    print!("{}", table.render());
    let (_, base_thpt, _) = baseline;
    let (_, worst_thpt, _) = run_with_penalty(0.40);
    println!(
        "\nthroughput loss at 40% penalty: {}%",
        f(100.0 * (1.0 - worst_thpt / base_thpt), 1)
    );
    println!("\ncompare: the separation mechanisms in this repo charge per *event* —");
    println!("one ident RTT per new connection (E9: 0.03% on long flows), seconds per");
    println!("job for GPU scrubs (E11), zero on compute. That asymmetry is the paper's");
    println!("thesis: there are strong controls whose cost does not scale with FLOPs.");
}
