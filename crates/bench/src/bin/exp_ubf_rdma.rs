//! E9b — RDMA coverage by the UBF (paper Sec. IV-D + Appendix).
//!
//! "Many such applications use a TCP connection as a control channel to set
//! up their InfiniBand queue pairs and thus can be effectively controlled by
//! the UBF. This does not prevent applications from using the connection
//! manager (CM) directly." The matrix shows both paths for every
//! relationship.

use eus_bench::table::TextTable;
use eus_core::{ClusterSpec, SecureCluster, SeparationConfig};
use eus_simnet::{PeerInfo, Proto, SocketAddr};

fn main() {
    println!("E9b: RDMA setup paths vs the UBF (Sec. IV-D)\n");
    let mut table = TextTable::new(&["setup path", "initiator", "QP established", "remote read"]);

    let mut c = SecureCluster::new(SeparationConfig::llsc(), ClusterSpec::default());
    let alice = c.add_user("alice").unwrap();
    let bob = c.add_user("bob").unwrap();
    let n1 = c.compute_ids[0];
    let n2 = c.compute_ids[1];

    // Alice's job memory, registered for RDMA, rendezvous listener up.
    let rkey = c
        .fabric
        .rdma_register(n2, alice, b"alice gradient buffer".to_vec())
        .unwrap();
    c.listen(alice, n2, Proto::Tcp, 18515, None).unwrap();

    for (who, name) in [(alice, "same user"), (bob, "other user")] {
        let peer = PeerInfo::from_cred(&c.credentials(who));

        // TCP control channel path.
        match c
            .fabric
            .setup_qp_via_tcp(n1, peer, SocketAddr::new(n2, 18515))
        {
            Ok(qp) => {
                let read = c.fabric.rdma_read(&qp, rkey).is_ok();
                table.row(&[
                    "TCP control channel".into(),
                    name.into(),
                    "yes".into(),
                    if read { "DATA READ" } else { "failed" }.into(),
                ]);
            }
            Err(e) => {
                table.row(&[
                    "TCP control channel".into(),
                    name.into(),
                    format!("no ({e})"),
                    "-".into(),
                ]);
            }
        }

        // Native connection manager path.
        match c.fabric.setup_qp_native_cm(n1, peer, n2) {
            Ok(qp) => {
                let read = c.fabric.rdma_read(&qp, rkey).is_ok();
                table.row(&[
                    "native IB CM".into(),
                    name.into(),
                    "yes".into(),
                    if read { "DATA READ" } else { "failed" }.into(),
                ]);
            }
            Err(e) => {
                table.row(&[
                    "native IB CM".into(),
                    name.into(),
                    format!("no ({e})"),
                    "-".into(),
                ]);
            }
        }
    }

    print!("{}", table.render());
    println!("\nclaim check: the TCP-rendezvous row is blocked for the other user (the");
    println!("common MPI case is covered); the native-CM row reads the data regardless —");
    println!("the residual path the paper explicitly acknowledges in Sec. V.");
}
