//! E6 — `pam_slurm` ssh gating (paper Sec. IV-B).
//!
//! The access matrix: (has a job on the node?, is an operator?) × (pam_slurm
//! on/off) → ssh outcome, plus revocation when the job ends.

use eus_bench::table::TextTable;
use eus_core::{ClusterSpec, SecureCluster, SeparationConfig};
use eus_sched::JobSpec;
use eus_simcore::{SimDuration, SimTime};

fn main() {
    println!("E6: pam_slurm ssh admission (Sec. IV-B)\n");
    let mut table = TextTable::new(&["config", "scenario", "ssh result"]);

    for pam_on in [false, true] {
        let mut cfg = SeparationConfig::llsc();
        cfg.pam_slurm = pam_on;
        let mut c = SecureCluster::new(cfg, ClusterSpec::default());
        let alice = c.add_user("alice").unwrap();
        let bob = c.add_user("bob").unwrap();
        let operator = c.add_user("operator").unwrap();
        c.sched.write().add_admin(operator);

        c.submit(JobSpec::new(alice, "run", SimDuration::from_secs(100)));
        c.advance_to(SimTime::from_secs(1));
        let job_node = c.compute_ids[0];
        let other_node = c.compute_ids[1];
        let label = if pam_on {
            "pam_slurm on"
        } else {
            "pam_slurm off"
        };

        let mut attempt = |c: &mut SecureCluster, who, node, desc: &str| {
            let result = match c.ssh(who, node) {
                Ok(_) => "allowed".to_string(),
                Err(e) => format!("denied ({e})"),
            };
            table.row(&[label.to_string(), desc.to_string(), result]);
        };

        attempt(&mut c, alice, job_node, "owner -> node running her job");
        attempt(&mut c, alice, other_node, "owner -> idle node (no job)");
        attempt(&mut c, bob, job_node, "other user -> victim's node");
        attempt(&mut c, operator, job_node, "operator -> any node");

        // Revocation: after the job ends, the owner loses access too.
        c.run_to_completion();
        attempt(&mut c, alice, job_node, "owner -> same node, job finished");
    }

    print!("{}", table.render());
    println!("\nclaim check: with pam_slurm, compute-node ssh tracks live allocations");
    println!("exactly; without it, anyone walks onto any node.");
}
