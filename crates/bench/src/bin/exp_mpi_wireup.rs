//! E9c — MPI job wire-up under the UBF (paper Secs. I, IV-D).
//!
//! The paper's performance sensitivity: "a few milliseconds longer for a
//! remote dynamic memory access (RDMA) transfer can significantly degrade a
//! message passing interface (MPI) job." The UBF inspects each rank pair's
//! first connection. This experiment wires up an all-to-all rank mesh and
//! reports total setup time without the UBF, with it (cold caches), and the
//! per-pair steady state — then the *transfer phase* cost, which must be
//! identical in all cases.

use bytes::Bytes;
use eus_bench::table::{f, TextTable};
use eus_simcore::SimDuration;
use eus_simnet::{ConnId, Fabric, PeerInfo, Proto, SocketAddr};
use eus_simos::{NodeId, UserDb};
use eus_ubf::{deploy_ubf, shared_user_db, UbfConfig};

/// Wire an all-to-all mesh of `ranks` across `nodes` hosts; returns
/// (modeled total wire-up time, open connections, fabric).
fn wire_up(ranks: u32, nodes: u32, ubf: bool) -> (SimDuration, Vec<ConnId>, Fabric) {
    let mut db = UserDb::new();
    let user = db.create_user("mpi-user").unwrap();
    let shared = shared_user_db(db);
    let mut f = Fabric::new();
    for n in 1..=nodes {
        f.add_host(NodeId(n));
        if ubf {
            deploy_ubf(
                f.host_mut(NodeId(n)).unwrap(),
                shared.clone(),
                UbfConfig::default(),
            );
        }
    }
    let peer = PeerInfo::from_cred(&shared.read().credentials(user).unwrap());
    // One rendezvous listener per rank.
    let rank_home = |r: u32| NodeId(1 + (r % nodes));
    let rank_port = |r: u32| 20000u16 + r as u16;
    for r in 0..ranks {
        f.listen(rank_home(r), Proto::Tcp, rank_port(r), peer)
            .unwrap();
    }
    // All-to-all: rank i dials every rank j > i.
    let mut total = SimDuration::ZERO;
    let mut conns = Vec::new();
    for i in 0..ranks {
        for j in (i + 1)..ranks {
            let (id, setup) = f
                .connect(
                    rank_home(i),
                    peer,
                    SocketAddr::new(rank_home(j), rank_port(j)),
                    Proto::Tcp,
                )
                .expect("same-user wire-up always allowed");
            total += setup;
            conns.push(id);
        }
    }
    (total, conns, f)
}

fn main() {
    println!("E9c: MPI all-to-all wire-up under the UBF (Secs. I, IV-D)\n");
    let mut table = TextTable::new(&[
        "ranks",
        "pairs",
        "wire-up no UBF",
        "wire-up UBF",
        "overhead",
        "transfer 1MiB/pair (either)",
    ]);

    for ranks in [8u32, 16, 32, 64] {
        let nodes = 8;
        let (base, _, _) = wire_up(ranks, nodes, false);
        let (with_ubf, conns, mut fabric) = wire_up(ranks, nodes, true);
        // Transfer phase: 1 MiB per pair on the established mesh.
        let payload = Bytes::from(vec![0u8; 1 << 20]);
        let mut transfer = SimDuration::ZERO;
        for &c in &conns {
            transfer += fabric.send(c, &payload).unwrap();
        }
        let pairs = ranks * (ranks - 1) / 2;
        let overhead = with_ubf.as_secs_f64() / base.as_secs_f64() - 1.0;
        table.row(&[
            ranks.to_string(),
            pairs.to_string(),
            base.to_string(),
            with_ubf.to_string(),
            format!("{}%", f(100.0 * overhead, 1)),
            transfer.to_string(),
        ]);
        // Sanity: everything queued exactly once per pair (no established
        // packet inspected).
        assert_eq!(
            fabric.metrics.queued_packets.get(),
            pairs as u64,
            "one inspection per pair"
        );
    }

    print!("{}", table.render());
    println!("\nclaim check: wire-up pays one inspection per rank pair (cache turns the");
    println!("ident RTT into a lookup after the first); the transfer phase — where MPI");
    println!("performance lives — is identical with and without the UBF.");
}
