//! E10 — web portal authentication/authorization (paper Sec. IV-E).
//!
//! Fetch outcomes for every requester class against a private app and a
//! project-shared app, comparing the paper's portal (route authorization +
//! user-identity forwarding) with a naive authenticated reverse proxy.

use eus_bench::table::TextTable;
use eus_core::{ClusterSpec, SecureCluster, SeparationConfig};
use eus_portal::Token;
use eus_sched::JobId;

fn main() {
    println!("E10: portal authorization matrix (Sec. IV-E)\n");
    let mut table = TextTable::new(&["portal", "requester", "target", "outcome"]);

    for authz in [false, true] {
        let mut cfg = SeparationConfig::llsc();
        cfg.portal_authz = authz;
        let mut c = SecureCluster::new(cfg, ClusterSpec::default());
        let alice = c.add_user("alice").unwrap();
        let bob = c.add_user("bob").unwrap();
        let eve = c.add_user("eve").unwrap();
        let proj = c.create_project("proj", alice).unwrap();
        c.add_project_member(alice, proj, bob).unwrap();
        let node = c.compute_ids[0];
        let portal = if authz {
            "user-based (paper)"
        } else {
            "naive proxy"
        };

        let private = c
            .launch_webapp(
                alice,
                JobId(1),
                "jupyter",
                node,
                8888,
                "private notebook",
                None,
            )
            .unwrap();
        let shared = c
            .launch_webapp(
                alice,
                JobId(1),
                "dash",
                node,
                9999,
                "team dashboard",
                Some(proj),
            )
            .unwrap();

        let tokens: Vec<(&str, Token)> = vec![
            ("owner", c.portal_login(alice).unwrap()),
            ("groupmate", c.portal_login(bob).unwrap()),
            ("stranger", c.portal_login(eve).unwrap()),
        ];
        for (who, token) in &tokens {
            for (tname, key) in [("private app", &private), ("group app", &shared)] {
                let res = match c.portal_fetch(*token, key) {
                    Ok(r) => format!("200 OK ({}B, {}us)", r.body.len(), r.latency_us),
                    Err(e) => format!("denied ({e})"),
                };
                table.row(&[portal.to_string(), who.to_string(), tname.to_string(), res]);
            }
        }
        // No token at all.
        let res = match c.portal_fetch(Token(424242), &private) {
            Ok(_) => "200 OK (!!)".to_string(),
            Err(e) => format!("denied ({e})"),
        };
        table.row(&[
            portal.to_string(),
            "unauthenticated".into(),
            "private app".into(),
            res,
        ]);
    }

    print!("{}", table.render());
    println!("\nclaim check: the paper's portal admits owner+groupmate-on-group-app only;");
    println!("a naive proxy forwards any authenticated user to anyone's app.");
}
