//! Portal authentication: the "user authentication is required to connect to
//! the HPC Portal" half of Sec. IV-E. Credential verification itself is
//! abstracted (the real portal fronts the site SSO); what matters to the
//! separation model is the binding of a bearer token to a uid.
//!
//! Two hardening layers beyond the original naive store:
//!
//! * token material comes from a seeded [`SimRng`] stream, so session ids
//!   are unguessable (the original sequential counter let an attacker forge
//!   a neighbor's session by decrementing);
//! * sessions can carry a TTL on the simulation clock — [`whoami`] refuses
//!   stale tokens and [`sweep_expired`] evicts them — and, when a federated
//!   [`SharedBroker`] is attached, every lookup also consults the broker's
//!   revocation list, so central revocation is immediate at the portal.
//!
//! With a broker attached the portal also surfaces MFA self-service:
//! [`enroll_mfa`] binds a second factor at the realm IdP, and from the next
//! login on [`login_mfa`] must present a current window code.
//!
//! [`whoami`]: PortalAuth::whoami
//! [`sweep_expired`]: PortalAuth::sweep_expired
//! [`enroll_mfa`]: PortalAuth::enroll_mfa
//! [`login_mfa`]: PortalAuth::login_mfa
//! [`SharedBroker`]: eus_fedauth::SharedBroker

use eus_fedauth::{
    CredError, CredSerial, MfaCode, MfaEnrollment, RecoveryCode, SharedBroker, SignedToken,
};
use eus_simcore::{SimDuration, SimRng, SimTime};
use eus_simos::{Uid, UserDb};
use std::collections::BTreeMap;
use std::fmt;

/// An opaque session token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub u64);

/// Authentication errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// Unknown user at login.
    NoSuchUser(Uid),
    /// Token absent, expired, or revoked.
    InvalidToken,
    /// The federated broker refused the login.
    Federated(CredError),
    /// MFA enrollment needs a federated broker attached (there is no local
    /// IdP to hold the secret).
    MfaUnavailable,
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::NoSuchUser(u) => write!(f, "no such user {u}"),
            AuthError::InvalidToken => f.write_str("invalid or expired token"),
            AuthError::Federated(e) => write!(f, "federated login refused: {e}"),
            AuthError::MfaUnavailable => f.write_str("MFA enrollment requires a federated broker"),
        }
    }
}

impl std::error::Error for AuthError {}

#[derive(Debug, Clone, Copy)]
struct SessionEntry {
    user: Uid,
    /// Expiry instant; `None` = the legacy long-lived session.
    expires: Option<SimTime>,
    /// Backing broker credential, when federated.
    serial: Option<CredSerial>,
}

use eus_fedauth::splitmix64 as mix64;

/// Token store.
#[derive(Debug)]
pub struct PortalAuth {
    sessions: BTreeMap<Token, SessionEntry>,
    rng: SimRng,
    now: SimTime,
    ttl: Option<SimDuration>,
    broker: Option<SharedBroker>,
    /// Portal-private key for deriving web-session tokens from broker
    /// material: both 64-bit halves feed in, but without this key nobody
    /// who *observes* the bearer token (sister-site validators, relying
    /// services) can compute the portal session token from it.
    fold_key: u64,
}

impl Default for PortalAuth {
    fn default() -> Self {
        Self::new()
    }
}

impl PortalAuth {
    /// Empty store with long-lived sessions (no TTL) and a fixed seed; use
    /// [`with_seed`](Self::with_seed) to vary the token stream.
    pub fn new() -> Self {
        Self::with_seed(0x60A7_5EC5)
    }

    /// Empty store whose token material derives from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let fold_key = rng.range_u64(1, u64::MAX);
        PortalAuth {
            sessions: BTreeMap::new(),
            rng,
            now: SimTime::ZERO,
            ttl: None,
            broker: None,
            fold_key,
        }
    }

    /// Set a session TTL (applies to subsequent logins).
    pub fn with_ttl(mut self, ttl: SimDuration) -> Self {
        self.ttl = Some(ttl);
        self
    }

    /// Change the session TTL policy in place.
    pub fn set_ttl(&mut self, ttl: Option<SimDuration>) {
        self.ttl = ttl;
    }

    /// Route logins through a federated credential broker: tokens become
    /// broker-issued (short-TTL, centrally revocable) and every `whoami`
    /// consults the broker's revocation list.
    pub fn attach_broker(&mut self, broker: SharedBroker) {
        self.broker = Some(broker);
    }

    /// The store's current clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance the clock (monotonic; driven by the cluster simulation).
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Mint a portal token, preferring `seed` (derived from broker
    /// material) and falling back to the rng stream until the candidate is
    /// nonzero and unused. Every mint path collision-checks here: a
    /// colliding insert would silently clobber another live session — a
    /// cross-user session-confusion bug the federated path used to have.
    fn mint_unused_token(&mut self, seed: Option<u64>) -> Token {
        let mut candidate = seed.unwrap_or_else(|| self.rng.range_u64(1, u64::MAX));
        loop {
            if candidate != 0 && !self.sessions.contains_key(&Token(candidate)) {
                return Token(candidate);
            }
            candidate = self.rng.range_u64(1, u64::MAX);
        }
    }

    /// Authenticate a user (site SSO assumed) and mint a token. With a
    /// federated broker attached, users with a binding MFA enrollment must
    /// log in through [`login_mfa`](Self::login_mfa).
    pub fn login(&mut self, db: &UserDb, user: Uid) -> Result<Token, AuthError> {
        self.login_mfa(db, user, None)
    }

    /// [`login`](Self::login) with an optional one-time code for
    /// MFA-enrolled users (ignored without a broker: local sessions model
    /// the pre-federation portal, which had no second factor).
    pub fn login_mfa(
        &mut self,
        db: &UserDb,
        user: Uid,
        mfa: Option<MfaCode>,
    ) -> Result<Token, AuthError> {
        if db.user(user).is_none() {
            return Err(AuthError::NoSuchUser(user));
        }
        if let Some(broker) = self.broker.clone() {
            let signed = {
                let mut broker = broker.write();
                broker.advance_to(self.now);
                broker.login(db, user, mfa).map_err(AuthError::Federated)?
            };
            return Ok(self.record_federated_session(user, &signed));
        }
        // Local minting: unguessable material, collision-checked.
        let t = self.mint_unused_token(None);
        self.sessions.insert(
            t,
            SessionEntry {
                user,
                expires: self.ttl.map(|ttl| self.now + ttl),
                serial: None,
            },
        );
        Ok(t)
    }

    /// [`login`](Self::login) with a single-use MFA recovery code in place
    /// of the window code — the lost-authenticator path. The code is burned
    /// on success; requires a federated broker (local sessions predate the
    /// second factor entirely).
    pub fn login_recovery(
        &mut self,
        db: &UserDb,
        user: Uid,
        code: RecoveryCode,
    ) -> Result<Token, AuthError> {
        if db.user(user).is_none() {
            return Err(AuthError::NoSuchUser(user));
        }
        let broker = self.broker.clone().ok_or(AuthError::MfaUnavailable)?;
        let signed = {
            let mut broker = broker.write();
            broker.advance_to(self.now);
            broker
                .login_recovery(db, user, code)
                .map_err(AuthError::Federated)?
        };
        Ok(self.record_federated_session(user, &signed))
    }

    /// Record a broker-issued credential as a portal session. Derives the
    /// 64-bit portal token from the *full* 128-bit bearer material —
    /// truncating to the low half used to discard 64 bits of entropy —
    /// mixed with the portal-private key, so services that legitimately see
    /// the bearer token cannot compute the web session token from it (a
    /// plain high^low fold would let any such observer hijack the portal
    /// session).
    fn record_federated_session(&mut self, user: Uid, signed: &SignedToken) -> Token {
        let folded = mix64((signed.material >> 64) as u64 ^ self.fold_key)
            ^ mix64(signed.material as u64 ^ self.fold_key.rotate_left(21));
        let t = self.mint_unused_token(Some(folded));
        self.sessions.insert(
            t,
            SessionEntry {
                user,
                expires: Some(signed.expires),
                serial: Some(signed.serial),
            },
        );
        t
    }

    /// The portal's `enroll_mfa` route: a logged-in user enrolls a binding
    /// second factor at the realm IdP. The returned secret and single-use
    /// recovery codes are shown once (the QR-code moment); from the next
    /// login on, this user must present a current one-time code
    /// ([`login_mfa`](Self::login_mfa)) or burn a recovery code
    /// ([`login_recovery`](Self::login_recovery)).
    ///
    /// Rebinding an existing factor is step-up-gated: an already-challenged
    /// user must present their *current* code (`mfa`) or the route refuses —
    /// a stolen session token alone cannot swap in the thief's authenticator.
    pub fn enroll_mfa(
        &mut self,
        token: Token,
        mfa: Option<MfaCode>,
    ) -> Result<MfaEnrollment, AuthError> {
        let user = self.whoami(token)?;
        let broker = self.broker.as_ref().ok_or(AuthError::MfaUnavailable)?;
        let mut broker = broker.write();
        // Same clock sync as the login path: the step-up TOTP check must
        // judge the code against *now*, not the broker's last-seen time.
        broker.advance_to(self.now);
        broker.enroll_mfa(user, mfa).map_err(AuthError::Federated)
    }

    /// The portal's `unenroll_mfa` route: remove the session user's second
    /// factor. Step-up-gated exactly like rebinding — the current one-time
    /// code must be presented — so a stolen session token alone cannot
    /// strip an account down to single-factor. Remaining recovery codes are
    /// voided with the factor.
    pub fn unenroll_mfa(&mut self, token: Token, mfa: Option<MfaCode>) -> Result<(), AuthError> {
        let user = self.whoami(token)?;
        let broker = self.broker.as_ref().ok_or(AuthError::MfaUnavailable)?;
        let mut broker = broker.write();
        broker.advance_to(self.now);
        broker.unenroll_mfa(user, mfa).map_err(AuthError::Federated)
    }

    /// Resolve a token to its uid. Stale or centrally-revoked tokens are
    /// refused as [`AuthError::InvalidToken`].
    pub fn whoami(&self, token: Token) -> Result<Uid, AuthError> {
        let entry = self.sessions.get(&token).ok_or(AuthError::InvalidToken)?;
        if let Some(expires) = entry.expires {
            if self.now >= expires {
                return Err(AuthError::InvalidToken);
            }
        }
        if let (Some(broker), Some(serial)) = (&self.broker, entry.serial) {
            broker
                .read()
                .validate_serial(entry.user, serial)
                .map_err(|_| AuthError::InvalidToken)?;
        }
        Ok(entry.user)
    }

    /// Revoke a token. With a broker attached the backing credential is
    /// revoked centrally as well (immediate everywhere, irreversible).
    pub fn logout(&mut self, token: Token) -> bool {
        match self.sessions.remove(&token) {
            Some(entry) => {
                if let (Some(broker), Some(serial)) = (&self.broker, entry.serial) {
                    broker.write().revoke_serial(serial);
                }
                true
            }
            None => false,
        }
    }

    /// Evict expired sessions — and, with a broker attached, sessions whose
    /// backing credential was centrally revoked or already swept at the
    /// broker; returns how many were removed. All of these already fail
    /// [`whoami`](Self::whoami) — the sweep bounds the table size, as a
    /// production store must (a revoked-but-unexpired entry would otherwise
    /// stay resident until its 12h window lapsed).
    pub fn sweep_expired(&mut self) -> usize {
        let now = self.now;
        let before = self.sessions.len();
        let broker = self.broker.as_ref().map(|b| b.read());
        self.sessions.retain(|_, e| {
            if e.expires.is_some_and(|exp| now >= exp) {
                return false;
            }
            match (&broker, e.serial) {
                (Some(b), Some(serial)) => b.validate_serial(e.user, serial).is_ok(),
                _ => true,
            }
        });
        drop(broker);
        before - self.sessions.len()
    }

    /// Number of live sessions.
    pub fn live_sessions(&self) -> usize {
        self.sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eus_fedauth::{shared_broker, BrokerPolicy, CredentialBroker, RealmId};

    #[test]
    fn login_whoami_logout() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let mut auth = PortalAuth::new();
        let t = auth.login(&db, alice).unwrap();
        assert_eq!(auth.whoami(t).unwrap(), alice);
        assert!(auth.logout(t));
        assert_eq!(auth.whoami(t), Err(AuthError::InvalidToken));
        assert!(!auth.logout(t));
    }

    #[test]
    fn unknown_user_rejected() {
        let db = UserDb::new();
        let mut auth = PortalAuth::new();
        assert_eq!(
            auth.login(&db, Uid(999)),
            Err(AuthError::NoSuchUser(Uid(999)))
        );
    }

    #[test]
    fn tokens_are_unique_per_login() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let mut auth = PortalAuth::new();
        let t1 = auth.login(&db, alice).unwrap();
        let t2 = auth.login(&db, alice).unwrap();
        assert_ne!(t1, t2);
        assert_eq!(auth.live_sessions(), 2);
    }

    #[test]
    fn tokens_are_not_sequential() {
        // The original store minted Token(1), Token(2), ... — an attacker
        // could forge a neighbor's session by decrementing. Material is now
        // drawn from the seeded stream.
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let mut auth = PortalAuth::new();
        let t1 = auth.login(&db, alice).unwrap();
        let t2 = auth.login(&db, alice).unwrap();
        assert_ne!(t2.0, t1.0 + 1, "sequential tokens are guessable");
        assert!(t1.0 > u32::MAX as u64 || t2.0 > u32::MAX as u64);
        // Guessing near a known token finds nothing.
        assert_eq!(auth.whoami(Token(t1.0 - 1)), Err(AuthError::InvalidToken));
    }

    #[test]
    fn ttl_expires_sessions_on_the_sim_clock() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let mut auth = PortalAuth::new().with_ttl(SimDuration::from_secs(3600));
        let t = auth.login(&db, alice).unwrap();
        assert_eq!(auth.whoami(t).unwrap(), alice);

        auth.advance_to(SimTime::from_secs(3599));
        assert!(auth.whoami(t).is_ok(), "inside the window");
        auth.advance_to(SimTime::from_secs(3600));
        assert_eq!(auth.whoami(t), Err(AuthError::InvalidToken));

        assert_eq!(auth.live_sessions(), 1, "stale entry still resident");
        assert_eq!(auth.sweep_expired(), 1);
        assert_eq!(auth.live_sessions(), 0);
        assert_eq!(auth.sweep_expired(), 0, "sweep is idempotent");
    }

    #[test]
    fn broker_backed_concurrent_logins_both_stay_valid() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let broker = shared_broker(CredentialBroker::new(
            RealmId(1),
            5,
            BrokerPolicy::default(),
        ));
        let mut auth = PortalAuth::new();
        auth.attach_broker(broker);
        // Two tabs: the second login must not invalidate the first.
        let t1 = auth.login(&db, alice).unwrap();
        let t2 = auth.login(&db, alice).unwrap();
        assert_ne!(t1, t2);
        assert_eq!(auth.whoami(t1).unwrap(), alice);
        assert_eq!(auth.whoami(t2).unwrap(), alice);
        // Logging one out revokes only that tab's backing credential.
        assert!(auth.logout(t1));
        assert_eq!(auth.whoami(t1), Err(AuthError::InvalidToken));
        assert_eq!(auth.whoami(t2).unwrap(), alice);
    }

    #[test]
    fn federated_tokens_fold_full_material_and_collision_check() {
        // Regression: `Token(signed.material as u64)` truncated the u128
        // bearer material to its low half and skipped the collision check,
        // so a colliding token silently clobbered another live session.
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let broker = shared_broker(CredentialBroker::new(
            RealmId(1),
            5,
            BrokerPolicy::default(),
        ));
        let mut auth = PortalAuth::new();
        auth.attach_broker(broker.clone());

        let t = auth.login(&db, alice).unwrap();
        let material = broker.read().current_token(alice).unwrap().material;
        assert_ne!(t.0, material as u64, "low-half truncation is the old bug");
        assert_ne!(
            t.0,
            (material >> 64) as u64 ^ material as u64,
            "a publicly computable fold would let any bearer-token observer \
             (sister-site validators) hijack the web session"
        );
        assert_ne!(t.0, (material >> 64) as u64, "high-half truncation too");

        // Many federated logins: all tokens distinct, all sessions live
        // (a clobber would orphan earlier entries).
        let tokens: Vec<Token> = (0..500).map(|_| auth.login(&db, alice).unwrap()).collect();
        let distinct: std::collections::BTreeSet<_> = tokens.iter().collect();
        assert_eq!(distinct.len(), tokens.len());
        assert_eq!(auth.live_sessions(), 501);
        for t in &tokens {
            assert_eq!(auth.whoami(*t).unwrap(), alice);
        }
    }

    #[test]
    fn sweep_drops_centrally_revoked_federated_sessions() {
        // Regression: broker-revoked sessions failed whoami but stayed
        // resident in the portal table until their 12h window lapsed.
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let bob = db.create_user("bob").unwrap();
        let broker = shared_broker(CredentialBroker::new(
            RealmId(1),
            5,
            BrokerPolicy::default(),
        ));
        let mut auth = PortalAuth::new();
        auth.attach_broker(broker.clone());
        let _ta = auth.login(&db, alice).unwrap();
        let tb = auth.login(&db, bob).unwrap();
        assert_eq!(auth.live_sessions(), 2);

        broker.write().revoke_user(alice);
        assert_eq!(auth.sweep_expired(), 1, "alice's dead session evicted");
        assert_eq!(auth.live_sessions(), 1);
        assert_eq!(auth.whoami(tb).unwrap(), bob, "bob untouched");
        assert_eq!(auth.sweep_expired(), 0, "sweep is idempotent");
    }

    #[test]
    fn mfa_enrollment_is_enforced_on_next_login() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let broker = shared_broker(CredentialBroker::new(
            RealmId(1),
            5,
            BrokerPolicy::default(),
        ));
        let mut auth = PortalAuth::new();
        auth.attach_broker(broker.clone());

        // Enroll through the portal route while logged in.
        let t = auth.login(&db, alice).unwrap();
        assert!(!broker.read().mfa_challenged(alice));
        let secret = auth.enroll_mfa(t, None).unwrap().secret;
        assert!(
            broker.read().mfa_challenged(alice),
            "portal enrollment is binding"
        );

        // Next login without a code is refused; with the current window
        // code it succeeds.
        assert_eq!(
            auth.login(&db, alice),
            Err(AuthError::Federated(eus_fedauth::CredError::MfaRequired))
        );
        let code = eus_fedauth::realm::mfa_code_at(secret, broker.read().now());
        let t2 = auth.login_mfa(&db, alice, Some(code)).unwrap();
        assert_eq!(auth.whoami(t2).unwrap(), alice);

        // Enrollment requires a live session and a broker.
        assert!(auth.enroll_mfa(Token(123), None).is_err());
        let mut local = PortalAuth::new();
        let lt = local.login(&db, alice).unwrap();
        assert_eq!(local.enroll_mfa(lt, None), Err(AuthError::MfaUnavailable));
    }

    #[test]
    fn mfa_rebinding_requires_stepup_with_the_current_code() {
        // A stolen live session token alone must NOT let an attacker swap
        // in their own authenticator over an enrolled user's factor.
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let broker = shared_broker(CredentialBroker::new(
            RealmId(1),
            5,
            BrokerPolicy::default(),
        ));
        let mut auth = PortalAuth::new();
        auth.attach_broker(broker.clone());

        let t = auth.login(&db, alice).unwrap();
        let secret = auth.enroll_mfa(t, None).unwrap().secret;

        // Rebind attempts against the (still live) session: refused without
        // the current code, refused with a wrong code.
        assert_eq!(
            auth.enroll_mfa(t, None),
            Err(AuthError::Federated(eus_fedauth::CredError::MfaRequired))
        );
        let now = broker.read().now();
        let code = eus_fedauth::realm::mfa_code_at(secret, now);
        let wrong = eus_fedauth::MfaCode(code.0.wrapping_add(3) % 1_000_000);
        assert_eq!(
            auth.enroll_mfa(t, Some(wrong)),
            Err(AuthError::Federated(eus_fedauth::CredError::MfaInvalid))
        );
        // The legitimate owner, holding the current code, can rotate the
        // factor; the old secret stops validating at the next login.
        let secret2 = auth.enroll_mfa(t, Some(code)).unwrap().secret;
        assert_ne!(secret, secret2);
        let now = broker.read().now();
        let stale = eus_fedauth::realm::mfa_code_at(secret, now);
        assert!(auth.login_mfa(&db, alice, Some(stale)).is_err());
        let fresh = eus_fedauth::realm::mfa_code_at(secret2, now);
        assert!(auth.login_mfa(&db, alice, Some(fresh)).is_ok());

        // The step-up judges codes on the *portal's* clock: after the
        // portal advances past the broker's last-seen time, the code for
        // the current portal window rotates the factor (the route syncs the
        // broker clock like login does), and the t=0-era code is dead.
        auth.advance_to(SimTime::from_secs(300));
        let old_window = eus_fedauth::realm::mfa_code_at(secret2, now);
        let current = eus_fedauth::realm::mfa_code_at(secret2, SimTime::from_secs(300));
        assert_ne!(old_window, current);
        assert_eq!(
            auth.enroll_mfa(t, Some(old_window)),
            Err(AuthError::Federated(eus_fedauth::CredError::MfaInvalid))
        );
        assert!(auth.enroll_mfa(t, Some(current)).is_ok());
    }

    #[test]
    fn recovery_codes_login_once_and_unenroll_is_stepup_gated() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let broker = shared_broker(CredentialBroker::new(
            RealmId(1),
            5,
            BrokerPolicy::default(),
        ));
        let mut auth = PortalAuth::new();
        auth.attach_broker(broker.clone());

        let t = auth.login(&db, alice).unwrap();
        let enrollment = auth.enroll_mfa(t, None).unwrap();
        assert_eq!(
            enrollment.recovery.len(),
            eus_fedauth::RECOVERY_CODE_COUNT,
            "enrollment hands out the one-time-shown recovery codes"
        );

        // Lost authenticator: a recovery code logs in where a missing TOTP
        // would refuse — and burns.
        assert_eq!(
            auth.login(&db, alice),
            Err(AuthError::Federated(CredError::MfaRequired))
        );
        let code = enrollment.recovery[0];
        let t2 = auth.login_recovery(&db, alice, code).unwrap();
        assert_eq!(auth.whoami(t2).unwrap(), alice);
        assert_eq!(
            auth.login_recovery(&db, alice, code),
            Err(AuthError::Federated(CredError::MfaInvalid)),
            "a recovery code works exactly once"
        );
        // Unenrolled users get no recovery backdoor.
        let bob = db.create_user("bob").unwrap();
        assert!(auth
            .login_recovery(&db, bob, enrollment.recovery[1])
            .is_err());
        // And the route needs a broker at all.
        let mut local = PortalAuth::new();
        assert_eq!(
            local.login_recovery(&db, alice, code),
            Err(AuthError::MfaUnavailable)
        );

        // Unenroll: refused on the session alone, allowed with the current
        // code; afterwards login is single-factor again and the remaining
        // recovery codes are dead.
        assert_eq!(
            auth.unenroll_mfa(t2, None),
            Err(AuthError::Federated(CredError::MfaRequired))
        );
        let now_code = eus_fedauth::realm::mfa_code_at(enrollment.secret, auth.now());
        auth.unenroll_mfa(t2, Some(now_code)).unwrap();
        assert!(!broker.read().mfa_challenged(alice));
        assert!(auth.login(&db, alice).is_ok());
        assert!(
            auth.login_recovery(&db, alice, enrollment.recovery[2])
                .is_err(),
            "unenrolling voids the remaining codes"
        );
    }

    #[test]
    fn broker_backed_sessions_honor_central_revocation() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let broker = shared_broker(CredentialBroker::new(
            RealmId(1),
            5,
            BrokerPolicy::default(),
        ));
        let mut auth = PortalAuth::new();
        auth.attach_broker(broker.clone());

        let t = auth.login(&db, alice).unwrap();
        assert_eq!(auth.whoami(t).unwrap(), alice);
        // Central incident response: revoke at the broker, not the portal.
        broker.write().revoke_user(alice);
        assert_eq!(auth.whoami(t), Err(AuthError::InvalidToken));
    }
}
