//! Portal authentication: the "user authentication is required to connect to
//! the HPC Portal" half of Sec. IV-E. Credential verification itself is
//! abstracted (the real portal fronts the site SSO); what matters to the
//! separation model is the binding of a bearer token to a uid.

use eus_simos::{Uid, UserDb};
use std::collections::BTreeMap;
use std::fmt;

/// An opaque session token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub u64);

/// Authentication errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// Unknown user at login.
    NoSuchUser(Uid),
    /// Token absent or revoked.
    InvalidToken,
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::NoSuchUser(u) => write!(f, "no such user {u}"),
            AuthError::InvalidToken => f.write_str("invalid or expired token"),
        }
    }
}

impl std::error::Error for AuthError {}

/// Token store.
#[derive(Debug, Default)]
pub struct PortalAuth {
    sessions: BTreeMap<Token, Uid>,
    next: u64,
}

impl PortalAuth {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Authenticate a user (site SSO assumed) and mint a token.
    pub fn login(&mut self, db: &UserDb, user: Uid) -> Result<Token, AuthError> {
        if db.user(user).is_none() {
            return Err(AuthError::NoSuchUser(user));
        }
        self.next += 1;
        let t = Token(self.next);
        self.sessions.insert(t, user);
        Ok(t)
    }

    /// Resolve a token to its uid.
    pub fn whoami(&self, token: Token) -> Result<Uid, AuthError> {
        self.sessions
            .get(&token)
            .copied()
            .ok_or(AuthError::InvalidToken)
    }

    /// Revoke a token.
    pub fn logout(&mut self, token: Token) -> bool {
        self.sessions.remove(&token).is_some()
    }

    /// Number of live sessions.
    pub fn live_sessions(&self) -> usize {
        self.sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn login_whoami_logout() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let mut auth = PortalAuth::new();
        let t = auth.login(&db, alice).unwrap();
        assert_eq!(auth.whoami(t).unwrap(), alice);
        assert!(auth.logout(t));
        assert_eq!(auth.whoami(t), Err(AuthError::InvalidToken));
        assert!(!auth.logout(t));
    }

    #[test]
    fn unknown_user_rejected() {
        let db = UserDb::new();
        let mut auth = PortalAuth::new();
        assert_eq!(
            auth.login(&db, Uid(999)),
            Err(AuthError::NoSuchUser(Uid(999)))
        );
    }

    #[test]
    fn tokens_are_unique_per_login() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let mut auth = PortalAuth::new();
        let t1 = auth.login(&db, alice).unwrap();
        let t2 = auth.login(&db, alice).unwrap();
        assert_ne!(t1, t2);
        assert_eq!(auth.live_sessions(), 2);
    }
}
