//! Portal authentication: the "user authentication is required to connect to
//! the HPC Portal" half of Sec. IV-E. Credential verification itself is
//! abstracted (the real portal fronts the site SSO); what matters to the
//! separation model is the binding of a bearer token to a uid.
//!
//! Two hardening layers beyond the original naive store:
//!
//! * token material comes from a seeded [`SimRng`] stream, so session ids
//!   are unguessable (the original sequential counter let an attacker forge
//!   a neighbor's session by decrementing);
//! * sessions can carry a TTL on the simulation clock — [`whoami`] refuses
//!   stale tokens and [`sweep_expired`] evicts them — and, when a federated
//!   [`SharedBroker`] is attached, every lookup also consults the broker's
//!   revocation list, so central revocation is immediate at the portal.
//!
//! [`whoami`]: PortalAuth::whoami
//! [`sweep_expired`]: PortalAuth::sweep_expired
//! [`SharedBroker`]: eus_fedauth::SharedBroker

use eus_fedauth::{CredError, CredSerial, SharedBroker};
use eus_simcore::{SimDuration, SimRng, SimTime};
use eus_simos::{Uid, UserDb};
use std::collections::BTreeMap;
use std::fmt;

/// An opaque session token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub u64);

/// Authentication errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// Unknown user at login.
    NoSuchUser(Uid),
    /// Token absent, expired, or revoked.
    InvalidToken,
    /// The federated broker refused the login.
    Federated(CredError),
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::NoSuchUser(u) => write!(f, "no such user {u}"),
            AuthError::InvalidToken => f.write_str("invalid or expired token"),
            AuthError::Federated(e) => write!(f, "federated login refused: {e}"),
        }
    }
}

impl std::error::Error for AuthError {}

#[derive(Debug, Clone, Copy)]
struct SessionEntry {
    user: Uid,
    /// Expiry instant; `None` = the legacy long-lived session.
    expires: Option<SimTime>,
    /// Backing broker credential, when federated.
    serial: Option<CredSerial>,
}

/// Token store.
#[derive(Debug)]
pub struct PortalAuth {
    sessions: BTreeMap<Token, SessionEntry>,
    rng: SimRng,
    now: SimTime,
    ttl: Option<SimDuration>,
    broker: Option<SharedBroker>,
}

impl Default for PortalAuth {
    fn default() -> Self {
        Self::new()
    }
}

impl PortalAuth {
    /// Empty store with long-lived sessions (no TTL) and a fixed seed; use
    /// [`with_seed`](Self::with_seed) to vary the token stream.
    pub fn new() -> Self {
        Self::with_seed(0x60A7_5EC5)
    }

    /// Empty store whose token material derives from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        PortalAuth {
            sessions: BTreeMap::new(),
            rng: SimRng::seed_from_u64(seed),
            now: SimTime::ZERO,
            ttl: None,
            broker: None,
        }
    }

    /// Set a session TTL (applies to subsequent logins).
    pub fn with_ttl(mut self, ttl: SimDuration) -> Self {
        self.ttl = Some(ttl);
        self
    }

    /// Change the session TTL policy in place.
    pub fn set_ttl(&mut self, ttl: Option<SimDuration>) {
        self.ttl = ttl;
    }

    /// Route logins through a federated credential broker: tokens become
    /// broker-issued (short-TTL, centrally revocable) and every `whoami`
    /// consults the broker's revocation list.
    pub fn attach_broker(&mut self, broker: SharedBroker) {
        self.broker = Some(broker);
    }

    /// The store's current clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance the clock (monotonic; driven by the cluster simulation).
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Authenticate a user (site SSO assumed) and mint a token.
    pub fn login(&mut self, db: &UserDb, user: Uid) -> Result<Token, AuthError> {
        if db.user(user).is_none() {
            return Err(AuthError::NoSuchUser(user));
        }
        if let Some(broker) = &self.broker {
            let mut broker = broker.write();
            broker.advance_to(self.now);
            let signed = broker.login(db, user, None).map_err(AuthError::Federated)?;
            let t = Token(signed.material as u64);
            self.sessions.insert(
                t,
                SessionEntry {
                    user,
                    expires: Some(signed.expires),
                    serial: Some(signed.serial),
                },
            );
            return Ok(t);
        }
        // Local minting: unguessable material, collision-checked.
        let t = loop {
            let candidate = Token(self.rng.range_u64(1, u64::MAX));
            if !self.sessions.contains_key(&candidate) {
                break candidate;
            }
        };
        self.sessions.insert(
            t,
            SessionEntry {
                user,
                expires: self.ttl.map(|ttl| self.now + ttl),
                serial: None,
            },
        );
        Ok(t)
    }

    /// Resolve a token to its uid. Stale or centrally-revoked tokens are
    /// refused as [`AuthError::InvalidToken`].
    pub fn whoami(&self, token: Token) -> Result<Uid, AuthError> {
        let entry = self.sessions.get(&token).ok_or(AuthError::InvalidToken)?;
        if let Some(expires) = entry.expires {
            if self.now >= expires {
                return Err(AuthError::InvalidToken);
            }
        }
        if let (Some(broker), Some(serial)) = (&self.broker, entry.serial) {
            broker
                .read()
                .validate_serial(entry.user, serial)
                .map_err(|_| AuthError::InvalidToken)?;
        }
        Ok(entry.user)
    }

    /// Revoke a token. With a broker attached the backing credential is
    /// revoked centrally as well (immediate everywhere, irreversible).
    pub fn logout(&mut self, token: Token) -> bool {
        match self.sessions.remove(&token) {
            Some(entry) => {
                if let (Some(broker), Some(serial)) = (&self.broker, entry.serial) {
                    broker.write().revoke_serial(serial);
                }
                true
            }
            None => false,
        }
    }

    /// Evict expired sessions; returns how many were removed. Expired
    /// tokens already fail [`whoami`](Self::whoami) — the sweep bounds the
    /// table size, as a production store must.
    pub fn sweep_expired(&mut self) -> usize {
        let now = self.now;
        let before = self.sessions.len();
        self.sessions
            .retain(|_, e| e.expires.is_none_or(|exp| now < exp));
        before - self.sessions.len()
    }

    /// Number of live sessions.
    pub fn live_sessions(&self) -> usize {
        self.sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eus_fedauth::{shared_broker, BrokerPolicy, CredentialBroker, RealmId};

    #[test]
    fn login_whoami_logout() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let mut auth = PortalAuth::new();
        let t = auth.login(&db, alice).unwrap();
        assert_eq!(auth.whoami(t).unwrap(), alice);
        assert!(auth.logout(t));
        assert_eq!(auth.whoami(t), Err(AuthError::InvalidToken));
        assert!(!auth.logout(t));
    }

    #[test]
    fn unknown_user_rejected() {
        let db = UserDb::new();
        let mut auth = PortalAuth::new();
        assert_eq!(
            auth.login(&db, Uid(999)),
            Err(AuthError::NoSuchUser(Uid(999)))
        );
    }

    #[test]
    fn tokens_are_unique_per_login() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let mut auth = PortalAuth::new();
        let t1 = auth.login(&db, alice).unwrap();
        let t2 = auth.login(&db, alice).unwrap();
        assert_ne!(t1, t2);
        assert_eq!(auth.live_sessions(), 2);
    }

    #[test]
    fn tokens_are_not_sequential() {
        // The original store minted Token(1), Token(2), ... — an attacker
        // could forge a neighbor's session by decrementing. Material is now
        // drawn from the seeded stream.
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let mut auth = PortalAuth::new();
        let t1 = auth.login(&db, alice).unwrap();
        let t2 = auth.login(&db, alice).unwrap();
        assert_ne!(t2.0, t1.0 + 1, "sequential tokens are guessable");
        assert!(t1.0 > u32::MAX as u64 || t2.0 > u32::MAX as u64);
        // Guessing near a known token finds nothing.
        assert_eq!(auth.whoami(Token(t1.0 - 1)), Err(AuthError::InvalidToken));
    }

    #[test]
    fn ttl_expires_sessions_on_the_sim_clock() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let mut auth = PortalAuth::new().with_ttl(SimDuration::from_secs(3600));
        let t = auth.login(&db, alice).unwrap();
        assert_eq!(auth.whoami(t).unwrap(), alice);

        auth.advance_to(SimTime::from_secs(3599));
        assert!(auth.whoami(t).is_ok(), "inside the window");
        auth.advance_to(SimTime::from_secs(3600));
        assert_eq!(auth.whoami(t), Err(AuthError::InvalidToken));

        assert_eq!(auth.live_sessions(), 1, "stale entry still resident");
        assert_eq!(auth.sweep_expired(), 1);
        assert_eq!(auth.live_sessions(), 0);
        assert_eq!(auth.sweep_expired(), 0, "sweep is idempotent");
    }

    #[test]
    fn broker_backed_concurrent_logins_both_stay_valid() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let broker = shared_broker(CredentialBroker::new(
            RealmId(1),
            5,
            BrokerPolicy::default(),
        ));
        let mut auth = PortalAuth::new();
        auth.attach_broker(broker);
        // Two tabs: the second login must not invalidate the first.
        let t1 = auth.login(&db, alice).unwrap();
        let t2 = auth.login(&db, alice).unwrap();
        assert_ne!(t1, t2);
        assert_eq!(auth.whoami(t1).unwrap(), alice);
        assert_eq!(auth.whoami(t2).unwrap(), alice);
        // Logging one out revokes only that tab's backing credential.
        assert!(auth.logout(t1));
        assert_eq!(auth.whoami(t1), Err(AuthError::InvalidToken));
        assert_eq!(auth.whoami(t2).unwrap(), alice);
    }

    #[test]
    fn broker_backed_sessions_honor_central_revocation() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let broker = shared_broker(CredentialBroker::new(
            RealmId(1),
            5,
            BrokerPolicy::default(),
        ));
        let mut auth = PortalAuth::new();
        auth.attach_broker(broker.clone());

        let t = auth.login(&db, alice).unwrap();
        assert_eq!(auth.whoami(t).unwrap(), alice);
        // Central incident response: revoke at the broker, not the portal.
        broker.write().revoke_user(alice);
        assert_eq!(auth.whoami(t), Err(AuthError::InvalidToken));
    }
}
