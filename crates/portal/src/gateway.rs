//! The portal gateway (paper Sec. IV-E): authenticated forwarding of web-app
//! connections from compute nodes to the user's browser, replacing ad-hoc
//! SSH port forwarding.
//!
//! Two properties the experiments check:
//! 1. the entire path is authenticated and authorized — a valid token is
//!    required, the httpd UBF plug-in authorizes the (user → listener) pair,
//!    and the forwarded hop itself runs as the requesting user's identity so
//!    the compute node's packet-level UBF also sees the true initiator;
//! 2. apps can run on *any* compute node, not a dedicated partition — the
//!    gateway just dials whatever endpoint the route names.

use crate::apps::WebAppRegistry;
use crate::auth::{AuthError, PortalAuth, Token};
use crate::obs::PortalObs;
use crate::routes::{RouteKey, RouteTable};
use eus_simnet::{ConnectError, Fabric, PeerInfo, Proto};
use eus_simos::{NodeId, UserDb};
use eus_ubf::{HttpdUbfPlugin, SharedUserDb};
use std::fmt;

/// Gateway request errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortalError {
    /// Missing/invalid token.
    Auth(AuthError),
    /// No route registered under that name for that job.
    NoSuchRoute(String),
    /// The httpd UBF plug-in refused the (user, listener) pair.
    Forbidden,
    /// The forwarded connection failed at the network layer.
    Connect(ConnectError),
    /// The route exists but the app no longer serves content.
    AppGone,
}

impl fmt::Display for PortalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortalError::Auth(e) => write!(f, "authentication failed: {e}"),
            PortalError::NoSuchRoute(r) => write!(f, "no such route: {r}"),
            PortalError::Forbidden => f.write_str("forbidden by user-based authorization"),
            PortalError::Connect(e) => write!(f, "forward failed: {e}"),
            PortalError::AppGone => f.write_str("application no longer running"),
        }
    }
}

impl std::error::Error for PortalError {}

/// A successful portal fetch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Served content.
    pub body: String,
    /// Modeled end-to-end latency in microseconds (connect + one exchange).
    pub latency_us: u64,
}

/// The gateway.
pub struct PortalGateway {
    /// The node the portal itself runs on (a login/service node).
    pub host: NodeId,
    /// Token store.
    pub auth: PortalAuth,
    /// Route registry.
    pub routes: RouteTable,
    /// Run the httpd UBF plug-in before forwarding (the paper's deployment).
    /// When false the portal is a naive authenticated reverse proxy — the
    /// ablation baseline.
    pub authorize_routes: bool,
    /// Forward with the requesting user's identity (true, the paper's
    /// design) or as the portal's own root service (false, naive proxy).
    pub forward_as_user: bool,
    /// Pre-registered route spans, outcome counters, and the entry-point
    /// trace ring (disabled until the cluster's `enable_obs` fan-out).
    pub obs: PortalObs,
    plugin: HttpdUbfPlugin,
    db: SharedUserDb,
}

impl PortalGateway {
    /// A gateway on `host`, authorizing against the shared user database.
    pub fn new(host: NodeId, db: SharedUserDb) -> Self {
        PortalGateway {
            host,
            auth: PortalAuth::new(),
            routes: RouteTable::new(),
            authorize_routes: true,
            forward_as_user: true,
            obs: PortalObs::disabled(),
            plugin: HttpdUbfPlugin::new(db.clone(), eus_ubf::UbfPolicy::default()),
            db,
        }
    }

    /// Configure the naive reverse-proxy baseline (no route authorization,
    /// forwards as the portal service identity).
    pub fn naive_proxy(mut self) -> Self {
        self.authorize_routes = false;
        self.forward_as_user = false;
        self
    }

    /// Read-only view of the user database.
    fn with_db<R>(&self, f: impl FnOnce(&UserDb) -> R) -> R {
        f(&self.db.read())
    }

    /// The `enroll_mfa` route: a logged-in user binds a second factor at
    /// the realm IdP (self-service, like the real portal's security page).
    /// Returns the one-time-shown shared secret plus single-use recovery
    /// codes; the next login must present a current window code or burn a
    /// recovery code. Rebinding an existing factor requires the current
    /// code (`mfa`) as step-up.
    pub fn enroll_mfa(
        &mut self,
        token: Token,
        mfa: Option<eus_fedauth::MfaCode>,
    ) -> Result<eus_fedauth::MfaEnrollment, PortalError> {
        self.auth.enroll_mfa(token, mfa).map_err(PortalError::Auth)
    }

    /// The `unenroll_mfa` route: remove the session user's second factor.
    /// Step-up-gated like rebinding (the current window code must be
    /// presented), so a stolen session alone cannot downgrade the account;
    /// remaining recovery codes are voided with the factor.
    pub fn unenroll_mfa(
        &mut self,
        token: Token,
        mfa: Option<eus_fedauth::MfaCode>,
    ) -> Result<(), PortalError> {
        self.auth
            .unenroll_mfa(token, mfa)
            .map_err(PortalError::Auth)
    }

    /// Fetch a route's app content on behalf of an authenticated user.
    pub fn fetch(
        &mut self,
        fabric: &mut Fabric,
        apps: &WebAppRegistry,
        token: Token,
        key: &RouteKey,
    ) -> Result<Response, PortalError> {
        let span = self.obs.rec.span_start();
        let r = self.fetch_inner(fabric, apps, token, key);
        if self.obs.rec.enabled() {
            let outcome = self.obs.fetch_outcome_counter(&r);
            self.obs.rec.incr(outcome);
        }
        self.obs.rec.span_end(self.obs.sp_fetch, span);
        r
    }

    fn fetch_inner(
        &mut self,
        fabric: &mut Fabric,
        apps: &WebAppRegistry,
        token: Token,
        key: &RouteKey,
    ) -> Result<Response, PortalError> {
        // 1. Authenticate.
        let user = self.auth.whoami(token).map_err(PortalError::Auth)?;
        // 2. Route lookup.
        let route = self
            .routes
            .get(key)
            .ok_or_else(|| PortalError::NoSuchRoute(key.name.clone()))?
            .clone();
        // 3. Authorize via the httpd UBF plug-in: the *requesting* user
        //    against the listening process's identity.
        let cred = self
            .with_db(|db| db.credentials(user))
            .map_err(|_| PortalError::Forbidden)?;
        if self.authorize_routes && !self.plugin.authorize(&cred, &route.listener).allowed() {
            return Err(PortalError::Forbidden);
        }
        // 4. Forward: the per-user forwarder connects from the portal host
        //    with the user's own identity, so the compute node's UBF also
        //    judges the true initiator. (A naive proxy instead connects as
        //    the portal's root service — which a UBF would wave through.)
        let initiator = if self.forward_as_user {
            PeerInfo::from_cred(&cred)
        } else {
            PeerInfo::from_cred(&eus_simos::Credentials::root())
        };
        let (conn, setup) = fabric
            .connect(self.host, initiator, route.target, Proto::Tcp)
            .map_err(PortalError::Connect)?;
        let app = apps.get(route.target).ok_or(PortalError::AppGone)?;
        let xfer = fabric
            .send(conn, &bytes::Bytes::from(app.content.clone().into_bytes()))
            .expect("connection just established");
        fabric.close(conn);
        Ok(Response {
            body: app.content.clone(),
            latency_us: (setup + xfer).as_micros(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routes::Route;
    use eus_sched::JobId;
    use eus_simnet::SocketAddr;
    use eus_simos::Uid;
    use eus_ubf::{deploy_ubf, shared_user_db, UbfConfig};

    struct World {
        fabric: Fabric,
        apps: WebAppRegistry,
        gateway: PortalGateway,
        db: SharedUserDb,
        alice: Uid,
        bob: Uid,
    }

    fn world() -> World {
        let mut udb = UserDb::new();
        let alice = udb.create_user("alice").unwrap();
        let bob = udb.create_user("bob").unwrap();
        let db = shared_user_db(udb);
        let mut fabric = Fabric::new();
        fabric.add_host(NodeId(1)); // portal node
        fabric.add_host(NodeId(7)); // compute node
        deploy_ubf(
            fabric.host_mut(NodeId(7)).unwrap(),
            db.clone(),
            UbfConfig::default(),
        );
        let gateway = PortalGateway::new(NodeId(1), db.clone());
        World {
            fabric,
            apps: WebAppRegistry::new(),
            gateway,
            db,
            alice,
            bob,
        }
    }

    fn launch_alice_app(w: &mut World) -> RouteKey {
        let cred = w.db.read().credentials(w.alice).unwrap();
        let ep = w
            .apps
            .launch(&mut w.fabric, NodeId(7), &cred, 8888, "alice notebook")
            .unwrap();
        let key = RouteKey {
            user: w.alice,
            job: JobId(1),
            name: "jupyter".into(),
        };
        w.gateway.routes.register(Route {
            key: key.clone(),
            target: ep,
            listener: PeerInfo::from_cred(&cred),
        });
        key
    }

    #[test]
    fn owner_fetches_through_full_path() {
        let mut w = world();
        let key = launch_alice_app(&mut w);
        let token = w.gateway.auth.login(&w.db.read(), w.alice).unwrap();
        let resp = w
            .gateway
            .fetch(&mut w.fabric, &w.apps, token, &key)
            .unwrap();
        assert_eq!(resp.body, "alice notebook");
        assert!(resp.latency_us > 0);
    }

    #[test]
    fn unauthenticated_and_cross_user_blocked() {
        let mut w = world();
        let key = launch_alice_app(&mut w);

        // Garbage token.
        let err = w
            .gateway
            .fetch(&mut w.fabric, &w.apps, Token(4242), &key)
            .unwrap_err();
        assert!(matches!(err, PortalError::Auth(_)));

        // Bob authenticates but is not alice: plugin refuses before any
        // packet moves.
        let bob_token = w.gateway.auth.login(&w.db.read(), w.bob).unwrap();
        let attempted_before = w.fabric.metrics.connects_attempted.get();
        let err = w
            .gateway
            .fetch(&mut w.fabric, &w.apps, bob_token, &key)
            .unwrap_err();
        assert_eq!(err, PortalError::Forbidden);
        assert_eq!(
            w.fabric.metrics.connects_attempted.get(),
            attempted_before,
            "denied at the portal, not on the wire"
        );
    }

    #[test]
    fn direct_connection_bypassing_portal_still_hits_ubf() {
        let mut w = world();
        launch_alice_app(&mut w);
        // Bob skips the portal and dials the compute node directly: the
        // node-level UBF denies him anyway (defense in depth).
        let bob_peer = PeerInfo::from_cred(&w.db.read().credentials(w.bob).unwrap());
        let err = w
            .fabric
            .connect(
                NodeId(1),
                bob_peer,
                SocketAddr::new(NodeId(7), 8888),
                Proto::Tcp,
            )
            .unwrap_err();
        assert!(matches!(err, ConnectError::DeniedByDaemon { .. }));
    }

    #[test]
    fn project_group_app_shared_with_member() {
        let mut w = world();
        // Alice opts her app into a project group bob belongs to.
        let proj = {
            let mut db = w.db.write();
            let proj = db.create_project_group("proj", w.alice).unwrap();
            db.add_to_group(w.alice, proj, w.bob).unwrap();
            proj
        };
        let cred = w.db.read().credentials(w.alice).unwrap();
        let cred_proj = w.db.read().newgrp(&cred, proj).unwrap();
        let ep = w
            .apps
            .launch(&mut w.fabric, NodeId(7), &cred_proj, 9999, "team dashboard")
            .unwrap();
        let key = RouteKey {
            user: w.alice,
            job: JobId(2),
            name: "dash".into(),
        };
        w.gateway.routes.register(Route {
            key: key.clone(),
            target: ep,
            listener: PeerInfo::from_cred(&cred_proj),
        });
        let bob_token = w.gateway.auth.login(&w.db.read(), w.bob).unwrap();
        let resp = w
            .gateway
            .fetch(&mut w.fabric, &w.apps, bob_token, &key)
            .unwrap();
        assert_eq!(resp.body, "team dashboard");
    }

    #[test]
    fn fetch_outcomes_land_in_counters() {
        let mut w = world();
        let key = launch_alice_app(&mut w);
        w.gateway.obs = crate::obs::PortalObs::new(&eus_obs::ObsConfig::enabled());

        let token = w.gateway.auth.login(&w.db.read(), w.alice).unwrap();
        w.gateway
            .fetch(&mut w.fabric, &w.apps, token, &key)
            .unwrap();
        let bob_token = w.gateway.auth.login(&w.db.read(), w.bob).unwrap();
        w.gateway
            .fetch(&mut w.fabric, &w.apps, bob_token, &key)
            .unwrap_err();

        let obs = &w.gateway.obs;
        assert_eq!(obs.rec.counter_value(obs.c_fetch_ok), 1);
        assert_eq!(obs.rec.counter_value(obs.c_fetch_forbidden), 1);
        assert_eq!(obs.fetches_total(), 2);
        assert_eq!(obs.rec.span_stats(obs.sp_fetch).count, 2);
    }

    #[test]
    fn stopped_app_reports_gone() {
        let mut w = world();
        let key = launch_alice_app(&mut w);
        let token = w.gateway.auth.login(&w.db.read(), w.alice).unwrap();
        let ep = w.gateway.routes.get(&key).unwrap().target;
        w.apps.stop(&mut w.fabric, ep);
        let err = w
            .gateway
            .fetch(&mut w.fabric, &w.apps, token, &key)
            .unwrap_err();
        // The listener is gone, so the connect refuses.
        assert!(matches!(err, PortalError::Connect(_)));
    }
}
