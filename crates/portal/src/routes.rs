//! Route registry: (user, job, app-name) → compute-node endpoint.
//!
//! Routes are registered when a web-app job starts (the job submission
//! pipeline knows the node and port) and removed when it ends. Because the
//! gateway forwards to arbitrary endpoints, apps can run "on any compute
//! node in any partition" (Sec. IV-E) rather than a dedicated web partition.

use eus_sched::JobId;
use eus_simnet::{PeerInfo, SocketAddr};
use eus_simos::Uid;
use std::collections::BTreeMap;

/// Route identity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RouteKey {
    /// Owning user.
    pub user: Uid,
    /// The job serving the app.
    pub job: JobId,
    /// App name ("jupyter", "tensorboard", …).
    pub name: String,
}

/// One registered route.
#[derive(Debug, Clone)]
pub struct Route {
    /// Identity.
    pub key: RouteKey,
    /// Where the app listens.
    pub target: SocketAddr,
    /// The listening process's identity (for authorization).
    pub listener: PeerInfo,
}

/// The table.
#[derive(Debug, Default)]
pub struct RouteTable {
    routes: BTreeMap<RouteKey, Route>,
}

impl RouteTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a route.
    pub fn register(&mut self, route: Route) {
        self.routes.insert(route.key.clone(), route);
    }

    /// Look up a route.
    pub fn get(&self, key: &RouteKey) -> Option<&Route> {
        self.routes.get(key)
    }

    /// Remove a route (app/job ended).
    pub fn remove(&mut self, key: &RouteKey) -> Option<Route> {
        self.routes.remove(key)
    }

    /// Remove all routes of a job (epilog).
    pub fn remove_job(&mut self, job: JobId) -> usize {
        let before = self.routes.len();
        self.routes.retain(|k, _| k.job != job);
        before - self.routes.len()
    }

    /// Routes owned by a user (their portal home page listing).
    pub fn for_user(&self, user: Uid) -> Vec<&Route> {
        self.routes
            .values()
            .filter(|r| r.key.user == user)
            .collect()
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when no routes exist.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eus_simos::{Gid, NodeId};

    fn route(user: u32, job: u64, name: &str, port: u16) -> Route {
        Route {
            key: RouteKey {
                user: Uid(user),
                job: JobId(job),
                name: name.to_string(),
            },
            target: SocketAddr::new(NodeId(7), port),
            listener: PeerInfo {
                uid: Uid(user),
                egid: Gid(user),
                pid: None,
            },
        }
    }

    #[test]
    fn register_lookup_remove() {
        let mut t = RouteTable::new();
        t.register(route(1, 10, "jupyter", 8888));
        let key = RouteKey {
            user: Uid(1),
            job: JobId(10),
            name: "jupyter".into(),
        };
        assert_eq!(t.get(&key).unwrap().target.port, 8888);
        assert!(t.remove(&key).is_some());
        assert!(t.get(&key).is_none());
    }

    #[test]
    fn remove_job_clears_all_its_routes() {
        let mut t = RouteTable::new();
        t.register(route(1, 10, "jupyter", 8888));
        t.register(route(1, 10, "tensorboard", 6006));
        t.register(route(1, 11, "jupyter", 8889));
        assert_eq!(t.remove_job(JobId(10)), 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn per_user_listing() {
        let mut t = RouteTable::new();
        t.register(route(1, 10, "jupyter", 8888));
        t.register(route(2, 20, "jupyter", 8888));
        assert_eq!(t.for_user(Uid(1)).len(), 1);
        assert_eq!(t.for_user(Uid(3)).len(), 0);
    }
}
