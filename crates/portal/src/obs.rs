//! Portal observability: pre-registered handles for the gateway routes.
//!
//! One [`PortalObs`] travels inside every [`crate::gateway::PortalGateway`].
//! Like every other plane it is constructed **disabled** (one never-taken
//! branch per record call) and switched on by the cluster's `enable_obs`
//! fan-out. Every route outcome maps to exactly one counter so experiments
//! can reconstruct the full deny/allow breakdown without parsing errors.
//!
//! The trace ring is the *entry-point* buffer for portal-initiated causal
//! chains: the cluster mints `portal.route.revoke` roots here before handing
//! the context to the revocation mesh, so one trace id follows a revocation
//! from the operator's click all the way to a sister realm's fail-closed
//! deny.

use eus_obs::{CounterId, ObsConfig, ObsSnapshot, Recorder, SpanId, TraceBuffer};

/// Plane code baked into portal trace ids (see [`TraceBuffer::new`]).
pub const PORTAL_TRACE_CODE: u8 = 5;

/// The portal's recorder plus every handle it records through.
#[derive(Debug, Clone)]
pub struct PortalObs {
    /// The registry + flight recorder (`portal.*` namespace).
    pub rec: Recorder,
    /// Wall-time span over the whole `fetch` route (auth → forward).
    pub sp_fetch: SpanId,
    /// Fetches served end to end.
    pub c_fetch_ok: CounterId,
    /// Fetches refused at authentication (missing/expired token).
    pub c_fetch_auth: CounterId,
    /// Fetches naming a route that does not exist.
    pub c_fetch_no_route: CounterId,
    /// Fetches refused by the httpd UBF plug-in.
    pub c_fetch_forbidden: CounterId,
    /// Fetches whose forwarded connection failed on the wire.
    pub c_fetch_connect: CounterId,
    /// Fetches whose route exists but whose app has exited.
    pub c_fetch_gone: CounterId,
    /// Revocation requests entering through the portal API.
    pub c_revokes: CounterId,
    /// Causal trace ring: roots for portal-initiated chains
    /// (`portal.route.revoke`) are minted here by the cluster.
    pub trace: TraceBuffer,
}

impl PortalObs {
    /// Register the full portal handle set under `cfg`.
    pub fn new(cfg: &ObsConfig) -> Self {
        let mut rec = Recorder::new(cfg);
        PortalObs {
            sp_fetch: rec.span("portal.route.fetch"),
            c_fetch_ok: rec.counter("portal.fetch.ok"),
            c_fetch_auth: rec.counter("portal.fetch.auth_denied"),
            c_fetch_no_route: rec.counter("portal.fetch.no_route"),
            c_fetch_forbidden: rec.counter("portal.fetch.forbidden"),
            c_fetch_connect: rec.counter("portal.fetch.connect_err"),
            c_fetch_gone: rec.counter("portal.fetch.app_gone"),
            c_revokes: rec.counter("portal.revoke.requests"),
            trace: TraceBuffer::new("portal", PORTAL_TRACE_CODE, 4096, cfg.enabled),
            rec,
        }
    }

    /// A disabled handle set (the default inside every gateway).
    pub fn disabled() -> Self {
        Self::new(&ObsConfig::default())
    }

    /// Snapshot every metric.
    pub fn snapshot(&self) -> ObsSnapshot {
        self.rec.snapshot()
    }

    /// Total fetch attempts (every outcome).
    pub fn fetches_total(&self) -> u64 {
        self.rec.counter_value(self.c_fetch_ok)
            + self.rec.counter_value(self.c_fetch_auth)
            + self.rec.counter_value(self.c_fetch_no_route)
            + self.rec.counter_value(self.c_fetch_forbidden)
            + self.rec.counter_value(self.c_fetch_connect)
            + self.rec.counter_value(self.c_fetch_gone)
    }

    /// The counter matching one fetch outcome.
    pub fn fetch_outcome_counter(
        &self,
        r: &Result<crate::gateway::Response, crate::gateway::PortalError>,
    ) -> CounterId {
        use crate::gateway::PortalError;
        match r {
            Ok(_) => self.c_fetch_ok,
            Err(PortalError::Auth(_)) => self.c_fetch_auth,
            Err(PortalError::NoSuchRoute(_)) => self.c_fetch_no_route,
            Err(PortalError::Forbidden) => self.c_fetch_forbidden,
            Err(PortalError::Connect(_)) => self.c_fetch_connect,
            Err(PortalError::AppGone) => self.c_fetch_gone,
        }
    }
}

impl Default for PortalObs {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let obs = PortalObs::default();
        assert!(!obs.rec.enabled());
        assert!(!obs.trace.enabled());
        assert_eq!(obs.fetches_total(), 0);
    }

    #[test]
    fn outcome_counters_partition_fetches() {
        let mut obs = PortalObs::new(&ObsConfig::enabled());
        let ok: Result<crate::gateway::Response, crate::gateway::PortalError> =
            Err(crate::gateway::PortalError::Forbidden);
        let id = obs.fetch_outcome_counter(&ok);
        assert_eq!(id, obs.c_fetch_forbidden);
        obs.rec.incr(id);
        obs.rec.incr(obs.c_fetch_ok);
        assert_eq!(obs.fetches_total(), 2);
    }
}
