//! Web applications running on compute nodes (Jupyter, TensorBoard, …).
//!
//! An app is a listening socket on the fabric plus served content keyed by
//! its endpoint. Binding the listener through the fabric means the UBF rules
//! on the compute node govern who can reach it — whether the request comes
//! through the portal or directly from another node.

use eus_simnet::{ConnectError, Fabric, PeerInfo, Port, Proto, SocketAddr};
use eus_simos::{Credentials, NodeId};
use std::collections::BTreeMap;

/// One running web app.
#[derive(Debug, Clone)]
pub struct WebApp {
    /// Where it listens.
    pub endpoint: SocketAddr,
    /// The identity of the serving process (its egid is what the UBF group
    /// opt-in consults).
    pub server: PeerInfo,
    /// The page it serves (stand-in for the Jupyter UI).
    pub content: String,
}

/// Registry of app content by endpoint (the fabric carries connections; this
/// carries the "HTTP" layer).
#[derive(Debug, Default)]
pub struct WebAppRegistry {
    apps: BTreeMap<SocketAddr, WebApp>,
}

impl WebAppRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Launch an app: binds the listener on the fabric and registers content.
    pub fn launch(
        &mut self,
        fabric: &mut Fabric,
        node: NodeId,
        server_cred: &Credentials,
        port: Port,
        content: impl Into<String>,
    ) -> Result<SocketAddr, ConnectError> {
        let server = PeerInfo::from_cred(server_cred);
        fabric.listen(node, Proto::Tcp, port, server)?;
        let endpoint = SocketAddr::new(node, port);
        self.apps.insert(
            endpoint,
            WebApp {
                endpoint,
                server,
                content: content.into(),
            },
        );
        Ok(endpoint)
    }

    /// The app at an endpoint.
    pub fn get(&self, endpoint: SocketAddr) -> Option<&WebApp> {
        self.apps.get(&endpoint)
    }

    /// Stop an app (job ended).
    pub fn stop(&mut self, fabric: &mut Fabric, endpoint: SocketAddr) -> bool {
        if self.apps.remove(&endpoint).is_some() {
            if let Some(h) = fabric.host_mut(endpoint.host) {
                h.sockets.close(Proto::Tcp, endpoint.port);
            }
            true
        } else {
            false
        }
    }

    /// Number of running apps.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// True when no apps run.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eus_simos::{Gid, Uid};

    #[test]
    fn launch_registers_listener_and_content() {
        let mut f = Fabric::new();
        f.add_host(NodeId(1));
        f.add_host(NodeId(7));
        let mut apps = WebAppRegistry::new();
        let cred = Credentials::new(Uid(100), Gid(100));
        let ep = apps
            .launch(&mut f, NodeId(7), &cred, 8888, "jupyter home")
            .unwrap();
        assert_eq!(apps.get(ep).unwrap().content, "jupyter home");
        assert!(f
            .host(NodeId(7))
            .unwrap()
            .sockets
            .listener(Proto::Tcp, 8888)
            .is_some());

        assert!(apps.stop(&mut f, ep));
        assert!(apps.is_empty());
        assert!(f
            .host(NodeId(7))
            .unwrap()
            .sockets
            .listener(Proto::Tcp, 8888)
            .is_none());
        assert!(!apps.stop(&mut f, ep));
    }

    #[test]
    fn port_conflict_surfaces() {
        let mut f = Fabric::new();
        f.add_host(NodeId(1));
        let mut apps = WebAppRegistry::new();
        let cred = Credentials::new(Uid(100), Gid(100));
        apps.launch(&mut f, NodeId(1), &cred, 8888, "a").unwrap();
        let err = apps
            .launch(&mut f, NodeId(1), &cred, 8888, "b")
            .unwrap_err();
        assert!(matches!(err, ConnectError::Bind(_)));
    }
}
