//! # eus-portal — the HPC web portal/gateway
//!
//! Reproduction of the MIT SuperCloud portal workspace as used in Sec. IV-E:
//! authenticated forwarding of web-application connections (Jupyter,
//! TensorBoard, …) from any compute node to the user, with the User-Based
//! Firewall's authorization enforced on both the portal hop (the httpd
//! plug-in) and the forwarded network hop (the per-user forwarder connects
//! with the requesting user's identity).
//!
//! * [`auth`] — token sessions.
//! * [`routes`] — (user, job, app) → endpoint registry.
//! * [`apps`] — web apps as fabric listeners with served content.
//! * [`gateway`] — the authenticated, authorized fetch path.
//! * [`obs`] — pre-registered route spans, outcome counters, and the
//!   entry-point causal trace ring.

#![warn(missing_docs)]

pub mod apps;
pub mod auth;
pub mod gateway;
pub mod obs;
pub mod routes;

pub use apps::{WebApp, WebAppRegistry};
pub use auth::{AuthError, PortalAuth, Token};
pub use gateway::{PortalError, PortalGateway, Response};
pub use obs::{PortalObs, PORTAL_TRACE_CODE};
pub use routes::{Route, RouteKey, RouteTable};
