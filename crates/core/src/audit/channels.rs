//! Cross-user channels and their probes.
//!
//! Each [`Channel`] is one way user A could observe or interfere with user B
//! on a shared HPC system, drawn from paper Secs. IV-A–IV-G and the residual
//! list in Sec. V. A probe stages the scenario on a fresh cluster with an
//! `attacker` and a `victim` account and reports whether the channel leaked.

use crate::cluster::SecureCluster;
use eus_sched::{JobId, JobSpec};
use eus_simcore::{SimDuration, SimTime};
use eus_simnet::{Proto, SocketAddr};
use eus_simos::{Mode, PosixAcl, Uid};
use std::fmt;

/// One potential cross-user channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Channel {
    /// Foreign processes visible in `/proc` listings (IV-A).
    ProcList,
    /// Foreign command lines readable — the CVE-2020-27746 shape (IV-A).
    ProcCmdline,
    /// Foreign jobs visible in `squeue` (IV-B).
    SchedQueue,
    /// Foreign accounting records in `sacct` (IV-B).
    SchedAccounting,
    /// ssh onto a node where only the victim computes (IV-B).
    SshForeignNode,
    /// Two users' tasks co-resident on one compute node (IV-B).
    NodeCohabitation,
    /// Data shared via world permission bits in `/tmp` (IV-C).
    FsWorldBit,
    /// Data shared via an ACL grant to an unrelated user (IV-C).
    FsAclGrant,
    /// Foreign *filenames* in world-writable directories (IV-C, residual).
    FsTmpFilename,
    /// Reading files inside another user's home (IV-C).
    FsHomeAccess,
    /// TCP connect to a foreign user's listener (IV-D).
    NetTcp,
    /// UDP flow to a foreign user's listener (IV-D).
    NetUdp,
    /// Abstract-namespace Unix socket connect (V, residual).
    AbstractSocket,
    /// RDMA queue pair set up over a TCP control channel (IV-D).
    RdmaTcpSetup,
    /// RDMA queue pair via the native connection manager (V, residual).
    RdmaNativeCm,
    /// Opening a GPU device file assigned to (or used by) the victim (IV-F).
    GpuDevAccess,
    /// Reading a previous job's data out of GPU memory (IV-F).
    GpuRemanence,
    /// Reaching another user's web app through the portal (IV-E).
    PortalCrossUser,
    /// Replaying a stolen bearer token after central revocation (companion
    /// paper: federated authentication).
    AuthTokenReplay,
    /// ssh with stolen key material after its short-lived certificate
    /// lapsed (companion paper).
    SshExpiredCert,
    /// Presenting a sister site's credential for a colliding uid (companion
    /// paper: realm binding).
    CrossRealmSpoof,
}

impl Channel {
    /// Every channel, in report order.
    pub fn all() -> &'static [Channel] {
        use Channel::*;
        &[
            ProcList,
            ProcCmdline,
            SchedQueue,
            SchedAccounting,
            SshForeignNode,
            NodeCohabitation,
            FsWorldBit,
            FsAclGrant,
            FsTmpFilename,
            FsHomeAccess,
            NetTcp,
            NetUdp,
            AbstractSocket,
            RdmaTcpSetup,
            RdmaNativeCm,
            GpuDevAccess,
            GpuRemanence,
            PortalCrossUser,
            AuthTokenReplay,
            SshExpiredCert,
            CrossRealmSpoof,
        ]
    }

    /// The paper section the channel comes from.
    pub fn section(&self) -> &'static str {
        use Channel::*;
        match self {
            ProcList | ProcCmdline => "IV-A",
            SchedQueue | SchedAccounting | SshForeignNode | NodeCohabitation => "IV-B",
            FsWorldBit | FsAclGrant | FsTmpFilename | FsHomeAccess => "IV-C",
            NetTcp | NetUdp | RdmaTcpSetup => "IV-D",
            PortalCrossUser => "IV-E",
            GpuDevAccess | GpuRemanence => "IV-F",
            AbstractSocket | RdmaNativeCm => "V",
            AuthTokenReplay | SshExpiredCert | CrossRealmSpoof => "FedAuth",
        }
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Probe result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The attacker learned or reached something of the victim's.
    Leaked(String),
    /// The mechanism held.
    Blocked(String),
}

impl Outcome {
    /// True for [`Outcome::Leaked`].
    pub fn is_leak(&self) -> bool {
        matches!(self, Outcome::Leaked(_))
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Leaked(s) => write!(f, "LEAKED: {s}"),
            Outcome::Blocked(s) => write!(f, "blocked: {s}"),
        }
    }
}

/// Run one channel's probe on a fresh cluster.
pub fn probe(channel: Channel, c: &mut SecureCluster, attacker: Uid, victim: Uid) -> Outcome {
    match channel {
        Channel::ProcList => probe_proc_list(c, attacker, victim),
        Channel::ProcCmdline => probe_proc_cmdline(c, attacker, victim),
        Channel::SchedQueue => probe_sched_queue(c, attacker, victim),
        Channel::SchedAccounting => probe_sched_accounting(c, attacker, victim),
        Channel::SshForeignNode => probe_ssh_foreign(c, attacker, victim),
        Channel::NodeCohabitation => probe_cohabitation(c, attacker, victim),
        Channel::FsWorldBit => probe_fs_world_bit(c, attacker, victim),
        Channel::FsAclGrant => probe_fs_acl(c, attacker, victim),
        Channel::FsTmpFilename => probe_fs_tmp_names(c, attacker, victim),
        Channel::FsHomeAccess => probe_fs_home(c, attacker, victim),
        Channel::NetTcp => probe_net(c, attacker, victim, Proto::Tcp, 9100),
        Channel::NetUdp => probe_net(c, attacker, victim, Proto::Udp, 9101),
        Channel::AbstractSocket => probe_abstract_socket(c, attacker, victim),
        Channel::RdmaTcpSetup => probe_rdma_tcp(c, attacker, victim),
        Channel::RdmaNativeCm => probe_rdma_native(c, attacker, victim),
        Channel::GpuDevAccess => probe_gpu_dev(c, attacker, victim),
        Channel::GpuRemanence => probe_gpu_remanence(c, attacker, victim),
        Channel::PortalCrossUser => probe_portal(c, attacker, victim),
        Channel::AuthTokenReplay => probe_token_replay(c, attacker, victim),
        Channel::SshExpiredCert => probe_ssh_expired_cert(c, victim),
        Channel::CrossRealmSpoof => probe_cross_realm(c, victim),
    }
}

fn probe_proc_list(c: &mut SecureCluster, attacker: Uid, victim: Uid) -> Outcome {
    let login = c.login_node();
    let v_sid = c.ssh(victim, login).expect("login nodes accept all");
    c.node_mut(login)
        .spawn(v_sid, ["python", "train.py"], SimTime::ZERO)
        .expect("session open");
    let a_cred = c.credentials(attacker);
    let foreign = c.node(login).procfs().foreign_visible_count(&a_cred);
    if foreign > 0 {
        Outcome::Leaked(format!("{foreign} foreign process(es) listed"))
    } else {
        Outcome::Blocked("hidepid=2 hides foreign processes".into())
    }
}

fn probe_proc_cmdline(c: &mut SecureCluster, attacker: Uid, victim: Uid) -> Outcome {
    let login = c.login_node();
    let v_sid = c.ssh(victim, login).expect("login nodes accept all");
    let secret = "--x11-magic-cookie=SECRET123";
    c.node_mut(login)
        .spawn(v_sid, ["srun", secret], SimTime::ZERO)
        .expect("session open");
    let a_cred = c.credentials(attacker);
    let node = c.node(login);
    let procfs = node.procfs();
    // The attacker sweeps the pid space, as the CVE exploit would.
    for proc in node.procs.iter() {
        if let Ok(cmdline) = procfs.read_cmdline(&a_cred, proc.pid) {
            if cmdline.iter().any(|a| a.contains("SECRET123")) {
                return Outcome::Leaked("secret read from a foreign cmdline".into());
            }
        }
    }
    Outcome::Blocked("foreign cmdlines unreadable".into())
}

fn probe_sched_queue(c: &mut SecureCluster, attacker: Uid, victim: Uid) -> Outcome {
    c.submit(JobSpec::new(
        victim,
        "secret-sponsor-run",
        SimDuration::from_secs(100),
    ));
    c.advance_to(SimTime::from_secs(1));
    let a_cred = c.credentials(attacker);
    let foreign = c
        .sched
        .read()
        .squeue(&a_cred)
        .into_iter()
        .filter(|v| v.user == victim)
        .count();
    if foreign > 0 {
        Outcome::Leaked("foreign job (name, state, nodes) visible in squeue".into())
    } else {
        Outcome::Blocked("PrivateData hides foreign jobs".into())
    }
}

fn probe_sched_accounting(c: &mut SecureCluster, attacker: Uid, victim: Uid) -> Outcome {
    c.submit(JobSpec::new(
        victim,
        "billing-run",
        SimDuration::from_secs(10),
    ));
    c.run_to_completion();
    let a_cred = c.credentials(attacker);
    let foreign = c
        .sched
        .read()
        .sacct(&a_cred)
        .into_iter()
        .filter(|r| r.user == victim)
        .count();
    if foreign > 0 {
        Outcome::Leaked("foreign accounting records visible in sacct".into())
    } else {
        Outcome::Blocked("PrivateData hides foreign usage".into())
    }
}

fn probe_ssh_foreign(c: &mut SecureCluster, attacker: Uid, victim: Uid) -> Outcome {
    c.submit(JobSpec::new(
        victim,
        "long-run",
        SimDuration::from_secs(1000),
    ));
    c.advance_to(SimTime::from_secs(1));
    let node = {
        let sched = c.sched.read();
        sched
            .jobs
            .values()
            .find(|j| j.spec.user == victim)
            .and_then(|j| j.allocations.keys().next().copied())
            .expect("victim job scheduled")
    };
    match c.ssh(attacker, node) {
        Ok(_) => Outcome::Leaked(format!("attacker shelled into {node} beside the victim")),
        Err(_) => Outcome::Blocked("pam_slurm: no job on that node".into()),
    }
}

fn probe_cohabitation(c: &mut SecureCluster, attacker: Uid, victim: Uid) -> Outcome {
    // Both users stream small jobs sized to half a node.
    let half = c.spec.cores_per_node / 2;
    for i in 0..6u64 {
        for &u in &[attacker, victim] {
            c.submit_at(
                SimTime::from_secs(i),
                JobSpec::new(u, "slice", SimDuration::from_secs(30))
                    .with_tasks(half)
                    .with_mem_per_task(64),
            );
        }
    }
    for t in 1..40u64 {
        c.advance_to(SimTime::from_secs(t));
        let sched = c.sched.read();
        for node in sched.nodes.values() {
            if node.users_present().len() >= 2 {
                return Outcome::Leaked(format!(
                    "users co-resident on {} (side channels, OOM blast radius)",
                    node.id
                ));
            }
        }
    }
    Outcome::Blocked("one user per node at all times".into())
}

fn probe_fs_world_bit(c: &mut SecureCluster, attacker: Uid, victim: Uid) -> Outcome {
    let login = c.login_node();
    // The victim tries both paths the patch closes: world bits at create and
    // re-added via chmod.
    c.fs_write(victim, login, "/tmp/drop", Mode::new(0o644), b"payload")
        .expect("tmp is world-writable");
    let _ = c.fs_chmod(victim, login, "/tmp/drop", Mode::new(0o644));
    match c.fs_read(attacker, login, "/tmp/drop") {
        Ok(_) => Outcome::Leaked("world-readable file shared via /tmp".into()),
        Err(_) => Outcome::Blocked("smask strips world bits at create and chmod".into()),
    }
}

fn probe_fs_acl(c: &mut SecureCluster, attacker: Uid, victim: Uid) -> Outcome {
    let login = c.login_node();
    c.fs_write(victim, login, "/tmp/acl-share", Mode::new(0o600), b"direct")
        .expect("tmp writable");
    let acl = PosixAcl::new(eus_simos::Perm::NONE).with_user(attacker, eus_simos::Perm::R);
    match c.fs_setfacl(victim, login, "/tmp/acl-share", acl) {
        Err(_) => Outcome::Blocked("ACL grant to non-group-peer refused".into()),
        Ok(()) => match c.fs_read(attacker, login, "/tmp/acl-share") {
            Ok(_) => Outcome::Leaked("file shared via named-user ACL".into()),
            Err(_) => Outcome::Blocked("ACL set but read still denied".into()),
        },
    }
}

fn probe_fs_tmp_names(c: &mut SecureCluster, attacker: Uid, victim: Uid) -> Outcome {
    let login = c.login_node();
    c.fs_write(
        victim,
        login,
        "/tmp/victim-grant-proposal-2026",
        Mode::new(0o600),
        b"",
    )
    .expect("tmp writable");
    let ctx = c.user_fs_ctx(attacker);
    let names = c
        .node(login)
        .fs_readdir(&ctx, "/tmp")
        .expect("tmp readable");
    if names.iter().any(|n| n.contains("victim-grant-proposal")) {
        Outcome::Leaked("foreign filename visible in /tmp".into())
    } else {
        Outcome::Blocked("filenames not disclosed".into())
    }
}

fn probe_fs_home(c: &mut SecureCluster, attacker: Uid, victim: Uid) -> Outcome {
    let login = c.login_node();
    let victim_name = c.db.read().user(victim).expect("known").name.clone();
    let path = format!("/home/{victim_name}/results.csv");
    // 0644 under the victim's (default) umask — the accidental default.
    c.fs_write(victim, login, &path, Mode::new(0o644), b"rows")
        .expect("own home writable");
    match c.fs_read(attacker, login, &path) {
        Ok(_) => Outcome::Leaked("file read out of a foreign home directory".into()),
        Err(_) => Outcome::Blocked("home unreachable (root-owned 0770, UPG)".into()),
    }
}

fn probe_net(
    c: &mut SecureCluster,
    attacker: Uid,
    victim: Uid,
    proto: Proto,
    port: u16,
) -> Outcome {
    let n1 = c.compute_ids[0];
    let n2 = c.compute_ids[1];
    c.listen(victim, n2, proto, port, None).expect("port free");
    match c.connect(attacker, n1, SocketAddr::new(n2, port), proto) {
        Ok(_) => Outcome::Leaked(format!("{proto} connection to a foreign service")),
        Err(_) => Outcome::Blocked("UBF: not same user, no group opt-in".into()),
    }
}

fn probe_abstract_socket(c: &mut SecureCluster, attacker: Uid, victim: Uid) -> Outcome {
    let login = c.login_node();
    let v_cred = c.credentials(victim);
    let a_cred = c.credentials(attacker);
    c.node_mut(login)
        .abstract_sockets
        .bind(&v_cred, "victim-ipc")
        .expect("fresh namespace");
    match c
        .node(login)
        .abstract_sockets
        .connect(&a_cred, "victim-ipc")
    {
        Ok(owner) => Outcome::Leaked(format!(
            "connected to {owner}'s abstract socket (no DAC exists)"
        )),
        Err(_) => Outcome::Blocked("abstract namespace isolated".into()),
    }
}

fn probe_rdma_tcp(c: &mut SecureCluster, attacker: Uid, victim: Uid) -> Outcome {
    let n1 = c.compute_ids[0];
    let n2 = c.compute_ids[1];
    let rkey = c
        .fabric
        .rdma_register(n2, victim, b"victim tensor".to_vec())
        .expect("host exists");
    c.listen(victim, n2, Proto::Tcp, 18515, None)
        .expect("port free");
    let a_peer = eus_simnet::PeerInfo::from_cred(&c.credentials(attacker));
    match c
        .fabric
        .setup_qp_via_tcp(n1, a_peer, SocketAddr::new(n2, 18515))
    {
        Ok(qp) => match c.fabric.rdma_read(&qp, rkey) {
            Ok(_) => Outcome::Leaked("QP established over TCP; remote memory read".into()),
            Err(_) => Outcome::Blocked("QP up but region gone".into()),
        },
        Err(_) => Outcome::Blocked("UBF blocked the TCP control channel".into()),
    }
}

fn probe_rdma_native(c: &mut SecureCluster, attacker: Uid, victim: Uid) -> Outcome {
    let n1 = c.compute_ids[0];
    let n2 = c.compute_ids[1];
    let rkey = c
        .fabric
        .rdma_register(n2, victim, b"victim tensor".to_vec())
        .expect("host exists");
    let a_peer = eus_simnet::PeerInfo::from_cred(&c.credentials(attacker));
    match c.fabric.setup_qp_native_cm(n1, a_peer, n2) {
        Ok(qp) => match c.fabric.rdma_read(&qp, rkey) {
            Ok(_) => Outcome::Leaked("native-CM QP bypassed the UBF; memory read".into()),
            Err(_) => Outcome::Blocked("region unavailable".into()),
        },
        Err(_) => Outcome::Blocked("native CM unavailable".into()),
    }
}

fn probe_gpu_dev(c: &mut SecureCluster, attacker: Uid, victim: Uid) -> Outcome {
    // Victim runs a GPU job; the attacker tries to open the device file.
    c.submit(JobSpec::new(victim, "train", SimDuration::from_secs(1000)).with_gpus_per_task(1));
    c.advance_to(SimTime::from_secs(1));
    let node = c.compute_ids[0];
    let ctx = c.user_fs_ctx(attacker);
    match c.node(node).with_fs("/dev/gpu0", |fs, p| {
        fs.open_device(&ctx, p, eus_simos::Perm::RW)
    }) {
        Ok(_) => Outcome::Leaked("opened a GPU in use by another user".into()),
        Err(_) => Outcome::Blocked("device group-owned by assignee's UPG".into()),
    }
}

fn probe_gpu_remanence(c: &mut SecureCluster, attacker: Uid, victim: Uid) -> Outcome {
    // Victim's GPU job writes a secret into device memory.
    c.submit(JobSpec::new(victim, "train", SimDuration::from_secs(10)).with_gpus_per_task(1));
    c.advance_to(SimTime::from_secs(1));
    let node = c.compute_ids[0];
    c.gpus
        .get_mut(node, 0)
        .expect("gpu installed")
        .write(0, b"victim model weights")
        .expect("in bounds");
    // Job ends; epilog runs (scrub per config).
    c.run_to_completion();
    // Attacker's job lands on the same GPU.
    c.submit(JobSpec::new(attacker, "probe", SimDuration::from_secs(10)).with_gpus_per_task(1));
    let resume_at = c.sched.read().now() + SimDuration::from_secs(1);
    c.advance_to(resume_at);
    let residue = c
        .gpus
        .get(node, 0)
        .expect("gpu installed")
        .read(0, 20)
        .expect("in bounds");
    if residue == b"victim model weights" {
        Outcome::Leaked("previous job's data read from GPU memory".into())
    } else {
        Outcome::Blocked("epilog scrub cleared device memory".into())
    }
}

fn probe_portal(c: &mut SecureCluster, attacker: Uid, victim: Uid) -> Outcome {
    let node = c.compute_ids[0];
    let key = c
        .launch_webapp(
            victim,
            JobId(9999),
            "jupyter",
            node,
            8888,
            "victim notebook",
            None,
        )
        .expect("port free");
    let token = c.portal_login(attacker).expect("valid account");
    match c.portal_fetch(token, &key) {
        Ok(resp) => Outcome::Leaked(format!(
            "fetched foreign app page ({} bytes)",
            resp.body.len()
        )),
        Err(_) => Outcome::Blocked("portal authorization + user-identity forward".into()),
    }
}

fn probe_token_replay(c: &mut SecureCluster, _attacker: Uid, victim: Uid) -> Outcome {
    // The victim's bearer token is exfiltrated; the theft is noticed and the
    // victim's credentials are revoked (or, without a revocation plane,
    // merely "the victim logs out and a month passes"). The attacker then
    // replays the stolen token.
    match &c.broker {
        Some(broker) => {
            let stolen = broker
                .read()
                .current_token(victim)
                .expect("users are provisioned at creation");
            broker.write().revoke_user(victim);
            match broker.read().validate_token(&stolen) {
                Ok(_) => Outcome::Leaked("revoked bearer token still accepted".into()),
                Err(_) => Outcome::Blocked("central revocation: replayed token refused".into()),
            }
        }
        None => {
            let stolen = c.portal_login(victim).expect("valid account");
            // Long-lived sessions never lapse: 30 days later it still works.
            c.portal.auth.advance_to(SimTime::from_secs(30 * 24 * 3600));
            match c.portal.auth.whoami(stolen) {
                Ok(_) => Outcome::Leaked(
                    "stolen bearer token still valid 30 days later (no expiry, no revocation)"
                        .into(),
                ),
                Err(_) => Outcome::Blocked("token lapsed".into()),
            }
        }
    }
}

fn probe_ssh_expired_cert(c: &mut SecureCluster, victim: Uid) -> Outcome {
    // The attacker stole the victim's ssh private key some time ago. With
    // federated auth the key is only as good as its short-lived certificate;
    // without it, authorized_keys entries work forever.
    let login = c.login_node();
    match &c.broker {
        Some(broker) => {
            let expiry = broker
                .read()
                .current_cert(victim)
                .expect("users are provisioned at creation")
                .expires;
            broker.write().advance_to(expiry);
            // Replay: the PAM stack judges the stale certificate as-is (no
            // transparent refresh — the attacker cannot re-authenticate).
            match c.ssh_raw(victim, login) {
                Ok(_) => Outcome::Leaked("expired certificate accepted for ssh".into()),
                Err(_) => {
                    Outcome::Blocked("pam_fedauth: certificate outside validity window".into())
                }
            }
        }
        None => match c.ssh_raw(victim, login) {
            Ok(_) => Outcome::Leaked("stolen long-lived ssh key grants access indefinitely".into()),
            Err(_) => Outcome::Blocked("login refused".into()),
        },
    }
}

fn probe_cross_realm(c: &mut SecureCluster, victim: Uid) -> Outcome {
    // Federation means other sites also issue credentials; uid numbers
    // collide across sites. The attacker controls an account at a sister
    // site whose uid equals the victim's and presents that site's credential
    // here.
    match &c.broker {
        Some(broker) => {
            let mut foreign = eus_fedauth::CredentialBroker::new(
                eus_fedauth::RealmId(99),
                0x0BAD_5EED,
                eus_fedauth::BrokerPolicy::default(),
            );
            let forged = foreign
                .login(&c.db.read(), victim, None)
                .expect("uid collides across realms");
            match broker.read().validate_token(&forged) {
                Ok(_) => Outcome::Leaked("foreign realm credential accepted".into()),
                Err(_) => Outcome::Blocked("realm binding: foreign credential refused".into()),
            }
        }
        None => {
            // No realm concept: services trust the raw uid, so any site's
            // assertion of "uid N" is indistinguishable from the local one.
            match c.portal_login(victim) {
                Ok(t) if c.portal.auth.whoami(t) == Ok(victim) => Outcome::Leaked(
                    "raw uid trusted: cross-site identity collision impersonates the victim".into(),
                ),
                _ => Outcome::Blocked("identity rejected".into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_catalog_is_stable() {
        assert_eq!(Channel::all().len(), 21);
        // Sections cover IV-A..IV-G and V.
        for ch in Channel::all() {
            assert!(!ch.section().is_empty());
        }
        assert_eq!(Channel::ProcList.section(), "IV-A");
        assert_eq!(Channel::RdmaNativeCm.section(), "V");
        assert_eq!(Channel::AuthTokenReplay.section(), "FedAuth");
    }

    #[test]
    fn outcome_predicates() {
        assert!(Outcome::Leaked("x".into()).is_leak());
        assert!(!Outcome::Blocked("y".into()).is_leak());
        assert!(Outcome::Leaked("x".into()).to_string().contains("LEAKED"));
    }
}
