//! The separation audit: enumerate every cross-user channel against a
//! configuration and report which are open (experiment E12, reproducing the
//! Sec. V claims: the full configuration closes everything except three
//! named residual paths, and "for users, it looks like they're the only one
//! on the HPC system").

pub mod channels;
pub mod report;

pub use channels::{probe, Channel, Outcome};
pub use report::{AuditReport, ChannelRow};

use crate::cluster::{ClusterSpec, SecureCluster};
use crate::config::SeparationConfig;
use rayon::prelude::*;

/// The channels the paper expects to remain open even under the full
/// configuration (Sec. V): filenames in world-writable directories, abstract
/// namespace Unix domain sockets, and direct IB verbs via the native
/// connection manager.
pub fn expected_residuals() -> &'static [Channel] {
    &[
        Channel::FsTmpFilename,
        Channel::AbstractSocket,
        Channel::RdmaNativeCm,
    ]
}

/// Audit one configuration. Each channel probes a fresh two-user cluster so
/// probes cannot contaminate each other; channels run in parallel.
pub fn run_audit(config: &SeparationConfig, spec: &ClusterSpec) -> AuditReport {
    let rows: Vec<ChannelRow> = Channel::all()
        .par_iter()
        .map(|&ch| {
            let mut cluster = SecureCluster::new(config.clone(), spec.clone());
            let attacker = cluster.add_user("attacker").expect("fresh db");
            let victim = cluster.add_user("victim").expect("fresh db");
            let outcome = probe(ch, &mut cluster, attacker, victim);
            ChannelRow {
                channel: ch,
                outcome,
                expected_residual: expected_residuals().contains(&ch),
            }
        })
        .collect();
    AuditReport {
        label: config.label(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_leaks_broadly() {
        let report = run_audit(&SeparationConfig::baseline(), &ClusterSpec::tiny());
        // Default Linux + Slurm leaks on most channels.
        assert!(
            report.open_count() >= 12,
            "baseline should be wide open:\n{report}"
        );
        // Sanity: specific canonical leaks.
        let open = report.open_channels();
        assert!(open.contains(&Channel::ProcList));
        assert!(open.contains(&Channel::NetTcp));
        assert!(open.contains(&Channel::FsWorldBit));
        assert!(open.contains(&Channel::GpuRemanence));
    }

    #[test]
    fn llsc_closes_everything_but_the_residuals() {
        let report = run_audit(&SeparationConfig::llsc(), &ClusterSpec::tiny());
        assert!(
            report.only_expected_residuals(),
            "unexpected leaks: {:?}\n{report}",
            report.unexpected_leaks()
        );
        // The three residual paths stay open, exactly as Sec. V says.
        let open = report.open_channels();
        assert_eq!(open.len(), 3, "{report}");
        for r in expected_residuals() {
            assert!(open.contains(r), "missing residual {r}");
        }
    }

    #[test]
    fn ablating_ubf_reopens_network_only() {
        let mut cfg = SeparationConfig::llsc();
        cfg.ubf = false;
        let report = run_audit(&cfg, &ClusterSpec::tiny());
        let unexpected = report.unexpected_leaks();
        assert!(unexpected.contains(&Channel::NetTcp), "{report}");
        assert!(unexpected.contains(&Channel::NetUdp), "{report}");
        assert!(unexpected.contains(&Channel::RdmaTcpSetup), "{report}");
        // Non-network channels stay closed.
        assert!(!unexpected.contains(&Channel::ProcList));
        assert!(!unexpected.contains(&Channel::FsWorldBit));
    }

    #[test]
    fn ablating_fedauth_reopens_credential_channels_only() {
        let mut cfg = SeparationConfig::llsc();
        cfg.federated_auth = false;
        let report = run_audit(&cfg, &ClusterSpec::tiny());
        let unexpected = report.unexpected_leaks();
        assert!(unexpected.contains(&Channel::AuthTokenReplay), "{report}");
        assert!(unexpected.contains(&Channel::SshExpiredCert), "{report}");
        assert!(unexpected.contains(&Channel::CrossRealmSpoof), "{report}");
        // Every base-paper channel stays closed: the credential plane is an
        // independent mechanism, like each of the paper's own.
        assert_eq!(unexpected.len(), 3, "{report}");
    }

    #[test]
    fn ablating_hidepid_reopens_proc_only() {
        let mut cfg = SeparationConfig::llsc();
        cfg.hidepid = false;
        let report = run_audit(&cfg, &ClusterSpec::tiny());
        let unexpected = report.unexpected_leaks();
        assert!(unexpected.contains(&Channel::ProcList), "{report}");
        assert!(unexpected.contains(&Channel::ProcCmdline), "{report}");
        assert!(!unexpected.contains(&Channel::NetTcp));
    }
}
