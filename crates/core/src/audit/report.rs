//! Audit reports: the rendered outcome of a full channel sweep.

use super::channels::{Channel, Outcome};
use std::fmt;

/// One audited channel.
#[derive(Debug, Clone)]
pub struct ChannelRow {
    /// The channel.
    pub channel: Channel,
    /// What the probe found.
    pub outcome: Outcome,
    /// Whether the paper expects this channel to remain open even under the
    /// full configuration (Sec. V's residual list).
    pub expected_residual: bool,
}

/// A full audit of one configuration.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Configuration label.
    pub label: String,
    /// Rows in [`Channel::all`] order.
    pub rows: Vec<ChannelRow>,
}

impl AuditReport {
    /// Channels that leaked.
    pub fn open_channels(&self) -> Vec<Channel> {
        self.rows
            .iter()
            .filter(|r| r.outcome.is_leak())
            .map(|r| r.channel)
            .collect()
    }

    /// Number of leaked channels.
    pub fn open_count(&self) -> usize {
        self.rows.iter().filter(|r| r.outcome.is_leak()).count()
    }

    /// Number of blocked channels.
    pub fn closed_count(&self) -> usize {
        self.rows.len() - self.open_count()
    }

    /// Leaks that are *not* on the expected-residual list — for the full
    /// configuration this must be empty (the Sec. V claim).
    pub fn unexpected_leaks(&self) -> Vec<Channel> {
        self.rows
            .iter()
            .filter(|r| r.outcome.is_leak() && !r.expected_residual)
            .map(|r| r.channel)
            .collect()
    }

    /// True when every leak is an expected residual.
    pub fn only_expected_residuals(&self) -> bool {
        self.unexpected_leaks().is_empty()
    }

    /// CSV rendering: `channel,section,status,detail` — the machine-readable
    /// face of the audit for EXPERIMENTS.md regeneration.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("channel,section,status,detail\n");
        for r in &self.rows {
            let status = if r.outcome.is_leak() {
                if r.expected_residual {
                    "residual"
                } else {
                    "open"
                }
            } else {
                "closed"
            };
            let detail = match &r.outcome {
                Outcome::Leaked(s) | Outcome::Blocked(s) => s.replace(',', ";"),
            };
            out.push_str(&format!(
                "{},{},{},{}\n",
                r.channel,
                r.channel.section(),
                status,
                detail
            ));
        }
        out
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "separation audit [{}]: {} open / {} closed",
            self.label,
            self.open_count(),
            self.closed_count()
        )?;
        writeln!(
            f,
            "  {:<18} {:<5} {:<8} detail",
            "channel", "sect", "status"
        )?;
        for r in &self.rows {
            let status = if r.outcome.is_leak() {
                if r.expected_residual {
                    "RESID"
                } else {
                    "OPEN"
                }
            } else {
                "closed"
            };
            let detail = match &r.outcome {
                Outcome::Leaked(s) | Outcome::Blocked(s) => s,
            };
            writeln!(
                f,
                "  {:<18} {:<5} {:<8} {}",
                r.channel.to_string(),
                r.channel.section(),
                status,
                detail
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> AuditReport {
        AuditReport {
            label: "test".into(),
            rows: vec![
                ChannelRow {
                    channel: Channel::ProcList,
                    outcome: Outcome::Blocked("hidden".into()),
                    expected_residual: false,
                },
                ChannelRow {
                    channel: Channel::FsTmpFilename,
                    outcome: Outcome::Leaked("names".into()),
                    expected_residual: true,
                },
                ChannelRow {
                    channel: Channel::NetTcp,
                    outcome: Outcome::Leaked("connected".into()),
                    expected_residual: false,
                },
            ],
        }
    }

    #[test]
    fn counting_and_classification() {
        let r = report();
        assert_eq!(r.open_count(), 2);
        assert_eq!(r.closed_count(), 1);
        assert_eq!(r.unexpected_leaks(), vec![Channel::NetTcp]);
        assert!(!r.only_expected_residuals());
        assert_eq!(
            r.open_channels(),
            vec![Channel::FsTmpFilename, Channel::NetTcp]
        );
    }

    #[test]
    fn csv_rendering() {
        let csv = report().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "channel,section,status,detail");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("ProcList,IV-A,closed,"));
        assert!(lines[2].contains(",residual,"));
        assert!(lines[3].contains(",open,"));
    }

    #[test]
    fn display_marks_residuals() {
        let s = report().to_string();
        assert!(s.contains("RESID"));
        assert!(s.contains("OPEN"));
        assert!(s.contains("closed"));
        assert!(s.contains("2 open / 1 closed"));
    }
}
