//! The separation configuration: one toggle per mechanism the paper deploys.
//!
//! [`SeparationConfig::baseline`] is a stock Linux + Slurm cluster (every
//! control off, shared nodes); [`SeparationConfig::llsc`] is the paper's full
//! deployment. Individual toggles support the ablation sweep in experiment
//! E12, which shows which cross-user channels each control closes — the
//! paper's defense-in-depth argument (e.g. whole-node scheduling does *not*
//! make `hidepid` redundant, Sec. IV-B).

use eus_sched::{NodeSharing, PrivateData};
use eus_simcore::SimDuration;
use std::fmt;

/// Which mechanisms are deployed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeparationConfig {
    /// `hidepid=2` on `/proc` plus the `seepid` exemption group (Sec. IV-A).
    pub hidepid: bool,
    /// Slurm `PrivateData` for jobs and usage (Sec. IV-B).
    pub private_data: bool,
    /// Node-sharing policy (Sec. IV-B).
    pub node_policy: NodeSharing,
    /// `pam_slurm`: ssh only where your job runs (Sec. IV-B).
    pub pam_slurm: bool,
    /// File Permission Handler: smask kernel patches + PAM session module +
    /// ACL restrictions (Sec. IV-C).
    pub fsperm: bool,
    /// User-Based Firewall rules + daemons on every node (Sec. IV-D).
    pub ubf: bool,
    /// Portal authorizes routes and forwards with the user's identity
    /// (Sec. IV-E); off = naive authenticated reverse proxy.
    pub portal_authz: bool,
    /// Scheduler-managed `/dev` permissions for accelerators (Sec. IV-F);
    /// off = world-accessible device nodes (the udev default).
    pub gpu_dev_perms: bool,
    /// Vendor GPU-memory scrub in the epilog (Sec. IV-F).
    pub gpu_scrub: bool,
    /// Federated identity & credential lifecycle: short-lived broker-issued
    /// tokens and SSH certificates replace raw-uid trust and long-lived keys
    /// (companion paper *Securing HPC using Federated Authentication*,
    /// Prout et al. 2019); off = sequential portal tokens, `authorized_keys`
    /// forever, no revocation plane.
    pub federated_auth: bool,
    /// Credential-broker shard count: 1 = a single broker table; >1 = a
    /// uid-hashed `ShardedBroker` (millions-of-sessions scale, same
    /// accept/reject behavior). Ignored when `federated_auth` is off.
    pub broker_shards: u32,
    /// Sister realms whose credentials the home site's trust policy
    /// allow-lists (realm ids; empty = PR-1's home-realm-only behavior).
    /// Non-listed realms fail closed. Ignored when `federated_auth` is off.
    pub trusted_realms: Vec<u32>,
    /// Push-feed cadence for cross-realm revocation propagation
    /// (`eus-revsync`): how often each trusted sister realm ships CRL
    /// deltas (and freshness heartbeats) to this site. Ignored when
    /// `federated_auth` is off.
    pub revsync_feed_interval: SimDuration,
    /// Pull anti-entropy cadence: how often this site asks each trusted
    /// issuer for everything past its applied frontier (repairs lost
    /// pushes). Ignored when `federated_auth` is off.
    pub revsync_anti_entropy: SimDuration,
    /// The staleness budget: cross-realm validation against a CRL replica
    /// older than this fails closed (`CredError::StaleReplica`) instead of
    /// trusting possibly-revoked credentials. Ignored when
    /// `federated_auth` is off.
    pub revsync_max_lag: SimDuration,
    /// Scheduler policy plane: multi-partition fair-share head selection
    /// over the decayed usage ledger. Off in both presets (a scheduling
    /// *policy* choice, not a separation mechanism — it never appears in
    /// the ablation sweep); with it off the engine is observationally
    /// identical to the reference scheduler.
    pub sched_fair_share: bool,
    /// Scheduler policy plane: QoS preemption — latency-sensitive jobs may
    /// kill-and-requeue strictly-lower-class bulk work. The victim leaves
    /// through the full separation epilog (process cleanup, GPU scrub)
    /// before the preemptor's prolog, so every separation guarantee
    /// survives urgency. Off in both presets.
    pub sched_preemption: bool,
    /// Scheduler policy plane: conservative-backfill reservation depth
    /// (top-K queued jobs get planned starts; backfill may not collide
    /// with any of them). 0 = plain EASY. Off in both presets.
    pub sched_reservations: u32,
}

/// Default `eus-revsync` cadences: feeds every 10 s, anti-entropy every
/// 5 min, and a 15 min staleness budget — revocations normally propagate in
/// seconds, and a partitioned sister realm fails closed within minutes.
pub const REVSYNC_FEED_INTERVAL: SimDuration = SimDuration::from_secs(10);
/// See [`REVSYNC_FEED_INTERVAL`].
pub const REVSYNC_ANTI_ENTROPY: SimDuration = SimDuration::from_secs(300);
/// See [`REVSYNC_FEED_INTERVAL`].
pub const REVSYNC_MAX_LAG: SimDuration = SimDuration::from_secs(900);

impl SeparationConfig {
    /// Stock Linux + Slurm: everything off, shared nodes.
    pub fn baseline() -> Self {
        SeparationConfig {
            hidepid: false,
            private_data: false,
            node_policy: NodeSharing::Shared,
            pam_slurm: false,
            fsperm: false,
            ubf: false,
            portal_authz: false,
            gpu_dev_perms: false,
            gpu_scrub: false,
            federated_auth: false,
            broker_shards: 1,
            trusted_realms: Vec::new(),
            revsync_feed_interval: REVSYNC_FEED_INTERVAL,
            revsync_anti_entropy: REVSYNC_ANTI_ENTROPY,
            revsync_max_lag: REVSYNC_MAX_LAG,
            sched_fair_share: false,
            sched_preemption: false,
            sched_reservations: 0,
        }
    }

    /// The paper's full deployment.
    pub fn llsc() -> Self {
        SeparationConfig {
            hidepid: true,
            private_data: true,
            node_policy: NodeSharing::WholeNodeUser,
            pam_slurm: true,
            fsperm: true,
            ubf: true,
            portal_authz: true,
            gpu_dev_perms: true,
            gpu_scrub: true,
            federated_auth: true,
            // Four uid-hashed shards: behaviorally identical to one broker
            // (property-tested), structurally ready for the million-session
            // scale the north star asks for.
            broker_shards: 4,
            trusted_realms: Vec::new(),
            revsync_feed_interval: REVSYNC_FEED_INTERVAL,
            revsync_anti_entropy: REVSYNC_ANTI_ENTROPY,
            revsync_max_lag: REVSYNC_MAX_LAG,
            sched_fair_share: false,
            sched_preemption: false,
            sched_reservations: 0,
        }
    }

    /// Builder: enable multi-partition fair-share scheduling.
    pub fn with_fair_share(mut self) -> Self {
        self.sched_fair_share = true;
        self
    }

    /// Builder: enable QoS preemption.
    pub fn with_preemption(mut self) -> Self {
        self.sched_preemption = true;
        self
    }

    /// Builder: hold conservative-backfill reservations for the top-`k`
    /// queued jobs.
    pub fn with_reservations(mut self, k: u32) -> Self {
        self.sched_reservations = k;
        self
    }

    /// Builder: allow-list sister realms at the home site.
    pub fn with_trusted_realms(mut self, realms: impl Into<Vec<u32>>) -> Self {
        self.trusted_realms = realms.into();
        self
    }

    /// Builder: set the credential-broker shard count.
    pub fn with_broker_shards(mut self, shards: u32) -> Self {
        self.broker_shards = shards.max(1);
        self
    }

    /// Builder: set the revocation push-feed cadence.
    pub fn with_revsync_feed_interval(mut self, interval: SimDuration) -> Self {
        self.revsync_feed_interval = interval;
        self
    }

    /// Builder: set the revocation anti-entropy cadence.
    pub fn with_revsync_anti_entropy(mut self, period: SimDuration) -> Self {
        self.revsync_anti_entropy = period;
        self
    }

    /// Builder: set the cross-realm staleness budget.
    pub fn with_revsync_max_lag(mut self, budget: SimDuration) -> Self {
        self.revsync_max_lag = budget;
        self
    }

    /// The Slurm `PrivateData` flags implied by this config.
    pub fn private_data_flags(&self) -> PrivateData {
        if self.private_data {
            PrivateData::llsc()
        } else {
            PrivateData::open()
        }
    }

    /// A short label for experiment tables.
    pub fn label(&self) -> String {
        if *self == Self::llsc() {
            return "llsc".to_string();
        }
        if *self == Self::baseline() {
            return "baseline".to_string();
        }
        let mut on: Vec<String> = Vec::new();
        if self.hidepid {
            on.push("hidepid".into());
        }
        if self.private_data {
            on.push("privdata".into());
        }
        match self.node_policy {
            NodeSharing::Shared => {}
            NodeSharing::Exclusive => on.push("exclusive".into()),
            NodeSharing::WholeNodeUser => on.push("whole-node".into()),
        }
        if self.pam_slurm {
            on.push("pam_slurm".into());
        }
        if self.fsperm {
            on.push("fsperm".into());
        }
        if self.ubf {
            on.push("ubf".into());
        }
        if self.portal_authz {
            on.push("portal".into());
        }
        if self.gpu_dev_perms {
            on.push("gpuperm".into());
        }
        if self.gpu_scrub {
            on.push("gpuscrub".into());
        }
        if self.federated_auth {
            on.push("fedauth".into());
            if self.broker_shards > 1 {
                on.push(format!("shards{}", self.broker_shards));
            }
            if !self.trusted_realms.is_empty() {
                let realms: Vec<String> = self.trusted_realms.iter().map(u32::to_string).collect();
                on.push(format!("trust[{}]", realms.join(",")));
            }
            if self.revsync_feed_interval != REVSYNC_FEED_INTERVAL
                || self.revsync_anti_entropy != REVSYNC_ANTI_ENTROPY
                || self.revsync_max_lag != REVSYNC_MAX_LAG
            {
                on.push(format!(
                    "revsync[{}/{}/{}]",
                    self.revsync_feed_interval, self.revsync_anti_entropy, self.revsync_max_lag
                ));
            }
        }
        if self.sched_fair_share {
            on.push("fairshare".into());
        }
        if self.sched_preemption {
            on.push("preempt".into());
        }
        if self.sched_reservations > 0 {
            on.push(format!("resv{}", self.sched_reservations));
        }
        if on.is_empty() {
            "baseline".to_string()
        } else {
            format!("custom[{}]", on.join("+"))
        }
    }

    /// Every single-mechanism ablation: start from `llsc()` and turn one
    /// control off at a time. Returns (description, config) pairs.
    pub fn ablations() -> Vec<(&'static str, SeparationConfig)> {
        let full = Self::llsc();
        let mut out: Vec<(&'static str, SeparationConfig)> = vec![(
            "-hidepid",
            SeparationConfig {
                hidepid: false,
                ..full.clone()
            },
        )];
        out.push((
            "-privdata",
            SeparationConfig {
                private_data: false,
                ..full.clone()
            },
        ));
        out.push((
            "-wholenode",
            SeparationConfig {
                node_policy: NodeSharing::Shared,
                ..full.clone()
            },
        ));
        out.push((
            "-pam_slurm",
            SeparationConfig {
                pam_slurm: false,
                ..full.clone()
            },
        ));
        out.push((
            "-fsperm",
            SeparationConfig {
                fsperm: false,
                ..full.clone()
            },
        ));
        out.push((
            "-ubf",
            SeparationConfig {
                ubf: false,
                ..full.clone()
            },
        ));
        out.push((
            "-portal",
            SeparationConfig {
                portal_authz: false,
                ..full.clone()
            },
        ));
        out.push((
            "-gpuperm",
            SeparationConfig {
                gpu_dev_perms: false,
                ..full.clone()
            },
        ));
        out.push((
            "-gpuscrub",
            SeparationConfig {
                gpu_scrub: false,
                ..full.clone()
            },
        ));
        out.push((
            "-fedauth",
            SeparationConfig {
                federated_auth: false,
                ..full.clone()
            },
        ));
        out
    }

    /// The sharding "ablation": not a security mechanism (it never appears
    /// in [`ablations`](Self::ablations)) but a scale knob — collapsing the
    /// sharded broker to one table must change *no* channel outcome. The
    /// federation-scale experiment audits this equivalence explicitly.
    pub fn single_shard(&self) -> SeparationConfig {
        SeparationConfig {
            broker_shards: 1,
            ..self.clone()
        }
    }
}

impl Default for SeparationConfig {
    fn default() -> Self {
        Self::llsc()
    }
}

impl fmt::Display for SeparationConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_labels() {
        assert_eq!(SeparationConfig::baseline().label(), "baseline");
        assert_eq!(SeparationConfig::llsc().label(), "llsc");
        let mut c = SeparationConfig::baseline();
        c.ubf = true;
        assert_eq!(c.label(), "custom[ubf]");
    }

    #[test]
    fn private_data_mapping() {
        assert!(SeparationConfig::llsc().private_data_flags().jobs);
        assert!(!SeparationConfig::baseline().private_data_flags().jobs);
    }

    #[test]
    fn ablations_each_differ_from_full_in_one_knob() {
        let abl = SeparationConfig::ablations();
        assert_eq!(abl.len(), 10);
        for (name, cfg) in &abl {
            assert_ne!(
                *cfg,
                SeparationConfig::llsc(),
                "{name} must change something"
            );
        }
        // Names are unique.
        let mut names: Vec<&str> = abl.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
        // The scale knob is not an ablation, but it must differ from llsc.
        assert_ne!(
            SeparationConfig::llsc().single_shard(),
            SeparationConfig::llsc()
        );
    }

    #[test]
    fn federation_knobs_render_in_custom_labels() {
        let c = SeparationConfig::llsc()
            .with_broker_shards(8)
            .with_trusted_realms([2u32, 3]);
        let label = c.label();
        assert!(label.contains("shards8"), "{label}");
        assert!(label.contains("trust[2,3]"), "{label}");
        // Presets keep their short names.
        assert_eq!(SeparationConfig::llsc().label(), "llsc");
    }

    #[test]
    fn policy_plane_knobs_render_and_stay_out_of_ablations() {
        let c = SeparationConfig::llsc()
            .with_fair_share()
            .with_preemption()
            .with_reservations(8);
        let label = c.label();
        assert!(label.contains("fairshare"), "{label}");
        assert!(label.contains("preempt"), "{label}");
        assert!(label.contains("resv8"), "{label}");
        // The plane is policy, not a separation mechanism: presets keep it
        // off and the ablation sweep never toggles it.
        assert!(!SeparationConfig::llsc().sched_fair_share);
        assert!(!SeparationConfig::baseline().sched_preemption);
        assert_eq!(SeparationConfig::ablations().len(), 10);
    }

    #[test]
    fn default_is_llsc() {
        assert_eq!(SeparationConfig::default(), SeparationConfig::llsc());
    }

    #[test]
    fn revsync_knobs_render_only_when_changed() {
        assert_eq!(SeparationConfig::llsc().label(), "llsc");
        let c = SeparationConfig::llsc()
            .with_revsync_feed_interval(SimDuration::from_secs(60))
            .with_revsync_max_lag(SimDuration::from_secs(120));
        let label = c.label();
        assert!(label.contains("revsync["), "{label}");
    }
}
