//! Cluster-plane observability: the pre-registered handle set for
//! [`crate::SecureCluster`].
//!
//! The cluster's own hot loop is [`reconcile`](crate::SecureCluster) — the
//! epilog/prolog sweep that runs after every scheduler advance and carries
//! the separation guarantee (departed tenant scrubbed before the next
//! tenant's prolog). [`CoreObs`] times it (`core.cluster.reconcile` span),
//! counts its work items, and flight-records the separation-relevant
//! moments (epilog scrubs, prolog materializations). The federated
//! verification path ([`crate::SecureCluster::validate_federated_token`])
//! is `&self`, so its outcome counts go through atomic
//! [`SharedStats`] slots.
//!
//! [`crate::SecureCluster::enable_obs`] turns on every plane at once:
//! this recorder, the scheduler's [`eus_sched::SchedObs`], the broker's
//! [`eus_fedauth::ValidateStats`], the mesh's [`eus_revsync::MeshObs`],
//! the portal's [`eus_portal::PortalObs`], and the UBF daemons'
//! [`eus_ubf::UbfPacketStats`].
//!
//! Obs v2 adds two cluster-level pillars on top of the counters:
//!
//! * **Causal tracing** — entry points mint [`TraceCtx`]s (`core.submit.try`
//!   here, `portal.route.revoke` on the portal ring, `cred.pam.account` on
//!   the broker ring) that flow by value through the credential plane, the
//!   scheduler dispatch path, and across the simulated WAN inside revocation
//!   deltas. [`crate::SecureCluster::collect_trace`] reassembles one trace
//!   from every plane's ring; [`render_trace`] draws the tree.
//! * **SLOs** — declarative objectives over sim-time-bucketed rings,
//!   evaluated at cycle boundaries with two-window burn-rate semantics
//!   (short and long windows must both breach). Alerts are edge-triggered
//!   into the [`AlertLog`] and flight-recorded as `core.slo.alert` events.

use eus_fedauth::CredError;
use eus_simcore::SimDuration;
use eus_simos::Uid;
use std::time::Instant;

// `pub use` so facade users reach the substrate types through
// `eus_core::obs::…` like the other planes.
pub use eus_obs::{
    assemble_trace, check_well_formed, panicdump, render_trace, Alert, AlertKind, AlertLog,
    CounterId, FlightEvent, FlightRecorder, GaugeId, ObsConfig, ObsSnapshot, Recorder, SharedId,
    SharedStats, SloAgg, SloId, SloPlane, SloSpec, SpanId, TraceBuffer, TraceCtx, TraceSpan,
    TraceToken, TsId, TsRing, WindowAgg,
};

/// Plane code baked into cluster-level trace ids (see [`TraceBuffer::new`]).
pub const CORE_TRACE_CODE: u8 = 1;

/// The cluster's recorder plus every handle it records through.
#[derive(Debug, Clone)]
pub struct CoreObs {
    /// The registry + flight recorder (`core.*` namespace).
    pub rec: Recorder,
    /// One reconcile sweep (epilogs then prologs).
    pub sp_reconcile: SpanId,
    /// Reconcile sweeps run.
    pub c_reconciles: CounterId,
    /// Epilog events processed (cleanup for a departed/preempted tenant).
    pub c_epilogs: CounterId,
    /// Prologs run (newly started jobs materialized: procs + GPUs).
    pub c_prologs: CounterId,
    /// GPU memory scrubs performed by epilogs.
    pub c_gpu_scrubs: CounterId,
    /// GPU device-permission assignments performed by prologs.
    pub c_gpu_assigns: CounterId,
    /// Cluster-wide conntrack occupancy, sampled at cycle boundaries.
    pub g_flows: GaugeId,
    /// Time-series ring behind [`g_flows`](Self::g_flows).
    pub ts_flows: TsId,
    /// IdP dependency health, sampled at cycle boundaries
    /// (0 = healthy, 1 = degraded, 2 = fail-closed; see
    /// [`crate::DepHealth`]).
    pub g_health_idp: GaugeId,
    /// CA dependency health (same encoding).
    pub g_health_ca: GaugeId,
    /// Revocation-feed dependency health (same encoding; worst replica).
    pub g_health_feed: GaugeId,
    /// Causal trace ring for cluster entry points (`core.submit.try`).
    pub trace: TraceBuffer,
    /// Declarative service-level objectives, evaluated at cycle
    /// boundaries with two-window burn-rate semantics.
    pub slo: SloPlane,
    /// `cred.validate.latency`: mean validate latency per boundary (ns).
    pub slo_validate: SloId,
    /// `revsync.replica.lag`: worst replica staleness (µs); re-aimed to
    /// `revsync_max_lag / 2` by `enable_obs`.
    pub slo_replica_lag: SloId,
    /// `sched.interactive.wait`: mean queue wait of interactive starts (µs).
    pub slo_interactive_wait: SloId,
    /// `cluster.dependency.degraded`: 1.0 at any boundary where some
    /// dependency (IdP, CA, revocation feed) is degraded or fail-closed,
    /// 0.0 otherwise. Max-aggregated over tight windows so a single
    /// degraded boundary fires the alert and a clean baseline never does.
    pub slo_dep_degraded: SloId,
    stats: SharedStats,
    s_fed_calls: SharedId,
    s_fed_ok: SharedId,
    s_fed_rejects: SharedId,
    s_fed_ns: SharedId,
}

impl CoreObs {
    /// Register the full cluster handle set under `cfg`.
    pub fn new(cfg: &ObsConfig) -> Self {
        let mut rec = Recorder::new(cfg);
        let mut stats = SharedStats::new();
        if cfg.enabled {
            stats.set_enabled(true);
        }
        let g_flows = rec.gauge("core.fabric.flows");
        let ts_flows = rec.track_gauge(g_flows, SimDuration::from_secs(10), 360);
        let mut slo = SloPlane::new(SimDuration::from_secs(10), cfg.enabled);
        let slo_validate = slo.slo(
            "cred.validate.latency",
            SloSpec {
                target: 1e7, // 10ms mean — pathology only; re-aim per deployment
                agg: SloAgg::Mean,
                short_buckets: 3,
                long_buckets: 18,
            },
        );
        let slo_replica_lag = slo.slo(
            "revsync.replica.lag",
            SloSpec {
                target: f64::MAX, // re-aimed to revsync_max_lag/2 at enable_obs
                agg: SloAgg::Max,
                short_buckets: 3,
                long_buckets: 18,
            },
        );
        let slo_interactive_wait = slo.slo(
            "sched.interactive.wait",
            SloSpec {
                target: 60e6, // 60s mean queue wait for interactive QoS, in µs
                agg: SloAgg::Mean,
                short_buckets: 3,
                long_buckets: 18,
            },
        );
        let slo_dep_degraded = slo.slo(
            "cluster.dependency.degraded",
            SloSpec {
                // The signal is binary (0 healthy / 1 degraded), so any
                // threshold strictly between fires exactly on degradation.
                target: 0.5,
                agg: SloAgg::Max,
                short_buckets: 1,
                long_buckets: 3,
            },
        );
        CoreObs {
            sp_reconcile: rec.span("core.cluster.reconcile"),
            c_reconciles: rec.counter("core.reconcile.sweeps"),
            c_epilogs: rec.counter("core.reconcile.epilogs"),
            c_prologs: rec.counter("core.reconcile.prologs"),
            c_gpu_scrubs: rec.counter("core.gpu.scrubs"),
            c_gpu_assigns: rec.counter("core.gpu.assigns"),
            g_flows,
            ts_flows,
            g_health_idp: rec.gauge("core.health.idp"),
            g_health_ca: rec.gauge("core.health.ca"),
            g_health_feed: rec.gauge("core.health.feed"),
            trace: TraceBuffer::new("core", CORE_TRACE_CODE, 4096, cfg.enabled),
            slo,
            slo_validate,
            slo_replica_lag,
            slo_interactive_wait,
            slo_dep_degraded,
            s_fed_calls: stats.slot("core.fed_validate.calls"),
            s_fed_ok: stats.slot("core.fed_validate.ok"),
            s_fed_rejects: stats.slot("core.fed_validate.rejects"),
            s_fed_ns: stats.slot("core.fed_validate.ns"),
            stats,
            rec,
        }
    }

    /// A disabled handle set (the default inside every cluster).
    pub fn disabled() -> Self {
        Self::new(&ObsConfig::default())
    }

    /// Start timing one federated validation. `None` (free) when disabled.
    pub fn begin_fed_validate(&self) -> Option<Instant> {
        if self.stats.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finish one federated validation started by
    /// [`begin_fed_validate`](Self::begin_fed_validate).
    pub fn finish_fed_validate(&self, started: Option<Instant>, r: &Result<Uid, CredError>) {
        if let Some(t0) = started {
            self.stats
                .add(self.s_fed_ns, t0.elapsed().as_nanos() as u64);
            self.stats.incr(self.s_fed_calls);
            self.stats.incr(if r.is_ok() {
                self.s_fed_ok
            } else {
                self.s_fed_rejects
            });
        }
    }

    /// Federated validations recorded at the cluster boundary.
    pub fn fed_validate_calls(&self) -> u64 {
        self.stats.value(self.s_fed_calls)
    }

    /// Federated validations that refused the credential.
    pub fn fed_validate_rejects(&self) -> u64 {
        self.stats.value(self.s_fed_rejects)
    }

    /// Snapshot every metric (counters, gauges, span histograms).
    pub fn snapshot(&self) -> ObsSnapshot {
        self.rec.snapshot()
    }

    /// Validate-path slots as `(name, value)`.
    pub fn validate_snapshot(&self) -> Vec<(&'static str, u64)> {
        self.stats.snapshot()
    }
}

impl Default for CoreObs {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let obs = CoreObs::default();
        assert!(!obs.rec.enabled());
        assert!(obs.begin_fed_validate().is_none());
        obs.finish_fed_validate(None, &Ok(Uid(1)));
        assert_eq!(obs.fed_validate_calls(), 0);
    }

    #[test]
    fn fed_validate_outcomes_count() {
        let obs = CoreObs::new(&ObsConfig::enabled());
        let t = obs.begin_fed_validate();
        obs.finish_fed_validate(t, &Ok(Uid(1)));
        let t = obs.begin_fed_validate();
        obs.finish_fed_validate(t, &Err(CredError::NoCredential(Uid(2))));
        assert_eq!(obs.fed_validate_calls(), 2);
        assert_eq!(obs.fed_validate_rejects(), 1);
        assert!(obs
            .validate_snapshot()
            .contains(&("core.fed_validate.ok", 1)));
    }
}
