//! # eus-core — Enhanced User Separation for HPC
//!
//! The paper's primary contribution as a deployable library: assemble a
//! multi-tenant HPC cluster whose users "cannot observe or interact with
//! each other" across processes, the scheduler, filesystems, the network,
//! the web portal, accelerators, and containers — so that "for users, it
//! looks like they're the only one on the HPC system" (Sec. V).
//!
//! * [`config::SeparationConfig`] — one toggle per mechanism; presets
//!   [`config::SeparationConfig::baseline`] (stock Linux+Slurm) and
//!   [`config::SeparationConfig::llsc`] (the paper's deployment), plus the
//!   single-mechanism ablations.
//! * [`cluster::SecureCluster`] — the assembled system: nodes, shared
//!   filesystems, scheduler, firewall daemons, GPUs, portal.
//! * [`audit`] — the channel sweep that *measures* separation: which of the
//!   21 cross-user channels are open under a given configuration, and
//!   whether only the paper's three residual paths remain.
//! * the federated credential plane ([`eus_fedauth`], toggled by
//!   [`config::SeparationConfig::federated_auth`]) — the companion paper's
//!   identity layer (*Securing HPC using Federated Authentication*, Prout
//!   et al. 2019): a per-realm broker mints short-lived signed bearer
//!   tokens and SSH certificates that sshd (PAM account phase), the job
//!   submission gate, and the portal all consult, with O(1) revocation.
//!   Three audit channels measure it: stolen-token replay, expired-cert
//!   ssh, and cross-realm impersonation.
//!
//! ```
//! use eus_core::{audit, ClusterSpec, SeparationConfig};
//!
//! let report = audit::run_audit(&SeparationConfig::llsc(), &ClusterSpec::tiny());
//! assert!(report.only_expected_residuals());
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod cluster;
pub mod config;
pub mod obs;
pub mod support;

pub use audit::{expected_residuals, run_audit, AuditReport, Channel, Outcome};
pub use cluster::{ClusterSpec, DepHealth, Dependency, SecureCluster, HOME_REALM};
pub use config::SeparationConfig;
pub use obs::CoreObs;
pub use support::{attribute_load, LoadReport};

// Re-export the substrate crates so downstream users need one dependency.
pub use eus_accel as accel;
pub use eus_containers as containers;
pub use eus_fedauth as fedauth;
pub use eus_fsperm as fsperm;
pub use eus_portal as portal;
pub use eus_revsync as revsync;
pub use eus_sched as sched;
pub use eus_simcore as simcore;
pub use eus_simnet as simnet;
pub use eus_simos as simos;
pub use eus_ubf as ubf;
pub use eus_workloads as workloads;
