//! `SecureCluster`: a whole simulated HPC system assembled from the
//! substrates according to a [`SeparationConfig`].
//!
//! This is the deployable artifact the paper describes: login + compute
//! nodes with shared `/home` and `/proj` filesystems, a Slurm-like scheduler
//! with the chosen node-sharing policy, per-node `/proc` options and PAM
//! stacks, the User-Based Firewall on every host, scheduler-managed GPUs,
//! and the web portal. The audit engine and every experiment run against
//! this type.

use crate::config::SeparationConfig;
use crate::obs::{CoreObs, ObsConfig};
use eus_accel::GpuPool;
use eus_containers::{ContainerRegistry, HpcRuntime};
use eus_fedauth::{
    shared_broker, BrokerPolicy, CredSerial, CredentialBroker, FederationDirectory, PamFedAuth,
    RealmId, ShardedBroker, SharedBroker, SignedToken, TrustPolicy,
};
use eus_fsperm::{apply_kernel_patches_handle, FilePermissionHandler, PamSmask, LLSC_SMASK};
use eus_portal::{PortalGateway, RouteKey, WebAppRegistry};
use eus_revsync::{RevSyncConfig, RevSyncMesh};
use eus_sched::{
    shared_scheduler, EpilogEvent, JobId, JobSpec, JobState, PamSlurm, SchedConfig, Scheduler,
    SharedScheduler,
};
use eus_simcore::{SimDuration, SimTime};
use eus_simnet::{ConnId, ConnectError, Fabric, PeerInfo, Port, Proto, SocketAddr};
use eus_simos::node::{fs_handle, FsHandle, LoginError};
use eus_simos::procfs::ProcMountOpts;
use eus_simos::{
    Credentials, FsCtx, FsError, FsResult, Gid, Mode, NodeId, NodeOs, Pid, SessionId, Uid, UserDb,
    UserDbError, Vfs,
};
use eus_ubf::{
    deploy_ubf_observed, shared_user_db, SharedUserDb, UbfConfig, UbfPacketStats, UbfStats,
};
use std::collections::{BTreeMap, BTreeSet};

/// Hardware shape of the cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of compute nodes.
    pub compute_nodes: u32,
    /// Cores per compute node.
    pub cores_per_node: u32,
    /// Memory per compute node (MiB).
    pub mem_per_node_mib: u64,
    /// GPUs per compute node.
    pub gpus_per_node: u16,
    /// Device memory per GPU (bytes; kept small — remanence is the modeled
    /// property, not capacity).
    pub gpu_mem_bytes: usize,
    /// Number of login nodes (always ≥ 1; these stay multi-user, which is
    /// why hidepid matters even under whole-node scheduling).
    pub login_nodes: u32,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            compute_nodes: 8,
            cores_per_node: 16,
            mem_per_node_mib: 65_536,
            gpus_per_node: 2,
            gpu_mem_bytes: 4096,
            login_nodes: 1,
        }
    }
}

impl ClusterSpec {
    /// A small spec for fast tests.
    pub fn tiny() -> Self {
        ClusterSpec {
            compute_nodes: 2,
            cores_per_node: 8,
            mem_per_node_mib: 16_384,
            gpus_per_node: 1,
            gpu_mem_bytes: 1024,
            login_nodes: 1,
        }
    }
}

/// The home site's federation realm id.
pub const HOME_REALM: RealmId = RealmId(1);

/// An external dependency of the cluster whose outage the site degrades
/// around (rather than falling over): the identity provider behind logins,
/// the certificate authority behind credential minting, and the
/// cross-realm revocation feeds behind replica-backed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Dependency {
    /// The home realm's identity provider (login/assertion path).
    Idp,
    /// The home realm's certificate authority (minting path).
    Ca,
    /// The revocation feeds from trusted sister realms (worst replica).
    Feed,
}

/// Health of one [`Dependency`], re-judged at every cycle boundary.
///
/// The ladder only descends while the outage persists — `Healthy →
/// Degraded → FailClosed` — and snaps back to `Healthy` the first boundary
/// after heal. *Degraded* means the cluster is serving on borrowed state:
/// new logins fail `Unavailable` but already-minted tokens keep validating
/// against local state (broker tables, CRL replicas). *FailClosed* means
/// the borrowed state has aged past `config.revsync_max_lag`, the bound
/// the paper's bounded-staleness argument rests on, and the affected path
/// now refuses rather than trusts stale data. The judgment is pure
/// observation — enforcement lives in the broker gates and the replica
/// staleness check, which fail closed with or without this bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepHealth {
    /// Dependency reachable; nothing borrowed.
    Healthy,
    /// Outage in progress since `since`; serving on local state.
    Degraded {
        /// When the outage was first observed at a cycle boundary.
        since: SimTime,
    },
    /// Borrowed state exhausted; the affected path refuses.
    FailClosed,
}

impl DepHealth {
    /// The gauge encoding (`core.health.*`): 0 / 1 / 2 down the ladder.
    pub fn gauge(self) -> i64 {
        match self {
            DepHealth::Healthy => 0,
            DepHealth::Degraded { .. } => 1,
            DepHealth::FailClosed => 2,
        }
    }

    /// Is this the top of the ladder?
    pub fn is_healthy(self) -> bool {
        matches!(self, DepHealth::Healthy)
    }
}

/// The assembled system.
pub struct SecureCluster {
    /// Deployed mechanisms.
    pub config: SeparationConfig,
    /// Hardware shape.
    pub spec: ClusterSpec,
    /// Shared account database.
    pub db: SharedUserDb,
    /// The scheduler (shared: PAM stacks hold handles).
    pub sched: SharedScheduler,
    /// The network.
    pub fabric: Fabric,
    nodes: BTreeMap<NodeId, NodeOs>,
    /// Compute node ids (scheduler-managed).
    pub compute_ids: Vec<NodeId>,
    /// Login node ids (multi-user).
    pub login_ids: Vec<NodeId>,
    /// Cluster-wide `/home`.
    pub shared_home: FsHandle,
    /// Cluster-wide `/proj`.
    pub shared_proj: FsHandle,
    /// All accelerators.
    pub gpus: GpuPool,
    /// The web portal.
    pub portal: PortalGateway,
    /// Running web apps.
    pub apps: WebAppRegistry,
    /// File Permission Handler site policy (whitelists, smask default).
    pub fsperm_policy: FilePermissionHandler,
    /// Container runtime.
    pub runtime: HpcRuntime,
    /// Shared-filesystem container copies.
    pub containers: ContainerRegistry,
    /// Per-host UBF statistics handles (empty when UBF off).
    pub ubf_stats: Vec<UbfStats>,
    /// One shared packet-path slot registry wired into every UBF daemon
    /// (cache hit ratios, denies, ident round trips, occupancy peak).
    /// Disabled until `enable_obs`; the handle reaches daemons already
    /// moved into the fabric.
    pub ubf_pkt: UbfPacketStats,
    /// The federated credential plane (`Some` when `config.federated_auth`):
    /// sshd PAM, job submission, and the portal all consult it. A single
    /// broker when `config.broker_shards == 1`, a uid-hashed
    /// [`ShardedBroker`] otherwise — callers can't tell the difference.
    pub broker: Option<SharedBroker>,
    /// The federation directory (`Some` when `config.federated_auth`): the
    /// home realm's plane plus any registered sister realms, with the home
    /// site's trust policy from `config.trusted_realms`.
    pub federation: Option<FederationDirectory>,
    /// The revocation-propagation mesh (`Some` when
    /// `config.federated_auth`): local CRL replicas for trusted sister
    /// realms, fed by push deltas + pull anti-entropy over a simulated WAN.
    /// Cross-realm validation consults these replicas — never the issuer —
    /// under `config.revsync_max_lag` (bounded staleness, fail closed).
    pub revsync: Option<RevSyncMesh>,
    seepid_gid: Gid,
    materialized: BTreeSet<JobId>,
    job_procs: BTreeMap<JobId, Vec<(NodeId, Pid)>>,
    // Per-dependency degraded-mode state machines (see [`DepHealth`]),
    // re-judged at every cycle boundary.
    health_idp: DepHealth,
    health_ca: DepHealth,
    health_feed: DepHealth,
    // Injected per-realm clock skew: the realm's plane is advanced to
    // `now + skew` at every clock sync (forward-only; plane clocks are
    // monotone, so shrinking or clearing the skew just stops the extra
    // advance until the cluster clock catches up).
    clock_skew: BTreeMap<RealmId, SimDuration>,
    // Last-sampled totals for boundary SLO deltas (monotone counters read
    // at each `advance_to`; the difference feeds the SLO rings).
    prev_validate_calls: u64,
    prev_validate_ns: u64,
    prev_iwait_us: u64,
    prev_iwaits: u64,
    /// Cluster-plane observability (reconcile span, prolog/epilog
    /// counters, federated-validate stats). Disabled by default; pure
    /// measurement — never consulted by any enforcement decision.
    pub obs: CoreObs,
}

impl SecureCluster {
    /// Assemble a cluster.
    pub fn new(config: SeparationConfig, spec: ClusterSpec) -> Self {
        let mut udb = UserDb::new();
        let seepid_gid = udb
            .create_system_group("proc-exempt")
            .expect("fresh db has no such group");
        let db = shared_user_db(udb);

        // Scheduler with the configured policy (+ policy plane knobs).
        let mut scheduler = Scheduler::new(SchedConfig {
            policy: config.node_policy,
            private_data: config.private_data_flags(),
            fair_share: config.sched_fair_share,
            preemption: config.sched_preemption,
            reservations: config.sched_reservations as usize,
            ..SchedConfig::default()
        });
        let compute_ids: Vec<NodeId> = (0..spec.compute_nodes)
            .map(|_| {
                scheduler.add_node(
                    spec.cores_per_node,
                    spec.mem_per_node_mib,
                    spec.gpus_per_node as u32,
                )
            })
            .collect();
        let sched = shared_scheduler(scheduler);

        // Shared filesystems.
        let shared_home = fs_handle(Vfs::new("shared-home"));
        let shared_proj = fs_handle(Vfs::new("shared-proj"));
        if config.fsperm {
            apply_kernel_patches_handle(&shared_home);
            apply_kernel_patches_handle(&shared_proj);
        }

        let fsperm_policy = FilePermissionHandler::new(seepid_gid);

        // Federated identity plane (companion-paper layer): one realm per
        // site; deterministic key/token material. Sharded when configured —
        // same decisions, partitioned tables.
        let broker: Option<SharedBroker> = if config.federated_auth {
            Some(if config.broker_shards > 1 {
                shared_broker(ShardedBroker::new(
                    HOME_REALM,
                    0x5EED_FEDA,
                    config.broker_shards as usize,
                    BrokerPolicy::default(),
                ))
            } else {
                shared_broker(CredentialBroker::new(
                    HOME_REALM,
                    0x5EED_FEDA,
                    BrokerPolicy::default(),
                ))
            })
        } else {
            None
        };
        let federation = broker.as_ref().map(|b| {
            let mut trust = TrustPolicy::home_only(HOME_REALM);
            for r in &config.trusted_realms {
                trust.trust(RealmId(*r));
            }
            let mut dir = FederationDirectory::new();
            dir.register(HOME_REALM, b.clone(), trust);
            dir
        });
        let revsync = broker.as_ref().map(|b| {
            let mut mesh = RevSyncMesh::new(RevSyncConfig {
                feed_interval: config.revsync_feed_interval,
                anti_entropy: config.revsync_anti_entropy,
                max_lag: config.revsync_max_lag,
                ..RevSyncConfig::default()
            });
            mesh.add_realm(HOME_REALM, b.clone());
            mesh
        });

        // Nodes: compute then login.
        let mut nodes = BTreeMap::new();
        let login_ids: Vec<NodeId> = (0..spec.login_nodes)
            .map(|i| NodeId(spec.compute_nodes + 1 + i))
            .collect();
        let mut fabric = Fabric::new();
        let mut ubf_stats = Vec::new();
        let ubf_pkt = UbfPacketStats::disabled();
        let mut gpus = GpuPool::new();

        for (idx, id) in compute_ids
            .iter()
            .chain(login_ids.iter())
            .copied()
            .enumerate()
        {
            let is_compute = idx < compute_ids.len();
            let name = if is_compute {
                format!("compute{}", id.0)
            } else {
                format!("login{}", id.0)
            };
            let mut node = NodeOs::new(id, name);
            if let Some(b) = &broker {
                // Account phase runs first: no live SSH certificate, no login
                // anywhere — login or compute node alike.
                node.pam.push(Box::new(PamFedAuth::new(b.clone())));
            }
            node.mount("/home", shared_home.clone());
            node.mount("/proj", shared_proj.clone());
            if config.hidepid {
                node.proc_opts = ProcMountOpts::llsc(seepid_gid);
            }
            if config.fsperm {
                apply_kernel_patches_handle(&node.local_fs);
                node.pam
                    .push(Box::new(PamSmask::from_handler(&fsperm_policy)));
            }
            if config.pam_slurm && is_compute {
                node.pam.push(Box::new(PamSlurm::new(sched.clone())));
            }
            let host = fabric.add_host(id);
            if config.ubf {
                ubf_stats.push(deploy_ubf_observed(
                    host,
                    db.clone(),
                    UbfConfig::default(),
                    ubf_pkt.clone(),
                ));
            }
            if is_compute && spec.gpus_per_node > 0 {
                gpus.install(id, spec.gpus_per_node, spec.gpu_mem_bytes, &node.local_fs)
                    .expect("fresh /dev");
                if !config.gpu_dev_perms {
                    for g in gpus.on_node(id) {
                        eus_accel::set_device_world_open(&node.local_fs, g.device)
                            .expect("device exists");
                    }
                }
            }
            nodes.insert(id, node);
        }

        let portal_host = login_ids[0];
        let mut portal = PortalGateway::new(portal_host, db.clone());
        if !config.portal_authz {
            portal = portal.naive_proxy();
        }
        if let Some(b) = &broker {
            portal.auth.attach_broker(b.clone());
        }

        SecureCluster {
            config,
            spec,
            db,
            sched,
            fabric,
            nodes,
            compute_ids,
            login_ids,
            shared_home,
            shared_proj,
            gpus,
            portal,
            apps: WebAppRegistry::new(),
            fsperm_policy,
            runtime: HpcRuntime,
            containers: ContainerRegistry::new(),
            ubf_stats,
            ubf_pkt,
            broker,
            federation,
            revsync,
            seepid_gid,
            materialized: BTreeSet::new(),
            job_procs: BTreeMap::new(),
            health_idp: DepHealth::Healthy,
            health_ca: DepHealth::Healthy,
            health_feed: DepHealth::Healthy,
            clock_skew: BTreeMap::new(),
            prev_validate_calls: 0,
            prev_validate_ns: 0,
            prev_iwait_us: 0,
            prev_iwaits: 0,
            obs: CoreObs::disabled(),
        }
    }

    /// Turn on observability across every plane at once: the cluster's own
    /// recorder (plus its trace ring and SLO plane), the scheduler's
    /// [`eus_sched::SchedObs`], the broker's atomic
    /// [`eus_fedauth::ValidateStats`] and trace ring, the revsync mesh's
    /// [`eus_revsync::MeshObs`], the portal's [`eus_portal::PortalObs`],
    /// and every UBF daemon's shared packet slots. Each plane keeps its own
    /// namespace (`core.*`, `sched.*`, `cred.*`, `revsync.*`, `portal.*`,
    /// `ubf.*`); snapshots are read per plane. The `revsync.replica.lag`
    /// SLO is re-aimed to half the configured staleness budget.
    pub fn enable_obs(&mut self, cfg: ObsConfig) {
        self.obs = CoreObs::new(&cfg);
        self.obs.slo.set_target(
            self.obs.slo_replica_lag,
            self.config.revsync_max_lag.as_micros() as f64 / 2.0,
        );
        self.sched.write().enable_obs(cfg);
        self.portal.obs = eus_portal::PortalObs::new(&cfg);
        self.ubf_pkt.set_enabled(cfg.enabled);
        if let Some(b) = &self.broker {
            let guard = b.read();
            if let Some(stats) = guard.validate_stats() {
                stats.set_enabled(cfg.enabled);
            }
            if let Some(tb) = guard.trace_buffer() {
                tb.set_enabled(cfg.enabled);
            }
        }
        if let Some(mesh) = &mut self.revsync {
            mesh.enable_obs(cfg);
        }
    }

    /// The hidepid exemption group.
    pub fn seepid_gid(&self) -> Gid {
        self.seepid_gid
    }

    /// The first login node (where the portal runs).
    pub fn login_node(&self) -> NodeId {
        self.login_ids[0]
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &NodeOs {
        &self.nodes[&id]
    }

    /// Mutably borrow a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut NodeOs {
        self.nodes.get_mut(&id).expect("known node")
    }

    // ------------------------------------------------------------------
    // Accounts and filesystems
    // ------------------------------------------------------------------

    /// Create a user. With the File Permission Handler deployment
    /// (`config.fsperm`) homes follow the paper's layout: `/home/<name>`
    /// owned by root, group = the user's private group, mode 0770 — the user
    /// works freely inside but cannot chmod the top level open (Sec. IV-C).
    /// Without it, the traditional layout applies: user-owned, mode 0755,
    /// world-traversable — the baseline the audit contrasts.
    pub fn add_user(&mut self, name: &str) -> Result<Uid, UserDbError> {
        let uid = self.db.write().create_user(name)?;
        let upg = self
            .db
            .read()
            .user(uid)
            .expect("just created")
            .private_group;
        let root = FsCtx::root().with_umask(Mode::new(0));
        let mut home = self.shared_home.write();
        if self.config.fsperm {
            home.mkdir(&root, &format!("/{name}"), Mode::new(0o770))
                .expect("fresh home dir");
            home.set_meta_as_root(&format!("/{name}"), |m| m.gid = upg)
                .expect("just created");
        } else {
            home.mkdir(&root, &format!("/{name}"), Mode::new(0o755))
                .expect("fresh home dir");
            home.set_meta_as_root(&format!("/{name}"), |m| {
                m.uid = uid;
                m.gid = upg;
            })
            .expect("just created");
        }
        drop(home);
        if let Some(b) = &self.broker {
            // Account provisioning includes the first federated login, so a
            // fresh user holds a live token + SSH certificate (the real
            // system does this when the user first connects). Global lock
            // order: user db before broker, matching the portal auth
            // routes; the parking_lot lock_order_check cfg enforces that
            // this order stays acyclic.
            let db = self.db.read();
            // analyze:allow(lock-discipline): db -> broker is the documented global order
            b.write().login(&db, uid, None).expect("just created user");
        }
        Ok(uid)
    }

    /// Create an approved project group plus its `/proj/<name>` area:
    /// setgid 2770, root-owned, group-owned by the project (Sec. IV-C).
    pub fn create_project(&mut self, name: &str, steward: Uid) -> Result<Gid, UserDbError> {
        let gid = self.db.write().create_project_group(name, steward)?;
        let root = FsCtx::root().with_umask(Mode::new(0));
        let mut proj = self.shared_proj.write();
        proj.mkdir(&root, &format!("/{name}"), Mode::new(0o2770))
            .expect("fresh proj dir");
        proj.set_meta_as_root(&format!("/{name}"), |m| m.gid = gid)
            .expect("just created");
        Ok(gid)
    }

    /// Steward adds a member (the data-steward approval workflow).
    pub fn add_project_member(
        &mut self,
        steward: Uid,
        project: Gid,
        user: Uid,
    ) -> Result<(), UserDbError> {
        self.db.write().add_to_group(steward, project, user)
    }

    /// The filesystem context a PAM login session would give this user:
    /// credentials from the database, smask 007 when the File Permission
    /// Handler is deployed.
    pub fn user_fs_ctx(&self, user: Uid) -> FsCtx {
        let cred = self.db.read().credentials(user).expect("known user");
        let ctx = FsCtx::user(cred);
        if self.config.fsperm {
            ctx.with_smask(LLSC_SMASK)
        } else {
            ctx
        }
    }

    /// Credentials straight from the account database.
    pub fn credentials(&self, user: Uid) -> Credentials {
        self.db.read().credentials(user).expect("known user")
    }

    /// Write a file as `user` on `node` (through that node's mounts).
    pub fn fs_write(
        &self,
        user: Uid,
        node: NodeId,
        path: &str,
        mode: Mode,
        data: &[u8],
    ) -> FsResult<()> {
        let ctx = self.user_fs_ctx(user);
        self.nodes[&node].fs_write(&ctx, path, mode, data)
    }

    /// Read a file as `user` on `node`.
    pub fn fs_read(&self, user: Uid, node: NodeId, path: &str) -> FsResult<Vec<u8>> {
        let ctx = self.user_fs_ctx(user);
        self.nodes[&node].fs_read(&ctx, path)
    }

    /// chmod as `user` on `node` (smask-filtered when deployed).
    pub fn fs_chmod(&self, user: Uid, node: NodeId, path: &str, mode: Mode) -> FsResult<Mode> {
        let ctx = self.user_fs_ctx(user);
        self.nodes[&node].with_fs(path, |fs, p| fs.chmod(&ctx, p, mode))
    }

    /// setfacl as `user` on `node` (restriction-patch-filtered when deployed).
    pub fn fs_setfacl(
        &self,
        user: Uid,
        node: NodeId,
        path: &str,
        acl: eus_simos::PosixAcl,
    ) -> Result<(), FsError> {
        let ctx = self.user_fs_ctx(user);
        let db = self.db.read();
        self.nodes[&node].with_fs(path, |fs, p| fs.setfacl(&ctx, p, acl, &db))
    }

    // ------------------------------------------------------------------
    // Login / processes
    // ------------------------------------------------------------------

    /// ssh to a node through its PAM stack, refreshing the user's federated
    /// credentials first when the broker is deployed — the legitimate-client
    /// path (`ssh` fetches a fresh short-lived certificate at connect time).
    pub fn ssh(&mut self, user: Uid, node: NodeId) -> Result<SessionId, LoginError> {
        self.refresh_credentials(user);
        self.ssh_raw(user, node)
    }

    /// ssh without the transparent credential refresh: whatever certificate
    /// the broker currently holds for `user` is what PAM judges. Audit
    /// probes use this to model replaying stolen or expired material.
    pub fn ssh_raw(&mut self, user: Uid, node: NodeId) -> Result<SessionId, LoginError> {
        let db = self.db.read().clone();
        self.nodes
            .get_mut(&node)
            .expect("known node")
            .login(&db, user, "sshd")
    }

    // ------------------------------------------------------------------
    // Scheduler
    // ------------------------------------------------------------------

    /// Submit a job arriving at the scheduler's current time — the
    /// legitimate-client path: the user's federated credentials refresh
    /// transparently first (like [`ssh`](Self::ssh)), so long traces never
    /// trip over token expiry. Panics only for users the broker cannot
    /// authenticate at all.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        self.refresh_credentials(spec.user);
        self.try_submit(spec).expect("known user refreshes cleanly")
    }

    /// Submit a job arriving at `at`, with the same transparent refresh.
    pub fn submit_at(&mut self, at: SimTime, spec: JobSpec) -> JobId {
        self.refresh_credentials(spec.user);
        self.try_submit_at(at, spec)
            .expect("known user refreshes cleanly")
    }

    /// Submit through the federated gate with *no* refresh: whatever token
    /// the broker currently holds for the user is what `sbatch` presents.
    /// With the broker deployed, an expired/revoked/absent credential is
    /// refused — the path audit probes use to model stolen-uid submissions.
    pub fn try_submit(&mut self, spec: JobSpec) -> Result<JobId, eus_fedauth::CredError> {
        let now = self.sched.read().now();
        self.try_submit_traced(now, spec, false)
    }

    /// [`try_submit`](Self::try_submit) for a job arriving at `at`: the
    /// token must also still be inside its window at the arrival instant.
    pub fn try_submit_at(
        &mut self,
        at: SimTime,
        spec: JobSpec,
    ) -> Result<JobId, eus_fedauth::CredError> {
        self.try_submit_traced(at, spec, true)
    }

    /// The shared gate + submit path, minting the `core.submit.try` trace
    /// root. The context chains through the broker's `cred.validate.submit`
    /// point span and is left with the scheduler, which stitches the
    /// eventual `sched.job.dispatch` onto it. All of it is a handful of
    /// never-taken branches when tracing is off.
    fn try_submit_traced(
        &mut self,
        at: SimTime,
        spec: JobSpec,
        arrival_at: bool,
    ) -> Result<JobId, eus_fedauth::CredError> {
        let tok = self.obs.trace.root("core.submit.try", at);
        let mut ctx = tok.ctx();
        if let Some(b) = &self.broker {
            let guard = b.read();
            let r = if arrival_at {
                guard.authorize_submit_at(spec.user, at)
            } else {
                guard.authorize_submit(spec.user)
            };
            if let Some(tb) = guard.trace_buffer() {
                if tb.enabled() {
                    ctx = tb.hit(ctx, "cred.validate.submit", at, spec.user.0 as u64);
                }
            }
            if let Err(e) = r {
                drop(guard);
                self.obs.trace.finish(tok, at);
                return Err(e);
            }
        }
        let mut sched = self.sched.write();
        let id = if arrival_at {
            sched.submit_at(at, spec)
        } else {
            sched.submit(spec)
        };
        sched.note_submit_trace(id, ctx);
        drop(sched);
        self.obs.trace.finish_with(tok, at, id.0);
        Ok(id)
    }

    /// Transparent credential refresh for a known user (no-op without the
    /// broker; unknown users fall through to the gate's denial).
    fn refresh_credentials(&mut self, user: Uid) {
        if let Some(b) = &self.broker {
            // Global lock order: user db before broker (see create_user);
            // the lock_order_check cfg enforces acyclicity at runtime.
            let db = self.db.read();
            // analyze:allow(lock-discipline): db -> broker is the documented global order
            let _ = b.write().ensure_session(&db, user);
        }
    }

    /// Advance the scheduler clock and reconcile OS state (spawn processes
    /// and assign GPUs for newly started jobs; run epilogs for ended ones).
    pub fn advance_to(&mut self, t: SimTime) {
        self.sched.write().run_until(t);
        self.sync_credential_clocks(t);
        self.reconcile();
        self.observe_boundary(t);
    }

    /// Run everything to completion and reconcile.
    pub fn run_to_completion(&mut self) -> SimTime {
        let end = self.sched.write().run_to_completion();
        self.sync_credential_clocks(end);
        self.reconcile();
        self.observe_boundary(end);
        end
    }

    /// The credential plane runs on the same simulated clock as the
    /// scheduler: expiry is a property of *when*, not of polling. Sister
    /// realms in the federation directory tick on the same clock (the home
    /// broker is registered there too; `advance_to` is idempotent), and the
    /// revocation mesh pumps every feed/anti-entropy exchange due up to the
    /// new instant — this is the tick-driven feed pump.
    fn sync_credential_clocks(&mut self, t: SimTime) {
        if let Some(dir) = &mut self.federation {
            dir.advance_to(t);
        } else if let Some(b) = &self.broker {
            b.write().advance_to(t);
        }
        // Injected clock skew (chaos): a skewed realm's plane runs *ahead*
        // of the federation clock by the configured offset, so its sessions
        // expire and sweep early relative to everyone else. Applied after
        // the uniform advance; plane clocks are monotone, so this only ever
        // moves forward.
        if !self.clock_skew.is_empty() {
            if let Some(dir) = &self.federation {
                for (&realm, &skew) in &self.clock_skew {
                    if let Some(plane) = dir.plane(realm) {
                        plane.write().advance_to(t + skew);
                    }
                }
            }
        }
        if let Some(mesh) = &mut self.revsync {
            mesh.pump(t);
        }
        self.portal.auth.advance_to(t);
    }

    // ------------------------------------------------------------------
    // Federation (multi-realm trust)
    // ------------------------------------------------------------------

    /// Register a sister realm's credential plane in the federation
    /// directory. Whether the home site *accepts* that realm's credentials
    /// is governed solely by `config.trusted_realms` — registration alone
    /// grants nothing (fail closed). The sister's clock is advanced to the
    /// cluster's current simulated time, so the whole federation ticks
    /// together from the moment it joins; if the realm is trusted, the home
    /// site also bootstraps a local CRL replica and subscribes to the
    /// realm's revocation feed (`eus-revsync`).
    pub fn register_sister_realm(&mut self, realm: RealmId, plane: SharedBroker) {
        self.register_sister_plane(realm, plane, None);
    }

    /// [`register_sister_realm`](Self::register_sister_realm) for a
    /// **time-boxed collaboration**: unlike the plain variant, this also
    /// *grants* trust — the home site accepts the realm's credentials until
    /// `expires_at` on the simulation clock, after which validation fails
    /// closed with `CredError::TrustExpired` (re-registering with a later
    /// expiry is the rotation path). If the operator's config already
    /// trusts the realm *permanently* (`config.trusted_realms`), the
    /// time-box is ignored — a later grant never shortens standing trust.
    pub fn register_sister_realm_until(
        &mut self,
        realm: RealmId,
        plane: SharedBroker,
        expires_at: SimTime,
    ) {
        self.register_sister_plane(realm, plane, Some(expires_at));
    }

    fn register_sister_plane(
        &mut self,
        realm: RealmId,
        plane: SharedBroker,
        trust_until: Option<SimTime>,
    ) {
        assert_ne!(
            realm, HOME_REALM,
            "the home realm's plane is installed at construction and cannot be replaced"
        );
        let now = self
            .broker
            .as_ref()
            .map(|b| b.read().now())
            .unwrap_or(SimTime::ZERO);
        plane.write().advance_to(now);
        let dir = self
            .federation
            .as_mut()
            .expect("federation requires config.federated_auth");
        dir.register(realm, plane.clone(), TrustPolicy::home_only(realm));
        if let Some(expires_at) = trust_until {
            // A time-boxed grant never downgrades trust the operator's
            // config made permanent — rotation extends, it never shortens
            // by accident (the same invariant TrustPolicy::trust keeps in
            // the other direction).
            let already_permanent = dir.trust_policy(HOME_REALM).is_some_and(|p| {
                p.trusted_realms().any(|r| r == realm) && p.trust_expires_at(realm).is_none()
            });
            if !already_permanent {
                dir.trust_realm_until(HOME_REALM, realm, Some(expires_at));
            }
        }
        // Trusted sisters (config allow-list or the time-boxed grant) get a
        // local CRL replica; untrusted registrations are refused at the
        // trust gate before any replica would be consulted, so none exists.
        // Re-registration (the trust-rotation path: same realm, later
        // expiry) keeps the existing replica — its log frontier is still
        // valid, since it replicates the same plane.
        let trusted = dir
            .trust_policy(HOME_REALM)
            .is_some_and(|p| p.trusted_realms().any(|r| r == realm));
        if trusted {
            let mesh = self.revsync.as_mut().expect("fedauth implies revsync");
            mesh.pump(now);
            match mesh.plane(realm) {
                Some(existing) => assert!(
                    std::sync::Arc::ptr_eq(existing, &plane),
                    "swapping {realm}'s plane for a different one is not supported: the \
                     home site's CRL replica tracks the original plane's delta log \
                     (rotate trust with the same plane, or use a fresh realm id)"
                ),
                None => mesh.add_realm(realm, plane),
            }
            if mesh.replica(HOME_REALM, realm).is_none() {
                mesh.subscribe(HOME_REALM, realm);
            }
        }
    }

    /// Validate a bearer token presented at the home site under the
    /// federation trust policy: home-realm tokens against the local plane,
    /// allow-listed sister realms against the home site's **local CRL
    /// replica** (signature via the issuer's exported verifier, revocation
    /// via the replicated list — no synchronous issuer query), everything
    /// else refused. Bounded staleness: a replica lagging past
    /// `config.revsync_max_lag` fails closed with
    /// `CredError::StaleReplica`. Without the credential plane
    /// (`config.federated_auth` off) every token fails closed with
    /// `UnknownRealm(HOME_REALM)` — there is no directory to consult, not a
    /// registration bug.
    pub fn validate_federated_token(
        &self,
        token: &SignedToken,
    ) -> Result<Uid, eus_fedauth::CredError> {
        let t0 = self.obs.begin_fed_validate();
        let r = self.validate_federated_token_inner(token);
        self.obs.finish_fed_validate(t0, &r);
        r
    }

    fn validate_federated_token_inner(
        &self,
        token: &SignedToken,
    ) -> Result<Uid, eus_fedauth::CredError> {
        let Some(dir) = &self.federation else {
            return Err(eus_fedauth::CredError::UnknownRealm(HOME_REALM));
        };
        if token.realm == HOME_REALM {
            return dir.validate_token_at(HOME_REALM, token);
        }
        // Trust policy first (untrusted / expired realms never reach the
        // replica), then the replica-backed hot path.
        dir.trust_gate(HOME_REALM, token.realm)?;
        let mesh = self.revsync.as_ref().expect("fedauth implies revsync");
        let now = self
            .broker
            .as_ref()
            .map(|b| b.read().now())
            .unwrap_or(SimTime::ZERO);
        mesh.validate_token_at(HOME_REALM, token, now)
    }

    /// How stale the home site's CRL replica of `realm` currently is
    /// (`None` when no replica exists: untrusted, unregistered, or the
    /// credential plane is off). Capacity planners and the experiment
    /// binaries read this; validation itself enforces
    /// `config.revsync_max_lag` against the same number.
    pub fn replica_lag(&self, realm: RealmId) -> Option<SimDuration> {
        let mesh = self.revsync.as_ref()?;
        let now = self.broker.as_ref().map(|b| b.read().now())?;
        mesh.replica_lag(HOME_REALM, realm, now)
    }

    /// Sever or restore the revocation feed from a sister realm (site
    /// outage / WAN partition). While severed the replica's lag grows;
    /// past `config.revsync_max_lag` cross-realm validation fails closed.
    pub fn partition_sister_feed(&mut self, realm: RealmId, down: bool) {
        if let Some(mesh) = &mut self.revsync {
            mesh.set_partitioned(realm, HOME_REALM, down);
        }
    }

    // ------------------------------------------------------------------
    // Fault injection & degraded modes
    // ------------------------------------------------------------------

    /// Take the home realm's identity provider down (or back up). While
    /// down, *new* logins and assertions fail with
    /// [`CredError`](eus_fedauth::CredError)`::Unavailable`; already-minted
    /// tokens keep validating against local state. No-op without the
    /// credential plane.
    pub fn set_idp_available(&mut self, up: bool) {
        if let Some(b) = &self.broker {
            b.write().set_idp_available(up);
        }
    }

    /// Is the home realm's identity provider reachable? (`true` without
    /// the credential plane: there is nothing to be down.)
    pub fn idp_available(&self) -> bool {
        self.broker
            .as_ref()
            .is_none_or(|b| b.read().idp_available())
    }

    /// Take the home realm's certificate authority down (or back up).
    /// While down, credential *minting* (SSH certs, token issuance) fails
    /// `Unavailable`; verification is local and keeps working.
    pub fn set_ca_available(&mut self, up: bool) {
        if let Some(b) = &self.broker {
            b.write().set_ca_available(up);
        }
    }

    /// Is the home realm's certificate authority reachable?
    pub fn ca_available(&self) -> bool {
        self.broker.as_ref().is_none_or(|b| b.read().ca_available())
    }

    /// Seize (or release) one shard of a sharded home broker: users hashed
    /// to that shard fail `Unavailable`, everyone else is untouched.
    /// Returns whether the plane has such a shard (`false` for a single
    /// broker or out-of-range index — the fault simply misses).
    pub fn seize_shard(&mut self, shard: usize, seized: bool) -> bool {
        self.broker
            .as_ref()
            .is_some_and(|b| b.write().seize_shard(shard, seized))
    }

    /// Stall (or unstall) the revocation push feed from a sister realm
    /// *silently*: pushes are swallowed without an error at the issuer, so
    /// no retry fires — only the subscriber's silence detector
    /// (`feed.silent`) and anti-entropy notice. The nastier cousin of
    /// [`partition_sister_feed`](Self::partition_sister_feed), whose
    /// failures are detected and retried.
    pub fn stall_sister_feed(&mut self, realm: RealmId, stalled: bool) {
        if let Some(mesh) = &mut self.revsync {
            mesh.set_feed_stalled(realm, HOME_REALM, stalled);
        }
    }

    /// Skew one realm's credential-plane clock `ahead` of the federation
    /// clock (chaos: a site whose NTP drifted). Applied at every clock
    /// sync; `SimDuration::ZERO` clears the skew. Forward-only: plane
    /// clocks are monotone, so reducing the skew never rewinds — the
    /// skewed plane just waits for the cluster clock to catch up.
    pub fn set_realm_clock_skew(&mut self, realm: RealmId, ahead: SimDuration) {
        if ahead.is_zero() {
            self.clock_skew.remove(&realm);
        } else {
            self.clock_skew.insert(realm, ahead);
        }
    }

    /// Compact every issuer's revocation delta log down to what its
    /// slowest subscriber still needs (see
    /// [`RevSyncMesh::compact_logs`](eus_revsync::RevSyncMesh::compact_logs)).
    /// Returns total entries dropped; 0 without the credential plane.
    pub fn compact_revocation_logs(&mut self) -> u64 {
        self.revsync.as_mut().map_or(0, |m| m.compact_logs())
    }

    /// Current health of one dependency, as of the last cycle boundary
    /// (see [`DepHealth`] for the ladder semantics).
    pub fn dependency_health(&self, dep: Dependency) -> DepHealth {
        match dep {
            Dependency::Idp => self.health_idp,
            Dependency::Ca => self.health_ca,
            Dependency::Feed => self.health_feed,
        }
    }

    /// Is any dependency below [`DepHealth::Healthy`] right now? (The
    /// boundary sample behind the `cluster.dependency.degraded` SLO.)
    pub fn degraded(&self) -> bool {
        !(self.health_idp.is_healthy()
            && self.health_ca.is_healthy()
            && self.health_feed.is_healthy())
    }

    /// Re-judge every dependency's [`DepHealth`] ladder at a cycle
    /// boundary. Runs with or without observability — experiments and the
    /// chaos harness read [`dependency_health`](Self::dependency_health)
    /// on quiet clusters too — but gauge updates and transition events
    /// only land while the recorder is on.
    fn update_dependency_health(&mut self, t: SimTime) {
        let budget = self.config.revsync_max_lag;
        let (idp_up, ca_up) = match &self.broker {
            Some(b) => {
                let g = b.read();
                (g.idp_available(), g.ca_available())
            }
            None => (true, true),
        };
        let next_idp = Self::step_outage(self.health_idp, idp_up, t, budget);
        let next_ca = Self::step_outage(self.health_ca, ca_up, t, budget);
        // Feed health follows the worst replica's lag: past half the
        // staleness budget (the same line the `revsync.replica.lag` SLO
        // aims at) the feed is degraded; past the full budget, validation
        // is already refusing, so the ladder says fail-closed.
        let mut worst: Option<SimDuration> = None;
        if let Some(mesh) = &self.revsync {
            for realm in mesh.realms().collect::<Vec<_>>() {
                if realm == HOME_REALM {
                    continue;
                }
                if let Some(lag) = mesh.replica_lag(HOME_REALM, realm, t) {
                    worst = Some(worst.map_or(lag, |w| w.max(lag)));
                }
            }
        }
        let next_feed = match worst {
            None => DepHealth::Healthy,
            Some(lag) if lag > budget => DepHealth::FailClosed,
            Some(lag) if lag > budget / 2 => match self.health_feed {
                held @ DepHealth::Degraded { .. } => held,
                _ => DepHealth::Degraded { since: t },
            },
            Some(_) => DepHealth::Healthy,
        };
        self.note_health(Dependency::Idp, next_idp, t);
        self.note_health(Dependency::Ca, next_ca, t);
        self.note_health(Dependency::Feed, next_feed, t);
    }

    /// One step of the outage ladder for a binary up/down dependency:
    /// down marks `Degraded{since}`, staying down past the staleness
    /// budget exhausts the borrowed state (`FailClosed`), and heal snaps
    /// straight back to `Healthy`.
    fn step_outage(cur: DepHealth, up: bool, t: SimTime, budget: SimDuration) -> DepHealth {
        if up {
            return DepHealth::Healthy;
        }
        match cur {
            DepHealth::Healthy => DepHealth::Degraded { since: t },
            DepHealth::Degraded { since } if t.since(since) > budget => DepHealth::FailClosed,
            held => held,
        }
    }

    /// Commit one dependency's new health: update the state, set the
    /// `core.health.*` gauge, and flight-record the transition edge as a
    /// `core.health` event `(dependency, to, from)`.
    fn note_health(&mut self, dep: Dependency, next: DepHealth, t: SimTime) {
        let prev = self.dependency_health(dep);
        match dep {
            Dependency::Idp => self.health_idp = next,
            Dependency::Ca => self.health_ca = next,
            Dependency::Feed => self.health_feed = next,
        }
        if !self.obs.rec.enabled() {
            return;
        }
        let g = match dep {
            Dependency::Idp => self.obs.g_health_idp,
            Dependency::Ca => self.obs.g_health_ca,
            Dependency::Feed => self.obs.g_health_feed,
        };
        self.obs.rec.gauge_set(g, next.gauge());
        if next.gauge() != prev.gauge() {
            self.obs.rec.event(
                t,
                "core.health",
                dep as u64,
                next.gauge() as u64,
                prev.gauge() as u64,
            );
        }
    }

    /// The portal's administrative revoke route: revoke one credential
    /// serial at its issuing realm, minting the `portal.route.revoke`
    /// trace root that follows the revocation across the WAN — issuer log
    /// entry, push delta, replica apply, and any later fail-closed deny all
    /// chain onto this context. Returns whether the serial was freshly
    /// revoked (false: already revoked or no such realm).
    pub fn portal_revoke_serial(&mut self, realm: RealmId, serial: CredSerial) -> bool {
        let now = self
            .broker
            .as_ref()
            .map(|b| b.read().now())
            .unwrap_or(SimTime::ZERO);
        self.portal.obs.rec.incr(self.portal.obs.c_revokes);
        let tok = self.portal.obs.trace.root("portal.route.revoke", now);
        let fresh = match &mut self.revsync {
            Some(mesh) => mesh.revoke_serial_traced(realm, serial, tok.ctx(), now),
            None => false,
        };
        self.portal.obs.trace.finish_with(tok, now, serial.0);
        fresh
    }

    /// Gather every completed span of one trace across all plane rings
    /// (core, portal, scheduler, broker, revsync), ordered parents-first.
    pub fn collect_trace(&self, trace: u64) -> Vec<crate::obs::TraceSpan> {
        let mut rings: Vec<Vec<crate::obs::TraceSpan>> = vec![
            self.obs.trace.spans_for(trace),
            self.portal.obs.trace.spans_for(trace),
            self.sched.read().obs.trace.spans_for(trace),
        ];
        if let Some(b) = &self.broker {
            if let Some(tb) = b.read().trace_buffer() {
                rings.push(tb.spans_for(trace));
            }
        }
        if let Some(mesh) = &self.revsync {
            rings.push(mesh.obs.trace.spans_for(trace));
            // Sister site planes carry their own cred rings (the issuer-side
            // `cred.revoke.serial` hit and the subscriber-side apply live
            // there). Skip the home broker — already gathered above.
            for realm in mesh.realms().collect::<Vec<_>>() {
                let Some(plane) = mesh.plane(realm) else {
                    continue;
                };
                if self
                    .broker
                    .as_ref()
                    .is_some_and(|b| std::sync::Arc::ptr_eq(b, plane))
                {
                    continue;
                }
                if let Some(tb) = plane.read().trace_buffer() {
                    rings.push(tb.spans_for(trace));
                }
            }
        }
        crate::obs::assemble_trace(trace, &rings)
    }

    /// The tree view of one cross-plane trace (see
    /// [`collect_trace`](Self::collect_trace)).
    pub fn render_trace(&self, trace: u64) -> String {
        crate::obs::render_trace(trace, &self.collect_trace(trace))
    }

    /// Push every plane's ring dumps into the `EUS_FLIGHT_DUMP` panic sink
    /// (no-op unless the env hook is armed). Called at every cycle
    /// boundary while observability is on, so a panicking test or
    /// experiment leaves its full flight state on disk.
    pub fn publish_flight_dumps(&self) {
        use crate::obs::panicdump;
        if !panicdump::armed() {
            return;
        }
        panicdump::publish("core.trace", self.obs.trace.dump_json());
        panicdump::publish("core.alerts", self.obs.slo.alerts().dump_json());
        panicdump::publish("portal.trace", self.portal.obs.trace.dump_json());
        panicdump::publish("sched.trace", self.sched.read().obs.trace.dump_json());
        if let Some(b) = &self.broker {
            if let Some(tb) = b.read().trace_buffer() {
                panicdump::publish("cred.trace", tb.dump_json());
            }
        }
        if let Some(mesh) = &self.revsync {
            panicdump::publish("revsync.trace", mesh.obs.trace.dump_json());
        }
    }

    /// Boundary observation pass, run after every reconcile: sample the
    /// flow-table gauge and tracked time-series, feed the SLO rings from
    /// monotone counter deltas, evaluate every objective (two-window
    /// burn-rate), flight-record fired/cleared alerts, and refresh the
    /// panic-dump sink when armed. The dependency-health ladders are
    /// re-judged here too — with or without observability, since quiet
    /// experiments read them; the *recording* half is skipped while
    /// observability is off.
    fn observe_boundary(&mut self, t: SimTime) {
        self.update_dependency_health(t);
        if self.obs.rec.enabled() {
            let flows = self.fabric.flows_tracked() as i64;
            self.obs.rec.gauge_set(self.obs.g_flows, flows);
            self.obs.rec.ts_tick(t);
        }
        if self.obs.slo.enabled() {
            // cred.validate.latency: mean broker validate ns this boundary.
            if let Some(b) = &self.broker {
                if let Some(stats) = b.read().validate_stats() {
                    let calls = stats.calls();
                    let ns = stats.total_ns();
                    let dc = calls.saturating_sub(self.prev_validate_calls);
                    let dns = ns.saturating_sub(self.prev_validate_ns);
                    self.prev_validate_calls = calls;
                    self.prev_validate_ns = ns;
                    if dc > 0 {
                        self.obs
                            .slo
                            .record(self.obs.slo_validate, t, dns as f64 / dc as f64);
                    }
                }
            }
            // revsync.replica.lag: the worst replica's staleness, in µs.
            if let Some(mesh) = &self.revsync {
                let mut worst: Option<SimDuration> = None;
                for realm in mesh.realms().collect::<Vec<_>>() {
                    if realm == HOME_REALM {
                        continue;
                    }
                    if let Some(lag) = mesh.replica_lag(HOME_REALM, realm, t) {
                        worst = Some(worst.map_or(lag, |w| w.max(lag)));
                    }
                }
                if let Some(lag) = worst {
                    self.obs
                        .slo
                        .record(self.obs.slo_replica_lag, t, lag.as_micros() as f64);
                }
            }
            // sched.interactive.wait: mean queue wait of interactive-QoS
            // starts this boundary, in µs.
            {
                let sched = self.sched.read();
                let wait_us = sched.obs.rec.counter_value(sched.obs.c_interactive_wait_us);
                let n = sched.obs.rec.counter_value(sched.obs.c_interactive_waits);
                drop(sched);
                let dn = n.saturating_sub(self.prev_iwaits);
                let dw = wait_us.saturating_sub(self.prev_iwait_us);
                self.prev_iwaits = n;
                self.prev_iwait_us = wait_us;
                if dn > 0 {
                    self.obs
                        .slo
                        .record(self.obs.slo_interactive_wait, t, dw as f64 / dn as f64);
                }
            }
            // cluster.dependency.degraded: binary boundary sample — 1.0
            // whenever any dependency ladder is below Healthy.
            self.obs.slo.record(
                self.obs.slo_dep_degraded,
                t,
                if self.degraded() { 1.0 } else { 0.0 },
            );
            for a in self.obs.slo.evaluate(t) {
                self.obs.rec.event(
                    t,
                    "core.slo.alert",
                    matches!(a.kind, crate::obs::AlertKind::Fire) as u64,
                    a.value_short as u64,
                    a.target as u64,
                );
            }
        }
        if self.obs.rec.enabled() {
            self.publish_flight_dumps();
        }
    }

    fn reconcile(&mut self) {
        let sweep_tok = self.obs.rec.span_start();
        // Snapshot what we need from the scheduler, then drop the guard.
        struct Started {
            job: JobId,
            user: Uid,
            cmdline: Vec<String>,
            environ: BTreeMap<String, String>,
            started: SimTime,
            allocs: Vec<(NodeId, u32 /*gpus*/)>,
        }
        let now;
        let (started, epilogs): (Vec<Started>, Vec<EpilogEvent>) = {
            let mut sched = self.sched.write();
            now = sched.now();
            let epilogs = sched.drain_epilogs();
            // A job with an epilog left its nodes (ended — or was
            // preempted and will run again): un-materialize it first so a
            // preempted-and-restarted job re-materializes below.
            for e in &epilogs {
                self.materialized.remove(&e.job);
            }
            let started = sched
                .jobs
                .values()
                .filter(|j| j.state == JobState::Running && !self.materialized.contains(&j.id))
                .map(|j| Started {
                    job: j.id,
                    user: j.spec.user,
                    cmdline: if j.spec.cmdline.is_empty() {
                        vec![j.spec.name.clone()]
                    } else {
                        j.spec.cmdline.clone()
                    },
                    environ: j.spec.environ.clone(),
                    started: j.started.expect("running"),
                    allocs: j.allocations.iter().map(|(n, a)| (*n, a.gpus)).collect(),
                })
                .collect();
            (started, epilogs)
        };

        // Epilog work FIRST: a departed (or preempted) tenant's cleanup —
        // kill strays, revoke device perms, scrub GPU memory — must land
        // before any new tenant's prolog touches the same node. This is
        // the ordering the preemption path's separation guarantee rests on.
        for e in epilogs {
            self.obs.rec.incr(self.obs.c_epilogs);
            self.obs
                .rec
                .event(now, "core.epilog", e.job.0, e.node.0 as u64, e.gpus as u64);
            // Web-app routes die with their job.
            self.portal.routes.remove_job(e.job);
            // Kill the job's own processes.
            if let Some(pids) = self.job_procs.remove(&e.job) {
                for (nid, pid) in pids {
                    if let Some(node) = self.nodes.get_mut(&nid) {
                        node.procs.remove(pid);
                    }
                }
            }
            if !e.user_still_active_on_node {
                // pam_slurm_adopt-style: the user has no jobs left on the
                // node, so stray processes, sockets, and abstract sockets go.
                let local_fs = if let Some(node) = self.nodes.get_mut(&e.node) {
                    node.procs.kill_all_of(e.user);
                    node.abstract_sockets.cleanup_user(e.user);
                    Some(node.local_fs.clone())
                } else {
                    None
                };
                if let Some(host) = self.fabric.host_mut(e.node) {
                    host.sockets.close_all_of(e.user);
                }
                // Device permissions are revoked only when they were managed
                // (Sec. IV-F); the epilog scrub is an independent step that
                // clears every GPU the job touched, per config.
                if let Some(fs) = local_fs {
                    if self.config.gpu_dev_perms {
                        self.gpus
                            .release_user(e.node, e.user, false, &fs)
                            .expect("device files exist");
                    }
                    if self.config.gpu_scrub && e.gpus > 0 {
                        for idx in 0..self.spec.gpus_per_node {
                            if let Some(gpu) = self.gpus.get_mut(e.node, idx) {
                                gpu.scrub();
                                self.obs.rec.incr(self.obs.c_gpu_scrubs);
                            }
                        }
                    }
                }
            }
        }

        // Prolog work: processes + GPU assignment.
        for s in started {
            self.obs.rec.incr(self.obs.c_prologs);
            self.obs.rec.event(
                now,
                "core.prolog",
                s.job.0,
                s.allocs.len() as u64,
                s.allocs.iter().map(|(_, g)| *g as u64).sum(),
            );
            self.materialized.insert(s.job);
            let cred = self.credentials(s.user);
            let upg = self.db.read().user(s.user).expect("known").private_group;
            let mut pids = Vec::new();
            for (nid, gpu_count) in &s.allocs {
                let node = self.nodes.get_mut(nid).expect("allocated node exists");
                let pid = node.procs.spawn_with_env(
                    cred.clone(),
                    s.cmdline.clone(),
                    s.environ.clone(),
                    None,
                    s.started,
                );
                pids.push((*nid, pid));
                if *gpu_count > 0 && self.config.gpu_dev_perms {
                    self.gpus
                        .assign(*nid, *gpu_count as u16, s.user, upg, &node.local_fs)
                        .expect("device files exist");
                    self.obs.rec.incr(self.obs.c_gpu_assigns);
                }
            }
            self.job_procs.insert(s.job, pids);
        }
        self.obs.rec.incr(self.obs.c_reconciles);
        self.obs.rec.span_end(self.obs.sp_reconcile, sweep_tok);
    }

    // ------------------------------------------------------------------
    // Network
    // ------------------------------------------------------------------

    /// Bind a listener as `user` on a node, optionally after `newgrp` to a
    /// project group (the UBF opt-in).
    pub fn listen(
        &mut self,
        user: Uid,
        node: NodeId,
        proto: Proto,
        port: Port,
        newgrp: Option<Gid>,
    ) -> Result<(), ConnectError> {
        let cred = self.credentials(user);
        let cred = match newgrp {
            Some(g) => self
                .db
                .read()
                .newgrp(&cred, g)
                .map_err(|_| ConnectError::NoSuchHost(node))?,
            None => cred,
        };
        self.fabric
            .listen(node, proto, port, PeerInfo::from_cred(&cred))
    }

    /// Connect as `user` from one node to an endpoint.
    pub fn connect(
        &mut self,
        user: Uid,
        from: NodeId,
        to: SocketAddr,
        proto: Proto,
    ) -> Result<(ConnId, SimDuration), ConnectError> {
        let peer = PeerInfo::from_cred(&self.credentials(user));
        self.fabric.connect(from, peer, to, proto)
    }

    // ------------------------------------------------------------------
    // Portal / web apps
    // ------------------------------------------------------------------

    /// Launch a web app for a user's job on a compute node and register its
    /// portal route. Returns the route key.
    #[allow(clippy::too_many_arguments)] // mirrors the launch command line
    pub fn launch_webapp(
        &mut self,
        user: Uid,
        job: JobId,
        name: &str,
        node: NodeId,
        port: Port,
        content: &str,
        newgrp: Option<Gid>,
    ) -> Result<RouteKey, ConnectError> {
        let cred = self.credentials(user);
        let cred = match newgrp {
            Some(g) => self
                .db
                .read()
                .newgrp(&cred, g)
                .map_err(|_| ConnectError::NoSuchHost(node))?,
            None => cred,
        };
        let endpoint = self
            .apps
            .launch(&mut self.fabric, node, &cred, port, content)?;
        let key = RouteKey {
            user,
            job,
            name: name.to_string(),
        };
        self.portal.routes.register(eus_portal::Route {
            key: key.clone(),
            target: endpoint,
            listener: PeerInfo::from_cred(&cred),
        });
        Ok(key)
    }

    /// Authenticate a user to the portal.
    pub fn portal_login(&mut self, user: Uid) -> Result<eus_portal::Token, eus_portal::AuthError> {
        let db = self.db.read().clone();
        self.portal.auth.login(&db, user)
    }

    /// [`portal_login`](Self::portal_login) with a one-time code for
    /// MFA-enrolled users.
    pub fn portal_login_mfa(
        &mut self,
        user: Uid,
        mfa: Option<eus_fedauth::MfaCode>,
    ) -> Result<eus_portal::Token, eus_portal::AuthError> {
        let db = self.db.read().clone();
        self.portal.auth.login_mfa(&db, user, mfa)
    }

    /// The portal's `enroll_mfa` route: bind a second factor for the
    /// session's user; enforced from the next login on. Returns the secret
    /// plus single-use recovery codes (both shown once). Rebinding an
    /// existing factor requires the current code (`mfa`) as step-up.
    pub fn portal_enroll_mfa(
        &mut self,
        token: eus_portal::Token,
        mfa: Option<eus_fedauth::MfaCode>,
    ) -> Result<eus_fedauth::MfaEnrollment, eus_portal::PortalError> {
        self.portal.enroll_mfa(token, mfa)
    }

    /// [`portal_login_mfa`](Self::portal_login_mfa) with a single-use
    /// recovery code in place of the window code — the lost-authenticator
    /// path; the code is burned on success.
    pub fn portal_login_recovery(
        &mut self,
        user: Uid,
        code: eus_fedauth::RecoveryCode,
    ) -> Result<eus_portal::Token, eus_portal::AuthError> {
        let db = self.db.read().clone();
        self.portal.auth.login_recovery(&db, user, code)
    }

    /// The portal's `unenroll_mfa` route: remove the session user's second
    /// factor. Step-up-gated like rebinding — the current code must be
    /// presented — and remaining recovery codes are voided.
    pub fn portal_unenroll_mfa(
        &mut self,
        token: eus_portal::Token,
        mfa: Option<eus_fedauth::MfaCode>,
    ) -> Result<(), eus_portal::PortalError> {
        self.portal.unenroll_mfa(token, mfa)
    }

    /// Fetch a route through the portal.
    pub fn portal_fetch(
        &mut self,
        token: eus_portal::Token,
        key: &RouteKey,
    ) -> Result<eus_portal::Response, eus_portal::PortalError> {
        self.portal.fetch(&mut self.fabric, &self.apps, token, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eus_sched::JobSpec;

    fn llsc_tiny() -> SecureCluster {
        SecureCluster::new(SeparationConfig::llsc(), ClusterSpec::tiny())
    }

    #[test]
    fn construction_shapes() {
        let c = llsc_tiny();
        assert_eq!(c.compute_ids.len(), 2);
        assert_eq!(c.login_ids.len(), 1);
        assert_eq!(c.gpus.len(), 2);
        assert!(!c.ubf_stats.is_empty());
        assert_eq!(c.login_node(), NodeId(3));
    }

    #[test]
    fn add_user_builds_paper_home_layout() {
        let mut c = llsc_tiny();
        let alice = c.add_user("alice").unwrap();
        let login = c.login_node();
        // Alice can work in her home.
        c.fs_write(alice, login, "/home/alice/notes", Mode::new(0o600), b"hi")
            .unwrap();
        assert_eq!(c.fs_read(alice, login, "/home/alice/notes").unwrap(), b"hi");
        // But cannot chmod the top level (root owns it).
        let err = c
            .fs_chmod(alice, login, "/home/alice", Mode::new(0o777))
            .unwrap_err();
        assert!(matches!(err, FsError::PermissionDenied { .. }));
        // And a stranger cannot enter.
        let bob = c.add_user("bob").unwrap();
        assert!(c.fs_read(bob, login, "/home/alice/notes").is_err());
    }

    #[test]
    fn project_dir_shares_via_setgid() {
        let mut c = llsc_tiny();
        let alice = c.add_user("alice").unwrap();
        let bob = c.add_user("bob").unwrap();
        let proj = c.create_project("fusion", alice).unwrap();
        c.add_project_member(alice, proj, bob).unwrap();
        let login = c.login_node();
        c.fs_write(
            alice,
            login,
            "/proj/fusion/data",
            Mode::new(0o660),
            b"shared",
        )
        .unwrap();
        // File inherited the project group via setgid, so bob reads it.
        assert_eq!(
            c.fs_read(bob, login, "/proj/fusion/data").unwrap(),
            b"shared"
        );
        // An outsider cannot.
        let eve = c.add_user("eve").unwrap();
        assert!(c.fs_read(eve, login, "/proj/fusion/data").is_err());
    }

    #[test]
    fn job_lifecycle_materializes_processes_and_gpus() {
        let mut c = llsc_tiny();
        let alice = c.add_user("alice").unwrap();
        let spec = JobSpec::new(alice, "train", SimDuration::from_secs(100))
            .with_gpus_per_task(1)
            .with_cmdline(["python", "train.py"]);
        c.submit(spec);
        c.advance_to(SimTime::from_secs(1));

        // Process exists on the allocated node.
        let node = c.compute_ids[0];
        assert_eq!(c.node(node).procs.count_for(alice), 1);
        // GPU assigned to alice.
        let gpu = c.gpus.get(node, 0).unwrap();
        assert_eq!(gpu.assigned_to, Some(alice));

        // After completion: process gone, GPU released + scrubbed.
        c.run_to_completion();
        assert_eq!(c.node(node).procs.count_for(alice), 0);
        assert_eq!(c.gpus.get(node, 0).unwrap().assigned_to, None);
    }

    #[test]
    fn enable_obs_lights_up_every_plane_without_changing_outcomes() {
        let run = |obs: bool| {
            let mut c = llsc_tiny();
            if obs {
                c.enable_obs(ObsConfig::enabled());
            }
            let alice = c.add_user("alice").unwrap();
            let spec = JobSpec::new(alice, "train", SimDuration::from_secs(100))
                .with_gpus_per_task(1)
                .with_cmdline(["python", "train.py"]);
            c.submit(spec);
            // Mid-run advance so the running job's prolog materializes
            // before the completion sweep runs its epilog.
            c.advance_to(SimTime::from_secs(1));
            let end = c.run_to_completion();
            (c, end)
        };
        let (quiet, end_quiet) = run(false);
        let (loud, end_loud) = run(true);

        // Same simulation either way: obs is pure measurement.
        assert_eq!(end_quiet, end_loud);
        assert_eq!(
            quiet.sched.read().metrics.completed.get(),
            loud.sched.read().metrics.completed.get()
        );
        // The quiet cluster recorded nothing.
        assert_eq!(quiet.obs.rec.counter_value(quiet.obs.c_reconciles), 0);
        // The loud one saw the sweep, the prolog, the epilog, and GPU work.
        assert!(loud.obs.rec.counter_value(loud.obs.c_reconciles) >= 1);
        assert!(loud.obs.rec.counter_value(loud.obs.c_prologs) >= 1);
        assert!(loud.obs.rec.counter_value(loud.obs.c_epilogs) >= 1);
        assert!(loud.obs.rec.counter_value(loud.obs.c_gpu_assigns) >= 1);
        assert!(loud.obs.rec.counter_value(loud.obs.c_gpu_scrubs) >= 1);
        assert!(loud.obs.rec.span_stats(loud.obs.sp_reconcile).count >= 1);
        let kinds: Vec<&str> = loud
            .obs
            .rec
            .flight
            .events()
            .iter()
            .map(|e| e.kind)
            .collect();
        assert!(kinds.contains(&"core.prolog"));
        assert!(kinds.contains(&"core.epilog"));
        // The scheduler plane lit up through the same switch.
        let sched = loud.sched.read();
        assert!(sched.obs.rec.counter_value(sched.obs.c_starts) >= 1);
        // And the broker's atomic validate stats are recording.
        let broker = loud.broker.as_ref().expect("llsc has fedauth").read();
        let stats = broker.validate_stats().expect("built-in planes keep stats");
        assert!(stats.enabled());
    }

    #[test]
    fn portal_revoke_traces_across_the_wan_to_the_fail_closed_deny() {
        let cfg = SeparationConfig::llsc().with_trusted_realms([2u32]);
        let mut c = SecureCluster::new(cfg, ClusterSpec::tiny());
        c.enable_obs(ObsConfig::enabled());
        let alice = c.add_user("alice").unwrap();
        let sister = shared_broker(CredentialBroker::new(
            RealmId(2),
            0x7ACE,
            BrokerPolicy::default(),
        ));
        // Sister trace ring on too, so `cred.revoke.serial` lands.
        if let Some(tb) = sister.read().trace_buffer() {
            tb.set_enabled(true);
        }
        c.register_sister_realm(RealmId(2), sister.clone());
        let db = c.db.read().clone();
        let token = sister.write().login(&db, alice, None).unwrap();
        assert_eq!(c.validate_federated_token(&token).unwrap(), alice);

        // Operator clicks revoke at the portal.
        assert!(c.portal_revoke_serial(RealmId(2), token.serial));
        let t = c.config.revsync_feed_interval + SimDuration::from_secs(1);
        c.advance_to(SimTime::ZERO + t);
        assert_eq!(
            c.validate_federated_token(&token),
            Err(eus_fedauth::CredError::Revoked(token.serial))
        );

        // One trace covers the whole causal chain, across four planes.
        let root = c
            .portal
            .obs
            .trace
            .spans()
            .into_iter()
            .find(|s| s.name == "portal.route.revoke")
            .expect("portal minted the revoke root");
        let spans = c.collect_trace(root.trace);
        crate::obs::check_well_formed(&spans).expect("well-formed tree");
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        for expect in [
            "portal.route.revoke",
            "cred.revoke.serial",
            "revsync.mesh.push",
            "revsync.replica.apply",
            "revsync.replica.deny",
        ] {
            assert!(names.contains(&expect), "missing {expect} in {names:?}");
        }
        let tree = c.render_trace(root.trace);
        assert!(tree.contains("revsync.replica.deny"), "tree:\n{tree}");
    }

    #[test]
    fn forced_replica_lag_fires_exactly_the_lag_slo() {
        let cfg = SeparationConfig::llsc().with_trusted_realms([2u32]);
        let mut c = SecureCluster::new(cfg, ClusterSpec::tiny());
        c.enable_obs(ObsConfig::enabled());
        let sister = shared_broker(CredentialBroker::new(
            RealmId(2),
            0x510,
            BrokerPolicy::default(),
        ));
        c.register_sister_realm(RealmId(2), sister);

        // Clean baseline: pump a while with the feed healthy — no alerts.
        for s in 1..=6 {
            c.advance_to(SimTime::from_secs(s * 10));
        }
        assert_eq!(
            c.obs.slo.alerts().fired(),
            0,
            "clean baseline must be quiet"
        );

        // Sever the feed; lag grows past the re-aimed max_lag/2 target.
        c.partition_sister_feed(RealmId(2), true);
        let budget = c.config.revsync_max_lag;
        let mut t = SimTime::from_secs(60);
        while t < SimTime::ZERO + budget {
            t += SimDuration::from_secs(10);
            c.advance_to(t);
        }
        let fired: Vec<&str> = c
            .obs
            .slo
            .alerts()
            .entries()
            .iter()
            .filter(|a| a.kind == crate::obs::AlertKind::Fire)
            .map(|a| a.slo)
            .collect();
        // Exactly the two objectives this fault implicates: the lag SLO
        // (the injected staleness) and the dependency-degraded SLO (the
        // feed's health ladder left Healthy) — nothing else.
        assert_eq!(
            fired,
            vec!["revsync.replica.lag", "cluster.dependency.degraded"],
            "exactly the lag + dependency SLOs"
        );
        // The alert is also a flight event.
        assert!(c
            .obs
            .rec
            .flight
            .events()
            .iter()
            .any(|e| e.kind == "core.slo.alert"));
        // Healing clears it (edge-triggered Clear) once the short window
        // holds only healthy samples again.
        c.partition_sister_feed(RealmId(2), false);
        for _ in 0..6 {
            t += SimDuration::from_secs(10);
            c.advance_to(t);
        }
        for slo in ["revsync.replica.lag", "cluster.dependency.degraded"] {
            assert!(
                c.obs
                    .slo
                    .alerts()
                    .entries()
                    .iter()
                    .any(|a| a.slo == slo && a.kind == crate::obs::AlertKind::Clear),
                "{slo} must clear after heal"
            );
        }
    }

    #[test]
    fn fed_validate_stats_count_accepts_and_rejects() {
        let mut c = llsc_tiny();
        c.enable_obs(ObsConfig::enabled());
        let alice = c.add_user("alice").unwrap();
        let token = c
            .broker
            .as_ref()
            .unwrap()
            .write()
            .login(&c.db.read(), alice, None)
            .unwrap();
        assert_eq!(c.validate_federated_token(&token).unwrap(), alice);
        c.broker.as_ref().unwrap().write().revoke_user(alice);
        assert!(c.validate_federated_token(&token).is_err());
        assert_eq!(c.obs.fed_validate_calls(), 2);
        assert_eq!(c.obs.fed_validate_rejects(), 1);
    }

    #[test]
    fn ssh_gated_by_pam_slurm_on_compute_only() {
        let mut c = llsc_tiny();
        let alice = c.add_user("alice").unwrap();
        let compute = c.compute_ids[0];
        let login = c.login_node();
        // No job: compute denied, login fine.
        assert!(c.ssh(alice, compute).is_err());
        assert!(c.ssh(alice, login).is_ok());
        // With a running job on that node: allowed.
        c.submit(JobSpec::new(alice, "j", SimDuration::from_secs(100)));
        c.advance_to(SimTime::from_secs(1));
        assert!(c.ssh(alice, compute).is_ok());
    }

    #[test]
    fn ubf_enforced_between_nodes() {
        let mut c = llsc_tiny();
        let alice = c.add_user("alice").unwrap();
        let bob = c.add_user("bob").unwrap();
        let n1 = c.compute_ids[0];
        let n2 = c.compute_ids[1];
        c.listen(alice, n2, Proto::Tcp, 8888, None).unwrap();
        assert!(c
            .connect(alice, n1, SocketAddr::new(n2, 8888), Proto::Tcp)
            .is_ok());
        assert!(matches!(
            c.connect(bob, n1, SocketAddr::new(n2, 8888), Proto::Tcp)
                .unwrap_err(),
            ConnectError::DeniedByDaemon { .. }
        ));
    }

    #[test]
    fn long_traces_submit_past_token_expiry_via_transparent_refresh() {
        let mut c = llsc_tiny();
        let alice = c.add_user("alice").unwrap();
        // A day passes — far beyond the 12h token TTL and 1h cert TTL.
        c.advance_to(SimTime::from_secs(24 * 3600));
        // The legitimate path refreshes and submits; the raw gate refuses.
        assert!(c
            .try_submit(JobSpec::new(alice, "stale", SimDuration::from_secs(5)))
            .is_err());
        let job = c.submit(JobSpec::new(alice, "fresh", SimDuration::from_secs(5)));
        let t = c.sched.read().now() + SimDuration::from_secs(1);
        c.advance_to(t);
        assert!(c.sched.read().jobs.contains_key(&job));
        // A future-dated arrival beyond the fresh token's window is refused
        // even through the raw gate at submit time.
        let horizon = SimTime::from_secs(48 * 3600);
        assert!(c
            .try_submit_at(
                horizon,
                JobSpec::new(alice, "later", SimDuration::from_secs(5))
            )
            .is_err());
    }

    #[test]
    fn trusted_sister_realm_validates_at_home_untrusted_fails_closed() {
        let cfg = SeparationConfig::llsc().with_trusted_realms([2u32]);
        let mut c = SecureCluster::new(cfg, ClusterSpec::tiny());
        let alice = c.add_user("alice").unwrap();

        // Two sister sites mint credentials for the colliding uid: one is
        // allow-listed, one is not.
        let trusted = shared_broker(CredentialBroker::new(
            RealmId(2),
            0xAAA,
            BrokerPolicy::default(),
        ));
        let untrusted = shared_broker(CredentialBroker::new(
            RealmId(3),
            0xBBB,
            BrokerPolicy::default(),
        ));
        c.register_sister_realm(RealmId(2), trusted.clone());
        c.register_sister_realm(RealmId(3), untrusted.clone());

        let db = c.db.read().clone();
        let t2 = trusted.write().login(&db, alice, None).unwrap();
        let t3 = untrusted.write().login(&db, alice, None).unwrap();
        assert_eq!(c.validate_federated_token(&t2).unwrap(), alice);
        assert!(matches!(
            c.validate_federated_token(&t3),
            Err(eus_fedauth::CredError::UntrustedRealm { .. })
        ));
        // The home broker's own tokens still validate, and the direct
        // (non-directory) path still refuses every foreign realm.
        let home = c.broker.clone().unwrap();
        let th = home.read().current_token(alice).unwrap();
        assert_eq!(c.validate_federated_token(&th).unwrap(), alice);
        assert!(home.read().validate_token(&t2).is_err());
    }

    #[test]
    fn late_joining_sister_realm_inherits_the_cluster_clock() {
        let cfg = SeparationConfig::llsc().with_trusted_realms([2u32]);
        let mut c = SecureCluster::new(cfg, ClusterSpec::tiny());
        let alice = c.add_user("alice").unwrap();
        c.advance_to(SimTime::from_secs(48 * 3600));

        // A sister broker still at t=0 joins: its clock must jump to the
        // federation's, so a token it minted in its own past cannot read as
        // live here.
        let sister = shared_broker(CredentialBroker::new(
            RealmId(2),
            0xCC,
            BrokerPolicy::default(),
        ));
        let db = c.db.read().clone();
        let stale = sister.write().login(&db, alice, None).unwrap();
        c.register_sister_realm(RealmId(2), sister.clone());
        assert_eq!(sister.read().now(), SimTime::from_secs(48 * 3600));
        assert!(
            matches!(
                c.validate_federated_token(&stale),
                Err(eus_fedauth::CredError::Expired { .. })
            ),
            "a token from the sister's pre-join past must be expired"
        );
        // Fresh sister logins on the synced clock validate normally.
        let fresh = sister.write().login(&db, alice, None).unwrap();
        assert_eq!(c.validate_federated_token(&fresh).unwrap(), alice);
    }

    #[test]
    fn sister_revocation_propagates_within_the_staleness_budget() {
        let cfg = SeparationConfig::llsc().with_trusted_realms([2u32]);
        let mut c = SecureCluster::new(cfg, ClusterSpec::tiny());
        let alice = c.add_user("alice").unwrap();
        let sister = shared_broker(CredentialBroker::new(
            RealmId(2),
            0xFEE1,
            BrokerPolicy::default(),
        ));
        c.register_sister_realm(RealmId(2), sister.clone());
        let db = c.db.read().clone();
        let token = sister.write().login(&db, alice, None).unwrap();
        assert_eq!(c.validate_federated_token(&token).unwrap(), alice);

        // Revoke at the issuer. The home replica has not heard yet, so the
        // token still validates — asynchronous propagation is explicit.
        sister.write().revoke_user(alice);
        assert_eq!(
            c.validate_federated_token(&token).unwrap(),
            alice,
            "revocation is not magic: it must travel"
        );
        // One feed interval (plus wire time) later the replica has the
        // delta and the token dies everywhere at this site.
        let t = c.config.revsync_feed_interval + SimDuration::from_secs(1);
        c.advance_to(SimTime::ZERO + t);
        assert_eq!(
            c.validate_federated_token(&token),
            Err(eus_fedauth::CredError::Revoked(token.serial))
        );
        // Propagation happened well inside the staleness budget.
        let lag = c.replica_lag(RealmId(2)).unwrap();
        assert!(lag <= c.config.revsync_max_lag, "{lag} over budget");
    }

    #[test]
    fn severed_feed_fails_closed_past_the_staleness_budget() {
        let cfg = SeparationConfig::llsc().with_trusted_realms([2u32]);
        let mut c = SecureCluster::new(cfg, ClusterSpec::tiny());
        let alice = c.add_user("alice").unwrap();
        let sister = shared_broker(CredentialBroker::new(
            RealmId(2),
            0xFEE2,
            BrokerPolicy::default(),
        ));
        c.register_sister_realm(RealmId(2), sister.clone());
        let db = c.db.read().clone();
        c.partition_sister_feed(RealmId(2), true);

        // Fresh sister token, minted after the partition (their site is
        // fine; only the feed to us is down).
        let budget = c.config.revsync_max_lag;
        c.advance_to(SimTime::ZERO + budget + SimDuration::from_secs(1));
        let token = sister.write().login(&db, alice, None).unwrap();
        assert!(
            matches!(
                c.validate_federated_token(&token),
                Err(eus_fedauth::CredError::StaleReplica {
                    realm: RealmId(2),
                    ..
                })
            ),
            "an unreachable sister degrades to fail-closed, never fail-open"
        );
        assert!(c.replica_lag(RealmId(2)).unwrap() > budget);

        // Healing the feed restores acceptance at the next exchange.
        c.partition_sister_feed(RealmId(2), false);
        let t = c.sched.read().now() + c.config.revsync_feed_interval + SimDuration::from_secs(1);
        c.advance_to(t);
        assert_eq!(c.validate_federated_token(&token).unwrap(), alice);
    }

    #[test]
    fn time_boxed_sister_realm_expires_closed() {
        // No config allow-list at all: trust comes only from the
        // time-boxed registration.
        let mut c = llsc_tiny();
        let alice = c.add_user("alice").unwrap();
        let sister = shared_broker(CredentialBroker::new(
            RealmId(7),
            0xFEE3,
            BrokerPolicy::default(),
        ));
        let horizon = SimTime::from_secs(3600);
        c.register_sister_realm_until(RealmId(7), sister.clone(), horizon);
        let db = c.db.read().clone();
        let token = sister.write().login(&db, alice, None).unwrap();
        assert_eq!(c.validate_federated_token(&token).unwrap(), alice);

        // The collaboration window closes: fail closed with the precise
        // reason, not a generic refusal.
        c.advance_to(horizon);
        let fresh = sister.write().login(&db, alice, None).unwrap();
        assert_eq!(
            c.validate_federated_token(&fresh),
            Err(eus_fedauth::CredError::TrustExpired {
                realm: RealmId(7),
                expired_at: horizon,
            })
        );

        // Rotation: re-registering the same realm (same plane) with a later
        // expiry extends the collaboration in place — the existing replica
        // and its log frontier survive, no panic, no re-bootstrap.
        let horizon2 = horizon + SimDuration::from_secs(3600);
        c.register_sister_realm_until(RealmId(7), sister.clone(), horizon2);
        assert_eq!(c.validate_federated_token(&fresh).unwrap(), alice);
        // Revocations still propagate on the surviving replica.
        sister.write().revoke_serial(fresh.serial);
        let t = c.sched.read().now() + c.config.revsync_feed_interval + SimDuration::from_secs(1);
        c.advance_to(t);
        assert_eq!(
            c.validate_federated_token(&fresh),
            Err(eus_fedauth::CredError::Revoked(fresh.serial))
        );
    }

    #[test]
    fn time_box_never_downgrades_permanent_config_trust() {
        // Realm 2 is permanently allow-listed in the config; registering it
        // through the time-boxed API must not attach an expiry.
        let cfg = SeparationConfig::llsc().with_trusted_realms([2u32]);
        let mut c = SecureCluster::new(cfg, ClusterSpec::tiny());
        let alice = c.add_user("alice").unwrap();
        let sister = shared_broker(CredentialBroker::new(
            RealmId(2),
            0xFEE4,
            BrokerPolicy::default(),
        ));
        let horizon = SimTime::from_secs(60);
        c.register_sister_realm_until(RealmId(2), sister.clone(), horizon);
        assert_eq!(
            c.federation
                .as_ref()
                .unwrap()
                .trust_policy(HOME_REALM)
                .unwrap()
                .trust_expires_at(RealmId(2)),
            None,
            "permanent config trust survives a time-boxed registration"
        );
        // Well past the (ignored) horizon the realm still validates.
        c.advance_to(horizon + SimDuration::from_secs(3600));
        let db = c.db.read().clone();
        let token = sister.write().login(&db, alice, None).unwrap();
        assert_eq!(c.validate_federated_token(&token).unwrap(), alice);
    }

    #[test]
    fn portal_recovery_and_unenroll_round_trip() {
        let mut c = llsc_tiny();
        let alice = c.add_user("alice").unwrap();
        let session = c.portal_login(alice).unwrap();
        let enrollment = c.portal_enroll_mfa(session, None).unwrap();
        // Locked out of the authenticator: burn a recovery code.
        assert!(c.portal_login(alice).is_err());
        let t2 = c
            .portal_login_recovery(alice, enrollment.recovery[0])
            .unwrap();
        assert_eq!(c.portal.auth.whoami(t2).unwrap(), alice);
        assert!(
            c.portal_login_recovery(alice, enrollment.recovery[0])
                .is_err(),
            "single use"
        );
        // Unenroll (step-up-gated), then single-factor login works again.
        let code = c
            .broker
            .as_ref()
            .unwrap()
            .read()
            .current_mfa_code(alice)
            .unwrap();
        assert!(c.portal_unenroll_mfa(t2, None).is_err());
        c.portal_unenroll_mfa(t2, Some(code)).unwrap();
        assert!(c.portal_login(alice).is_ok());
    }

    #[test]
    #[should_panic(expected = "home realm")]
    fn home_realm_plane_cannot_be_replaced() {
        let mut c = llsc_tiny();
        let rogue = shared_broker(CredentialBroker::new(
            RealmId(1),
            0xBAD,
            BrokerPolicy::default(),
        ));
        c.register_sister_realm(RealmId(1), rogue);
    }

    #[test]
    fn sharded_and_single_broker_clusters_agree() {
        // The same trace against broker_shards = 1 and = 4: identical
        // accept/reject decisions at every enforcement point.
        let mut outcomes = Vec::new();
        for shards in [1u32, 4] {
            let cfg = SeparationConfig::llsc().with_broker_shards(shards);
            let mut c = SecureCluster::new(cfg, ClusterSpec::tiny());
            let alice = c.add_user("alice").unwrap();
            let login = c.login_node();
            let mut trace = Vec::new();
            trace.push(c.ssh(alice, login).is_ok());
            trace.push(
                c.try_submit(JobSpec::new(alice, "j", SimDuration::from_secs(5)))
                    .is_ok(),
            );
            c.advance_to(SimTime::from_secs(24 * 3600));
            trace.push(
                c.try_submit(JobSpec::new(alice, "stale", SimDuration::from_secs(5)))
                    .is_ok(),
            );
            c.broker.as_ref().unwrap().write().revoke_user(alice);
            trace.push(c.ssh_raw(alice, login).is_ok());
            outcomes.push(trace);
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[0], vec![true, true, false, false]);
    }

    #[test]
    fn baseline_cluster_is_permissive() {
        let mut c = SecureCluster::new(SeparationConfig::baseline(), ClusterSpec::tiny());
        let alice = c.add_user("alice").unwrap();
        let bob = c.add_user("bob").unwrap();
        let n1 = c.compute_ids[0];
        let n2 = c.compute_ids[1];
        // No UBF: cross-user connect succeeds.
        c.listen(alice, n2, Proto::Tcp, 8888, None).unwrap();
        assert!(c
            .connect(bob, n1, SocketAddr::new(n2, 8888), Proto::Tcp)
            .is_ok());
        // No pam_slurm: ssh anywhere.
        assert!(c.ssh(bob, n1).is_ok());
    }

    #[test]
    fn idp_outage_walks_the_health_ladder_and_heals() {
        let mut c = llsc_tiny();
        c.enable_obs(ObsConfig::enabled());
        let alice = c.add_user("alice").unwrap();
        let db = c.db.read().clone();
        let broker = c.broker.clone().unwrap();
        let token = broker.write().login(&db, alice, None).unwrap();
        assert!(c.idp_available() && c.ca_available());

        c.set_idp_available(false);
        // Graceful degradation: new logins refused Unavailable, the
        // already-minted token keeps validating against local state.
        assert_eq!(
            broker.write().login(&db, alice, None),
            Err(eus_fedauth::CredError::Unavailable)
        );
        assert_eq!(broker.read().validate_token(&token).unwrap(), alice);

        c.advance_to(SimTime::from_secs(10));
        assert!(matches!(
            c.dependency_health(Dependency::Idp),
            DepHealth::Degraded { .. }
        ));
        assert!(c.degraded());
        assert_eq!(c.obs.rec.gauge_value(c.obs.g_health_idp), 1);
        // The degraded SLO fires on the very boundary (1-bucket windows).
        assert!(
            !c.obs
                .slo
                .alerts()
                .for_slo("cluster.dependency.degraded")
                .is_empty(),
            "degraded boundary must raise the dependency SLO"
        );
        // The transition edge is on the flight ring: (dep, to, from).
        assert!(c
            .obs
            .rec
            .flight
            .events()
            .iter()
            .any(|e| e.kind == "core.health" && e.a == Dependency::Idp as u64 && e.b == 1));

        // Outage outlasting the staleness budget exhausts the borrowed
        // state: fail-closed.
        c.advance_to(SimTime::ZERO + c.config.revsync_max_lag + SimDuration::from_secs(20));
        assert_eq!(c.dependency_health(Dependency::Idp), DepHealth::FailClosed);
        assert_eq!(c.obs.rec.gauge_value(c.obs.g_health_idp), 2);

        // Heal snaps straight back to Healthy and logins work again.
        c.set_idp_available(true);
        let t = c.sched.read().now() + SimDuration::from_secs(10);
        c.advance_to(t);
        assert_eq!(c.dependency_health(Dependency::Idp), DepHealth::Healthy);
        assert!(!c.degraded());
        assert!(broker.write().login(&db, alice, None).is_ok());
    }

    #[test]
    fn feed_lag_walks_the_ladder_to_fail_closed_and_back() {
        let cfg = SeparationConfig::llsc().with_trusted_realms([2u32]);
        let mut c = SecureCluster::new(cfg, ClusterSpec::tiny());
        c.enable_obs(ObsConfig::enabled());
        let sister = shared_broker(CredentialBroker::new(
            RealmId(2),
            0xFEE7,
            BrokerPolicy::default(),
        ));
        c.register_sister_realm(RealmId(2), sister);
        let budget = c.config.revsync_max_lag;

        // Feeds flowing: healthy.
        c.advance_to(SimTime::from_secs(30));
        assert_eq!(c.dependency_health(Dependency::Feed), DepHealth::Healthy);

        // Severed feed: lag climbs past half the budget (degraded), then
        // past the budget (fail-closed — validation is refusing by now).
        c.partition_sister_feed(RealmId(2), true);
        let t0 = c.sched.read().now();
        c.advance_to(t0 + budget / 2 + SimDuration::from_secs(60));
        assert!(matches!(
            c.dependency_health(Dependency::Feed),
            DepHealth::Degraded { .. }
        ));
        c.advance_to(t0 + budget + SimDuration::from_secs(60));
        assert_eq!(c.dependency_health(Dependency::Feed), DepHealth::FailClosed);
        assert_eq!(c.obs.rec.gauge_value(c.obs.g_health_feed), 2);

        // Heal: the resubscribed feed catches the replica up within one
        // interval and the ladder snaps back.
        c.partition_sister_feed(RealmId(2), false);
        let t = c.sched.read().now() + c.config.revsync_feed_interval + SimDuration::from_secs(1);
        c.advance_to(t);
        assert_eq!(c.dependency_health(Dependency::Feed), DepHealth::Healthy);
        assert!(!c.degraded());
    }

    #[test]
    fn clock_skew_runs_a_sister_plane_ahead_and_never_rewinds() {
        let cfg = SeparationConfig::llsc().with_trusted_realms([2u32]);
        let mut c = SecureCluster::new(cfg, ClusterSpec::tiny());
        let sister = shared_broker(CredentialBroker::new(
            RealmId(2),
            0xFEE8,
            BrokerPolicy::default(),
        ));
        c.register_sister_realm(RealmId(2), sister.clone());

        let hour = SimDuration::from_secs(3600);
        c.set_realm_clock_skew(RealmId(2), hour);
        c.advance_to(SimTime::from_secs(10));
        assert_eq!(sister.read().now(), SimTime::from_secs(10) + hour);

        // Clearing the skew stops the extra advance; the plane's clock is
        // monotone, so it holds its high-water mark until the cluster
        // catches up.
        c.set_realm_clock_skew(RealmId(2), SimDuration::ZERO);
        c.advance_to(SimTime::from_secs(20));
        assert_eq!(sister.read().now(), SimTime::from_secs(10) + hour);
    }

    #[test]
    fn shard_seizure_hits_sharded_planes_and_misses_single_brokers() {
        let cfg = SeparationConfig::llsc().with_broker_shards(4);
        let mut c = SecureCluster::new(cfg, ClusterSpec::tiny());
        assert!(c.seize_shard(1, true), "sharded plane has shard 1");
        assert!(!c.seize_shard(99, true), "out-of-range shard misses");
        assert!(c.seize_shard(1, false));

        let mut single = SecureCluster::new(
            SeparationConfig::llsc().with_broker_shards(1),
            ClusterSpec::tiny(),
        );
        assert!(
            !single.seize_shard(0, true),
            "a single broker has no shards to seize"
        );
    }
}
