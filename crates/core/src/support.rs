//! HPC support-staff workflows (paper Secs. IV-A and IV-C).
//!
//! Facilitators and solutions architects are *not* full administrators, but
//! the paper gives them two whitelisted capabilities: `seepid` (attribute
//! system load to users when troubleshooting) and `smask_relax` (publish
//! shared datasets). This module implements the troubleshooting workflow on
//! top of those tools: per-user load attribution on a node, which only works
//! from a session that holds the hidepid-exemption group.

use crate::cluster::SecureCluster;
use eus_simos::{NodeId, SessionId, Uid};
use std::collections::BTreeMap;

/// Per-user process attribution on one node, as a facilitator would see it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// The node inspected.
    pub node: NodeId,
    /// Processes visible per uid (root/system daemons included).
    pub procs_by_user: BTreeMap<Uid, usize>,
    /// Total processes visible to the inspector.
    pub total_visible: usize,
    /// Total processes actually on the node (ground truth, for tests).
    pub total_actual: usize,
}

impl LoadReport {
    /// The heaviest user by process count, if any non-root user is visible.
    pub fn hotspot(&self) -> Option<(Uid, usize)> {
        self.procs_by_user
            .iter()
            .filter(|(u, _)| **u != eus_simos::ROOT_UID)
            .max_by_key(|(_, n)| **n)
            .map(|(u, n)| (*u, *n))
    }

    /// Did the inspector see everything? False means hidepid filtered the
    /// view (the session lacks the exemption group).
    pub fn complete(&self) -> bool {
        self.total_visible == self.total_actual
    }
}

/// Attribute node load to users from a given session's viewpoint. On a
/// `hidepid=2` node this is only complete after the session ran
/// [`eus_fsperm::seepid`]; before that it shows the inspector's own
/// processes only — exactly the gap the tool exists to bridge.
pub fn attribute_load(cluster: &SecureCluster, node: NodeId, session: SessionId) -> LoadReport {
    let node_os = cluster.node(node);
    let cred = node_os
        .session(session)
        .map(|s| s.cred.clone())
        .unwrap_or_else(eus_simos::Credentials::root);
    let procfs = node_os.procfs();
    let mut procs_by_user: BTreeMap<Uid, usize> = BTreeMap::new();
    let entries = procfs.list(&cred);
    for e in &entries {
        *procs_by_user.entry(e.uid).or_default() += 1;
    }
    LoadReport {
        node,
        procs_by_user,
        total_visible: entries.len(),
        total_actual: node_os.procs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::config::SeparationConfig;
    use eus_fsperm::seepid;
    use eus_simcore::SimTime;

    #[test]
    fn load_attribution_requires_seepid_on_hardened_nodes() {
        let mut c = SecureCluster::new(SeparationConfig::llsc(), ClusterSpec::tiny());
        let staff = c.add_user("staff").unwrap();
        let heavy = c.add_user("heavy-user").unwrap();
        let light = c.add_user("light-user").unwrap();
        c.fsperm_policy = c.fsperm_policy.clone().allow_seepid(staff);
        let login = c.login_node();

        // Two users generate load.
        let h_sid = c.ssh(heavy, login).unwrap();
        for _ in 0..5 {
            c.node_mut(login).spawn(h_sid, ["stress"], SimTime::ZERO);
        }
        let l_sid = c.ssh(light, login).unwrap();
        c.node_mut(login).spawn(l_sid, ["vim"], SimTime::ZERO);

        // Staff before seepid: incomplete view, no foreign hotspot.
        let s_sid = c.ssh(staff, login).unwrap();
        let before = attribute_load(&c, login, s_sid);
        assert!(!before.complete());
        assert!(before.hotspot().is_none() || before.hotspot().unwrap().0 == staff);

        // After seepid: the full picture, hotspot correctly attributed.
        let policy = c.fsperm_policy.clone();
        seepid(&policy, c.node_mut(login).session_mut(s_sid).unwrap()).unwrap();
        let after = attribute_load(&c, login, s_sid);
        assert!(after.complete());
        assert_eq!(after.hotspot(), Some((heavy, 5)));
        assert_eq!(after.procs_by_user[&light], 1);
    }

    #[test]
    fn baseline_nodes_need_no_tool() {
        let mut c = SecureCluster::new(SeparationConfig::baseline(), ClusterSpec::tiny());
        let staff = c.add_user("staff").unwrap();
        let user = c.add_user("user").unwrap();
        let login = c.login_node();
        let u_sid = c.ssh(user, login).unwrap();
        c.node_mut(login).spawn(u_sid, ["job"], SimTime::ZERO);
        let s_sid = c.ssh(staff, login).unwrap();
        let report = attribute_load(&c, login, s_sid);
        assert!(report.complete(), "hidepid off: everything visible anyway");
    }
}
