//! [`RevSyncMesh`]: the inter-site revocation-propagation fabric.
//!
//! Every participating realm gets a host on a simulated WAN (a
//! [`Fabric`] with wide-area latency constants), and revocation state
//! travels two ways:
//!
//! * **push feeds** — every [`RevSyncConfig::feed_interval`], each issuer
//!   ships the delta-log entries its subscriber has not been sent yet
//!   (empty deltas are heartbeats, so freshness keeps advancing between
//!   revocations). Feeds are fire-and-forget: a configurable fraction
//!   ([`RevSyncConfig::push_loss`]) is lost in transit, and the issuer's
//!   optimistic cursor does not notice — the subscriber sees a sequence
//!   gap and refuses the next delta rather than silently skipping entries;
//! * **pull anti-entropy** — every [`RevSyncConfig::anti_entropy`], each
//!   subscriber asks its issuer for everything after its *applied*
//!   frontier. The response is exact (no gap possible), so anti-entropy
//!   repairs whatever loss broke, from any partial state.
//!
//! Deltas spend real simulated time on the wire (connection setup plus
//! size-proportional transfer, per the fabric's [`eus_simnet::LatencyModel`]), so a
//! revocation minted at the issuer becomes visible at a sister site only
//! after feed cadence + WAN latency — the propagation lag `exp_revsync`
//! charts. Validation against a replica never touches the mesh: the mesh
//! only moves state *between* validations, which is the whole point.
//!
//! The pump is tick-driven ([`RevSyncMesh::pump`], called from
//! `SecureCluster::advance_to`): all exchanges due up to the new instant
//! are processed in event-time order, so coarse ticks and fine ticks
//! converge to the same history.

use crate::obs::MeshObs;
use crate::replica::{ApplyOutcome, CrlDelta, CrlReplica};
use crate::RevSyncConfig;
use eus_fedauth::RealmId;
use eus_fedauth::{CredError, CredSerial, SharedBroker, SignedToken, SshCertificate};
use eus_obs::TraceCtx;
use eus_simcore::{SimDuration, SimRng, SimTime};
use eus_simnet::{Fabric, PeerInfo, Port, Proto, SocketAddr};
use eus_simos::{Gid, NodeId, Uid};
use std::collections::{BTreeMap, BTreeSet};

/// The well-known port each realm's CRL feed daemon listens on.
pub const CRL_FEED_PORT: Port = 9253;

/// Counters the mesh keeps while it runs (all monotonic).
#[derive(Debug, Clone, Copy, Default)]
pub struct RevSyncMetrics {
    /// Push feeds that made it onto the wire.
    pub pushes_sent: u64,
    /// Push feeds lost in transit (the subscriber never sees them).
    pub pushes_lost: u64,
    /// Push attempts refused at connect time (partitioned link).
    pub pushes_failed: u64,
    /// Anti-entropy rounds completed (request + response on the wire).
    pub pulls: u64,
    /// Anti-entropy attempts refused at connect time (partitioned link).
    pub pulls_failed: u64,
    /// Deltas applied cleanly at replicas (including heartbeats).
    pub deltas_applied: u64,
    /// Serials newly learned by replicas.
    pub serials_applied: u64,
    /// Deltas refused because an earlier loss left a sequence gap.
    pub gaps_refused: u64,
    /// Push feeds swallowed by a stalled feed daemon (fault injection):
    /// the issuer sees no error, so nothing retries — only the
    /// subscriber's silence detector can tell.
    pub pushes_stalled: u64,
    /// Push attempts re-armed on the backoff schedule after a detected
    /// connect-time failure.
    pub push_retries: u64,
    /// Full-membership snapshots shipped to subscribers whose frontier
    /// fell below an issuer's compaction floor.
    pub snapshots_sent: u64,
    /// Delta-log entries truncated by [`RevSyncMesh::compact_logs`].
    pub log_compacted: u64,
    /// Feed payload bytes shipped (pushes + pull responses + bootstraps).
    pub bytes_sent: u64,
}

/// One realm's presence on the WAN: its credential plane (the feed source)
/// and the CRL replicas the *site* holds for realms it subscribes to.
struct Site {
    host: NodeId,
    plane: SharedBroker,
    replicas: BTreeMap<RealmId, CrlReplica>,
}

/// One (issuer → subscriber) feed relationship and its two schedules.
struct FeedLink {
    issuer: RealmId,
    subscriber: RealmId,
    /// The issuer's optimistic push cursor: highest log seq already pushed
    /// (whether or not it arrived — fire-and-forget).
    pushed_seq: u64,
    next_push: SimTime,
    next_pull: SimTime,
    /// Consecutive *detected* push failures (connect refused); drives the
    /// capped exponential backoff. In-transit loss is invisible to the
    /// sender and never counts.
    retry_attempts: u32,
    /// Subscriber side: the instant the last delivery (data or heartbeat)
    /// on this link landed — the silence detector's anchor.
    last_heard: SimTime,
}

/// A delta on the wire.
struct InFlight {
    to: RealmId,
    delta: CrlDelta,
    arrives: SimTime,
    /// A full-membership snapshot rather than a contiguous delta: absorbed
    /// as a set union (no gap check applies).
    snapshot: bool,
}

/// The propagation mesh: realms, feed links, and deltas in flight.
pub struct RevSyncMesh {
    cfg: RevSyncConfig,
    fabric: Fabric,
    sites: BTreeMap<RealmId, Site>,
    links: Vec<FeedLink>,
    in_flight: Vec<InFlight>,
    /// Links currently unable to exchange anything (site outage / WAN
    /// partition), keyed (issuer, subscriber).
    partitioned: BTreeSet<(RealmId, RealmId)>,
    /// Links whose push daemon is stalled (fault injection): pushes are
    /// silently swallowed — no error the issuer could retry on — while
    /// pull anti-entropy still works. Keyed (issuer, subscriber).
    stalled: BTreeSet<(RealmId, RealmId)>,
    /// (issuer, log seq) → causal context of the traced revocation that
    /// produced that entry; feeds covering the seq continue the trace
    /// across the WAN. Bounded (oldest evicted) and empty unless someone
    /// revokes through [`revoke_serial_traced`](Self::revoke_serial_traced)
    /// with a live context — never consulted by propagation decisions.
    trace_by_seq: BTreeMap<(RealmId, u64), TraceCtx>,
    rng: SimRng,
    now: SimTime,
    /// Running counters.
    pub metrics: RevSyncMetrics,
    /// Observability (span/counters for the pump, atomic validate stats,
    /// staleness-edge flight events). Disabled by default; pure
    /// measurement — never consulted by a propagation or accept/reject
    /// decision.
    pub obs: MeshObs,
}

impl RevSyncMesh {
    /// An empty mesh under `cfg`.
    pub fn new(cfg: RevSyncConfig) -> Self {
        assert!(
            !cfg.feed_interval.is_zero(),
            "feed interval must be positive"
        );
        assert!(
            !cfg.anti_entropy.is_zero(),
            "anti-entropy period must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.push_loss),
            "push loss is a probability"
        );
        assert!(
            !cfg.retry_base.is_zero(),
            "push retry backoff base must be positive"
        );
        let mut fabric = Fabric::new();
        fabric.latency = cfg.wan;
        RevSyncMesh {
            rng: SimRng::seed_from_u64(cfg.seed ^ 0x9EC5_11AD),
            cfg,
            fabric,
            sites: BTreeMap::new(),
            links: Vec::new(),
            in_flight: Vec::new(),
            partitioned: BTreeSet::new(),
            stalled: BTreeSet::new(),
            trace_by_seq: BTreeMap::new(),
            now: SimTime::ZERO,
            metrics: RevSyncMetrics::default(),
            obs: MeshObs::disabled(),
        }
    }

    /// Turn on observability with `cfg` (replaces the disabled default).
    pub fn enable_obs(&mut self, cfg: eus_obs::ObsConfig) {
        self.obs = MeshObs::new(&cfg);
    }

    /// The mesh's configuration.
    pub fn config(&self) -> &RevSyncConfig {
        &self.cfg
    }

    /// The mesh's clock (the latest pump instant).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The WAN itself (latency constants, connect/transfer metrics).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The WAN itself, mutably — fault injection (partitions, loss,
    /// latency spikes) goes through the fabric's link-fault API. A
    /// fabric-level fault is *detected* at connect time, so pushes take
    /// the retry/backoff path, unlike a mesh-level
    /// [`set_feed_stalled`](Self::set_feed_stalled).
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// The WAN host a realm's feed daemon lives on (the address
    /// fabric-level fault injection targets). Realms get deterministic
    /// host ids far above any cluster node's.
    pub fn wan_host(realm: RealmId) -> NodeId {
        NodeId(900_000 + realm.0)
    }

    /// Put a realm on the WAN: a host with the realm's CRL feed daemon
    /// listening. Panics on double registration.
    pub fn add_realm(&mut self, realm: RealmId, plane: SharedBroker) {
        assert!(
            !self.sites.contains_key(&realm),
            "{realm} is already on the mesh"
        );
        assert_eq!(
            plane.read().realm(),
            realm,
            "plane must be built for the realm it joins as"
        );
        let host = Self::wan_host(realm);
        self.fabric.add_host(host);
        let daemon = PeerInfo {
            uid: Uid(0),
            egid: Gid(0),
            pid: None,
        };
        self.fabric
            .listen(host, Proto::Tcp, CRL_FEED_PORT, daemon)
            .expect("fresh host has a free feed port");
        self.sites.insert(
            realm,
            Site {
                host,
                plane,
                replicas: BTreeMap::new(),
            },
        );
    }

    /// Realms on the mesh, in order.
    pub fn realms(&self) -> impl Iterator<Item = RealmId> + '_ {
        self.sites.keys().copied()
    }

    /// Whether a realm is on the mesh.
    pub fn has_realm(&self, realm: RealmId) -> bool {
        self.sites.contains_key(&realm)
    }

    /// The plane a realm joined the mesh with, if registered.
    pub fn plane(&self, realm: RealmId) -> Option<&SharedBroker> {
        self.sites.get(&realm).map(|s| &s.plane)
    }

    /// Subscribe `subscriber` to `issuer`'s revocation feed: bootstrap a
    /// full-CRL replica (the registration-time state transfer, charged to
    /// the wire like everything else) and schedule the push/pull cadences.
    /// Panics unless both realms are on the mesh.
    pub fn subscribe(&mut self, subscriber: RealmId, issuer: RealmId) {
        assert_ne!(subscriber, issuer, "a site never replicates itself");
        assert!(self.sites.contains_key(&issuer), "{issuer} not on the mesh");
        assert!(
            self.sites.contains_key(&subscriber),
            "{subscriber} not on the mesh"
        );
        assert!(
            !self.sites[&subscriber].replicas.contains_key(&issuer),
            "{subscriber} already subscribes to {issuer}"
        );
        let (verifier, serials, head) = {
            let plane = self.sites[&issuer].plane.read();
            // A compacted issuer can no longer produce its full history as
            // a delta; the bootstrap payload is then the membership
            // snapshot (same serials — every log entry is a unique serial —
            // so the frontier math is identical).
            let serials = if plane.revocation_floor() > 0 {
                plane.revocation_snapshot()
            } else {
                plane.revocations_since(0)
            };
            (plane.verifier(), serials, plane.revocation_head())
        };
        let wire = CrlDelta::wire_bytes_for(serials.len());
        // The registration-time state transfer crosses the WAN for real —
        // one connection, the full CRL as payload — so the fabric's
        // connect/byte metrics agree with the mesh's. Trust activation is
        // synchronous with its completion: the replica only starts
        // answering once it holds the full history, so there is never a
        // window where an empty replica vouches for a realm with
        // revocation entries it has not yet received.
        let from = self.sites[&issuer].host;
        let to = self.sites[&subscriber].host;
        let daemon = PeerInfo {
            uid: Uid(0),
            egid: Gid(0),
            pid: None,
        };
        let (conn, _setup) = self
            .fabric
            .connect(from, daemon, SocketAddr::new(to, CRL_FEED_PORT), Proto::Tcp)
            .expect("mesh hosts listen on the feed port");
        let body = bytes::Bytes::from(vec![0u8; wire]);
        self.fabric.send(conn, &body).expect("just connected");
        self.fabric.close(conn);
        self.metrics.bytes_sent += wire as u64;
        let replica = CrlReplica::bootstrap(issuer, verifier, serials, self.now);
        let site = self.sites.get_mut(&subscriber).expect("checked above");
        site.replicas.insert(issuer, replica);
        self.links.push(FeedLink {
            issuer,
            subscriber,
            pushed_seq: head,
            next_push: self.now + self.cfg.feed_interval,
            next_pull: self.now + self.cfg.anti_entropy,
            retry_attempts: 0,
            last_heard: self.now,
        });
    }

    /// Sever or restore the (issuer → subscriber) link. While partitioned,
    /// pushes and pulls both fail at connect time, the replica stops
    /// refreshing, and its lag grows — past
    /// [`RevSyncConfig::max_lag`] validation fails closed (the bounded-
    /// staleness guarantee under outage).
    pub fn set_partitioned(&mut self, issuer: RealmId, subscriber: RealmId, down: bool) {
        if down {
            self.partitioned.insert((issuer, subscriber));
        } else if self.partitioned.remove(&(issuer, subscriber)) {
            // Heal is an event the operator (or the chaos controller)
            // performs, so the feed resubscribes immediately instead of
            // waiting out whatever backoff the outage accumulated: the
            // next pump re-pushes and realigns the cursor.
            for l in &mut self.links {
                if l.issuer == issuer && l.subscriber == subscriber {
                    l.retry_attempts = 0;
                    l.next_push = self.now;
                }
            }
        }
    }

    /// Stall or unstall the (issuer → subscriber) push feed daemon (fault
    /// injection). A stalled daemon swallows pushes — data *and*
    /// heartbeats — without any error the issuer could retry on; pull
    /// anti-entropy is a different process and keeps working. The
    /// subscriber's only tell is silence: after
    /// [`RevSyncConfig::silent_after`] missed intervals the mesh fires a
    /// `feed.silent` flight event (when observability is on).
    pub fn set_feed_stalled(&mut self, issuer: RealmId, subscriber: RealmId, on: bool) {
        if on {
            self.stalled.insert((issuer, subscriber));
        } else {
            self.stalled.remove(&(issuer, subscriber));
        }
    }

    /// Whether the (issuer → subscriber) push feed is currently stalled.
    pub fn feed_stalled(&self, issuer: RealmId, subscriber: RealmId) -> bool {
        self.stalled.contains(&(issuer, subscriber))
    }

    /// Compact every issuer's delta log below the minimum frontier its
    /// subscribers have *applied*: entries no subscriber can ever ask for
    /// again are truncated at the plane
    /// ([`CredentialPlane::compact_revocations_below`]), so long soaks
    /// don't grow logs without bound. Membership — what validation reads —
    /// is untouched and sequence numbers never renumber. Issuers with no
    /// subscribers are left alone (conservative: a future subscriber
    /// bootstraps from a snapshot anyway). Returns total entries dropped.
    ///
    /// [`CredentialPlane::compact_revocations_below`]:
    /// eus_fedauth::CredentialPlane::compact_revocations_below
    pub fn compact_logs(&mut self) -> u64 {
        let mut dropped = 0u64;
        let issuers: Vec<RealmId> = self.sites.keys().copied().collect();
        for issuer in issuers {
            let mut floor: Option<u64> = None;
            for l in &self.links {
                if l.issuer == issuer {
                    let acked = self.sites[&l.subscriber].replicas[&issuer].applied_seq();
                    floor = Some(floor.map_or(acked, |f| f.min(acked)));
                }
            }
            if let Some(floor) = floor {
                if floor > 0 {
                    dropped += self.sites[&issuer]
                        .plane
                        .write()
                        .compact_revocations_below(floor);
                }
            }
        }
        self.metrics.log_compacted += dropped;
        dropped
    }

    /// Revoke `serial` at `realm`'s credential plane, stitching the causal
    /// trace end to end: a `cred.revoke.serial` span is recorded in the
    /// plane's own trace buffer (when it keeps an enabled one) and the new
    /// revocation-log entry is associated with the continued context, so
    /// the next feed covering that entry extends the same trace across the
    /// WAN. Returns whether the serial was newly revoked. `ctx` may be
    /// [`TraceCtx::NONE`] — a quiet caller revokes identically, minus the
    /// stitching (`tests/obs_trace_properties.rs` pins the equality).
    pub fn revoke_serial_traced(
        &mut self,
        realm: RealmId,
        serial: CredSerial,
        ctx: TraceCtx,
        when: SimTime,
    ) -> bool {
        let Some(site) = self.sites.get(&realm) else {
            return false;
        };
        let mut plane = site.plane.write();
        let head_before = plane.revocation_head();
        plane.revoke_serial(serial);
        let head = plane.revocation_head();
        if head == head_before {
            return false; // already revoked: no new log entry to trace
        }
        let ctx = match plane.trace_buffer() {
            Some(tb) if tb.enabled() => tb.hit(ctx, "cred.revoke.serial", when, serial.0),
            // No (enabled) cred ring: pass the context through unchanged so
            // the chain survives a partially-instrumented deployment.
            _ => ctx,
        };
        drop(plane);
        self.associate_trace(realm, head, ctx);
        true
    }

    /// Remember `ctx` as the trace behind `issuer`'s log entry `seq`.
    fn associate_trace(&mut self, issuer: RealmId, seq: u64, ctx: TraceCtx) {
        if ctx.is_none() {
            return;
        }
        self.trace_by_seq.insert((issuer, seq), ctx);
        while self.trace_by_seq.len() > 1024 {
            let Some(oldest) = self.trace_by_seq.keys().next().copied() else {
                break;
            };
            self.trace_by_seq.remove(&oldest);
        }
    }

    /// The newest traced context among `issuer`'s log entries
    /// `first..=head` ([`TraceCtx::NONE`] when none are traced).
    fn trace_for_range(&self, issuer: RealmId, first: u64, head: u64) -> TraceCtx {
        if first > head {
            return TraceCtx::NONE;
        }
        self.trace_by_seq
            .range((issuer, first)..=(issuer, head))
            .next_back()
            .map_or(TraceCtx::NONE, |(_, c)| *c)
    }

    /// Drive every exchange due up to `t`, in event-time order (arrivals
    /// before same-instant emissions, pushes before same-instant pulls).
    /// Idempotent for `t <= now`.
    pub fn pump(&mut self, t: SimTime) {
        if t < self.now {
            return;
        }
        let pump_tok = self.obs.rec.span_start();
        loop {
            // Earliest event at or before `t`: kind 0 = arrival, 1 = push,
            // 2 = pull; ties break by kind then stable index.
            let mut best: Option<(SimTime, u8, usize)> = None;
            let consider = |cand: (SimTime, u8, usize), best: &mut Option<(SimTime, u8, usize)>| {
                if cand.0 <= t && best.is_none_or(|b| cand < b) {
                    *best = Some(cand);
                }
            };
            for (i, f) in self.in_flight.iter().enumerate() {
                consider((f.arrives, 0, i), &mut best);
            }
            for (i, l) in self.links.iter().enumerate() {
                consider((l.next_push, 1, i), &mut best);
                consider((l.next_pull, 2, i), &mut best);
            }
            let Some((when, kind, idx)) = best else { break };
            match kind {
                0 => self.deliver(idx),
                1 => self.push(idx, when),
                _ => self.pull(idx, when),
            }
        }
        self.now = t;
        self.obs.rec.span_end(self.obs.sp_pump, pump_tok);
        self.record_staleness_edges();
        self.record_feed_silence_edges();
        // Boundary sampling: fold counter deltas into the windowed rings
        // (no-op when obs is off).
        self.obs.rec.ts_tick(self.now);
    }

    /// Flight-record every replica that crossed the staleness budget in
    /// either direction since the last pump (no-op when obs is off). Edges
    /// — not levels — are what an incident timeline needs: the instant a
    /// partitioned feed pushes a replica over `max_lag` (validation starts
    /// failing closed) and the instant an exchange pulls it back under.
    fn record_staleness_edges(&mut self) {
        if !self.obs.rec.enabled() {
            return;
        }
        let mut edges: Vec<(RealmId, RealmId, bool, u64)> = Vec::new();
        for (site_id, site) in &self.sites {
            for (issuer, replica) in &site.replicas {
                let lag = replica.lag(self.now);
                let over = lag > self.cfg.max_lag;
                if over != self.obs.stale.contains(&(*site_id, *issuer)) {
                    edges.push((*site_id, *issuer, over, lag.as_secs_f64() as u64));
                }
            }
        }
        for (site, issuer, over, lag_secs) in edges {
            if over {
                self.obs.stale.insert((site, issuer));
                self.obs.rec.incr(self.obs.c_stale_enters);
                self.obs.rec.event(
                    self.now,
                    "replica.stale",
                    site.0 as u64,
                    issuer.0 as u64,
                    lag_secs,
                );
            } else {
                self.obs.stale.remove(&(site, issuer));
                self.obs.rec.incr(self.obs.c_stale_exits);
                self.obs.rec.event(
                    self.now,
                    "replica.fresh",
                    site.0 as u64,
                    issuer.0 as u64,
                    lag_secs,
                );
            }
        }
    }

    /// Flight-record every feed link whose subscriber has stopped hearing
    /// anything — data or heartbeat — for
    /// [`RevSyncConfig::silent_after`] feed intervals, and the first
    /// delivery after (no-op when obs is off). Like staleness, edges are
    /// what matter: a stalled daemon is invisible to the issuer, so the
    /// subscriber's silence detector is the only early warning before the
    /// staleness budget itself expires.
    fn record_feed_silence_edges(&mut self) {
        if !self.obs.rec.enabled() {
            return;
        }
        let budget = self.cfg.feed_interval * self.cfg.silent_after as u64;
        let mut edges: Vec<(RealmId, RealmId, bool, u64)> = Vec::new();
        for l in &self.links {
            let quiet = self.now.since(l.last_heard);
            let silent = quiet > budget;
            if silent != self.obs.silent.contains(&(l.issuer, l.subscriber)) {
                edges.push((l.issuer, l.subscriber, silent, quiet.as_secs_f64() as u64));
            }
        }
        for (issuer, subscriber, silent, quiet_secs) in edges {
            if silent {
                self.obs.silent.insert((issuer, subscriber));
                self.obs.rec.incr(self.obs.c_silent_enters);
                self.obs.rec.event(
                    self.now,
                    "feed.silent",
                    issuer.0 as u64,
                    subscriber.0 as u64,
                    quiet_secs,
                );
            } else {
                self.obs.silent.remove(&(issuer, subscriber));
                self.obs.rec.incr(self.obs.c_silent_exits);
                self.obs.rec.event(
                    self.now,
                    "feed.heard",
                    issuer.0 as u64,
                    subscriber.0 as u64,
                    quiet_secs,
                );
            }
        }
    }

    /// Emit one push feed on link `idx` at instant `when`.
    fn push(&mut self, idx: usize, when: SimTime) {
        let (issuer, subscriber, since) = {
            let l = &mut self.links[idx];
            l.next_push = when + self.cfg.feed_interval;
            (l.issuer, l.subscriber, l.pushed_seq)
        };
        if self.stalled.contains(&(issuer, subscriber)) {
            // A stalled daemon swallows the push with no error the issuer
            // could see: no retry, no cursor advance — only the
            // subscriber's silence detector can tell.
            self.metrics.pushes_stalled += 1;
            return;
        }
        if self.partitioned.contains(&(issuer, subscriber)) {
            self.metrics.pushes_failed += 1;
            self.schedule_push_retry(idx, when);
            return;
        }
        let (serials, head, floor) = {
            let plane = self.sites[&issuer].plane.read();
            (
                plane.revocations_since(since),
                plane.revocation_head(),
                plane.revocation_floor(),
            )
        };
        if since < floor {
            // The push cursor somehow fell below the compaction floor (an
            // operator compacted more aggressively than the subscriber
            // frontiers): degrade this push to a full snapshot rather than
            // ship a delta whose sequence numbering would lie.
            let snapshot = self.sites[&issuer].plane.read().revocation_snapshot();
            let delta = CrlDelta {
                issuer,
                first_seq: 1,
                serials: snapshot,
                head,
                as_of: when,
                trace: TraceCtx::NONE,
            };
            if self.ship(issuer, subscriber, delta, SimDuration::ZERO, true) {
                let l = &mut self.links[idx];
                l.pushed_seq = head;
                l.retry_attempts = 0;
                self.metrics.pushes_sent += 1;
                self.metrics.snapshots_sent += 1;
                self.obs.rec.incr(self.obs.c_pushes);
            } else {
                self.metrics.pushes_failed += 1;
                self.schedule_push_retry(idx, when);
            }
            return;
        }
        let mut delta = CrlDelta {
            issuer,
            first_seq: since + 1,
            serials,
            head,
            as_of: when,
            trace: TraceCtx::NONE,
        };
        // Fire-and-forget for in-transit loss: the cursor advances whether
        // or not the delta survives the wire (the subscriber sees a gap).
        if self.rng.chance(self.cfg.push_loss) {
            self.links[idx].pushed_seq = head;
            self.metrics.pushes_lost += 1;
            return;
        }
        // Continue the newest traced revocation this delta carries (free
        // when tracing is off — the association map is then empty).
        delta.trace = self.obs.trace.hit(
            self.trace_for_range(issuer, since + 1, head),
            "revsync.mesh.push",
            when,
            delta.serials.len() as u64,
        );
        if !self.ship(issuer, subscriber, delta, SimDuration::ZERO, false) {
            // A connect-time refusal (fabric link fault) *is* visible to
            // the sender: the cursor stays put and the link re-arms on the
            // backoff schedule instead of waiting a whole interval.
            self.metrics.pushes_failed += 1;
            self.schedule_push_retry(idx, when);
            return;
        }
        let l = &mut self.links[idx];
        l.pushed_seq = head;
        l.retry_attempts = 0;
        self.metrics.pushes_sent += 1;
        self.obs.rec.incr(self.obs.c_pushes);
    }

    /// Re-arm link `idx` after a detected push failure: capped exponential
    /// backoff (doubling from [`RevSyncConfig::retry_base`] up to
    /// [`RevSyncConfig::retry_cap`]) plus up to 25% jitter, so a transient
    /// fault heals in seconds instead of a full feed interval while a
    /// persistent outage backs the sender off — and parallel links don't
    /// retry in lockstep.
    fn schedule_push_retry(&mut self, idx: usize, when: SimTime) {
        let attempts = self.links[idx].retry_attempts.saturating_add(1);
        let shift = (attempts - 1).min(16);
        let backoff = (self.cfg.retry_base * (1u64 << shift))
            .min(self.cfg.retry_cap)
            .max(SimDuration::from_micros(1));
        let jitter =
            SimDuration::from_micros(self.rng.range_u64(0, (backoff.as_micros() / 4).max(1)));
        let l = &mut self.links[idx];
        l.retry_attempts = attempts;
        l.next_push = when + backoff + jitter;
        self.metrics.push_retries += 1;
    }

    /// Run one anti-entropy round on link `idx` at instant `when`.
    fn pull(&mut self, idx: usize, when: SimTime) {
        let (issuer, subscriber) = {
            let l = &mut self.links[idx];
            l.next_pull = when + self.cfg.anti_entropy;
            (l.issuer, l.subscriber)
        };
        if self.partitioned.contains(&(issuer, subscriber)) {
            self.metrics.pulls_failed += 1;
            return;
        }
        // The subscriber asks from its *applied* frontier — whatever gaps
        // loss tore open, the response is contiguous from there.
        let since = self.sites[&subscriber].replicas[&issuer].applied_seq();
        let (serials, head, floor) = {
            let plane = self.sites[&issuer].plane.read();
            (
                plane.revocations_since(since),
                plane.revocation_head(),
                plane.revocation_floor(),
            )
        };
        if since < floor {
            // The frontier fell below the issuer's compaction floor: no
            // contiguous delta exists any more, so the response degrades
            // to a full membership snapshot (exact, absorbed as a set
            // union — never a gap).
            let snapshot = self.sites[&issuer].plane.read().revocation_snapshot();
            let delta = CrlDelta {
                issuer,
                first_seq: 1,
                serials: snapshot,
                head,
                as_of: when,
                trace: TraceCtx::NONE,
            };
            if self.ship(issuer, subscriber, delta, self.cfg.wan.base_rtt, true) {
                self.links[idx].pushed_seq = self.links[idx].pushed_seq.max(head);
                self.metrics.pulls += 1;
                self.metrics.snapshots_sent += 1;
                self.obs.rec.incr(self.obs.c_pulls);
            } else {
                self.metrics.pulls_failed += 1;
            }
            return;
        }
        let serials_len = serials.len() as u64;
        let delta = CrlDelta {
            issuer,
            first_seq: since + 1,
            serials,
            head,
            as_of: when,
            trace: self.obs.trace.hit(
                self.trace_for_range(issuer, since + 1, head),
                "revsync.mesh.pull",
                when,
                serials_len,
            ),
        };
        // Request leg (one WAN round trip) precedes the response transfer.
        if self.ship(issuer, subscriber, delta, self.cfg.wan.base_rtt, false) {
            // The issuer now knows the subscriber's true frontier: realign
            // the push cursor so post-repair pushes are contiguous again.
            self.links[idx].pushed_seq = self.links[idx].pushed_seq.max(head);
            self.metrics.pulls += 1;
            self.obs.rec.incr(self.obs.c_pulls);
        } else {
            self.metrics.pulls_failed += 1;
        }
    }

    /// Put a delta on the wire from issuer to subscriber; `extra` models
    /// any protocol time before the transfer starts (the pull request leg),
    /// `snapshot` marks a full-membership payload. Returns false when the
    /// connect itself is refused (fabric-level link fault) — nothing was
    /// sent or charged.
    fn ship(
        &mut self,
        issuer: RealmId,
        subscriber: RealmId,
        delta: CrlDelta,
        extra: SimDuration,
        snapshot: bool,
    ) -> bool {
        let from = self.sites[&issuer].host;
        let to = self.sites[&subscriber].host;
        let daemon = PeerInfo {
            uid: Uid(0),
            egid: Gid(0),
            pid: None,
        };
        let Ok((conn, setup)) =
            self.fabric
                .connect(from, daemon, SocketAddr::new(to, CRL_FEED_PORT), Proto::Tcp)
        else {
            return false;
        };
        let body = bytes::Bytes::from(vec![0u8; delta.wire_bytes()]);
        let xfer = self.fabric.send(conn, &body).expect("just connected");
        self.fabric.close(conn);
        self.metrics.bytes_sent += delta.wire_bytes() as u64;
        self.in_flight.push(InFlight {
            to: subscriber,
            arrives: delta.as_of + extra + setup + xfer,
            delta,
            snapshot,
        });
        true
    }

    /// Deliver in-flight delta `idx` to its replica.
    fn deliver(&mut self, idx: usize) {
        let f = self.in_flight.swap_remove(idx);
        // The subscriber heard from this issuer — whatever the payload,
        // the silence detector re-arms.
        for l in &mut self.links {
            if l.issuer == f.delta.issuer && l.subscriber == f.to {
                l.last_heard = f.arrives;
            }
        }
        let site = self.sites.get_mut(&f.to).expect("subscriber exists");
        let replica = site
            .replicas
            .get_mut(&f.delta.issuer)
            .expect("subscribed replica exists");
        if f.snapshot {
            let n = replica.absorb_snapshot(&f.delta.serials, f.delta.head, f.delta.as_of);
            self.metrics.deltas_applied += 1;
            self.metrics.serials_applied += n as u64;
            self.obs.rec.incr(self.obs.c_deliveries);
            return;
        }
        match replica.apply(&f.delta) {
            ApplyOutcome::Applied(n) => {
                self.metrics.deltas_applied += 1;
                self.metrics.serials_applied += n as u64;
                self.obs.rec.incr(self.obs.c_deliveries);
                if !f.delta.trace.is_none() {
                    // The apply span is what fail-closed denials at this
                    // replica will parent under.
                    let ctx = self.obs.trace.hit(
                        f.delta.trace,
                        "revsync.replica.apply",
                        f.arrives,
                        n as u64,
                    );
                    replica.set_last_trace(ctx);
                }
            }
            ApplyOutcome::Gap { .. } => {
                self.metrics.gaps_refused += 1;
                self.obs.rec.incr(self.obs.c_gaps);
                let issuer = f.delta.issuer;
                self.obs.rec.event(
                    self.now,
                    "crl.gap",
                    f.to.0 as u64,
                    issuer.0 as u64,
                    f.delta.first_seq,
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // The validate hot path (no mesh traffic, no issuer contact)
    // ------------------------------------------------------------------

    /// Validate a foreign bearer token at `site` against its local replica
    /// of the issuing realm, under the mesh's staleness budget. Fails
    /// closed when the site holds no replica for the issuer
    /// (`UnknownRealm`) or the replica is over budget (`StaleReplica`).
    pub fn validate_token_at(
        &self,
        site: RealmId,
        token: &SignedToken,
        now: SimTime,
    ) -> Result<Uid, CredError> {
        let t0 = self.obs.begin_validate();
        let r = self
            .subscribed_replica(site, token.realm)
            .and_then(|rep| rep.validate_token(token, now, self.cfg.max_lag));
        self.obs.finish_validate(t0, &r);
        self.trace_deny(site, token.realm, token.serial, now, &r);
        r
    }

    /// [`validate_token_at`](Self::validate_token_at) for SSH certificates.
    pub fn validate_cert_at(
        &self,
        site: RealmId,
        cert: &SshCertificate,
        now: SimTime,
    ) -> Result<Uid, CredError> {
        let t0 = self.obs.begin_validate();
        let r = self
            .subscribed_replica(site, cert.realm)
            .and_then(|rep| rep.validate_cert(cert, now, self.cfg.max_lag));
        self.obs.finish_validate(t0, &r);
        self.trace_deny(site, cert.realm, cert.serial, now, &r);
        r
    }

    /// Record a `revsync.replica.deny` span when a fail-closed refusal
    /// (revoked or stale) follows a traced apply at this replica. `&self`
    /// on purpose — the trace ring is interior-mutable — and one relaxed
    /// load + branch when tracing is off.
    fn trace_deny(
        &self,
        site: RealmId,
        issuer: RealmId,
        serial: CredSerial,
        now: SimTime,
        r: &Result<Uid, CredError>,
    ) {
        if self.obs.trace.enabled()
            && matches!(
                r,
                Err(CredError::Revoked(_)) | Err(CredError::StaleReplica { .. })
            )
        {
            if let Some(rep) = self.replica(site, issuer) {
                let _ = self
                    .obs
                    .trace
                    .hit(rep.last_trace(), "revsync.replica.deny", now, serial.0);
            }
        }
    }

    /// The replica lookup with precise fail-closed attribution: an
    /// `UnknownRealm` error names the realm that is actually missing — the
    /// validating site when *it* is not on the mesh, the issuer when the
    /// site holds no replica for it.
    fn subscribed_replica(&self, site: RealmId, issuer: RealmId) -> Result<&CrlReplica, CredError> {
        self.sites
            .get(&site)
            .ok_or(CredError::UnknownRealm(site))?
            .replicas
            .get(&issuer)
            .ok_or(CredError::UnknownRealm(issuer))
    }

    /// The replica `site` holds for `issuer`, if subscribed.
    pub fn replica(&self, site: RealmId, issuer: RealmId) -> Option<&CrlReplica> {
        self.sites.get(&site)?.replicas.get(&issuer)
    }

    /// How stale `site`'s replica of `issuer` is at `now` (`None` when not
    /// subscribed).
    pub fn replica_lag(&self, site: RealmId, issuer: RealmId, now: SimTime) -> Option<SimDuration> {
        Some(self.replica(site, issuer)?.lag(now))
    }
}

impl std::fmt::Debug for RevSyncMesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RevSyncMesh")
            .field("realms", &self.sites.keys().collect::<Vec<_>>())
            .field("links", &self.links.len())
            .field("in_flight", &self.in_flight.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eus_fedauth::{shared_broker, BrokerPolicy, CredentialBroker};
    use eus_simos::UserDb;

    fn two_realm_mesh(
        cfg: RevSyncConfig,
    ) -> (UserDb, RevSyncMesh, SharedBroker, SharedBroker, Uid) {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let home = shared_broker(CredentialBroker::new(
            RealmId(1),
            11,
            BrokerPolicy::default(),
        ));
        let sister = shared_broker(CredentialBroker::new(
            RealmId(2),
            22,
            BrokerPolicy::default(),
        ));
        let mut mesh = RevSyncMesh::new(cfg);
        mesh.add_realm(RealmId(1), home.clone());
        mesh.add_realm(RealmId(2), sister.clone());
        mesh.subscribe(RealmId(1), RealmId(2));
        (db, mesh, home, sister, alice)
    }

    #[test]
    fn push_feed_propagates_a_revocation_within_one_interval() {
        let cfg = RevSyncConfig::default();
        let (db, mut mesh, _home, sister, alice) = two_realm_mesh(cfg);
        let token = sister.write().login(&db, alice, None).unwrap();
        // Visible (and valid) at home via the replica immediately.
        assert_eq!(
            mesh.validate_token_at(RealmId(1), &token, SimTime::ZERO)
                .unwrap(),
            alice
        );
        // Revoke at the issuer: home still accepts until a feed lands.
        sister.write().revoke_user(alice);
        assert!(mesh
            .validate_token_at(RealmId(1), &token, SimTime::ZERO)
            .is_ok());
        // One feed interval (plus wire time) later, home rejects.
        let after = SimTime::ZERO + cfg.feed_interval + SimDuration::from_secs(1);
        mesh.pump(after);
        assert_eq!(
            mesh.validate_token_at(RealmId(1), &token, after),
            Err(CredError::Revoked(token.serial))
        );
        assert!(mesh.metrics.pushes_sent >= 1);
        assert!(mesh.metrics.serials_applied >= 1);
        // The replica's lag is bounded by cadence + wire, well under budget.
        let lag = mesh.replica_lag(RealmId(1), RealmId(2), after).unwrap();
        assert!(lag <= cfg.feed_interval + SimDuration::from_secs(1));
    }

    #[test]
    fn lost_pushes_leave_gaps_that_anti_entropy_repairs() {
        let cfg = RevSyncConfig {
            push_loss: 1.0, // every push dies: only anti-entropy moves data
            ..RevSyncConfig::default()
        };
        let (db, mut mesh, _home, sister, alice) = two_realm_mesh(cfg);
        let token = sister.write().login(&db, alice, None).unwrap();
        sister.write().revoke_user(alice);

        // Many feed intervals pass: all pushes lost, replica unrefreshed.
        let mid = SimTime::ZERO + cfg.feed_interval * 5;
        mesh.pump(mid);
        assert!(mesh.metrics.pushes_lost >= 4);
        assert_eq!(mesh.metrics.serials_applied, 0);
        assert!(mesh.validate_token_at(RealmId(1), &token, mid).is_ok());

        // The anti-entropy round catches the replica all the way up.
        let after_ae = SimTime::ZERO + cfg.anti_entropy + SimDuration::from_secs(2);
        mesh.pump(after_ae);
        assert!(mesh.metrics.pulls >= 1);
        assert_eq!(
            mesh.validate_token_at(RealmId(1), &token, after_ae),
            Err(CredError::Revoked(token.serial))
        );
        let issuer_head = sister.read().revocation_head();
        assert_eq!(
            mesh.replica(RealmId(1), RealmId(2)).unwrap().applied_seq(),
            issuer_head
        );
    }

    #[test]
    fn partition_grows_lag_until_validation_fails_closed() {
        let cfg = RevSyncConfig::default();
        let (db, mut mesh, _home, sister, alice) = two_realm_mesh(cfg);
        let token = sister.write().login(&db, alice, None).unwrap();
        mesh.set_partitioned(RealmId(2), RealmId(1), true);

        // Inside the budget: stale but acceptable.
        let inside = SimTime::ZERO + cfg.max_lag;
        mesh.pump(inside);
        assert_eq!(
            mesh.validate_token_at(RealmId(1), &token, inside).unwrap(),
            alice
        );
        // Past the budget: fail closed, naming the stale realm.
        let outside = inside + SimDuration::from_secs(1);
        mesh.pump(outside);
        assert!(matches!(
            mesh.validate_token_at(RealmId(1), &token, outside),
            Err(CredError::StaleReplica {
                realm: RealmId(2),
                ..
            })
        ));
        // Healing the partition restores validation at the next exchange.
        mesh.set_partitioned(RealmId(2), RealmId(1), false);
        let healed = outside + cfg.feed_interval + SimDuration::from_secs(1);
        mesh.pump(healed);
        assert_eq!(
            mesh.validate_token_at(RealmId(1), &token, healed).unwrap(),
            alice
        );
    }

    #[test]
    fn obs_records_pump_counters_and_staleness_edges() {
        let cfg = RevSyncConfig::default();
        let (db, mut mesh, _home, sister, alice) = two_realm_mesh(cfg);
        mesh.enable_obs(eus_obs::ObsConfig::enabled());
        let token = sister.write().login(&db, alice, None).unwrap();
        mesh.set_partitioned(RealmId(2), RealmId(1), true);

        // Partition outlives the budget: exactly one stale edge in.
        let outside = SimTime::ZERO + cfg.max_lag + SimDuration::from_secs(1);
        mesh.pump(outside);
        assert_eq!(mesh.obs.rec.counter_value(mesh.obs.c_stale_enters), 1);
        assert!(mesh.validate_token_at(RealmId(1), &token, outside).is_err());
        assert!(mesh.obs.validate_stale() >= 1);
        assert!(mesh.obs.validate_calls() >= 1);

        // Healing produces exactly one fresh edge out.
        mesh.set_partitioned(RealmId(2), RealmId(1), false);
        let healed = outside + cfg.feed_interval + SimDuration::from_secs(1);
        mesh.pump(healed);
        assert_eq!(mesh.obs.rec.counter_value(mesh.obs.c_stale_exits), 1);
        assert!(mesh.obs.rec.counter_value(mesh.obs.c_pushes) >= 1);
        let kinds: Vec<&str> = mesh
            .obs
            .rec
            .flight
            .events()
            .iter()
            .map(|e| e.kind)
            .collect();
        assert!(kinds.contains(&"replica.stale"));
        assert!(kinds.contains(&"replica.fresh"));
        assert!(mesh.obs.rec.span_stats(mesh.obs.sp_pump).count >= 2);
    }

    #[test]
    fn traced_revocation_chains_across_the_wan() {
        let cfg = RevSyncConfig::default();
        let (db, mut mesh, _home, sister, alice) = two_realm_mesh(cfg);
        mesh.enable_obs(eus_obs::ObsConfig::enabled());
        sister.read().trace_buffer().unwrap().set_enabled(true);
        let token = sister.write().login(&db, alice, None).unwrap();

        // Mint the entry-point root (the portal does this in production).
        let root = mesh.obs.trace.root("portal.route.revoke", SimTime::ZERO);
        assert!(mesh.revoke_serial_traced(RealmId(2), token.serial, root.ctx(), SimTime::ZERO));
        mesh.obs.trace.finish(root, SimTime::ZERO);

        // Feed + wire time later, home denies — and the denial is stitched
        // to the same trace.
        let after = SimTime::ZERO + cfg.feed_interval + SimDuration::from_secs(1);
        mesh.pump(after);
        assert!(mesh.validate_token_at(RealmId(1), &token, after).is_err());

        let trace_id = root.ctx().trace;
        let spans = eus_obs::assemble_trace(
            trace_id,
            &[
                mesh.obs.trace.spans(),
                sister.read().trace_buffer().unwrap().spans(),
            ],
        );
        eus_obs::check_well_formed(&spans).unwrap();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        for want in [
            "portal.route.revoke",
            "cred.revoke.serial",
            "revsync.mesh.push",
            "revsync.replica.apply",
            "revsync.replica.deny",
        ] {
            assert!(names.contains(&want), "missing {want} in {names:?}");
        }
        // Sim-time ordering is monotone down the chain.
        for pair in spans.windows(2) {
            assert!(pair[0].start <= pair[1].start);
        }
        // Idempotent re-revocation neither re-records nor re-associates.
        assert!(!mesh.revoke_serial_traced(RealmId(2), token.serial, root.ctx(), after));
    }

    #[test]
    fn quiet_mesh_runs_identically_with_trace_hooks_present() {
        let cfg = RevSyncConfig::default();
        let (db, mut quiet, _h1, s1, alice) = two_realm_mesh(cfg);
        let (db2, mut loud, _h2, s2, alice2) = two_realm_mesh(cfg);
        loud.enable_obs(eus_obs::ObsConfig::enabled());
        let t1 = s1.write().login(&db, alice, None).unwrap();
        let t2 = s2.write().login(&db2, alice2, None).unwrap();
        let root = loud.obs.trace.root("portal.route.revoke", SimTime::ZERO);
        quiet.revoke_serial_traced(RealmId(2), t1.serial, TraceCtx::NONE, SimTime::ZERO);
        loud.revoke_serial_traced(RealmId(2), t2.serial, root.ctx(), SimTime::ZERO);
        loud.obs.trace.finish(root, SimTime::ZERO);
        let after = SimTime::ZERO + cfg.feed_interval * 3;
        quiet.pump(after);
        loud.pump(after);
        // Same decisions, same propagation metrics, same wire charge.
        assert_eq!(
            quiet.validate_token_at(RealmId(1), &t1, after),
            loud.validate_token_at(RealmId(1), &t2, after)
        );
        assert_eq!(quiet.metrics.pushes_sent, loud.metrics.pushes_sent);
        assert_eq!(quiet.metrics.bytes_sent, loud.metrics.bytes_sent);
        assert_eq!(quiet.metrics.serials_applied, loud.metrics.serials_applied);
    }

    #[test]
    fn stalled_feed_goes_silent_and_anti_entropy_still_repairs() {
        let cfg = RevSyncConfig::default();
        let (db, mut mesh, _home, sister, alice) = two_realm_mesh(cfg);
        mesh.enable_obs(eus_obs::ObsConfig::enabled());
        let token = sister.write().login(&db, alice, None).unwrap();
        sister.write().revoke_user(alice);
        mesh.set_feed_stalled(RealmId(2), RealmId(1), true);
        assert!(mesh.feed_stalled(RealmId(2), RealmId(1)));

        // Past the silence budget: pushes were swallowed (no detected
        // failures, so no retries) and the silence edge fired exactly once.
        let quiet = SimTime::ZERO + cfg.feed_interval * (cfg.silent_after as u64 + 2);
        mesh.pump(quiet);
        assert_eq!(mesh.metrics.pushes_sent, 0);
        assert!(mesh.metrics.pushes_stalled >= cfg.silent_after as u64);
        assert_eq!(mesh.metrics.push_retries, 0);
        assert_eq!(mesh.obs.rec.counter_value(mesh.obs.c_silent_enters), 1);
        assert!(mesh.validate_token_at(RealmId(1), &token, quiet).is_ok());

        // Anti-entropy is a different process: the pull repairs the
        // replica, and its delivery clears the silence.
        let after_ae = SimTime::ZERO + cfg.anti_entropy + SimDuration::from_secs(2);
        mesh.pump(after_ae);
        assert_eq!(
            mesh.validate_token_at(RealmId(1), &token, after_ae),
            Err(CredError::Revoked(token.serial))
        );
        assert_eq!(mesh.obs.rec.counter_value(mesh.obs.c_silent_exits), 1);
        let kinds: Vec<&str> = mesh
            .obs
            .rec
            .flight
            .events()
            .iter()
            .map(|e| e.kind)
            .collect();
        assert!(kinds.contains(&"feed.silent"));
        assert!(kinds.contains(&"feed.heard"));

        // Unstalling lets pushes flow again.
        mesh.set_feed_stalled(RealmId(2), RealmId(1), false);
        mesh.pump(after_ae + cfg.feed_interval * 2);
        assert!(mesh.metrics.pushes_sent >= 1);
    }

    #[test]
    fn detected_push_failure_retries_with_backoff_and_heal_resubscribes() {
        let cfg = RevSyncConfig::default();
        let (db, mut mesh, _home, sister, alice) = two_realm_mesh(cfg);
        let token = sister.write().login(&db, alice, None).unwrap();
        sister.write().revoke_user(alice);
        mesh.set_partitioned(RealmId(2), RealmId(1), true);

        // One minute of outage: the first attempt at one feed interval,
        // then the capped exponential schedule. Every detected failure
        // re-arms a retry.
        let mid = SimTime::ZERO + SimDuration::from_secs(60);
        mesh.pump(mid);
        assert!(mesh.metrics.push_retries >= 4);
        assert_eq!(mesh.metrics.pushes_failed, mesh.metrics.push_retries);
        assert_eq!(mesh.metrics.pushes_sent, 0);
        assert!(mesh.validate_token_at(RealmId(1), &token, mid).is_ok());

        // Heal: the feed resubscribes immediately — the missed revocation
        // lands within wire time of the next pump, not a whole backoff (or
        // feed interval) later.
        mesh.set_partitioned(RealmId(2), RealmId(1), false);
        let healed = mid + SimDuration::from_secs(1);
        mesh.pump(healed);
        assert!(mesh.metrics.pushes_sent >= 1);
        assert_eq!(
            mesh.validate_token_at(RealmId(1), &token, healed),
            Err(CredError::Revoked(token.serial))
        );
    }

    #[test]
    fn compaction_tracks_subscriber_frontier_and_feeds_stay_exact() {
        let cfg = RevSyncConfig::default();
        let (mut db, mut mesh, _home, sister, _alice) = two_realm_mesh(cfg);
        for name in ["u1", "u2", "u3", "u4"] {
            let u = db.create_user(name).unwrap();
            let t = sister.write().login(&db, u, None).unwrap();
            sister.write().revoke_serial(t.serial);
        }
        let t1 = SimTime::ZERO + cfg.feed_interval + SimDuration::from_secs(1);
        mesh.pump(t1);
        let head = sister.read().revocation_head();
        assert_eq!(
            mesh.replica(RealmId(1), RealmId(2)).unwrap().applied_seq(),
            head
        );

        // Compaction truncates exactly up to the subscriber's frontier.
        assert_eq!(mesh.compact_logs(), head);
        assert_eq!(sister.read().revocation_floor(), head);
        assert_eq!(mesh.metrics.log_compacted, head);

        // Later revocations still flow as exact deltas — nothing below the
        // floor is ever needed again.
        let eve = db.create_user("eve").unwrap();
        let t = sister.write().login(&db, eve, None).unwrap();
        sister.write().revoke_serial(t.serial);
        let t2 = t1 + cfg.feed_interval + SimDuration::from_secs(1);
        mesh.pump(t2);
        assert_eq!(
            mesh.validate_token_at(RealmId(1), &t, t2),
            Err(CredError::Revoked(t.serial))
        );
        assert_eq!(mesh.metrics.snapshots_sent, 0, "delta path sufficed");
        assert_eq!(mesh.compact_logs(), 1, "only the newly acked entry");
    }

    #[test]
    fn below_floor_subscriber_recovers_via_snapshot() {
        let cfg = RevSyncConfig::default();
        let (mut db, mut mesh, _home, sister, _alice) = two_realm_mesh(cfg);
        // Sever the feed, then revoke while the subscriber cannot hear.
        mesh.set_partitioned(RealmId(2), RealmId(1), true);
        let bob = db.create_user("bob").unwrap();
        let token = sister.write().login(&db, bob, None).unwrap();
        sister.write().revoke_serial(token.serial);
        // An over-aggressive operator compacts the issuer's whole log: the
        // subscriber's frontier (0) is now below the floor.
        let head = sister.read().revocation_head();
        assert_eq!(sister.write().compact_revocations_below(head), head);

        // On heal, the re-push degrades to a full membership snapshot and
        // converges the replica exactly.
        let mid = SimTime::ZERO + SimDuration::from_secs(30);
        mesh.pump(mid);
        mesh.set_partitioned(RealmId(2), RealmId(1), false);
        let healed = mid + SimDuration::from_secs(1);
        mesh.pump(healed);
        assert!(mesh.metrics.snapshots_sent >= 1);
        assert_eq!(
            mesh.validate_token_at(RealmId(1), &token, healed),
            Err(CredError::Revoked(token.serial))
        );
        assert_eq!(
            mesh.replica(RealmId(1), RealmId(2)).unwrap().applied_seq(),
            head
        );
    }

    #[test]
    fn new_subscriber_bootstraps_from_membership_snapshot_after_compaction() {
        let cfg = RevSyncConfig::default();
        let (mut db, mut mesh, _home, sister, _alice) = two_realm_mesh(cfg);
        let carol = db.create_user("carol").unwrap();
        let token = sister.write().login(&db, carol, None).unwrap();
        sister.write().revoke_serial(token.serial);
        let t1 = SimTime::ZERO + cfg.feed_interval + SimDuration::from_secs(1);
        mesh.pump(t1);
        assert!(mesh.compact_logs() >= 1);

        // A realm joining after compaction bootstraps from the membership
        // snapshot and still fails closed on the truncated history.
        let third = shared_broker(CredentialBroker::new(
            RealmId(3),
            33,
            BrokerPolicy::default(),
        ));
        mesh.add_realm(RealmId(3), third);
        mesh.subscribe(RealmId(3), RealmId(2));
        assert_eq!(
            mesh.validate_token_at(RealmId(3), &token, t1),
            Err(CredError::Revoked(token.serial))
        );
        let head = sister.read().revocation_head();
        assert_eq!(
            mesh.replica(RealmId(3), RealmId(2)).unwrap().applied_seq(),
            head
        );
    }

    #[test]
    fn unsubscribed_realms_fail_closed() {
        let cfg = RevSyncConfig::default();
        let (db, mesh, _home, _sister, alice) = two_realm_mesh(cfg);
        let mut rogue = CredentialBroker::new(RealmId(9), 9, BrokerPolicy::default());
        let forged = rogue.login(&db, alice, None).unwrap();
        assert_eq!(
            mesh.validate_token_at(RealmId(1), &forged, SimTime::ZERO),
            Err(CredError::UnknownRealm(RealmId(9)))
        );
        // A site not on the mesh cannot validate anything — and the error
        // names the missing *site*, not the (possibly healthy) issuer.
        let sister_token = forged;
        assert_eq!(
            mesh.validate_token_at(RealmId(42), &sister_token, SimTime::ZERO),
            Err(CredError::UnknownRealm(RealmId(42)))
        );
    }
}
