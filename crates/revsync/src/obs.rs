//! Mesh observability: the pre-registered handle set for [`crate::RevSyncMesh`].
//!
//! Two recording surfaces, matching the mesh's two concurrency regimes:
//!
//! * the **pump** is `&mut self` and single-writer, so it records through a
//!   plain [`Recorder`] — a `revsync.mesh.pump` span, per-exchange
//!   counters, and flight events for staleness **edges** (a replica
//!   crossing the [`crate::RevSyncConfig::max_lag`] budget in either
//!   direction, the moments `exp_revsync`'s fail-closed story turns on);
//! * the **validate hot path** is `&self` (often behind a `RwLock` read
//!   guard), so outcome counts go through atomic
//!   [`SharedStats`] slots instead.
//!
//! Both are off by default; disabled cost is one branch (pump) or one
//! relaxed bool load (validate).

use eus_fedauth::CredError;
use eus_fedauth::RealmId;
use eus_obs::{CounterId, ObsConfig, Recorder, SharedId, SharedStats, SpanId, TraceBuffer, TsId};
use eus_simcore::SimDuration;
use eus_simos::Uid;
use std::collections::BTreeSet;
use std::time::Instant;

/// Plane code baked into revsync trace ids (see [`TraceBuffer::new`]).
pub const REVSYNC_TRACE_CODE: u8 = 4;

/// The mesh's recorder, handle set, and validate-path atomics.
#[derive(Debug, Clone)]
pub struct MeshObs {
    /// The registry + flight recorder (`revsync.*` namespace).
    pub rec: Recorder,
    /// One pump call (all exchanges due up to the new instant).
    pub sp_pump: SpanId,
    /// Push feeds that made it onto the wire.
    pub c_pushes: CounterId,
    /// Anti-entropy rounds completed.
    pub c_pulls: CounterId,
    /// Deltas delivered and applied cleanly at replicas.
    pub c_deliveries: CounterId,
    /// Deltas refused for a sequence gap.
    pub c_gaps: CounterId,
    /// Replicas crossing *over* the staleness budget.
    pub c_stale_enters: CounterId,
    /// Replicas recovering back *under* the budget.
    pub c_stale_exits: CounterId,
    /// Feed links whose subscriber stopped hearing anything (data or
    /// heartbeat) for [`crate::RevSyncConfig::silent_after`] intervals.
    pub c_silent_enters: CounterId,
    /// Silent feed links heard from again.
    pub c_silent_exits: CounterId,
    /// (site, issuer) replicas currently over budget (edge detection).
    pub(crate) stale: BTreeSet<(RealmId, RealmId)>,
    /// (issuer, subscriber) links currently silent (edge detection).
    pub(crate) silent: BTreeSet<(RealmId, RealmId)>,
    /// Causal trace ring: push/pull/apply/deny spans stitched to the
    /// upstream revocation context carried inside `CrlDelta`s.
    pub trace: TraceBuffer,
    /// Windowed push rate (sampled from [`c_pushes`](Self::c_pushes) at
    /// pump boundaries).
    pub ts_pushes: TsId,
    /// Windowed delivery rate.
    pub ts_deliveries: TsId,
    stats: SharedStats,
    s_calls: SharedId,
    s_ok: SharedId,
    s_revoked: SharedId,
    s_stale: SharedId,
    s_unknown: SharedId,
    s_other: SharedId,
    s_ns: SharedId,
}

impl MeshObs {
    /// Register the full mesh handle set under `cfg`.
    pub fn new(cfg: &ObsConfig) -> Self {
        let mut rec = Recorder::new(cfg);
        let mut stats = SharedStats::new();
        if cfg.enabled {
            stats.set_enabled(true);
        }
        let c_pushes = rec.counter("revsync.pump.pushes");
        let c_deliveries = rec.counter("revsync.pump.deliveries");
        let ts_bucket = SimDuration::from_secs(10);
        MeshObs {
            sp_pump: rec.span("revsync.mesh.pump"),
            c_pushes,
            c_pulls: rec.counter("revsync.pump.pulls"),
            c_deliveries,
            c_gaps: rec.counter("revsync.pump.gap_refusals"),
            c_stale_enters: rec.counter("revsync.staleness.enters"),
            c_stale_exits: rec.counter("revsync.staleness.exits"),
            c_silent_enters: rec.counter("revsync.silence.enters"),
            c_silent_exits: rec.counter("revsync.silence.exits"),
            ts_pushes: rec.track_counter(c_pushes, ts_bucket, 360),
            ts_deliveries: rec.track_counter(c_deliveries, ts_bucket, 360),
            trace: TraceBuffer::new("revsync", REVSYNC_TRACE_CODE, 4096, cfg.enabled),
            stale: BTreeSet::new(),
            silent: BTreeSet::new(),
            s_calls: stats.slot("revsync.validate.calls"),
            s_ok: stats.slot("revsync.validate.ok"),
            s_revoked: stats.slot("revsync.validate.revoked"),
            s_stale: stats.slot("revsync.validate.stale"),
            s_unknown: stats.slot("revsync.validate.unknown_realm"),
            s_other: stats.slot("revsync.validate.other_reject"),
            s_ns: stats.slot("revsync.validate.ns"),
            stats,
            rec,
        }
    }

    /// A disabled handle set (the default inside every mesh).
    pub fn disabled() -> Self {
        Self::new(&ObsConfig::default())
    }

    /// Start timing one replica validation. `None` (free) when disabled.
    pub fn begin_validate(&self) -> Option<Instant> {
        if self.stats.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finish one replica validation, classifying the outcome.
    pub fn finish_validate(&self, started: Option<Instant>, r: &Result<Uid, CredError>) {
        if let Some(t0) = started {
            self.stats.add(self.s_ns, t0.elapsed().as_nanos() as u64);
            self.stats.incr(self.s_calls);
            self.stats.incr(match r {
                Ok(_) => self.s_ok,
                Err(CredError::Revoked(_)) => self.s_revoked,
                Err(CredError::StaleReplica { .. }) => self.s_stale,
                Err(CredError::UnknownRealm(_)) => self.s_unknown,
                Err(_) => self.s_other,
            });
        }
    }

    /// Validate-path slots as `(name, value)`.
    pub fn validate_snapshot(&self) -> Vec<(&'static str, u64)> {
        self.stats.snapshot()
    }

    /// Replica validations recorded (hot-path calls).
    pub fn validate_calls(&self) -> u64 {
        self.stats.value(self.s_calls)
    }

    /// Validations refused for staleness (the fail-closed budget at work).
    pub fn validate_stale(&self) -> u64 {
        self.stats.value(self.s_stale)
    }
}

impl Default for MeshObs {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_everywhere() {
        let obs = MeshObs::default();
        assert!(!obs.rec.enabled());
        assert!(obs.begin_validate().is_none());
        obs.finish_validate(None, &Ok(Uid(1)));
        assert_eq!(obs.validate_calls(), 0);
    }

    #[test]
    fn validate_outcomes_classify() {
        let obs = MeshObs::new(&ObsConfig::enabled());
        let t = obs.begin_validate();
        obs.finish_validate(t, &Ok(Uid(1)));
        let t = obs.begin_validate();
        obs.finish_validate(t, &Err(CredError::UnknownRealm(RealmId(9))));
        assert_eq!(obs.validate_calls(), 2);
        assert_eq!(obs.validate_stale(), 0);
        let snap = obs.validate_snapshot();
        assert!(snap.contains(&("revsync.validate.ok", 1)));
        assert!(snap.contains(&("revsync.validate.unknown_realm", 1)));
    }
}
