//! # eus-revsync — asynchronous cross-realm revocation propagation
//!
//! PR 2's federation validated a sister realm's credential by querying the
//! *issuer's* revocation list synchronously — one lookup per validation,
//! across the WAN, against every trusted realm's plane. That cannot scale
//! to many sister realms or survive realistic inter-site latency, and both
//! companion systems (the federated-authentication layer of Prout et al.
//! 2019 and the multi-site sensitive-data platform of Scheerman et al.
//! 2021) instead move revocation state *between* administrative domains
//! asynchronously.
//!
//! This crate is that layer:
//!
//! * every realm's plane keeps a sequence-numbered, append-only revocation
//!   **delta log** (`eus_fedauth::RevocationList`); the log is the unit of
//!   replication — revocation is irreversible, so history only appends;
//! * sites hold local [`CrlReplica`]s for the realms they trust, built
//!   from the realm's exported [`eus_fedauth::RealmVerifier`] (signature checks become
//!   local) plus the replicated revoked-set;
//! * a [`RevSyncMesh`] moves deltas over a simulated WAN
//!   (`eus_simnet::Fabric` with wide-area latency constants): **push
//!   feeds** every [`RevSyncConfig::feed_interval`] (fire-and-forget,
//!   lossy) plus **pull anti-entropy** every
//!   [`RevSyncConfig::anti_entropy`] (exact, repairs any gap);
//! * validation consults only the local replica — *no synchronous issuer
//!   query on the hot path* — under a **bounded-staleness contract**: a
//!   replica older than [`RevSyncConfig::max_lag`] refuses to judge
//!   ([`eus_fedauth::CredError::StaleReplica`]), so an unreachable sister
//!   site degrades to fail-closed, never to fail-open.
//!
//! The propagation-lag-vs-cadence tradeoff is measured by `exp_revsync`;
//! `benches/revsync_replica.rs` pins the replica hot path; the convergence
//! and monotonicity properties live in `tests/revsync_properties.rs`.
//!
//! ```
//! use eus_fedauth::{shared_broker, BrokerPolicy, CredentialBroker, RealmId};
//! use eus_revsync::{RevSyncConfig, RevSyncMesh};
//! use eus_simcore::SimTime;
//! use eus_simos::UserDb;
//!
//! let mut db = UserDb::new();
//! let alice = db.create_user("alice").unwrap();
//! let home = shared_broker(CredentialBroker::new(RealmId(1), 1, BrokerPolicy::default()));
//! let sister = shared_broker(CredentialBroker::new(RealmId(2), 2, BrokerPolicy::default()));
//!
//! let cfg = RevSyncConfig::default();
//! let mut mesh = RevSyncMesh::new(cfg);
//! mesh.add_realm(RealmId(1), home);
//! mesh.add_realm(RealmId(2), sister.clone());
//! mesh.subscribe(RealmId(1), RealmId(2)); // home replicates sister's CRL
//!
//! let token = sister.write().login(&db, alice, None).unwrap();
//! assert_eq!(mesh.validate_token_at(RealmId(1), &token, SimTime::ZERO).unwrap(), alice);
//! sister.write().revoke_user(alice);
//! let later = SimTime::ZERO + cfg.feed_interval + eus_simcore::SimDuration::from_secs(1);
//! mesh.pump(later); // the push feed carries the delta across the WAN
//! assert!(mesh.validate_token_at(RealmId(1), &token, later).is_err());
//! ```

#![warn(missing_docs)]

pub mod mesh;
pub mod obs;
pub mod replica;

pub use mesh::{RevSyncMesh, RevSyncMetrics, CRL_FEED_PORT};
pub use obs::MeshObs;
pub use replica::{ApplyOutcome, CrlDelta, CrlReplica};

use eus_simcore::SimDuration;
use eus_simnet::LatencyModel;

/// Wide-area latency constants for the inter-site mesh: tens of
/// milliseconds of round trip and slower serialization than the intra-site
/// fabric — sites are cities apart, not racks apart.
pub fn wan_latency() -> LatencyModel {
    LatencyModel {
        base_rtt: SimDuration::from_micros(30_000),
        per_kib: SimDuration::from_micros(8),
        ..LatencyModel::default()
    }
}

/// Tunables for one site's revocation-propagation deployment.
#[derive(Debug, Clone, Copy)]
pub struct RevSyncConfig {
    /// Push-feed cadence: how often an issuer ships its newest delta-log
    /// entries (and heartbeats) to each subscriber.
    pub feed_interval: SimDuration,
    /// Anti-entropy cadence: how often a subscriber pulls everything after
    /// its applied frontier (exact; repairs push loss).
    pub anti_entropy: SimDuration,
    /// The staleness budget: a replica older than this refuses to judge
    /// credentials (bounded staleness fails closed).
    pub max_lag: SimDuration,
    /// Fraction of push feeds lost in transit (fire-and-forget transport;
    /// anti-entropy is the repair path).
    pub push_loss: f64,
    /// First retry backoff after a *detected* push failure (connect refused
    /// on a partitioned or faulted link — unlike in-transit loss, the
    /// sender sees these). Doubles per consecutive failure.
    pub retry_base: SimDuration,
    /// Ceiling on the push retry backoff (capped exponential).
    pub retry_cap: SimDuration,
    /// Missed feed intervals before a subscriber declares the feed silent
    /// (the `feed.silent` flight event and counter; heartbeats normally
    /// arrive every [`feed_interval`](Self::feed_interval)).
    pub silent_after: u32,
    /// Seed for the mesh's loss and retry-jitter draws.
    pub seed: u64,
    /// WAN latency constants.
    pub wan: LatencyModel,
}

impl Default for RevSyncConfig {
    fn default() -> Self {
        RevSyncConfig {
            feed_interval: SimDuration::from_secs(10),
            anti_entropy: SimDuration::from_secs(300),
            max_lag: SimDuration::from_secs(900),
            push_loss: 0.0,
            retry_base: SimDuration::from_millis(2_500),
            retry_cap: SimDuration::from_secs(40),
            silent_after: 3,
            seed: 0x9EC5_FEED,
            wan: wan_latency(),
        }
    }
}
