//! Local CRL replicas and the deltas that feed them.
//!
//! A [`CrlReplica`] is one site's local copy of a *sister realm's*
//! revocation state: the set of revoked serials plus two freshness facts —
//! how far through the issuer's delta log the replica has applied
//! ([`applied_seq`](CrlReplica::applied_seq)) and the issuer-side instant
//! the replica last provably reflected
//! ([`last_sync`](CrlReplica::last_sync)). Validation consults the replica
//! *instead of* the issuer, so the hot path never leaves the site; the
//! price is staleness, and the staleness is bounded: past the budget the
//! replica refuses to judge at all
//! ([`CredError::StaleReplica`]).
//!
//! Replicas converge by append alone. Revocation is irreversible at the
//! issuer (`RevocationList` has no removal API), so a delta can only add
//! serials — and [`CrlReplica::apply`] has no removal path either. A serial
//! seen revoked once stays revoked in every replica forever, whatever order
//! deltas arrive in (the regression property `tests/revsync_properties.rs`
//! pins).

use eus_fedauth::{CredError, CredSerial, RealmId, RealmVerifier, SignedToken, SshCertificate};
use eus_obs::TraceCtx;
use eus_simcore::{SimDuration, SimTime};
use eus_simos::Uid;
use std::collections::HashSet;

/// One batch of revocation-log entries in flight from an issuer to a
/// replica: entries `first_seq ..= head` of the issuer's log, snapshotted
/// at `as_of` on the shared simulation clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrlDelta {
    /// The issuing realm.
    pub issuer: RealmId,
    /// Sequence number of the first entry carried (1-based). A delta with
    /// `serials.is_empty()` is a pure heartbeat: `first_seq == head + 1`.
    pub first_seq: u64,
    /// The entries, oldest first.
    pub serials: Vec<CredSerial>,
    /// The issuer's log head at snapshot time (`first_seq - 1 +
    /// serials.len()`).
    pub head: u64,
    /// When the issuer snapshotted its log (the freshness a successful
    /// apply proves).
    pub as_of: SimTime,
    /// Causal trace context for the newest traced revocation this delta
    /// carries ([`TraceCtx::NONE`] when tracing is off or no carried entry
    /// was traced). Rides inside the feed framing's fixed 48-byte header —
    /// [`wire_bytes`](Self::wire_bytes) is *independent* of it, so a traced
    /// replay charges the fabric exactly what a quiet one does.
    pub trace: TraceCtx,
}

impl CrlDelta {
    /// Wire size in bytes under the feed's framing (fixed header + one
    /// serial per entry); what the fabric's transfer-time model charges.
    pub fn wire_bytes(&self) -> usize {
        Self::wire_bytes_for(self.serials.len())
    }

    /// [`wire_bytes`](Self::wire_bytes) from an entry count alone (sizing
    /// a transfer without materializing the delta).
    pub fn wire_bytes_for(entries: usize) -> usize {
        48 + 8 * entries
    }
}

/// What [`CrlReplica::apply`] did with a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// Entries applied (possibly zero new ones — overlap and heartbeats
    /// still refresh `last_sync`). Carries how many serials were new.
    Applied(usize),
    /// The delta starts past the replica's frontier — an earlier feed was
    /// lost in transit — so applying it would leave a hole in the log.
    /// Nothing is applied and freshness is NOT refreshed; pull-based
    /// anti-entropy repairs the gap.
    Gap {
        /// The sequence number the replica needs next.
        expected: u64,
    },
}

/// A site-local replica of one sister realm's CRL, plus the verification
/// capability ([`RealmVerifier`]) exported by that realm at
/// trust-establishment time — together, everything cross-realm validation
/// needs without a synchronous issuer query.
#[derive(Debug, Clone)]
pub struct CrlReplica {
    realm: RealmId,
    verifier: RealmVerifier,
    revoked: HashSet<CredSerial>,
    applied_seq: u64,
    last_sync: SimTime,
    /// Context of the newest traced delta applied here (the "apply" span's
    /// children — fail-closed denials — parent under it). Pure
    /// measurement: never consulted by `apply` or validation.
    last_trace: TraceCtx,
}

impl CrlReplica {
    /// Bootstrap a replica from a full CRL snapshot (the registration-time
    /// state transfer): `serials` is the issuer's entire log, `head` its
    /// length, `now` the bootstrap instant.
    pub fn bootstrap(
        realm: RealmId,
        verifier: RealmVerifier,
        serials: Vec<CredSerial>,
        now: SimTime,
    ) -> Self {
        let applied_seq = serials.len() as u64;
        CrlReplica {
            realm,
            verifier,
            revoked: serials.into_iter().collect(),
            applied_seq,
            last_sync: now,
            last_trace: TraceCtx::NONE,
        }
    }

    /// Context of the newest traced delta applied here.
    pub fn last_trace(&self) -> TraceCtx {
        self.last_trace
    }

    /// Remember the trace context a just-applied delta continued (the mesh
    /// calls this after recording the apply span).
    pub fn set_last_trace(&mut self, ctx: TraceCtx) {
        self.last_trace = ctx;
    }

    /// The replicated realm.
    pub fn realm(&self) -> RealmId {
        self.realm
    }

    /// How far through the issuer's delta log this replica has applied.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// The issuer-side instant this replica last provably reflected.
    pub fn last_sync(&self) -> SimTime {
        self.last_sync
    }

    /// How stale the replica is at `now`.
    pub fn lag(&self, now: SimTime) -> SimDuration {
        now.since(self.last_sync)
    }

    /// Number of revoked serials known locally.
    pub fn revoked_count(&self) -> usize {
        self.revoked.len()
    }

    /// O(1) local membership check.
    #[inline]
    pub fn is_revoked(&self, serial: CredSerial) -> bool {
        self.revoked.contains(&serial)
    }

    /// Apply a delta. Entries at or below the current frontier are skipped
    /// (overlap is harmless — the set union is idempotent); entries beyond
    /// `first_seq`'s contiguity are refused as a [`ApplyOutcome::Gap`].
    /// There is no removal path: a replica can only learn revocations,
    /// never forget them.
    pub fn apply(&mut self, delta: &CrlDelta) -> ApplyOutcome {
        if delta.first_seq > self.applied_seq + 1 {
            return ApplyOutcome::Gap {
                expected: self.applied_seq + 1,
            };
        }
        let mut fresh = 0usize;
        for (i, serial) in delta.serials.iter().enumerate() {
            let seq = delta.first_seq + i as u64;
            if seq <= self.applied_seq {
                continue; // overlap with already-applied history
            }
            if self.revoked.insert(*serial) {
                fresh += 1;
            }
            self.applied_seq = seq;
        }
        // A successful (gap-free) exchange proves the replica reflected the
        // issuer's log as of the snapshot — heartbeats refresh freshness
        // even when they carry nothing.
        if delta.head <= self.applied_seq && delta.as_of > self.last_sync {
            self.last_sync = delta.as_of;
        }
        ApplyOutcome::Applied(fresh)
    }

    /// Absorb a full membership snapshot — the repair path for a replica
    /// whose frontier fell below the issuer's compaction floor, where no
    /// contiguous delta exists any more. A pure set union (there is still
    /// no removal path), then the frontier jumps to the issuer's `head`
    /// and a newer `as_of` refreshes freshness. No gap is possible: the
    /// snapshot is the complete history by construction. Returns how many
    /// serials were new.
    pub fn absorb_snapshot(&mut self, serials: &[CredSerial], head: u64, as_of: SimTime) -> usize {
        let mut fresh = 0usize;
        for serial in serials {
            if self.revoked.insert(*serial) {
                fresh += 1;
            }
        }
        if head > self.applied_seq {
            self.applied_seq = head;
        }
        if as_of > self.last_sync {
            self.last_sync = as_of;
        }
        fresh
    }

    // analyze:hot-path-begin(replica-lookup)
    /// Validate a bearer token against the replica with a staleness budget:
    /// refuse outright when the replica is older than `max_lag` (bounded
    /// staleness fails closed), otherwise verify the signature/window
    /// locally and consult the local revoked set. No issuer contact.
    pub fn validate_token(
        &self,
        token: &SignedToken,
        now: SimTime,
        max_lag: SimDuration,
    ) -> Result<Uid, CredError> {
        self.check_fresh(now, max_lag)?;
        let user = self.verifier.verify_token(token, now)?;
        if self.is_revoked(token.serial) {
            return Err(CredError::Revoked(token.serial));
        }
        Ok(user)
    }

    /// [`validate_token`](Self::validate_token) for SSH certificates.
    pub fn validate_cert(
        &self,
        cert: &SshCertificate,
        now: SimTime,
        max_lag: SimDuration,
    ) -> Result<Uid, CredError> {
        self.check_fresh(now, max_lag)?;
        let user = self.verifier.verify_cert(cert, now)?;
        if self.is_revoked(cert.serial) {
            return Err(CredError::Revoked(cert.serial));
        }
        Ok(user)
    }

    fn check_fresh(&self, now: SimTime, max_lag: SimDuration) -> Result<(), CredError> {
        let lag = self.lag(now);
        if lag > max_lag {
            return Err(CredError::StaleReplica {
                realm: self.realm,
                lag,
            });
        }
        Ok(())
    }
    // analyze:hot-path-end
}

#[cfg(test)]
mod tests {
    use super::*;
    use eus_fedauth::{BrokerPolicy, CredentialBroker, CredentialPlane};
    use eus_simos::UserDb;

    fn issuer() -> (UserDb, CredentialBroker, Uid) {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let broker = CredentialBroker::new(RealmId(2), 9, BrokerPolicy::default());
        (db, broker, alice)
    }

    fn delta(issuer: RealmId, first: u64, serials: &[u64], as_of: SimTime) -> CrlDelta {
        CrlDelta {
            issuer,
            first_seq: first,
            serials: serials.iter().map(|&s| CredSerial(s)).collect(),
            head: first - 1 + serials.len() as u64,
            as_of,
            trace: TraceCtx::NONE,
        }
    }

    #[test]
    fn replica_judges_tokens_without_the_issuer() {
        let (db, mut b, alice) = issuer();
        let token = b.login(&db, alice, None).unwrap();
        let mut replica = CrlReplica::bootstrap(
            RealmId(2),
            b.verifier(),
            b.revocations_since(0),
            SimTime::ZERO,
        );
        let budget = SimDuration::from_secs(600);
        assert_eq!(
            replica
                .validate_token(&token, SimTime::ZERO, budget)
                .unwrap(),
            alice
        );
        // Issuer revokes; the replica only learns via a delta.
        b.revoke_serial(token.serial);
        assert!(replica
            .validate_token(&token, SimTime::ZERO, budget)
            .is_ok());
        let d = delta(RealmId(2), 1, &[token.serial.0], SimTime::from_secs(1));
        assert_eq!(replica.apply(&d), ApplyOutcome::Applied(1));
        assert_eq!(
            replica.validate_token(&token, SimTime::from_secs(1), budget),
            Err(CredError::Revoked(token.serial))
        );
    }

    #[test]
    fn gap_refused_overlap_skipped_heartbeat_refreshes() {
        let (_, b, _) = issuer();
        let mut r = CrlReplica::bootstrap(RealmId(2), b.verifier(), vec![], SimTime::ZERO);
        // Gap: entry 3 before entries 1-2 → refused, freshness untouched.
        let out = r.apply(&delta(RealmId(2), 3, &[30], SimTime::from_secs(5)));
        assert_eq!(out, ApplyOutcome::Gap { expected: 1 });
        assert_eq!(r.last_sync(), SimTime::ZERO);
        assert_eq!(r.applied_seq(), 0);
        // Contiguous catch-up applies.
        assert_eq!(
            r.apply(&delta(RealmId(2), 1, &[10, 20, 30], SimTime::from_secs(6))),
            ApplyOutcome::Applied(3)
        );
        assert_eq!(r.applied_seq(), 3);
        assert_eq!(r.last_sync(), SimTime::from_secs(6));
        // Overlap: entries 2-4 re-apply only entry 4.
        assert_eq!(
            r.apply(&delta(RealmId(2), 2, &[20, 30, 40], SimTime::from_secs(7))),
            ApplyOutcome::Applied(1)
        );
        assert_eq!(r.applied_seq(), 4);
        // Heartbeat: empty delta refreshes freshness.
        let hb = CrlDelta {
            issuer: RealmId(2),
            first_seq: 5,
            serials: vec![],
            head: 4,
            as_of: SimTime::from_secs(60),
            trace: TraceCtx::NONE,
        };
        assert_eq!(r.apply(&hb), ApplyOutcome::Applied(0));
        assert_eq!(r.last_sync(), SimTime::from_secs(60));
        // A stale (out-of-order) heartbeat never rewinds freshness.
        let old_hb = CrlDelta {
            as_of: SimTime::from_secs(30),
            ..hb
        };
        r.apply(&old_hb);
        assert_eq!(r.last_sync(), SimTime::from_secs(60));
    }

    #[test]
    fn snapshot_absorption_unions_and_jumps_the_frontier() {
        let (_, b, _) = issuer();
        let mut r = CrlReplica::bootstrap(RealmId(2), b.verifier(), vec![], SimTime::ZERO);
        // Replica knows entries 1-2; issuer compacted below 5 and ships the
        // full membership (sorted by serial, not log order).
        r.apply(&delta(RealmId(2), 1, &[10, 20], SimTime::from_secs(1)));
        let snapshot = [
            CredSerial(5),
            CredSerial(10),
            CredSerial(20),
            CredSerial(30),
            CredSerial(40),
        ];
        let fresh = r.absorb_snapshot(&snapshot, 5, SimTime::from_secs(9));
        assert_eq!(fresh, 3, "10 and 20 were already known");
        assert_eq!(r.applied_seq(), 5);
        assert_eq!(r.last_sync(), SimTime::from_secs(9));
        assert_eq!(r.revoked_count(), 5);
        for s in snapshot {
            assert!(r.is_revoked(s));
        }
        // A stale snapshot never rewinds the frontier or freshness, and
        // never un-revokes.
        let fresh = r.absorb_snapshot(&[CredSerial(5)], 1, SimTime::from_secs(2));
        assert_eq!(fresh, 0);
        assert_eq!(r.applied_seq(), 5);
        assert_eq!(r.last_sync(), SimTime::from_secs(9));
    }

    #[test]
    fn staleness_budget_fails_closed() {
        let (db, mut b, alice) = issuer();
        let token = b.login(&db, alice, None).unwrap();
        let replica = CrlReplica::bootstrap(RealmId(2), b.verifier(), vec![], SimTime::ZERO);
        let budget = SimDuration::from_secs(100);
        assert!(replica
            .validate_token(&token, SimTime::from_secs(100), budget)
            .is_ok());
        let verdict = replica.validate_token(&token, SimTime::from_secs(101), budget);
        assert_eq!(
            verdict,
            Err(CredError::StaleReplica {
                realm: RealmId(2),
                lag: SimDuration::from_secs(101),
            })
        );
    }
}
