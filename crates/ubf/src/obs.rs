//! UBF packet-path observability: [`SharedStats`] slots for the daemon.
//!
//! The daemon is boxed into the fabric as a [`eus_simnet::QueueHandler`], so
//! a plain `&mut Recorder` cannot reach it after deployment. Instead every
//! daemon carries an [`UbfPacketStats`] handle — an `Arc`-shared
//! [`SharedStats`] with pre-registered slots — which the deployer keeps a
//! clone of. Enabling is a relaxed atomic flip through `&self`, so the
//! cluster's `enable_obs` fan-out can switch daemons on after they have
//! been moved into the fabric. Disabled cost on the judge path is one
//! relaxed load + branch per slot touch, bounded by `exp_obs_overhead`.

use eus_obs::{SharedId, SharedStats};
use std::sync::Arc;

/// Arc-shared slot set for the UBF judge path.
#[derive(Debug, Clone)]
pub struct UbfPacketStats {
    stats: Arc<SharedStats>,
    /// Every packet judged (cache hits included).
    pub s_packets: SharedId,
    /// Judgements answered from the decision cache.
    pub s_cache_hits: SharedId,
    /// Judgements that missed the cache.
    pub s_cache_misses: SharedId,
    /// Judgements that ended in a drop.
    pub s_denies: SharedId,
    /// Ident round trips to peer hosts (one per cache miss).
    pub s_ident_rtts: SharedId,
    /// High-water mark of decision-cache occupancy.
    pub s_occupancy_peak: SharedId,
}

impl UbfPacketStats {
    /// Register the slot set; recording starts disabled unless `enabled`.
    pub fn new(enabled: bool) -> Self {
        let mut stats = SharedStats::new();
        let s_packets = stats.slot("ubf.judge.packets");
        let s_cache_hits = stats.slot("ubf.judge.cache_hits");
        let s_cache_misses = stats.slot("ubf.judge.cache_misses");
        let s_denies = stats.slot("ubf.judge.denies");
        let s_ident_rtts = stats.slot("ubf.judge.ident_rtts");
        let s_occupancy_peak = stats.slot("ubf.cache.occupancy_peak");
        stats.set_enabled(enabled);
        UbfPacketStats {
            stats: Arc::new(stats),
            s_packets,
            s_cache_hits,
            s_cache_misses,
            s_denies,
            s_ident_rtts,
            s_occupancy_peak,
        }
    }

    /// A disabled handle (the default inside every daemon).
    pub fn disabled() -> Self {
        Self::new(false)
    }

    /// The underlying slot registry (shared across all clones).
    pub fn stats(&self) -> &SharedStats {
        &self.stats
    }

    /// Is recording on?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.stats.enabled()
    }

    /// Flip recording through the shared handle — reaches daemons already
    /// moved into the fabric.
    pub fn set_enabled(&self, on: bool) {
        self.stats.set_enabled(on);
    }

    /// Cache hit ratio over all judged packets.
    pub fn cache_hit_ratio(&self) -> f64 {
        let h = self.stats.value(self.s_cache_hits) as f64;
        let m = self.stats.value(self.s_cache_misses) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

impl Default for UbfPacketStats {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_enable_through_clone() {
        let a = UbfPacketStats::disabled();
        let b = a.clone();
        a.stats().incr(a.s_packets);
        assert_eq!(a.stats().value(a.s_packets), 0);
        b.set_enabled(true); // flips the shared registry
        a.stats().incr(a.s_packets);
        assert_eq!(b.stats().value(b.s_packets), 1);
    }

    #[test]
    fn hit_ratio_from_slots() {
        let s = UbfPacketStats::new(true);
        s.stats().add(s.s_cache_hits, 3);
        s.stats().incr(s.s_cache_misses);
        assert!((s.cache_hit_ratio() - 0.75).abs() < 1e-12);
        s.stats().max(s.s_occupancy_peak, 7);
        s.stats().max(s.s_occupancy_peak, 2);
        assert_eq!(s.stats().value(s.s_occupancy_peak), 7);
    }
}
