//! Decision cache for the UBF daemon.
//!
//! The ident round-trip dominates connection-setup cost, and HPC workloads
//! open many flows between the same (user, user) pairs in bursts (MPI rank
//! wire-up). A small positive/negative cache with bounded capacity removes
//! repeat ident queries; the `ubf_overhead` bench ablates it. Entries are
//! keyed by both endpoints' (uid, egid) so a `newgrp` restart or group
//! change naturally misses.

use eus_simnet::PeerInfo;
use eus_simos::{Gid, Uid};
use std::collections::HashMap;

/// Cache key: both identities, uid+egid each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    initiator_uid: Uid,
    initiator_egid: Gid,
    listener_uid: Uid,
    listener_egid: Gid,
}

impl CacheKey {
    /// Build a key from the two endpoints.
    pub fn new(initiator: &PeerInfo, listener: &PeerInfo) -> Self {
        CacheKey {
            initiator_uid: initiator.uid,
            initiator_egid: initiator.egid,
            listener_uid: listener.uid,
            listener_egid: listener.egid,
        }
    }
}

/// Bounded FIFO-evicting decision cache.
#[derive(Debug, Clone)]
pub struct DecisionCache {
    map: HashMap<CacheKey, bool>,
    order: std::collections::VecDeque<CacheKey>,
    capacity: usize,
}

impl DecisionCache {
    /// A cache holding at most `capacity` decisions (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        DecisionCache {
            map: HashMap::with_capacity(capacity),
            order: std::collections::VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    // analyze:hot-path-begin(ubf-cache)
    /// Cached decision, if present.
    pub fn get(&self, key: &CacheKey) -> Option<bool> {
        self.map.get(key).copied()
    }

    /// Record a decision.
    pub fn put(&mut self, key: CacheKey, allowed: bool) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key, allowed).is_none() {
            self.order.push_back(key);
            if self.order.len() > self.capacity {
                if let Some(evicted) = self.order.pop_front() {
                    self.map.remove(&evicted);
                }
            }
        }
    }
    // analyze:hot-path-end

    /// Drop everything (group membership changed).
    pub fn invalidate_all(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// Current number of cached decisions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(uid: u32, egid: u32) -> PeerInfo {
        PeerInfo {
            uid: Uid(uid),
            egid: Gid(egid),
            pid: None,
        }
    }

    #[test]
    fn hit_and_miss() {
        let mut c = DecisionCache::new(8);
        let k = CacheKey::new(&peer(1, 1), &peer(2, 7));
        assert_eq!(c.get(&k), None);
        c.put(k, true);
        assert_eq!(c.get(&k), Some(true));
        // Different egid on the listener → different key (newgrp restart).
        let k2 = CacheKey::new(&peer(1, 1), &peer(2, 8));
        assert_eq!(c.get(&k2), None);
    }

    #[test]
    fn capacity_evicts_fifo() {
        let mut c = DecisionCache::new(2);
        let k1 = CacheKey::new(&peer(1, 1), &peer(9, 9));
        let k2 = CacheKey::new(&peer(2, 2), &peer(9, 9));
        let k3 = CacheKey::new(&peer(3, 3), &peer(9, 9));
        c.put(k1, true);
        c.put(k2, false);
        c.put(k3, true);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&k1), None, "oldest evicted");
        assert_eq!(c.get(&k2), Some(false));
        assert_eq!(c.get(&k3), Some(true));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = DecisionCache::new(0);
        let k = CacheKey::new(&peer(1, 1), &peer(2, 2));
        c.put(k, true);
        assert_eq!(c.get(&k), None);
        assert!(c.is_empty());
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = DecisionCache::new(4);
        c.put(CacheKey::new(&peer(1, 1), &peer(2, 2)), true);
        c.invalidate_all();
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_does_not_duplicate_order() {
        let mut c = DecisionCache::new(2);
        let k = CacheKey::new(&peer(1, 1), &peer(2, 2));
        c.put(k, true);
        c.put(k, false); // update in place
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&k), Some(false));
    }
}
