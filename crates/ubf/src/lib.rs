//! # eus-ubf — the User-Based Firewall
//!
//! Reproduction of the paper's second released artifact
//! (`mit-llsc/UserBasedFirewall`, Sec. IV-D + Appendix): instead of a
//! traditional port/protocol/service firewall, every *new* TCP/UDP
//! connection on ports ≥ 1024 is punted to a userspace daemon which allows
//! it only when the connecting and listening processes run as the **same
//! user**, or the connector is a member of the listener's **effective gid**
//! (the `newgrp`/`sg` group opt-in).
//!
//! * [`policy`] — the decision rule.
//! * [`daemon`] — the NFQUEUE handler with ident querying, decision cache,
//!   and exported statistics.
//! * [`ruleset`] — the nftables-shaped rules ([`ruleset::install_ubf_rules`])
//!   and one-call host deployment ([`ruleset::deploy_ubf`]).
//! * [`cache`] — bounded decision cache (the `ubf_overhead` bench ablates it).
//! * [`httpd_plugin`] — the portal-side authorization hook.
//! * [`obs`] — `Arc`-shared slot counters for the judge path, switchable
//!   after daemons have moved into the fabric.
//!
//! Established flows never revisit the daemon (conntrack passthrough), so
//! the UBF's entire cost lands on connection setup — experiment E9 measures
//! exactly that.

#![warn(missing_docs)]

pub mod cache;
pub mod daemon;
pub mod httpd_plugin;
pub mod obs;
pub mod policy;
pub mod ruleset;

pub use cache::{CacheKey, DecisionCache};
pub use daemon::{shared_user_db, SharedUserDb, UbfConfig, UbfDaemon, UbfStats, UbfStatsInner};
pub use httpd_plugin::HttpdUbfPlugin;
pub use obs::UbfPacketStats;
pub use policy::{decide, Decision, UbfPolicy};
pub use ruleset::{
    deploy_ubf, deploy_ubf_observed, install_ubf_rules, UBF_INSPECT_FROM, UBF_QUEUE,
};
