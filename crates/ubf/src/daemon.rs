//! The UBF userspace daemon: the `NFQUEUE` handler that judges every new
//! connection on inspected ports (paper Sec. IV-D).
//!
//! Per queued packet the daemon performs:
//! 1. a local lookup of its own endpoint's socket owner,
//! 2. an ident-style query to the peer host (skipped on a cache hit),
//! 3. the [`crate::policy::decide`] check against the shared user database.
//!
//! Statistics are exported through a shared handle so experiments can read
//! them after the daemon has been moved into the fabric.

use crate::cache::{CacheKey, DecisionCache};
use crate::obs::UbfPacketStats;
use crate::policy::{decide, Decision, UbfPolicy};
use eus_simcore::Counter;
use eus_simnet::{QueueCtx, QueueHandler, Verdict};
use eus_simos::UserDb;
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// Shared handle to the cluster user database (every daemon, the scheduler,
/// and the portal consult the same accounts, as LDAP/sssd would provide).
pub type SharedUserDb = Arc<RwLock<UserDb>>;

/// Wrap a [`UserDb`] for sharing.
pub fn shared_user_db(db: UserDb) -> SharedUserDb {
    Arc::new(RwLock::new(db))
}

/// Daemon counters, readable from outside via [`UbfStats`] handle.
#[derive(Debug, Default)]
pub struct UbfStatsInner {
    /// Connections allowed (same user).
    pub allowed_same_user: Counter,
    /// Connections allowed (group opt-in).
    pub allowed_group: Counter,
    /// Connections allowed (system service).
    pub allowed_system: Counter,
    /// Connections denied.
    pub denied: Counter,
    /// Decisions answered from cache.
    pub cache_hits: Counter,
    /// Decisions that required an ident round trip.
    pub ident_queries: Counter,
}

impl UbfStatsInner {
    /// Total decisions made.
    pub fn total(&self) -> u64 {
        self.allowed_same_user.get()
            + self.allowed_group.get()
            + self.allowed_system.get()
            + self.denied.get()
    }

    /// Total allowed.
    pub fn allowed(&self) -> u64 {
        self.total() - self.denied.get()
    }
}

/// Shared statistics handle.
pub type UbfStats = Arc<Mutex<UbfStatsInner>>;

/// Configuration for one daemon instance.
#[derive(Debug, Clone)]
pub struct UbfConfig {
    /// Policy knobs.
    pub policy: UbfPolicy,
    /// Decision-cache capacity (0 disables; the ablation point for E9).
    pub cache_capacity: usize,
}

impl Default for UbfConfig {
    fn default() -> Self {
        UbfConfig {
            policy: UbfPolicy::default(),
            cache_capacity: 4096,
        }
    }
}

/// The daemon. One instance runs per host (attached to that host's queue 0).
pub struct UbfDaemon {
    db: SharedUserDb,
    config: UbfConfig,
    cache: DecisionCache,
    stats: UbfStats,
    pkt: UbfPacketStats,
}

impl UbfDaemon {
    /// Create a daemon bound to the shared user database.
    pub fn new(db: SharedUserDb, config: UbfConfig) -> Self {
        let cache = DecisionCache::new(config.cache_capacity);
        UbfDaemon {
            db,
            config,
            cache,
            stats: Arc::new(Mutex::new(UbfStatsInner::default())),
            pkt: UbfPacketStats::disabled(),
        }
    }

    /// Clone the statistics handle (do this before moving the daemon into
    /// the fabric).
    pub fn stats(&self) -> UbfStats {
        self.stats.clone()
    }

    /// Replace the packet-path slot handle (keep a clone to read/enable
    /// after the daemon moves into the fabric).
    pub fn set_packet_stats(&mut self, pkt: UbfPacketStats) {
        self.pkt = pkt;
    }

    /// Clone the packet-path slot handle.
    pub fn packet_stats(&self) -> UbfPacketStats {
        self.pkt.clone()
    }

    /// Drop all cached decisions (call after group membership changes).
    pub fn invalidate_cache(&mut self) {
        self.cache.invalidate_all();
    }

    fn record(&self, d: Decision) {
        let mut s = self.stats.lock();
        match d {
            Decision::AllowSameUser => s.allowed_same_user.incr(),
            Decision::AllowGroupMember => s.allowed_group.incr(),
            Decision::AllowSystemService => s.allowed_system.incr(),
            Decision::Deny => s.denied.incr(),
        }
    }
}

impl QueueHandler for UbfDaemon {
    fn name(&self) -> &str {
        "ubf-daemon"
    }

    // analyze:hot-path-begin(ubf-match)
    fn judge(&mut self, ctx: &mut QueueCtx<'_>) -> Verdict {
        // Local lookup of our own endpoint (one daemon lookup).
        ctx.costs.daemon_lookups += 1;
        let pkt = &self.pkt;
        pkt.stats().incr(pkt.s_packets);

        let key = CacheKey::new(&ctx.initiator, &ctx.listener);
        let allowed = if let Some(hit) = self.cache.get(&key) {
            ctx.costs.cache_hit = true;
            self.stats.lock().cache_hits.incr();
            pkt.stats().incr(pkt.s_cache_hits);
            // Re-record the decision class for counters: recompute cheaply
            // from the cached bit only.
            if hit {
                // The exact allow class is not cached; count as same-user
                // bucket would distort stats, so consult policy again only
                // for classification — membership lookup, no ident.
                ctx.costs.daemon_lookups += 1;
                let d = decide(
                    &self.config.policy,
                    &self.db.read(),
                    &ctx.initiator,
                    &ctx.listener,
                );
                self.record(d);
            } else {
                self.record(Decision::Deny);
            }
            hit
        } else {
            // Cache miss: ident round trip to the peer host, then a group
            // membership lookup.
            ctx.costs.ident_rtts += 1;
            ctx.costs.daemon_lookups += 1;
            self.stats.lock().ident_queries.incr();
            pkt.stats().incr(pkt.s_cache_misses);
            pkt.stats().incr(pkt.s_ident_rtts);
            let d = decide(
                &self.config.policy,
                &self.db.read(),
                &ctx.initiator,
                &ctx.listener,
            );
            self.record(d);
            self.cache.put(key, d.allowed());
            pkt.stats()
                .max(pkt.s_occupancy_peak, self.cache.len() as u64);
            d.allowed()
        };

        if allowed {
            Verdict::Accept
        } else {
            pkt.stats().incr(pkt.s_denies);
            Verdict::Drop
        }
    }
    // analyze:hot-path-end
}

#[cfg(test)]
mod tests {
    use super::*;
    use eus_simnet::{FiveTuple, PeerInfo, Proto, SetupCosts, SocketAddr};
    use eus_simos::{NodeId, Uid};

    fn db_two_users() -> (SharedUserDb, Uid, Uid) {
        let mut db = UserDb::new();
        let a = db.create_user("a").unwrap();
        let b = db.create_user("b").unwrap();
        (shared_user_db(db), a, b)
    }

    fn ctx_for<'a>(
        db: &SharedUserDb,
        init: Uid,
        listen: Uid,
        costs: &'a mut SetupCosts,
    ) -> QueueCtx<'a> {
        let guard = db.read();
        QueueCtx {
            tuple: FiveTuple {
                proto: Proto::Tcp,
                src: SocketAddr::new(NodeId(1), 40000),
                dst: SocketAddr::new(NodeId(2), 8888),
            },
            initiator: PeerInfo::from_cred(&guard.credentials(init).unwrap()),
            listener: PeerInfo::from_cred(&guard.credentials(listen).unwrap()),
            costs,
        }
    }

    #[test]
    fn same_user_accepted_stranger_dropped() {
        let (db, a, b) = db_two_users();
        let mut daemon = UbfDaemon::new(db.clone(), UbfConfig::default());
        let stats = daemon.stats();

        let mut costs = SetupCosts::default();
        let mut ctx = ctx_for(&db, a, a, &mut costs);
        assert_eq!(daemon.judge(&mut ctx), Verdict::Accept);

        let mut costs = SetupCosts::default();
        let mut ctx = ctx_for(&db, b, a, &mut costs);
        assert_eq!(daemon.judge(&mut ctx), Verdict::Drop);

        let s = stats.lock();
        assert_eq!(s.allowed_same_user.get(), 1);
        assert_eq!(s.denied.get(), 1);
        assert_eq!(s.total(), 2);
    }

    #[test]
    fn cache_skips_ident_on_repeat() {
        let (db, a, _) = db_two_users();
        let mut daemon = UbfDaemon::new(db.clone(), UbfConfig::default());
        let stats = daemon.stats();

        let mut c1 = SetupCosts::default();
        daemon.judge(&mut ctx_for(&db, a, a, &mut c1));
        assert_eq!(c1.ident_rtts, 1);
        assert!(!c1.cache_hit);

        let mut c2 = SetupCosts::default();
        daemon.judge(&mut ctx_for(&db, a, a, &mut c2));
        assert_eq!(c2.ident_rtts, 0, "cached decision skips ident");
        assert!(c2.cache_hit);

        let s = stats.lock();
        assert_eq!(s.cache_hits.get(), 1);
        assert_eq!(s.ident_queries.get(), 1);
    }

    #[test]
    fn cache_disabled_always_queries() {
        let (db, a, _) = db_two_users();
        let mut daemon = UbfDaemon::new(
            db.clone(),
            UbfConfig {
                cache_capacity: 0,
                ..UbfConfig::default()
            },
        );
        for _ in 0..3 {
            let mut c = SetupCosts::default();
            daemon.judge(&mut ctx_for(&db, a, a, &mut c));
            assert_eq!(c.ident_rtts, 1);
        }
        assert_eq!(daemon.stats().lock().ident_queries.get(), 3);
    }

    #[test]
    fn invalidate_cache_after_membership_change() {
        let (db, a, b) = db_two_users();
        let mut daemon = UbfDaemon::new(db.clone(), UbfConfig::default());

        // b → a denied and cached.
        let mut c = SetupCosts::default();
        assert_eq!(daemon.judge(&mut ctx_for(&db, b, a, &mut c)), Verdict::Drop);

        // a creates a project group, adds b, and relaunches the listener
        // with egid = proj.
        let proj = {
            let mut guard = db.write();
            let proj = guard.create_project_group("proj", a).unwrap();
            guard.add_to_group(a, proj, b).unwrap();
            proj
        };
        daemon.invalidate_cache();

        let mut costs = SetupCosts::default();
        let guard = db.read();
        let mut ctx = QueueCtx {
            tuple: FiveTuple {
                proto: Proto::Tcp,
                src: SocketAddr::new(NodeId(1), 40001),
                dst: SocketAddr::new(NodeId(2), 8888),
            },
            initiator: PeerInfo::from_cred(&guard.credentials(b).unwrap()),
            listener: PeerInfo::from_cred(
                &guard.newgrp(&guard.credentials(a).unwrap(), proj).unwrap(),
            ),
            costs: &mut costs,
        };
        drop(guard);
        assert_eq!(daemon.judge(&mut ctx), Verdict::Accept);
        assert_eq!(daemon.stats().lock().allowed_group.get(), 1);
    }
}
