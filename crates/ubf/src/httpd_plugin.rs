//! The Apache-httpd-plug-in side of the UBF (Appendix: "two Apache httpd
//! plug-ins" ship with the artifact).
//!
//! The web portal terminates the user's authenticated HTTPS session and then
//! forwards to an application listener on a compute node. This plug-in makes
//! the *portal* hop enforce the same user-based rule the packet path would:
//! the authenticated portal user plays the initiator role against the
//! target listener's identity, so "the entire connection path is
//! authenticated and authorized" (Sec. IV-E).

use crate::policy::{decide, Decision, UbfPolicy};
use crate::SharedUserDb;
use eus_simnet::PeerInfo;
use eus_simos::Credentials;

/// Authorization check the portal gateway calls before forwarding.
#[derive(Debug, Clone)]
pub struct HttpdUbfPlugin {
    db: SharedUserDb,
    policy: UbfPolicy,
}

impl HttpdUbfPlugin {
    /// Bind the plug-in to the shared user database.
    pub fn new(db: SharedUserDb, policy: UbfPolicy) -> Self {
        HttpdUbfPlugin { db, policy }
    }

    /// May `portal_user` be forwarded to a backend owned by `listener`?
    pub fn authorize(&self, portal_user: &Credentials, listener: &PeerInfo) -> Decision {
        let initiator = PeerInfo::from_cred(portal_user);
        decide(&self.policy, &self.db.read(), &initiator, listener)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::shared_user_db;
    use eus_simos::UserDb;

    #[test]
    fn portal_user_reaches_own_backend_only() {
        let mut db = UserDb::new();
        let a = db.create_user("a").unwrap();
        let b = db.create_user("b").unwrap();
        let shared = shared_user_db(db);
        let plugin = HttpdUbfPlugin::new(shared.clone(), UbfPolicy::default());

        let cred_a = shared.read().credentials(a).unwrap();
        let cred_b = shared.read().credentials(b).unwrap();
        let backend_a = PeerInfo::from_cred(&cred_a);

        assert!(plugin.authorize(&cred_a, &backend_a).allowed());
        assert!(!plugin.authorize(&cred_b, &backend_a).allowed());
    }

    #[test]
    fn group_backend_shared_via_egid() {
        let mut db = UserDb::new();
        let a = db.create_user("a").unwrap();
        let b = db.create_user("b").unwrap();
        let proj = db.create_project_group("proj", a).unwrap();
        db.add_to_group(a, proj, b).unwrap();
        let shared = shared_user_db(db);
        let plugin = HttpdUbfPlugin::new(shared.clone(), UbfPolicy::default());

        let cred_a = shared.read().credentials(a).unwrap();
        let backend = PeerInfo::from_cred(&shared.read().newgrp(&cred_a, proj).unwrap());
        let cred_b = shared.read().credentials(b).unwrap();
        assert_eq!(
            plugin.authorize(&cred_b, &backend),
            Decision::AllowGroupMember
        );
    }
}
